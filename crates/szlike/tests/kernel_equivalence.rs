//! Differential property tests: the fused kernels and the reference
//! per-element walk must produce *byte-identical containers* for every
//! shape, predictor, and partition — bit-identity is the contract that
//! keeps the fused hot loops out of the format-stability blast radius.
//!
//! The unit tests inside `szlike::kernels` compare codes/unpredictables/
//! reconstructions on hand-picked shapes; this suite drives the public
//! `compress` entry point across randomized shapes (including degenerate
//! dims of 1 and 2, where interior regions vanish) so the whole
//! encode path — walk, entropy stage, container framing — is compared.

use losslesskit::simd::{self, SimdLevel};
use ndfield::{Field, Shape};
use proptest::prelude::*;
use szlike::{compress, decompress, ErrorBound, KernelMode, PredictorKind, SzConfig};

/// Deterministic field mixing a smooth carrier with xorshift noise so both
/// the quantized core and the escape path are exercised.
fn field_from_seed(dims: &[usize], seed: u64) -> Field<f32> {
    let n: usize = dims.iter().product();
    let mut s = seed | 1;
    let mut vals = Vec::with_capacity(n);
    for i in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let smooth = ((i as f64) * 0.37).sin() * 2.0;
        vals.push((smooth + noise * 0.2) as f32);
    }
    Field::from_vec(Shape::from_dims(dims), vals)
}

const EB: f64 = 1e-3;
const PREDICTORS: [PredictorKind; 2] = [PredictorKind::Lorenzo1, PredictorKind::Lorenzo2];

/// Compress with both kernel modes and assert the containers match byte
/// for byte, then round-trip and assert the decoded samples are bit-equal
/// and within the error bound. Finally sweep every available
/// `FPSNR_SIMD` dispatch level and assert each one reproduces the same
/// container bytes and the same decoded bits — the byte-identity
/// contract of the SIMD layer (DESIGN.md §17).
fn assert_kernels_agree(field: &Field<f32>, base: SzConfig, label: &str) -> Result<(), String> {
    let fused = compress(field, &base.with_kernel(KernelMode::Fused))
        .map_err(|e| format!("{label}: fused compress failed: {e}"))?;
    let reference = compress(field, &base.with_kernel(KernelMode::Reference))
        .map_err(|e| format!("{label}: reference compress failed: {e}"))?;
    if fused != reference {
        return Err(format!(
            "{label}: container bytes differ (fused {} B vs reference {} B)",
            fused.len(),
            reference.len()
        ));
    }
    let back: Field<f32> =
        decompress(&fused).map_err(|e| format!("{label}: decompress failed: {e}"))?;
    if back.shape() != field.shape() {
        return Err(format!("{label}: shape changed through round-trip"));
    }
    for (i, (a, b)) in field.as_slice().iter().zip(back.as_slice()).enumerate() {
        let err = (*a as f64 - *b as f64).abs();
        if err > EB {
            return Err(format!("{label}: sample {i}: |{a} - {b}| = {err} > {EB}"));
        }
    }
    let result = simd_levels_agree(field, &base, label, &fused, &back);
    simd::force(None);
    result
}

/// Sweep every dispatch level the host supports: container bytes and
/// decoded sample bits must match the ambient-level baseline exactly.
fn simd_levels_agree(
    field: &Field<f32>,
    base: &SzConfig,
    label: &str,
    baseline: &[u8],
    back: &Field<f32>,
) -> Result<(), String> {
    for &level in SimdLevel::ALL.iter().filter(|&&l| l <= simd::detect()) {
        simd::force(Some(level));
        let bytes = compress(field, &base.with_kernel(KernelMode::Fused))
            .map_err(|e| format!("{label}: compress at {level:?} failed: {e}"))?;
        if bytes != baseline {
            return Err(format!(
                "{label}: container bytes differ at FPSNR_SIMD={}",
                level.name()
            ));
        }
        let dec: Field<f32> =
            decompress(&bytes).map_err(|e| format!("{label}: decompress at {level:?} failed: {e}"))?;
        for (i, (a, b)) in back.as_slice().iter().zip(dec.as_slice()).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(format!(
                    "{label}: decode bit {i} differs at FPSNR_SIMD={}: {a} vs {b}",
                    level.name()
                ));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fused_matches_reference_1d(
        n in 1usize..600,
        seed in any::<u64>(),
        p in 0usize..2,
    ) {
        let field = field_from_seed(&[n], seed);
        let cfg = SzConfig::new(ErrorBound::Abs(EB)).with_predictor(PREDICTORS[p]);
        if let Err(msg) = assert_kernels_agree(&field, cfg, &format!("1D n={n} pred={p}")) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn fused_matches_reference_2d(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in any::<u64>(),
        p in 0usize..2,
    ) {
        let field = field_from_seed(&[rows, cols], seed);
        let cfg = SzConfig::new(ErrorBound::Abs(EB)).with_predictor(PREDICTORS[p]);
        let label = format!("2D {rows}x{cols} pred={p}");
        if let Err(msg) = assert_kernels_agree(&field, cfg, &label) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn fused_matches_reference_3d(
        d0 in 1usize..12,
        d1 in 1usize..12,
        d2 in 1usize..12,
        seed in any::<u64>(),
        p in 0usize..2,
    ) {
        let field = field_from_seed(&[d0, d1, d2], seed);
        let cfg = SzConfig::new(ErrorBound::Abs(EB)).with_predictor(PREDICTORS[p]);
        let label = format!("3D {d0}x{d1}x{d2} pred={p}");
        if let Err(msg) = assert_kernels_agree(&field, cfg, &label) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn fused_matches_reference_blocked(
        rows in 1usize..30,
        cols in 1usize..30,
        seed in any::<u64>(),
        block_rows in 1usize..7,
        p in 0usize..2,
    ) {
        // block_rows >= 1 forces the blocked container, so every block's
        // walk and the per-block decode mirror are compared.
        let field = field_from_seed(&[rows, cols], seed);
        let cfg = SzConfig::new(ErrorBound::Abs(EB))
            .with_predictor(PREDICTORS[p])
            .with_block_rows(block_rows);
        let label = format!("blocked {rows}x{cols} block_rows={block_rows} pred={p}");
        if let Err(msg) = assert_kernels_agree(&field, cfg, &label) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn fused_matches_reference_degenerate_shapes(
        seed in any::<u64>(),
        p in 0usize..2,
        long in 3usize..60,
    ) {
        // Shapes where one or more dims are 1 or 2: the interior regions
        // collapse and every element takes the boundary path, the exact
        // cases a region-decomposition bug would miss.
        let shapes: [&[usize]; 8] = [
            &[1], &[2], &[1, long], &[long, 1], &[2, 2],
            &[1, 1, long], &[long, 1, 1], &[2, 2, 2],
        ];
        for dims in shapes {
            let field = field_from_seed(dims, seed);
            let cfg = SzConfig::new(ErrorBound::Abs(EB)).with_predictor(PREDICTORS[p]);
            let label = format!("degenerate {dims:?} pred={p}");
            if let Err(msg) = assert_kernels_agree(&field, cfg, &label) {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}
