//! Property-based tests over the block-parallel pipeline: the invariants
//! the blocked container promises must hold for *every* shape, partition,
//! and thread count — not just the hand-picked unit-test cases.
//!
//! The two load-bearing properties:
//! 1. the absolute error bound holds per sample through a blocked
//!    round-trip (Theorem 1 applies per block: each block replays its own
//!    prediction walk, so block boundaries cannot leak error), and
//! 2. the container bytes and the decoded samples depend only on the
//!    configuration and the shape-derived partition, never on how many
//!    worker threads happened to run.

use ndfield::{Field, Shape};
use proptest::prelude::*;
use szlike::{compress, decompress, decompress_with_threads, ErrorBound, SzConfig};

/// Deterministic pseudo-random field: smooth carrier + xorshift noise, so
/// both the predictable core and the escape path get exercised.
fn field_from_seed(dims: &[usize], seed: u64) -> Field<f32> {
    let n: usize = dims.iter().product();
    let mut s = seed | 1;
    let mut vals = Vec::with_capacity(n);
    for i in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let smooth = ((i as f64) * 0.37).sin() * 2.0;
        vals.push((smooth + noise * 0.2) as f32);
    }
    Field::from_vec(Shape::from_dims(dims), vals)
}

const THREAD_CHOICES: [usize; 3] = [1, 2, 8];
const EB: f64 = 1e-3;

fn assert_bound(field: &Field<f32>, back: &Field<f32>) -> Result<(), String> {
    for (i, (a, b)) in field.as_slice().iter().zip(back.as_slice()).enumerate() {
        let err = (*a as f64 - *b as f64).abs();
        if err > EB {
            return Err(format!("sample {i}: |{a} - {b}| = {err} > {EB}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn blocked_roundtrip_bound_holds_1d(
        n in 1usize..500,
        seed in any::<u64>(),
        block_rows in 0usize..9,
        t in 0usize..3,
    ) {
        let field = field_from_seed(&[n], seed);
        let cfg = SzConfig::new(ErrorBound::Abs(EB))
            .with_threads(THREAD_CHOICES[t])
            .with_block_rows(block_rows);
        let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        prop_assert_eq!(back.shape(), field.shape());
        if let Err(msg) = assert_bound(&field, &back) {
            prop_assert!(false, "1D n={} block_rows={} threads={}: {}",
                n, block_rows, THREAD_CHOICES[t], msg);
        }
    }

    #[test]
    fn blocked_roundtrip_bound_holds_2d(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in any::<u64>(),
        block_rows in 0usize..7,
        t in 0usize..3,
    ) {
        let field = field_from_seed(&[rows, cols], seed);
        let cfg = SzConfig::new(ErrorBound::Abs(EB))
            .with_threads(THREAD_CHOICES[t])
            .with_block_rows(block_rows);
        let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        if let Err(msg) = assert_bound(&field, &back) {
            prop_assert!(false, "2D {}x{} block_rows={} threads={}: {}",
                rows, cols, block_rows, THREAD_CHOICES[t], msg);
        }
    }

    #[test]
    fn blocked_roundtrip_bound_holds_3d(
        d0 in 1usize..14,
        d1 in 1usize..14,
        d2 in 1usize..14,
        seed in any::<u64>(),
        block_rows in 0usize..5,
        t in 0usize..3,
    ) {
        let field = field_from_seed(&[d0, d1, d2], seed);
        let cfg = SzConfig::new(ErrorBound::Abs(EB))
            .with_threads(THREAD_CHOICES[t])
            .with_block_rows(block_rows);
        let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        if let Err(msg) = assert_bound(&field, &back) {
            prop_assert!(false, "3D {}x{}x{} block_rows={} threads={}: {}",
                d0, d1, d2, block_rows, THREAD_CHOICES[t], msg);
        }
    }

    #[test]
    fn container_bytes_never_depend_on_thread_count(
        rows in 1usize..30,
        cols in 1usize..30,
        seed in any::<u64>(),
        block_rows in 1usize..7,
    ) {
        // block_rows >= 1 forces the blocked container for every thread
        // count, including threads == 1.
        let field = field_from_seed(&[rows, cols], seed);
        let base = SzConfig::new(ErrorBound::Abs(EB)).with_block_rows(block_rows);
        let reference = compress(&field, &base.with_threads(1)).unwrap();
        for threads in [2usize, 3, 8] {
            let bytes = compress(&field, &base.with_threads(threads)).unwrap();
            prop_assert!(
                bytes == reference,
                "threads={} produced different bytes ({}x{}, block_rows={})",
                threads, rows, cols, block_rows
            );
        }
    }

    #[test]
    fn decoded_samples_never_depend_on_decode_threads(
        d0 in 1usize..12,
        d1 in 1usize..12,
        d2 in 1usize..12,
        seed in any::<u64>(),
    ) {
        let field = field_from_seed(&[d0, d1, d2], seed);
        let cfg = SzConfig::new(ErrorBound::Abs(EB)).with_threads(4).with_block_rows(2);
        let bytes = compress(&field, &cfg).unwrap();
        let reference: Field<f32> = decompress_with_threads(&bytes, 1).unwrap();
        for threads in [2usize, 3, 8] {
            let back: Field<f32> = decompress_with_threads(&bytes, threads).unwrap();
            // Bit-exact, not merely within-bound: decode replays a fixed
            // integer walk, so parallelism must not change a single bit.
            let same = reference
                .as_slice()
                .iter()
                .zip(back.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "decode threads={} changed samples", threads);
        }
    }
}
