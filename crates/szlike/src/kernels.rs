//! Fused predict–quantize–encode kernels: the single-thread hot path.
//!
//! The reference walk in `compressor.rs` dispatches a generic stencil per
//! element (`predict_with`), pays boundary `if`s on every sample, and
//! routes quantization through an `Option`. These kernels restructure the
//! walk into **regions**: each row/plane is split into its boundary
//! (first row/column/plane, where the stencil degrades) and its interior
//! (where the full stencil applies unconditionally). Boundary elements go
//! through the reference stencil; interior elements run in branch-free,
//! dimensionality-specialized loops that fuse prediction, quantization by
//! multiply-with-inverse-bin-width, reconstruction write-back, and code
//! emission into a preallocated `u32` buffer. Entropy coding happens in a
//! second tight pass over that buffer (see `HuffmanCodec::encode`'s
//! word-at-a-time pair emission).
//!
//! # Bit-identity is a hard invariant
//!
//! Containers produced through these kernels must be **byte-identical** to
//! the reference walk's: the format-stability goldens pin the bytes, and
//! the paper's Theorem 1 (compressor and decompressor see the same
//! reconstruction) only survives if every float op happens in the same
//! order with the same operands. Three rules keep that true:
//!
//! 1. The quantizer step multiplies by `LinearQuantizer::inv_bin_width`
//!    — the *same* precomputed factor the reference `quantize` uses — and
//!    replicates its rounding, range test, and midpoint reconstruction
//!    operation for operation. Rounding uses the branch-free
//!    `ROUND_MAGIC` form, proven bit-equal to `f64::round` on every
//!    finite input; ∞ saturates the integer cast outside the code range
//!    and NaN fails the bound re-check, so both escape exactly like the
//!    reference's `is_finite` + range gate.
//! 2. Interior loops spell out the stencil with the reference's exact
//!    left-associated operand order (e.g. the 3-D chain
//!    `t1 + t2 + t3 − t4 − t5 − t6 + t7`), and the Lorenzo² accumulation
//!    uses the same `pred += c · r` sequence with the constant-folded
//!    weights the reference's multiply chain produces exactly.
//! 3. Boundary elements — where the reference inserts literal `0.0`
//!    terms whose additions canonicalize `-0.0` to `+0.0` — are never
//!    re-derived; they call the reference stencil itself.
//!
//! Compression and decompression share one region-decomposition driver
//! (`drive_range`) parameterized over an element sink, so the decode
//! mirror cannot drift from the walk by construction.
//!
//! # Wavefront row pairing (both directions)
//!
//! The walk's throughput ceiling is the loop-carried reconstruction
//! chain: each prediction reads the value the previous emit just wrote,
//! so one row is one long serial floating-point dependency. Both walks
//! therefore schedule two adjacent interior rows together, the second
//! lagging the first by one column (`l1_pair` and friends). The
//! anti-diagonal independence of the Lorenzo stencils means every input
//! an element reads is finalized before it runs, so per-element values
//! are bit-identical to the sequential order. The only order-sensitive
//! state is the escape stream, handled per direction:
//!
//! - **compress** buffers the lagging row's escape values and appends
//!   them at pair end (`flush_pair`), so the stream stays in scan order;
//! - **decode** cannot buffer — it *consumes* the stream — but it holds
//!   the pair's quantization codes before reconstructing, so `begin_pair`
//!   counts the `ESCAPE` codes in the leading row and places a second
//!   cursor exactly where the lagging row's escapes start. `flush_pair`
//!   folds that cursor back into the main one.
//!
//! Either way the schedule is invisible in the bytes and in the samples.
//!
//! # Wavefront row quads and SIMD dispatch
//!
//! At dispatch levels ≥ SSE2 (`losslesskit::simd::active()`), interior
//! Lorenzo¹ rows run four at a time, lane *t* trailing the leader by *t*
//! columns — the pair argument generalized: every input a lane reads was
//! finalized in an earlier step, so values are bit-identical to the
//! sequential order, and the escape stream routes through three deferred
//! buffers (compress) or three precomputed lagging cursors (decode). At
//! `Avx2` the four independent steady-state stencils evaluate as one
//! 4-lane `__m256d` chain in the same operand order — lane-wise IEEE
//! vector adds, so the same bits again. `FPSNR_SIMD=off` (or non-x86-64)
//! skips the quads entirely and keeps the pair schedule with no `unsafe`
//! reachable. Containers are byte-identical at every level; only the
//! wall clock changes.

use crate::compressor::quantized_walk_on;
use crate::config::{EscapeCoding, KernelMode};
use crate::error::SzError;
use crate::predictor::{predict_with, Predictor, PredictorKind, PredictorModel};
use crate::quantizer::{LinearQuantizer, ESCAPE};
use crate::unpredictable;
use losslesskit::simd::{self, SimdLevel};
use ndfield::{Scalar, Shape};

/// Output of a prediction + quantization walk (either implementation).
pub struct WalkResult<T: Scalar> {
    /// One quantization code per sample, scan order; `ESCAPE` marks
    /// unpredictable samples.
    pub codes: Vec<u32>,
    /// Escaped samples, in scan order.
    pub unpred: Vec<T>,
}

/// Per-element processing shared by the walk and its decode mirror: given
/// the element's linear index and its prediction, produce the value the
/// reconstruction buffer must see.
trait ElementSink {
    fn emit(&mut self, lin: usize, pred: f64) -> Result<f64, SzError>;

    /// [`Self::emit`] for an element of the *lagging* row of a wavefront
    /// row pair: identical arithmetic, but order-sensitive side effects
    /// (the escape payload) must be routed through pair-aware state —
    /// the walk sink defers its escape values until [`Self::flush_pair`],
    /// the decode sink pops from the lagging cursor primed by
    /// [`Self::begin_pair`]. The default forwards to `emit`, which is
    /// only correct for sinks with no order-sensitive state.
    #[inline(always)]
    fn emit_lagged(&mut self, lin: usize, pred: f64) -> Result<f64, SzError> {
        self.emit(lin, pred)
    }

    /// Called at the start of a wavefront pair — before any element of
    /// either row is emitted — with the *leading* row's linear range.
    /// Sinks that consume an ordered stream (the decode sink's escape
    /// cursor) use it to position their lagging-row state; producers
    /// ignore it.
    #[inline]
    fn begin_pair(&mut self, _a_start: usize, _a_end: usize) {}

    /// Called once both rows of a wavefront pair have completed; folds
    /// any buffered or forked lagging-row state back into scan order.
    #[inline]
    fn flush_pair(&mut self) {}

    /// [`Self::emit`] for an element of lagging lane `lane ∈ 1..=3` of a
    /// wavefront row *quad*. Generalizes [`Self::emit_lagged`] (which is
    /// lane 1 of a pair): identical arithmetic, but order-sensitive side
    /// effects route through per-lane state so the escape stream stays in
    /// scan order. The default forwards to `emit`, which is only correct
    /// for sinks with no order-sensitive state.
    #[inline(always)]
    fn emit_lane(&mut self, _lane: usize, lin: usize, pred: f64) -> Result<f64, SzError> {
        self.emit(lin, pred)
    }

    /// Called at the start of a wavefront quad — before any element of
    /// any of the four rows is emitted — with the linear index of the
    /// leading row's first element and the row stride. Rows `t ∈ 0..4`
    /// occupy `a_start + t·row_len .. a_start + (t+1)·row_len`. Sinks
    /// that consume an ordered stream use the three leading rows' codes
    /// to place their per-lane cursors; producers ignore it.
    #[inline]
    fn begin_quad(&mut self, _a_start: usize, _row_len: usize) {}

    /// Called once all four rows of a wavefront quad have completed;
    /// folds per-lane state back into scan order (lane 1, then 2, then 3).
    #[inline]
    fn flush_quad(&mut self) {}
}

/// Largest `f64` strictly below one half (`0.5 − 2⁻⁵⁴`). Adding it with
/// the operand's sign and then truncating toward zero rounds
/// half-away-from-zero: the result equals `f64::round` **bit for bit**
/// for every finite input (this is the magic-constant expansion LLVM
/// itself emits for `llvm.round.f64` on targets with native truncation).
/// The walk spells it out because the SSE2 baseline lowers `f64::round`
/// to an out-of-line soft-float call sitting on the hot loop's serial
/// dependency chain; the fused form is a native add + `cvttsd2si`.
const ROUND_MAGIC: f64 = 0.499_999_999_999_999_94;

/// Sink for the compression walk: quantize the prediction error, emit the
/// code, stash escapes.
struct WalkSink<'a, T: Scalar> {
    data: &'a [T],
    codes: &'a mut [u32],
    unpred: &'a mut Vec<T>,
    /// Escapes from the lagging rows of the wavefront pair or quad in
    /// flight, one buffer per lagging lane, appended to `unpred` in lane
    /// order at [`ElementSink::flush_pair`]/[`ElementSink::flush_quad`]
    /// so the escape stream stays in scan order.
    deferred: [Vec<T>; 3],
    eb: f64,
    inv_bin: f64,
    /// Largest representable |q|: `radius − 1`.
    qmax: u64,
    radius: i64,
    escape: EscapeCoding,
}

impl<T: Scalar> WalkSink<'_, T> {
    #[cold]
    fn emit_escape(&mut self, lin: usize, xv: T, x: f64, lane: usize) -> f64 {
        self.codes[lin] = ESCAPE;
        if lane == 0 {
            self.unpred.push(xv);
        } else {
            self.deferred[lane - 1].push(xv);
        }
        // The walk must see the value the decoder will reconstruct: the
        // exact bits, or the bound-respecting truncation.
        match self.escape {
            EscapeCoding::Exact => x,
            EscapeCoding::Truncated => unpredictable::truncate_to_bound(xv, self.eb)
                .unwrap_or(xv)
                .to_f64(),
        }
    }

    #[inline(always)]
    fn quantize_emit(&mut self, lin: usize, pred: f64, lane: usize) -> f64 {
        let xv = self.data[lin];
        let x = xv.to_f64();
        let err = x - pred;
        let scaled = err * self.inv_bin;
        // Branch-free round-half-away-from-zero (see [`ROUND_MAGIC`]):
        // bit-equal to the reference's `scaled.round()` for every finite
        // input, while the saturating cast sends ±∞ and |scaled| ≥ 2⁶³
        // far outside `qmax`. A NaN `scaled` casts to 0 and slips this
        // gate, but then fails the bound check below (NaN comparisons are
        // false) and escapes exactly like the reference's finiteness gate.
        let q = (scaled + ROUND_MAGIC.copysign(scaled)) as i64;
        if q.unsigned_abs() <= self.qmax {
            let rerr = (q as f64) * 2.0 * self.eb;
            // Round through the target precision: the decompressor emits
            // T, so the bound must hold after that cast, and the walk
            // must see the exact emitted value.
            let xr = T::from_f64(pred + rerr);
            let xrf = xr.to_f64();
            if (x - xrf).abs() <= self.eb {
                self.codes[lin] = (self.radius + q) as u32;
                return xrf;
            }
        }
        self.emit_escape(lin, xv, x, lane)
    }
}

impl<T: Scalar> ElementSink for WalkSink<'_, T> {
    #[inline(always)]
    fn emit(&mut self, lin: usize, pred: f64) -> Result<f64, SzError> {
        Ok(self.quantize_emit(lin, pred, 0))
    }

    #[inline(always)]
    fn emit_lagged(&mut self, lin: usize, pred: f64) -> Result<f64, SzError> {
        Ok(self.quantize_emit(lin, pred, 1))
    }

    #[inline(always)]
    fn emit_lane(&mut self, lane: usize, lin: usize, pred: f64) -> Result<f64, SzError> {
        Ok(self.quantize_emit(lin, pred, lane))
    }

    #[inline]
    fn flush_pair(&mut self) {
        self.unpred.append(&mut self.deferred[0]);
    }

    #[inline]
    fn flush_quad(&mut self) {
        for lane in &mut self.deferred {
            self.unpred.append(lane);
        }
    }
}

/// Sink for the decode mirror: map codes back to reconstructions,
/// consuming the escape stream in scan order.
struct DecodeSink<'a, T: Scalar> {
    /// Codes for the linear range being decoded (chunk-relative).
    codes: &'a [u32],
    /// Linear index of `codes[0]`.
    base: usize,
    out: &'a mut [T],
    unpred: &'a [T],
    next_unpred: &'a mut usize,
    /// Escape cursors for the lagging rows of the wavefront pair or quad
    /// in flight (lane `t` uses `lag_unpred[t − 1]`).
    /// [`ElementSink::begin_pair`]/[`ElementSink::begin_quad`] place each
    /// past the preceding rows' escapes (counted from the codes, which
    /// the decoder holds before reconstructing);
    /// [`ElementSink::flush_pair`]/[`ElementSink::flush_quad`] fold the
    /// last back into `next_unpred`.
    lag_unpred: [usize; 3],
    eb: f64,
    radius: i64,
    alphabet: u32,
}

impl<T: Scalar> DecodeSink<'_, T> {
    #[cold]
    fn emit_escape(&mut self, lin: usize, lane: usize) -> Result<f64, SzError> {
        let cursor = if lane == 0 {
            *self.next_unpred
        } else {
            self.lag_unpred[lane - 1]
        };
        if cursor >= self.unpred.len() {
            return Err(SzError::Format("more escapes than stored values"));
        }
        let v = self.unpred[cursor];
        if lane == 0 {
            *self.next_unpred = cursor + 1;
        } else {
            self.lag_unpred[lane - 1] = cursor + 1;
        }
        self.out[lin] = v;
        Ok(v.to_f64())
    }

    #[inline(always)]
    fn emit_at(&mut self, lin: usize, pred: f64, lane: usize) -> Result<f64, SzError> {
        let code = self.codes[lin - self.base];
        if code != ESCAPE {
            if code >= self.alphabet {
                return Err(SzError::Format("quantization code out of range"));
            }
            let v = T::from_f64(pred + (code as i64 - self.radius) as f64 * 2.0 * self.eb);
            self.out[lin] = v;
            Ok(v.to_f64())
        } else {
            self.emit_escape(lin, lane)
        }
    }

    /// Escape count of the code span `start..start + len` (linear indices).
    fn span_escapes(&self, start: usize, len: usize) -> usize {
        self.codes[start - self.base..start - self.base + len]
            .iter()
            .filter(|&&c| c == ESCAPE)
            .count()
    }
}

impl<T: Scalar> ElementSink for DecodeSink<'_, T> {
    #[inline(always)]
    fn emit(&mut self, lin: usize, pred: f64) -> Result<f64, SzError> {
        self.emit_at(lin, pred, 0)
    }

    #[inline(always)]
    fn emit_lagged(&mut self, lin: usize, pred: f64) -> Result<f64, SzError> {
        self.emit_at(lin, pred, 1)
    }

    #[inline(always)]
    fn emit_lane(&mut self, lane: usize, lin: usize, pred: f64) -> Result<f64, SzError> {
        self.emit_at(lin, pred, lane)
    }

    #[inline]
    fn begin_pair(&mut self, a_start: usize, a_end: usize) {
        // Every escape the leading row will consume is already visible in
        // its codes, so the lagging row's first escape index is computable
        // up front — this is what makes decode-side pairing sound.
        let lead_escapes = self.span_escapes(a_start, a_end - a_start);
        self.lag_unpred[0] = *self.next_unpred + lead_escapes;
    }

    #[inline]
    fn flush_pair(&mut self) {
        *self.next_unpred = self.lag_unpred[0];
    }

    #[inline]
    fn begin_quad(&mut self, a_start: usize, row_len: usize) {
        // Same reasoning as `begin_pair`, one row deeper each lane: lane
        // t's escapes start after every escape of rows 0..t, all of which
        // are visible in the codes before reconstruction begins.
        let mut cursor = *self.next_unpred;
        for t in 0..3 {
            cursor += self.span_escapes(a_start + t * row_len, row_len);
            self.lag_unpred[t] = cursor;
        }
    }

    #[inline]
    fn flush_quad(&mut self) {
        *self.next_unpred = self.lag_unpred[2];
    }
}

/// Run the region-decomposed walk over the linear range `start..end`,
/// which must cover whole outer-dimension slices. `recon[..start]` must
/// already hold the reconstructions of every earlier sample. Interior
/// rows run in wavefront pairs (pairs never straddle the range ends, so
/// chunked decodes only lose pairing at chunk seams, never correctness).
fn drive_range<S: ElementSink>(
    shape: Shape,
    model: PredictorModel,
    start: usize,
    end: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    if start >= end {
        return Ok(());
    }
    let kind = match model {
        PredictorModel::Lorenzo1 => PredictorKind::Lorenzo1,
        PredictorModel::Lorenzo2 => PredictorKind::Lorenzo2,
        // Coefficient and spline models take the shared per-element driver:
        // no specialized wavefront loops, but the same predict function and
        // the same emit as the reference walk, so fused and reference
        // containers are bit-identical by construction.
        PredictorModel::Regression(_) | PredictorModel::Spline => {
            return drive_generic(shape, &model, start, end, recon, sink);
        }
    };
    // One dispatch-level sample per range: the quad wavefront (and its
    // AVX2 prediction body) engages at SSE2 and above; `Off` keeps the
    // pair schedule, which is the mandatory no-`unsafe` fallback. Every
    // level produces byte-identical containers (see the module docs), so
    // the sample point is a pure performance choice.
    let level = simd::active();
    match shape {
        Shape::D1(_) => drive_1d(shape, kind, start, end, recon, sink),
        Shape::D2(_, cols) => walk_2d(kind, cols, start, end, recon, sink, level),
        Shape::D3(_, d1, d2) => walk_3d(shape, kind, d1, d2, start, end, recon, sink, level),
    }
}

/// Per-element driver for predictors without specialized region loops:
/// exactly the reference walk's predict → emit → write-back sequence.
fn drive_generic<S: ElementSink>(
    shape: Shape,
    model: &PredictorModel,
    start: usize,
    end: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    for lin in start..end {
        let pred = model.predict(recon, shape, lin);
        recon[lin] = sink.emit(lin, pred)?;
    }
    Ok(())
}

/// Boundary element: reference stencil on the full reconstruction prefix.
#[inline]
fn boundary<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    lin: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let pred = predict_with(kind, recon, shape, lin);
    recon[lin] = sink.emit(lin, pred)?;
    Ok(())
}

/// [`boundary`] for an element of the lagging row of a wavefront pair.
#[inline]
fn boundary_lagged<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    lin: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let pred = predict_with(kind, recon, shape, lin);
    recon[lin] = sink.emit_lagged(lin, pred)?;
    Ok(())
}

fn drive_1d<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    start: usize,
    end: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let mut lin = start;
    match kind {
        PredictorKind::Lorenzo1 => {
            if lin == 0 {
                let r = sink.emit(0, 0.0)?;
                recon[0] = r;
                lin = 1;
            }
            if lin < end {
                let mut prev = recon[lin - 1];
                for (slot, l) in recon[lin..end].iter_mut().zip(lin..end) {
                    let r = sink.emit(l, prev)?;
                    *slot = r;
                    prev = r;
                }
            }
        }
        PredictorKind::Lorenzo2 => {
            while lin < end && lin < 2 {
                boundary(shape, kind, lin, recon, sink)?;
                lin += 1;
            }
            if lin < end {
                let mut p1 = recon[lin - 1];
                let mut p2 = recon[lin - 2];
                for (slot, l) in recon[lin..end].iter_mut().zip(lin..end) {
                    let pred = 2.0 * p1 - p2;
                    let r = sink.emit(l, pred)?;
                    *slot = r;
                    p2 = p1;
                    p1 = r;
                }
            }
        }
        _ => unreachable!("only Lorenzo kinds reach the specialized loops"),
    }
    Ok(())
}

/// First grid row: degenerate 1-D Lorenzo (left neighbour only) for both
/// stencils — Lorenzo² with `i < 2` falls back to the first-order form.
fn first_row<S: ElementSink>(
    cols: usize,
    end_col: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let r = sink.emit(0, 0.0)?;
    recon[0] = r;
    let mut left = r;
    for j in 1..end_col.min(cols) {
        let r = sink.emit(j, left)?;
        recon[j] = r;
        left = r;
    }
    Ok(())
}

/// A row `i ≥ 1` through the first-order three-point stencil
/// `r[i,j−1] + r[i−1,j] − r[i−1,j−1]` (also the Lorenzo² fallback row).
fn l1_row<S: ElementSink>(
    cols: usize,
    row: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let (head, tail) = recon.split_at_mut(row);
    let up = &head[row - cols..];
    let cur = &mut tail[..cols];
    // j = 0: stencil degrades to the above neighbour.
    let r = sink.emit(row, up[0])?;
    cur[0] = r;
    let mut left = r;
    for j in 1..cols {
        let pred = left + up[j] - up[j - 1];
        let r = sink.emit(row + j, pred)?;
        cur[j] = r;
        left = r;
    }
    Ok(())
}

/// The constant-folded two-layer 8-point 2-D Lorenzo² stencil, with
/// `up1`/`up2` the linear offsets of rows `i−1` and `i−2`. The
/// `pred += c·r` sequence mirrors the reference accumulation with its
/// weights constant-folded (the sign·C(2,a)·C(2,b) products are exact
/// small integers); both the sequential row and the wavefront pair call
/// this one helper so their arithmetic cannot drift apart.
#[inline(always)]
fn l2_stencil_2d(recon: &[f64], l1: f64, l2: f64, up1: usize, up2: usize, j: usize) -> f64 {
    let mut pred = 0.0;
    pred += 2.0 * l1; //                       (a,b) = (0,1)
    pred += -1.0 * l2; //                              (0,2)
    pred += 2.0 * recon[up1 + j]; //                   (1,0)
    pred += -4.0 * recon[up1 + j - 1]; //              (1,1)
    pred += 2.0 * recon[up1 + j - 2]; //               (1,2)
    pred += -1.0 * recon[up2 + j]; //                  (2,0)
    pred += 2.0 * recon[up2 + j - 1]; //               (2,1)
    pred += -1.0 * recon[up2 + j - 2]; //              (2,2)
    pred
}

/// A row `i ≥ 2` through the two-layer stencil (`j < 2` falls back to the
/// first-order form, exactly like the reference predictor).
fn l2_row<S: ElementSink>(
    cols: usize,
    row: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let up1 = row - cols;
    let up2 = row - 2 * cols;
    let r = sink.emit(row, recon[up1])?;
    recon[row] = r;
    let mut l1 = r;
    if cols >= 2 {
        let pred = l1 + recon[up1 + 1] - recon[up1];
        let r = sink.emit(row + 1, pred)?;
        recon[row + 1] = r;
        let mut l2 = l1;
        l1 = r;
        for j in 2..cols {
            let pred = l2_stencil_2d(recon, l1, l2, up1, up2, j);
            let r = sink.emit(row + j, pred)?;
            recon[row + j] = r;
            l2 = l1;
            l1 = r;
        }
    }
    Ok(())
}


/// The first-order 3-D seven-point stencil: the reference's
/// inclusion–exclusion chain `t1+t2+t3−t4−t5−t6+t7`, left-associated.
/// `rjm1`/`pj`/`pjm1` are the linear offsets of rows (i, j−1, ·),
/// (i−1, j, ·) and (i−1, j−1, ·). Shared by the sequential row and the
/// wavefront pair so their arithmetic cannot drift apart.
#[inline(always)]
fn l1_stencil_3d(recon: &[f64], left: f64, rjm1: usize, pj: usize, pjm1: usize, k: usize) -> f64 {
    left + recon[rjm1 + k] + recon[pj + k]
        - recon[rjm1 + k - 1]
        - recon[pj + k - 1]
        - recon[pjm1 + k]
        + recon[pjm1 + k - 1]
}

/// [`l1_stencil_3d`] with unchecked loads — operand order and
/// associativity identical, so the result bits are identical.
///
/// # Safety
/// `off + k` and `off + k − 1` must be in bounds for all three row
/// offsets. The quad drivers establish this with one hoisted assertion
/// (`last_row + row_len ≤ recon.len()`) at quad entry; every stencil
/// read sits below that bound.
#[inline(always)]
unsafe fn l1_stencil_3d_unchecked(
    recon: &[f64],
    left: f64,
    rjm1: usize,
    pj: usize,
    pjm1: usize,
    k: usize,
) -> f64 {
    unsafe {
        left + *recon.get_unchecked(rjm1 + k) + *recon.get_unchecked(pj + k)
            - *recon.get_unchecked(rjm1 + k - 1)
            - *recon.get_unchecked(pj + k - 1)
            - *recon.get_unchecked(pjm1 + k)
            + *recon.get_unchecked(pjm1 + k - 1)
    }
}

/// The 26-point two-layer 3-D Lorenzo² stencil, weights constant-folded,
/// accumulation order identical to the reference's (a, b, c) loop nest.
/// `r{a}{b}` are the linear offsets of rows (i−a, j−b, ·).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn l2_stencil_3d(
    recon: &[f64],
    l1: f64,
    l2: f64,
    r01: usize,
    r02: usize,
    r10: usize,
    r11: usize,
    r12: usize,
    r20: usize,
    r21: usize,
    r22: usize,
    k: usize,
) -> f64 {
    let mut pred = 0.0;
    pred += 2.0 * l1; //                    (a,b,c) = (0,0,1)
    pred += -1.0 * l2; //                             (0,0,2)
    pred += 2.0 * recon[r01 + k]; //                  (0,1,0)
    pred += -4.0 * recon[r01 + k - 1]; //             (0,1,1)
    pred += 2.0 * recon[r01 + k - 2]; //              (0,1,2)
    pred += -1.0 * recon[r02 + k]; //                 (0,2,0)
    pred += 2.0 * recon[r02 + k - 1]; //              (0,2,1)
    pred += -1.0 * recon[r02 + k - 2]; //             (0,2,2)
    pred += 2.0 * recon[r10 + k]; //                  (1,0,0)
    pred += -4.0 * recon[r10 + k - 1]; //             (1,0,1)
    pred += 2.0 * recon[r10 + k - 2]; //              (1,0,2)
    pred += -4.0 * recon[r11 + k]; //                 (1,1,0)
    pred += 8.0 * recon[r11 + k - 1]; //              (1,1,1)
    pred += -4.0 * recon[r11 + k - 2]; //             (1,1,2)
    pred += 2.0 * recon[r12 + k]; //                  (1,2,0)
    pred += -4.0 * recon[r12 + k - 1]; //             (1,2,1)
    pred += 2.0 * recon[r12 + k - 2]; //              (1,2,2)
    pred += -1.0 * recon[r20 + k]; //                 (2,0,0)
    pred += 2.0 * recon[r20 + k - 1]; //              (2,0,1)
    pred += -1.0 * recon[r20 + k - 2]; //             (2,0,2)
    pred += 2.0 * recon[r21 + k]; //                  (2,1,0)
    pred += -4.0 * recon[r21 + k - 1]; //             (2,1,1)
    pred += 2.0 * recon[r21 + k - 2]; //              (2,1,2)
    pred += -1.0 * recon[r22 + k]; //                 (2,2,0)
    pred += 2.0 * recon[r22 + k - 1]; //              (2,2,1)
    pred += -1.0 * recon[r22 + k - 2]; //             (2,2,2)
    pred
}

/// Plane-interior row `j ≥ 1` of a plane `i ≥ 1` through the first-order
/// stencil; `k = 0` is a boundary element (left neighbours vanish).
fn l1_3d_row<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    d2: usize,
    p: usize,
    row: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    boundary(shape, kind, row, recon, sink)?;
    let rjm1 = row - d2; //       (i, j−1, ·)
    let pj = row - p; //          (i−1, j, ·)
    let pjm1 = row - p - d2; //   (i−1, j−1, ·)
    let mut left = recon[row];
    for k in 1..d2 {
        let pred = l1_stencil_3d(recon, left, rjm1, pj, pjm1, k);
        let r = sink.emit(row + k, pred)?;
        recon[row + k] = r;
        left = r;
    }
    Ok(())
}

/// Plane-interior row `j ≥ 2` of a plane `i ≥ 2` through the two-layer
/// stencil; `k < 2` falls back to the reference per element.
fn l2_3d_row<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    d2: usize,
    p: usize,
    row: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    for lin in row..row + d2.min(2) {
        boundary(shape, kind, lin, recon, sink)?;
    }
    if d2 < 3 {
        return Ok(());
    }
    let (r01, r02) = (row - d2, row - 2 * d2);
    let (r10, r11, r12) = (row - p, row - p - d2, row - p - 2 * d2);
    let (r20, r21, r22) = (row - 2 * p, row - 2 * p - d2, row - 2 * p - 2 * d2);
    let mut l1 = recon[row + 1];
    let mut l2 = recon[row];
    for k in 2..d2 {
        let pred = l2_stencil_3d(recon, l1, l2, r01, r02, r10, r11, r12, r20, r21, r22, k);
        let r = sink.emit(row + k, pred)?;
        recon[row + k] = r;
        l2 = l1;
        l1 = r;
    }
    Ok(())
}


// ---------------------------------------------------------------------
// Wavefront row pairs (both walks).
//
// The reconstruction chain `r → pred → r` is serial within a row, so the
// straight walk is bound by one long floating-point dependency chain. A
// row `i+1` element only needs row `i` up to the same column, so two
// adjacent rows can advance together with the second trailing by one
// column: two independent chains fill the pipeline and nearly double
// throughput. Every element still sees the exact same stencil expression
// (the shared `*_stencil_*` helpers) and the same finalized `recon`
// inputs, so per-element results are bit-identical to the sequential
// schedule. The only order-sensitive state — the escape stream — is
// handled through the sink's pair hooks: each pair opens with
// `begin_pair` over the leading row's range (the decode sink counts the
// ESCAPE codes there to place its lagging cursor) and closes with
// `flush_pair` (the walk sink appends its deferred escape values, the
// decode sink folds the lagging cursor forward). See the module docs.
// ---------------------------------------------------------------------

/// First-order rows `a = rowa/cols ≥ 1` and `a+1` as a wavefront pair.
/// Requires `cols ≥ 2`.
fn l1_pair<S: ElementSink>(
    cols: usize,
    rowa: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let rowb = rowa + cols;
    let a_up = rowa - cols;
    // The lagging row's "row above" is the leading row itself.
    let b_up = rowa;
    sink.begin_pair(rowa, rowb);
    // A col 0 (above neighbour only), A col 1, then B col 0.
    let r = sink.emit(rowa, recon[a_up])?;
    recon[rowa] = r;
    let mut la = r;
    let pred = la + recon[a_up + 1] - recon[a_up];
    let r = sink.emit(rowa + 1, pred)?;
    recon[rowa + 1] = r;
    la = r;
    let rb = sink.emit_lagged(rowb, recon[b_up])?;
    recon[rowb] = rb;
    let mut lb = rb;
    for j in 2..cols {
        let pa = la + recon[a_up + j] - recon[a_up + j - 1];
        let ra = sink.emit(rowa + j, pa)?;
        recon[rowa + j] = ra;
        la = ra;
        let pb = lb + recon[b_up + j - 1] - recon[b_up + j - 2];
        let rb = sink.emit_lagged(rowb + j - 1, pb)?;
        recon[rowb + j - 1] = rb;
        lb = rb;
    }
    let pb = lb + recon[b_up + cols - 1] - recon[b_up + cols - 2];
    let rb = sink.emit_lagged(rowb + cols - 1, pb)?;
    recon[rowb + cols - 1] = rb;
    sink.flush_pair();
    Ok(())
}

/// Two-layer rows `a = rowa/cols ≥ 2` and `a+1` as a wavefront pair.
/// Requires `cols ≥ 3`.
fn l2_pair<S: ElementSink>(
    cols: usize,
    rowa: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let rowb = rowa + cols;
    let (a_up1, a_up2) = (rowa - cols, rowa - 2 * cols);
    let (b_up1, b_up2) = (rowa, rowa - cols);
    sink.begin_pair(rowa, rowb);
    // A cols 0–1: first-order fallback, exactly as in `l2_row`.
    let r = sink.emit(rowa, recon[a_up1])?;
    recon[rowa] = r;
    let mut la1 = r;
    let pred = la1 + recon[a_up1 + 1] - recon[a_up1];
    let r = sink.emit(rowa + 1, pred)?;
    recon[rowa + 1] = r;
    let mut la2 = la1;
    la1 = r;
    // B col 0.
    let rb = sink.emit_lagged(rowb, recon[b_up1])?;
    recon[rowb] = rb;
    let mut lb1 = rb;
    // A col 2 (first full stencil), then B col 1 (first-order fallback).
    let pa = l2_stencil_2d(recon, la1, la2, a_up1, a_up2, 2);
    let ra = sink.emit(rowa + 2, pa)?;
    recon[rowa + 2] = ra;
    la2 = la1;
    la1 = ra;
    let pb = lb1 + recon[b_up1 + 1] - recon[b_up1];
    let rb = sink.emit_lagged(rowb + 1, pb)?;
    recon[rowb + 1] = rb;
    let mut lb2 = lb1;
    lb1 = rb;
    for j in 3..cols {
        let pa = l2_stencil_2d(recon, la1, la2, a_up1, a_up2, j);
        let ra = sink.emit(rowa + j, pa)?;
        recon[rowa + j] = ra;
        la2 = la1;
        la1 = ra;
        let pb = l2_stencil_2d(recon, lb1, lb2, b_up1, b_up2, j - 1);
        let rb = sink.emit_lagged(rowb + j - 1, pb)?;
        recon[rowb + j - 1] = rb;
        lb2 = lb1;
        lb1 = rb;
    }
    let pb = l2_stencil_2d(recon, lb1, lb2, b_up1, b_up2, cols - 1);
    let rb = sink.emit_lagged(rowb + cols - 1, pb)?;
    recon[rowb + cols - 1] = rb;
    sink.flush_pair();
    Ok(())
}

/// First-order plane rows `j ≥ 1` and `j+1` (plane `i ≥ 1`) as a
/// wavefront pair. Requires `d2 ≥ 2`.
fn l1_3d_pair<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    d2: usize,
    p: usize,
    rowa: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let rowb = rowa + d2;
    let (a_rjm1, a_pj, a_pjm1) = (rowa - d2, rowa - p, rowa - p - d2);
    // The lagging row's (i, j−1, ·) row is the leading row itself.
    let (b_rjm1, b_pj, b_pjm1) = (rowa, rowb - p, rowa - p);
    sink.begin_pair(rowa, rowb);
    boundary(shape, kind, rowa, recon, sink)?;
    let mut la = recon[rowa];
    let pred = l1_stencil_3d(recon, la, a_rjm1, a_pj, a_pjm1, 1);
    let r = sink.emit(rowa + 1, pred)?;
    recon[rowa + 1] = r;
    la = r;
    boundary_lagged(shape, kind, rowb, recon, sink)?;
    let mut lb = recon[rowb];
    for k in 2..d2 {
        let pa = l1_stencil_3d(recon, la, a_rjm1, a_pj, a_pjm1, k);
        let ra = sink.emit(rowa + k, pa)?;
        recon[rowa + k] = ra;
        la = ra;
        let pb = l1_stencil_3d(recon, lb, b_rjm1, b_pj, b_pjm1, k - 1);
        let rb = sink.emit_lagged(rowb + k - 1, pb)?;
        recon[rowb + k - 1] = rb;
        lb = rb;
    }
    let pb = l1_stencil_3d(recon, lb, b_rjm1, b_pj, b_pjm1, d2 - 1);
    let rb = sink.emit_lagged(rowb + d2 - 1, pb)?;
    recon[rowb + d2 - 1] = rb;
    sink.flush_pair();
    Ok(())
}

/// Two-layer plane rows `j ≥ 2` and `j+1` (plane `i ≥ 2`) as a wavefront
/// pair. Requires `d2 ≥ 3`.
fn l2_3d_pair<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    d2: usize,
    p: usize,
    rowa: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let rowb = rowa + d2;
    let (a01, a02) = (rowa - d2, rowa - 2 * d2);
    let (a10, a11, a12) = (rowa - p, rowa - p - d2, rowa - p - 2 * d2);
    let (a20, a21, a22) = (rowa - 2 * p, rowa - 2 * p - d2, rowa - 2 * p - 2 * d2);
    // Lagging row: its (i, j−1, ·)/(i, j−2, ·) rows are the leading row
    // and the one before it.
    let (b01, b02) = (rowa, rowa - d2);
    let (b10, b11, b12) = (rowb - p, rowa - p, rowa - p - d2);
    let (b20, b21, b22) = (rowb - 2 * p, rowa - 2 * p, rowa - 2 * p - d2);
    sink.begin_pair(rowa, rowb);
    // A cols 0–1: reference fallback, then A col 2 (first full stencil).
    boundary(shape, kind, rowa, recon, sink)?;
    boundary(shape, kind, rowa + 1, recon, sink)?;
    let mut la1 = recon[rowa + 1];
    let mut la2 = recon[rowa];
    let pa = l2_stencil_3d(recon, la1, la2, a01, a02, a10, a11, a12, a20, a21, a22, 2);
    let ra = sink.emit(rowa + 2, pa)?;
    recon[rowa + 2] = ra;
    la2 = la1;
    la1 = ra;
    // B cols 0–1: reference fallback.
    boundary_lagged(shape, kind, rowb, recon, sink)?;
    boundary_lagged(shape, kind, rowb + 1, recon, sink)?;
    let mut lb1 = recon[rowb + 1];
    let mut lb2 = recon[rowb];
    for k in 3..d2 {
        let pa = l2_stencil_3d(recon, la1, la2, a01, a02, a10, a11, a12, a20, a21, a22, k);
        let ra = sink.emit(rowa + k, pa)?;
        recon[rowa + k] = ra;
        la2 = la1;
        la1 = ra;
        let pb = l2_stencil_3d(recon, lb1, lb2, b01, b02, b10, b11, b12, b20, b21, b22, k - 1);
        let rb = sink.emit_lagged(rowb + k - 1, pb)?;
        recon[rowb + k - 1] = rb;
        lb2 = lb1;
        lb1 = rb;
    }
    let pb = l2_stencil_3d(recon, lb1, lb2, b01, b02, b10, b11, b12, b20, b21, b22, d2 - 1);
    let rb = sink.emit_lagged(rowb + d2 - 1, pb)?;
    recon[rowb + d2 - 1] = rb;
    sink.flush_pair();
    Ok(())
}

// ---------------------------------------------------------------------
// Wavefront row quads (SIMD dispatch levels ≥ SSE2).
//
// The pair schedule leaves the pipeline half-empty on wide rows: two
// serial reconstruction chains cover only part of the FP latency. The
// quad generalizes it to four adjacent rows, lane t trailing the leader
// by t columns — the same anti-diagonal independence argument applies,
// so per-element values stay bit-identical to the sequential order, and
// escape routing generalizes from one deferred buffer / lagging cursor
// to three (`emit_lane`, `begin_quad`, `flush_quad`). In the steady
// state the four lane predictions are mutually independent (lane t at
// column k−t never reads anything emitted this step), which is what the
// AVX2 body exploits: the four scalar stencil chains become one 4-lane
// `__m256d` chain of the exact same left-associated IEEE adds, so each
// lane's bits are the scalar bits. At `SimdLevel::Sse2` the same quad
// schedule runs with the scalar four-chain body (the x86-64 SSE2
// baseline the compiler already targets); at `Off` the quad is skipped
// entirely and rows fall through to the pair/row loops — the mandatory
// no-`unsafe` fallback. Only the first-order stencils get quads: the
// 26-point Lorenzo² gather dominates its own chain, so the pair is
// already port-bound there.
// ---------------------------------------------------------------------

/// [`boundary`] for lane `lane` of a wavefront quad (lane 0 = leading).
#[inline]
fn boundary_lane<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    lane: usize,
    lin: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let pred = predict_with(kind, recon, shape, lin);
    recon[lin] = sink.emit_lane(lane, lin, pred)?;
    Ok(())
}

/// First-order rows `a = rowa/cols ≥ 1` through `a+3` as a wavefront
/// quad. Requires `cols ≥ 4`. The spine is deliberately spelled out in
/// per-lane scalars (`la`/`lb`/`lc`/`ld`), exactly like [`l1_pair`]: an
/// earlier array-of-lanes formulation forced the loop-carried left
/// values through the stack, inserting a store-to-load forward into
/// every lane's serial FP chain and erasing the schedule's gain.
fn l1_quad<S: ElementSink>(
    cols: usize,
    rowa: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let (rowb, rowc, rowd) = (rowa + cols, rowa + 2 * cols, rowa + 3 * cols);
    // Lane t's "row above" is lane t−1's row (the leader's is finalized).
    let a_up = rowa - cols;
    let (b_up, c_up, d_up) = (rowa, rowb, rowc);
    // Hoisted bounds check for the unchecked steady loop: every index it
    // touches — writes ≤ rowd + cols − 4, reads on rows at lower offsets
    // — is < rowd + cols. One test here replaces three per-element
    // bounds checks per lane. (This path is only reachable at dispatch
    // levels ≥ SSE2; the scalar fallback stays fully checked.)
    assert!(rowd + cols <= recon.len());
    sink.begin_quad(rowa, cols);
    // Lane preambles: lane t runs columns 0..4−t ahead of the steady
    // state (column 0 degrades to the above neighbour, as in `l1_row`).
    let r = sink.emit(rowa, recon[a_up])?;
    recon[rowa] = r;
    let mut la = r;
    for j in 1..4 {
        let pred = la + recon[a_up + j] - recon[a_up + j - 1];
        let r = sink.emit(rowa + j, pred)?;
        recon[rowa + j] = r;
        la = r;
    }
    let r = sink.emit_lane(1, rowb, recon[b_up])?;
    recon[rowb] = r;
    let mut lb = r;
    for j in 1..3 {
        let pred = lb + recon[b_up + j] - recon[b_up + j - 1];
        let r = sink.emit_lane(1, rowb + j, pred)?;
        recon[rowb + j] = r;
        lb = r;
    }
    let r = sink.emit_lane(2, rowc, recon[c_up])?;
    recon[rowc] = r;
    let mut lc = r;
    let pred = lc + recon[c_up + 1] - recon[c_up];
    let r = sink.emit_lane(2, rowc + 1, pred)?;
    recon[rowc + 1] = r;
    lc = r;
    let r = sink.emit_lane(3, rowd, recon[d_up])?;
    recon[rowd] = r;
    let mut ld = r;
    // Steady state: columns k, k−1, k−2, k−3 of rows A–D each step —
    // four independent reconstruction chains in flight.
    for k in 4..cols {
        // SAFETY: k < cols and every row offset here is ≤ rowd, so all
        // indices are < rowd + cols ≤ recon.len() (entry assertion).
        unsafe {
            let pa = la + *recon.get_unchecked(a_up + k) - *recon.get_unchecked(a_up + k - 1);
            let ra = sink.emit(rowa + k, pa)?;
            *recon.get_unchecked_mut(rowa + k) = ra;
            la = ra;
            let pb = lb + *recon.get_unchecked(b_up + k - 1) - *recon.get_unchecked(b_up + k - 2);
            let rb = sink.emit_lane(1, rowb + k - 1, pb)?;
            *recon.get_unchecked_mut(rowb + k - 1) = rb;
            lb = rb;
            let pc = lc + *recon.get_unchecked(c_up + k - 2) - *recon.get_unchecked(c_up + k - 3);
            let rc = sink.emit_lane(2, rowc + k - 2, pc)?;
            *recon.get_unchecked_mut(rowc + k - 2) = rc;
            lc = rc;
            let pd = ld + *recon.get_unchecked(d_up + k - 3) - *recon.get_unchecked(d_up + k - 4);
            let rd = sink.emit_lane(3, rowd + k - 3, pd)?;
            *recon.get_unchecked_mut(rowd + k - 3) = rd;
            ld = rd;
        }
    }
    // Lane tails: lane t still owes columns cols−t..cols; every input is
    // final by now, so ascending-lane order only serves escape routing.
    let pb = lb + recon[b_up + cols - 1] - recon[b_up + cols - 2];
    let rb = sink.emit_lane(1, rowb + cols - 1, pb)?;
    recon[rowb + cols - 1] = rb;
    for j in cols - 2..cols {
        let pred = lc + recon[c_up + j] - recon[c_up + j - 1];
        let r = sink.emit_lane(2, rowc + j, pred)?;
        recon[rowc + j] = r;
        lc = r;
    }
    for j in cols - 3..cols {
        let pred = ld + recon[d_up + j] - recon[d_up + j - 1];
        let r = sink.emit_lane(3, rowd + j, pred)?;
        recon[rowd + j] = r;
        ld = r;
    }
    sink.flush_quad();
    Ok(())
}

/// First-order plane rows `j ≥ 1` through `j+3` (plane `i ≥ 1`) as a
/// wavefront quad. Requires `d2 ≥ 4`. Spelled out in per-lane scalars
/// for the same store-forward reason as [`l1_quad`].
fn l1_3d_quad<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    d2: usize,
    p: usize,
    rowa: usize,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    let (rowb, rowc, rowd) = (rowa + d2, rowa + 2 * d2, rowa + 3 * d2);
    // Lane t's (i, j−1, ·) row is lane t−1's row; the plane-above rows
    // all sit in plane i−1, finalized long before the quad.
    let (a_rjm1, a_pj, a_pjm1) = (rowa - d2, rowa - p, rowa - p - d2);
    let (b_rjm1, b_pj, b_pjm1) = (rowa, rowb - p, rowa - p);
    let (c_rjm1, c_pj, c_pjm1) = (rowb, rowc - p, rowb - p);
    let (d_rjm1, d_pj, d_pjm1) = (rowc, rowd - p, rowc - p);
    // Hoisted bounds check for the unchecked steady loop: writes reach
    // at most rowd + d2 − 4, and every stencil read sits on a row offset
    // ≤ rowc (p ≥ d2 makes rowd − p ≤ rowc), so all indices are
    // < rowd + d2. One test here replaces seven per-element bounds
    // checks per lane. (Only reachable at dispatch levels ≥ SSE2; the
    // scalar fallback stays fully checked.)
    assert!(rowd + d2 <= recon.len());
    sink.begin_quad(rowa, d2);
    // Lane preambles: lane t runs columns 0..4−t ahead of the steady
    // state (column 0 is a boundary element on every row).
    boundary(shape, kind, rowa, recon, sink)?;
    let mut la = recon[rowa];
    for kt in 1..4 {
        let pred = l1_stencil_3d(recon, la, a_rjm1, a_pj, a_pjm1, kt);
        let r = sink.emit(rowa + kt, pred)?;
        recon[rowa + kt] = r;
        la = r;
    }
    boundary_lane(shape, kind, 1, rowb, recon, sink)?;
    let mut lb = recon[rowb];
    for kt in 1..3 {
        let pred = l1_stencil_3d(recon, lb, b_rjm1, b_pj, b_pjm1, kt);
        let r = sink.emit_lane(1, rowb + kt, pred)?;
        recon[rowb + kt] = r;
        lb = r;
    }
    boundary_lane(shape, kind, 2, rowc, recon, sink)?;
    let mut lc = recon[rowc];
    let pred = l1_stencil_3d(recon, lc, c_rjm1, c_pj, c_pjm1, 1);
    let r = sink.emit_lane(2, rowc + 1, pred)?;
    recon[rowc + 1] = r;
    lc = r;
    boundary_lane(shape, kind, 3, rowd, recon, sink)?;
    let mut ld = recon[rowd];
    // Steady state: columns k, k−1, k−2, k−3 of rows A–D each step.
    for k in 4..d2 {
        // SAFETY: k < d2 and every index is < rowd + d2 ≤ recon.len()
        // (entry assertion; see the bounds note above).
        unsafe {
            let pa = l1_stencil_3d_unchecked(recon, la, a_rjm1, a_pj, a_pjm1, k);
            let ra = sink.emit(rowa + k, pa)?;
            *recon.get_unchecked_mut(rowa + k) = ra;
            la = ra;
            let pb = l1_stencil_3d_unchecked(recon, lb, b_rjm1, b_pj, b_pjm1, k - 1);
            let rb = sink.emit_lane(1, rowb + k - 1, pb)?;
            *recon.get_unchecked_mut(rowb + k - 1) = rb;
            lb = rb;
            let pc = l1_stencil_3d_unchecked(recon, lc, c_rjm1, c_pj, c_pjm1, k - 2);
            let rc = sink.emit_lane(2, rowc + k - 2, pc)?;
            *recon.get_unchecked_mut(rowc + k - 2) = rc;
            lc = rc;
            let pd = l1_stencil_3d_unchecked(recon, ld, d_rjm1, d_pj, d_pjm1, k - 3);
            let rd = sink.emit_lane(3, rowd + k - 3, pd)?;
            *recon.get_unchecked_mut(rowd + k - 3) = rd;
            ld = rd;
        }
    }
    // Lane tails: lane t still owes columns d2−t..d2.
    let pb = l1_stencil_3d(recon, lb, b_rjm1, b_pj, b_pjm1, d2 - 1);
    let rb = sink.emit_lane(1, rowb + d2 - 1, pb)?;
    recon[rowb + d2 - 1] = rb;
    for kt in d2 - 2..d2 {
        let pred = l1_stencil_3d(recon, lc, c_rjm1, c_pj, c_pjm1, kt);
        let r = sink.emit_lane(2, rowc + kt, pred)?;
        recon[rowc + kt] = r;
        lc = r;
    }
    for kt in d2 - 3..d2 {
        let pred = l1_stencil_3d(recon, ld, d_rjm1, d_pj, d_pjm1, kt);
        let r = sink.emit_lane(3, rowd + kt, pred)?;
        recon[rowd + kt] = r;
        ld = r;
    }
    sink.flush_quad();
    Ok(())
}

/// Region-decomposed walk over a whole field — [`drive_range`] over the
/// full linear range, wavefront pairing included.
fn drive_walk<S: ElementSink>(
    shape: Shape,
    model: PredictorModel,
    recon: &mut [f64],
    sink: &mut S,
) -> Result<(), SzError> {
    drive_range(shape, model, 0, shape.len(), recon, sink)
}

/// 2-D rows `start/cols .. end/cols`, interior rows in wavefront quads
/// (dispatch level permitting) then pairs.
fn walk_2d<S: ElementSink>(
    kind: PredictorKind,
    cols: usize,
    start: usize,
    end: usize,
    recon: &mut [f64],
    sink: &mut S,
    level: SimdLevel,
) -> Result<(), SzError> {
    let (r0, r1) = (start / cols, end / cols);
    let mut i = r0;
    match kind {
        PredictorKind::Lorenzo1 => {
            if i == 0 && i < r1 {
                first_row(cols, cols, recon, sink)?;
                i = 1;
            }
            if cols >= 4 && level >= SimdLevel::Sse2 {
                while i + 3 < r1 {
                    l1_quad(cols, i * cols, recon, sink)?;
                    i += 4;
                }
            }
            if cols >= 2 {
                while i + 1 < r1 {
                    l1_pair(cols, i * cols, recon, sink)?;
                    i += 2;
                }
            }
            while i < r1 {
                l1_row(cols, i * cols, recon, sink)?;
                i += 1;
            }
        }
        PredictorKind::Lorenzo2 => {
            if i == 0 && i < r1 {
                first_row(cols, cols, recon, sink)?;
                i = 1;
            }
            if i == 1 && i < r1 {
                l1_row(cols, cols, recon, sink)?;
                i = 2;
            }
            if cols >= 3 {
                while i + 1 < r1 {
                    l2_pair(cols, i * cols, recon, sink)?;
                    i += 2;
                }
            }
            while i < r1 {
                l2_row(cols, i * cols, recon, sink)?;
                i += 1;
            }
        }
        _ => unreachable!("only Lorenzo kinds reach the specialized loops"),
    }
    Ok(())
}

/// 3-D planes `start/(d1·d2) .. end/(d1·d2)`, plane-interior rows in
/// wavefront quads (dispatch level permitting) then pairs (neither ever
/// crosses a plane, so any whole-plane range is safe).
fn walk_3d<S: ElementSink>(
    shape: Shape,
    kind: PredictorKind,
    d1: usize,
    d2: usize,
    start: usize,
    end: usize,
    recon: &mut [f64],
    sink: &mut S,
    level: SimdLevel,
) -> Result<(), SzError> {
    let p = d1 * d2;
    let (p0, p1) = (start / p, end / p);
    for i in p0..p1 {
        let base = i * p;
        let boundary_plane = match kind {
            PredictorKind::Lorenzo1 => i < 1,
            PredictorKind::Lorenzo2 => i < 2,
            _ => unreachable!("only Lorenzo kinds reach the specialized loops"),
        };
        if boundary_plane {
            for lin in base..base + p {
                boundary(shape, kind, lin, recon, sink)?;
            }
            continue;
        }
        match kind {
            PredictorKind::Lorenzo1 => {
                for lin in base..base + d2 {
                    boundary(shape, kind, lin, recon, sink)?;
                }
                let mut j = 1;
                if d2 >= 4 && level >= SimdLevel::Sse2 {
                    while j + 3 < d1 {
                        l1_3d_quad(shape, kind, d2, p, base + j * d2, recon, sink)?;
                        j += 4;
                    }
                }
                if d2 >= 2 {
                    while j + 1 < d1 {
                        l1_3d_pair(shape, kind, d2, p, base + j * d2, recon, sink)?;
                        j += 2;
                    }
                }
                while j < d1 {
                    l1_3d_row(shape, kind, d2, p, base + j * d2, recon, sink)?;
                    j += 1;
                }
            }
            PredictorKind::Lorenzo2 => {
                for lin in base..base + (2 * d2).min(p) {
                    boundary(shape, kind, lin, recon, sink)?;
                }
                let mut j = 2;
                if d2 >= 3 {
                    while j + 1 < d1 {
                        l2_3d_pair(shape, kind, d2, p, base + j * d2, recon, sink)?;
                        j += 2;
                    }
                }
                while j < d1 {
                    l2_3d_row(shape, kind, d2, p, base + j * d2, recon, sink)?;
                    j += 1;
                }
            }
            _ => unreachable!("only Lorenzo kinds reach the specialized loops"),
        }
    }
    Ok(())
}

/// Obs span name for a fused walk, by predictor and rank.
fn walk_span(model: PredictorModel, shape: Shape) -> &'static str {
    match (model, shape) {
        (PredictorModel::Lorenzo1, Shape::D1(_)) => "sz.kernel.walk.l1.1d",
        (PredictorModel::Lorenzo1, Shape::D2(..)) => "sz.kernel.walk.l1.2d",
        (PredictorModel::Lorenzo1, Shape::D3(..)) => "sz.kernel.walk.l1.3d",
        (PredictorModel::Lorenzo2, Shape::D1(_)) => "sz.kernel.walk.l2.1d",
        (PredictorModel::Lorenzo2, Shape::D2(..)) => "sz.kernel.walk.l2.2d",
        (PredictorModel::Lorenzo2, Shape::D3(..)) => "sz.kernel.walk.l2.3d",
        (PredictorModel::Regression(_), _) => "sz.kernel.walk.reg",
        (PredictorModel::Spline, _) => "sz.kernel.walk.spline",
    }
}

/// Fused prediction + quantization walk over a whole field or block.
///
/// Byte-for-byte equivalent to [`walk_reference`]; `recon` is caller-owned
/// scratch (resized to `data.len()`) holding the reconstruction the
/// decoder will reproduce.
///
/// # Panics
/// Debug-asserts that `data` matches `shape`.
#[allow(clippy::too_many_arguments)]
pub fn walk_fused<T: Scalar>(
    data: &[T],
    shape: Shape,
    eb: f64,
    bins: usize,
    pred: PredictorModel,
    escape: EscapeCoding,
    recon: &mut Vec<f64>,
) -> WalkResult<T> {
    debug_assert_eq!(data.len(), shape.len());
    let _span = fpsnr_obs::span(walk_span(pred, shape));
    let n = data.len();
    let quant = LinearQuantizer::new(eb, bins);
    recon.clear();
    recon.resize(n, 0.0);
    let mut codes = vec![ESCAPE; n];
    let mut unpred = Vec::with_capacity(n / 64 + 4);
    let mut sink = WalkSink {
        data,
        codes: &mut codes,
        unpred: &mut unpred,
        eb,
        inv_bin: quant.inv_bin_width(),
        qmax: (quant.center() - 1) as u64,
        radius: quant.center() as i64,
        escape,
        deferred: [Vec::new(), Vec::new(), Vec::new()],
    };
    drive_walk(shape, pred, recon, &mut sink).expect("walk sink is infallible");
    debug_assert!(
        sink.deferred.iter().all(Vec::is_empty),
        "every wavefront pair/quad must flush its deferred escapes"
    );
    WalkResult { codes, unpred }
}

/// The per-element reference walk (correctness oracle for the kernels).
#[allow(clippy::too_many_arguments)]
pub fn walk_reference<T: Scalar>(
    data: &[T],
    shape: Shape,
    eb: f64,
    bins: usize,
    pred: PredictorModel,
    escape: EscapeCoding,
    recon: &mut Vec<f64>,
) -> WalkResult<T> {
    let out = quantized_walk_on(
        data,
        shape,
        eb,
        bins,
        pred,
        escape,
        false,
        recon,
        KernelMode::Reference,
    );
    WalkResult {
        codes: out.codes,
        unpred: out.unpred,
    }
}

/// Streaming fused decode mirror: feed quantization codes in scan order
/// (whole outer-dimension slices at a time) and recover the samples.
///
/// Decoupling the reconstruction from entropy decoding lets the caller
/// interleave LUT Huffman decoding with reconstruction plane by plane,
/// instead of materializing the full code array first.
pub struct FusedDecoder<T: Scalar> {
    shape: Shape,
    model: PredictorModel,
    eb: f64,
    radius: i64,
    alphabet: u32,
    unpred: Vec<T>,
    next_unpred: usize,
    recon: Vec<f64>,
    out: Vec<T>,
    filled: usize,
}

impl<T: Scalar> FusedDecoder<T> {
    /// Start a decode for `shape` with the container's stored parameters
    /// and escape payload.
    ///
    /// # Panics
    /// Panics when `eb`/`bins` are invalid — decoders validate stored
    /// parameters before construction.
    pub fn new(shape: Shape, eb: f64, bins: usize, model: PredictorModel, unpred: Vec<T>) -> Self {
        let quant = LinearQuantizer::new(eb, bins);
        let n = shape.len();
        FusedDecoder {
            shape,
            model,
            eb,
            radius: quant.center() as i64,
            alphabet: quant.alphabet() as u32,
            unpred,
            next_unpred: 0,
            recon: vec![0.0; n],
            out: vec![T::default(); n],
            filled: 0,
        }
    }

    /// Samples per outer-dimension slice: chunks passed to
    /// [`FusedDecoder::push`] must hold a whole number of these.
    pub fn slice_len(&self) -> usize {
        match self.shape {
            Shape::D1(_) => 1,
            Shape::D2(_, cols) => cols,
            Shape::D3(_, d1, d2) => d1 * d2,
        }
    }

    /// Samples not yet decoded.
    pub fn remaining(&self) -> usize {
        self.shape.len() - self.filled
    }

    /// Decode the next chunk of quantization codes.
    ///
    /// # Errors
    /// [`SzError::Format`] on out-of-range codes, escape underrun, or a
    /// chunk that is not slice-aligned.
    pub fn push(&mut self, codes: &[u32]) -> Result<(), SzError> {
        let slice = self.slice_len();
        if codes.len() > self.remaining() || (slice > 0 && codes.len() % slice != 0) {
            return Err(SzError::Format("misaligned code chunk"));
        }
        let start = self.filled;
        let end = start + codes.len();
        let mut sink = DecodeSink {
            codes,
            base: start,
            out: &mut self.out,
            unpred: &self.unpred,
            next_unpred: &mut self.next_unpred,
            lag_unpred: [0; 3],
            eb: self.eb,
            radius: self.radius,
            alphabet: self.alphabet,
        };
        drive_range(self.shape, self.model, start, end, &mut self.recon, &mut sink)?;
        self.filled = end;
        Ok(())
    }

    /// Finish the decode, validating that every sample and every stored
    /// escape value was consumed.
    ///
    /// # Errors
    /// [`SzError::Format`] when samples are missing or escape values were
    /// left over.
    pub fn finish(self) -> Result<Vec<T>, SzError> {
        if self.filled != self.shape.len() {
            return Err(SzError::Format("decode ended before all samples"));
        }
        if self.next_unpred != self.unpred.len() {
            return Err(SzError::Format("unused escape values"));
        }
        Ok(self.out)
    }
}

/// One-shot fused reconstruction from a full code array.
///
/// # Errors
/// Same failure modes as [`FusedDecoder::push`]/[`FusedDecoder::finish`].
pub fn reconstruct_fused<T: Scalar>(
    codes: &[u32],
    unpred: Vec<T>,
    shape: Shape,
    eb: f64,
    bins: usize,
    model: PredictorModel,
) -> Result<Vec<T>, SzError> {
    if codes.len() != shape.len() {
        return Err(SzError::Format("code count does not match shape"));
    }
    let mut dec = FusedDecoder::new(shape, eb, bins, model, unpred);
    dec.push(codes)?;
    dec.finish()
}

/// The per-element reference decode mirror (oracle for [`FusedDecoder`]):
/// the exact loop the decompressor historically ran.
///
/// # Errors
/// [`SzError::Format`] on out-of-range codes or escape-count mismatches.
pub fn reconstruct_reference<T: Scalar>(
    codes: &[u32],
    unpred: &[T],
    shape: Shape,
    eb: f64,
    bins: usize,
    model: PredictorModel,
) -> Result<Vec<T>, SzError> {
    let n = shape.len();
    if codes.len() != n {
        return Err(SzError::Format("code count does not match shape"));
    }
    let quant = LinearQuantizer::new(eb, bins);
    let alphabet = quant.alphabet() as u32;
    let mut recon = vec![0.0f64; n];
    let mut out = vec![T::default(); n];
    let mut next_unpred = 0usize;
    for lin in 0..n {
        let code = codes[lin];
        if code == ESCAPE {
            if next_unpred >= unpred.len() {
                return Err(SzError::Format("more escapes than stored values"));
            }
            let v = unpred[next_unpred];
            next_unpred += 1;
            out[lin] = v;
            recon[lin] = v.to_f64();
        } else {
            if code >= alphabet {
                return Err(SzError::Format("quantization code out of range"));
            }
            let pred = model.predict(&recon, shape, lin);
            let v = T::from_f64(pred + quant.reconstruct(code));
            out[lin] = v;
            recon[lin] = v.to_f64();
        }
    }
    if next_unpred != unpred.len() {
        return Err(SzError::Format("unused escape values"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 0.01 * i as f64)
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn check_equivalence(shape: Shape, model: PredictorModel, eb: f64) {
        let data = ramp(shape.len());
        let mut ra = Vec::new();
        let mut rb = Vec::new();
        let fused = walk_fused(&data, shape, eb, 512, model, EscapeCoding::Exact, &mut ra);
        let refw = walk_reference(&data, shape, eb, 512, model, EscapeCoding::Exact, &mut rb);
        assert_eq!(fused.codes, refw.codes, "{shape:?} {model:?} codes");
        assert_eq!(
            bits(&fused.unpred),
            bits(&refw.unpred),
            "{shape:?} {model:?} unpred"
        );
        assert_eq!(bits(&ra), bits(&rb), "{shape:?} {model:?} recon");
        let dec_f =
            reconstruct_fused(&fused.codes, fused.unpred, shape, eb, 512, model).unwrap();
        let dec_r =
            reconstruct_reference(&refw.codes, &refw.unpred, shape, eb, 512, model).unwrap();
        assert_eq!(dec_f, dec_r, "{shape:?} {model:?} decode");
        for (a, b) in dec_f.iter().zip(&data) {
            assert!((a - b).abs() <= eb, "{shape:?} {model:?} bound");
        }
    }

    #[test]
    fn fused_matches_reference_across_shapes() {
        for kind in [
            PredictorModel::Lorenzo1,
            PredictorModel::Lorenzo2,
            PredictorModel::Spline,
            PredictorModel::Regression([0.5, 0.01, -0.02, 0.005]),
        ] {
            for shape in [
                Shape::D1(257),
                Shape::D2(17, 23),
                Shape::D3(7, 9, 11),
                Shape::D1(1),
                Shape::D2(1, 40),
                Shape::D2(40, 1),
                Shape::D3(1, 1, 64),
                Shape::D3(2, 2, 2),
                Shape::D3(64, 1, 1),
                Shape::D3(1, 8, 8),
                Shape::D3(8, 8, 1),
                Shape::D3(8, 1, 8),
            ] {
                check_equivalence(shape, kind, 1e-3);
                check_equivalence(shape, kind, 1e-9);
            }
        }
    }

    #[test]
    fn magic_round_matches_f64_round() {
        // The identity the walk relies on: trunc(x + copysign(MAGIC, x))
        // == x.round() for every finite x, compared here through the same
        // saturating i64 cast the kernel performs.
        let magic_round = |x: f64| (x + ROUND_MAGIC.copysign(x)) as i64;
        let mut cases = vec![
            0.0,
            -0.0,
            0.5,
            1.5,
            2.5,
            0.499_999_999_999_999_94,  // largest f64 below 0.5
            0.500_000_000_000_000_1,   // smallest f64 above 0.5
            1.499_999_999_999_999_8,   // largest f64 below 1.5
            f64::MIN_POSITIVE,
            1e-310,                    // subnormal scale
            4_503_599_627_370_495.5,   // 2^52 − 0.5: last half-integer
            2_251_799_813_685_248.5,   // 2^51 + 0.5
        ];
        // Dense sweep around every half-integer and integer in ±64.
        for i in -128i64..=128 {
            let h = i as f64 * 0.5;
            for ulps in -2i64..=2 {
                let v = f64::from_bits((h.to_bits() as i64 + ulps * h.signum() as i64) as u64);
                cases.push(v);
            }
        }
        // Deterministic pseudo-random magnitudes across the useful range.
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..20_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let mag = ((s >> 60) as i32) - 8; // 10^-8 ..= 10^7
            let frac = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            cases.push(frac * 10f64.powi(mag));
        }
        for &v in &cases {
            for x in [v, -v] {
                assert_eq!(
                    magic_round(x),
                    x.round() as i64,
                    "magic round diverged at {x:e} ({:#x})",
                    x.to_bits()
                );
            }
        }
        // Non-finite inputs saturate (∞) or zero (NaN); the walk's later
        // gates turn both into escapes.
        assert_eq!(magic_round(f64::INFINITY), i64::MAX);
        assert_eq!(magic_round(f64::NEG_INFINITY), i64::MIN);
        assert_eq!(magic_round(f64::NAN), 0);
    }

    #[test]
    fn quad_levels_bit_identical() {
        // Sweep every dispatch level over shapes that exercise the quad
        // steady state, its preamble/tail, and the pair/row remainders —
        // with non-finite samples scattered across quad lanes so the
        // per-lane deferred-escape routing is exercised too. `Off` is the
        // baseline; every other level must reproduce its exact bytes.
        let shapes = [
            Shape::D2(11, 37),
            Shape::D2(9, 4),
            Shape::D3(3, 9, 23),
            Shape::D3(5, 6, 4),
            Shape::D3(2, 4, 5),
        ];
        for shape in shapes {
            let mut data = ramp(shape.len());
            let n = data.len();
            data[n / 3] = f64::NAN;
            data[n / 2] = f64::INFINITY;
            data[2 * n / 3] = f64::NEG_INFINITY;
            for eb in [1e-3, 1e-7] {
                let mut scratch = Vec::new();
                simd::force(Some(SimdLevel::Off));
                let base = walk_fused(
                    &data,
                    shape,
                    eb,
                    512,
                    PredictorModel::Lorenzo1,
                    EscapeCoding::Exact,
                    &mut scratch,
                );
                let base_recon = bits(&scratch);
                let base_dec = reconstruct_fused(
                    &base.codes,
                    base.unpred.clone(),
                    shape,
                    eb,
                    512,
                    PredictorModel::Lorenzo1,
                )
                .unwrap();
                for level in SimdLevel::ALL {
                    simd::force(Some(level));
                    let w = walk_fused(
                        &data,
                        shape,
                        eb,
                        512,
                        PredictorModel::Lorenzo1,
                        EscapeCoding::Exact,
                        &mut scratch,
                    );
                    assert_eq!(w.codes, base.codes, "{shape:?} {level:?} codes");
                    assert_eq!(
                        bits(&w.unpred),
                        bits(&base.unpred),
                        "{shape:?} {level:?} unpred"
                    );
                    assert_eq!(bits(&scratch), base_recon, "{shape:?} {level:?} recon");
                    let dec = reconstruct_fused(
                        &w.codes,
                        w.unpred,
                        shape,
                        eb,
                        512,
                        PredictorModel::Lorenzo1,
                    )
                    .unwrap();
                    assert_eq!(bits(&dec), bits(&base_dec), "{shape:?} {level:?} decode");
                }
                simd::force(None);
            }
        }
    }

    #[test]
    fn chunked_decode_regroups_quads_identically() {
        // A chunked 2-D decode regroups rows into different quads/pairs
        // than the one-shot decode (grouping restarts at each chunk), so
        // this pins that the escape-cursor bookkeeping is schedule-free.
        let shape = Shape::D2(13, 29);
        let mut data = ramp(shape.len());
        data[40] = f64::NAN;
        data[200] = f64::INFINITY;
        let mut scratch = Vec::new();
        let w = walk_fused(
            &data,
            shape,
            1e-6,
            256,
            PredictorModel::Lorenzo1,
            EscapeCoding::Exact,
            &mut scratch,
        );
        let whole = reconstruct_fused(
            &w.codes,
            w.unpred.clone(),
            shape,
            1e-6,
            256,
            PredictorModel::Lorenzo1,
        )
        .unwrap();
        for rows_per_push in [1usize, 2, 3, 5] {
            let mut dec =
                FusedDecoder::new(shape, 1e-6, 256, PredictorModel::Lorenzo1, w.unpred.clone());
            for chunk in w.codes.chunks(rows_per_push * 29) {
                dec.push(chunk).unwrap();
            }
            // Bit compare: the stored NaN must round-trip, and NaN != NaN
            // would fail a value compare even on identical outputs.
            assert_eq!(
                bits(&dec.finish().unwrap()),
                bits(&whole),
                "{rows_per_push} rows/push"
            );
        }
    }

    #[test]
    fn chunked_decode_matches_one_shot() {
        let shape = Shape::D3(12, 5, 7);
        let data = ramp(shape.len());
        let mut scratch = Vec::new();
        let w = walk_fused(
            &data,
            shape,
            1e-4,
            1024,
            PredictorModel::Lorenzo1,
            EscapeCoding::Exact,
            &mut scratch,
        );
        let whole = reconstruct_fused(
            &w.codes,
            w.unpred.clone(),
            shape,
            1e-4,
            1024,
            PredictorModel::Lorenzo1,
        )
        .unwrap();
        let mut dec = FusedDecoder::new(shape, 1e-4, 1024, PredictorModel::Lorenzo1, w.unpred);
        let slice = dec.slice_len();
        for chunk in w.codes.chunks(3 * slice) {
            dec.push(chunk).unwrap();
        }
        assert_eq!(dec.finish().unwrap(), whole);
    }

    #[test]
    fn misaligned_chunk_rejected() {
        let shape = Shape::D2(4, 6);
        let mut dec: FusedDecoder<f32> =
            FusedDecoder::new(shape, 0.1, 64, PredictorModel::Lorenzo1, Vec::new());
        assert!(dec.push(&[32u32; 5]).is_err());
    }

    #[test]
    fn escape_underrun_and_leftover_detected() {
        let shape = Shape::D1(4);
        // An ESCAPE code with no stored value.
        let err = reconstruct_fused::<f32>(&[ESCAPE; 4], Vec::new(), shape, 0.1, 64, PredictorModel::Lorenzo1);
        assert!(err.is_err());
        // A stored value no code consumes.
        let codes = [32u32; 4];
        let err = reconstruct_fused(&codes, vec![1.0f32], shape, 0.1, 64, PredictorModel::Lorenzo1);
        assert!(err.is_err());
    }

    #[test]
    fn nan_and_inf_escape_identically() {
        let shape = Shape::D2(6, 6);
        let mut data = ramp(36);
        data[7] = f64::NAN;
        data[20] = f64::INFINITY;
        data[31] = f64::NEG_INFINITY;
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        let f = walk_fused(
            &data,
            shape,
            1e-3,
            256,
            PredictorModel::Lorenzo1,
            EscapeCoding::Exact,
            &mut ra,
        );
        let r = walk_reference(
            &data,
            shape,
            1e-3,
            256,
            PredictorModel::Lorenzo1,
            EscapeCoding::Exact,
            &mut rb,
        );
        assert_eq!(f.codes, r.codes);
        assert_eq!(bits(&ra), bits(&rb));
        // Non-finite samples escape (and poison neighbouring stencils into
        // escaping too) — identically on both paths.
        assert_eq!(bits(&f.unpred), bits(&r.unpred));
        assert!(f.unpred.iter().any(|v| v.is_nan()));
        assert!(f.unpred.contains(&f64::INFINITY));
    }
}
