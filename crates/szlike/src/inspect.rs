//! Structural container inspection without decoding samples.
//!
//! [`inspect_sections`] walks a container's framing — header, mode
//! parameters, and every lossless section — and reports, per section, the
//! lossless flag, the compressed size, the raw size where the framing
//! records it, and (for bake-off sections, flag 2) the per-chunk backend
//! choices. It never inflates payloads and never allocates proportionally
//! to the declared sizes, so it is safe to point at arbitrary bytes.
//!
//! The CLI's `fpsnr inspect` prints this report; the layout it walks is
//! specified byte-for-byte in `DESIGN.md` §13.

use crate::blocked::{self, BlockPredictors};
use crate::compressor::{read_f64, split_and_check_crc, take, undo_lossless_bounded};
use crate::error::SzError;
use crate::format::{self, Mode};
use crate::predictor::{Predictor, PredictorKind, REGRESSION_COEFF_BYTES};
use losslesskit::{bakeoff, varint};

/// One lossless section of a container, as reported by
/// [`inspect_sections`].
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// What the section holds ("body", "shared table", "block 3", ...).
    pub name: String,
    /// Lossless flag: 0 stored, 1 whole-section DEFLATE, 2 bake-off.
    pub flag: u8,
    /// Compressed (on-wire) payload size in bytes.
    pub comp_len: usize,
    /// Raw (inflated) size, when the framing records it without inflating:
    /// flag 0 stores raw bytes verbatim and flag 2 declares the raw length
    /// in its header; flag 1 is only known after inflation.
    pub raw_len: Option<usize>,
    /// Per-chunk backend choices for bake-off sections (empty otherwise).
    pub chunks: Vec<bakeoff::ChunkInfo>,
}

/// Human-readable name of a stored predictor tag.
fn predictor_name(tag: u8) -> String {
    match PredictorKind::from_tag(tag) {
        Some(k) => k.name().to_string(),
        None => format!("unknown({tag})"),
    }
}

/// Container-level structure report.
#[derive(Debug, Clone)]
pub struct ContainerInfo {
    /// Blocked-container version byte (None for monolithic modes).
    pub blocked_version: Option<u8>,
    /// Entropy stage byte when the mode records one (0 legacy Huffman,
    /// 1 range, 2 interleaved Huffman).
    pub entropy_stage: Option<u8>,
    /// Container-level predictor: the stored tag's name for monolithic
    /// quantized and uniform blocked containers, `"per-block"` for v5
    /// mixed-predictor containers (see [`inspect_block_predictors`]).
    pub predictor: Option<String>,
    /// Chunk-grid geometry for blocked containers: per-axis chunk extents
    /// (`rank` entries). Slab containers report `[block_rows, full, ...]`.
    pub chunk_dims: Option<Vec<usize>>,
    /// Per-axis block counts of the chunk grid (`rank` entries).
    pub grid_dims: Option<Vec<usize>>,
    /// Every lossless section, in on-wire order.
    pub sections: Vec<SectionInfo>,
}

/// Describe one lossless section given its flag and payload.
fn section(name: String, flag: u8, payload: &[u8]) -> SectionInfo {
    let (raw_len, chunks) = match flag {
        0 => (Some(payload.len()), Vec::new()),
        2 => match bakeoff::inspect(payload) {
            Ok((raw, chunks)) => (Some(raw), chunks),
            Err(_) => (None, Vec::new()),
        },
        _ => (None, Vec::new()),
    };
    SectionInfo {
        name,
        flag,
        comp_len: payload.len(),
        raw_len,
        chunks,
    }
}

/// Read a `u8 flag, varint len, payload` section starting at `pos`.
fn read_flagged<'a>(src: &'a [u8], pos: &mut usize) -> Result<(u8, &'a [u8]), SzError> {
    let flag = take(src, pos, 1)?[0];
    let len = varint::read_u64(src, pos)? as usize;
    Ok((flag, take(src, pos, len)?))
}

/// Walk a container's framing and report every lossless section.
///
/// The CRC trailer is split off but *not* required to match — inspection
/// is for damaged containers too. Sample data is never decoded.
///
/// # Errors
/// [`SzError`] when the framing itself (header, parameter block, section
/// directory) is malformed or truncated.
pub fn inspect_sections(src: &[u8]) -> Result<ContainerInfo, SzError> {
    let (src, _crc_ok) = split_and_check_crc(src, false)?;
    let mut pos = 0usize;
    let header = format::read_header(src, &mut pos)?;
    let mut info = ContainerInfo {
        blocked_version: None,
        entropy_stage: None,
        predictor: None,
        chunk_dims: None,
        grid_dims: None,
        sections: Vec::new(),
    };
    match header.mode {
        Mode::Constant => {}
        Mode::Raw => {
            let (flag, payload) = read_flagged(src, &mut pos)?;
            info.sections.push(section("body".into(), flag, payload));
        }
        Mode::Quantized => {
            read_f64(src, &mut pos)?; // eb
            varint::read_u64(src, &mut pos)?; // bins
            let tag = take(src, &mut pos, 1)?[0];
            if tag == 3 {
                // Regression carries its coefficient payload inline.
                take(src, &mut pos, REGRESSION_COEFF_BYTES)?;
            }
            info.predictor = Some(predictor_name(tag));
            let (flag, payload) = read_flagged(src, &mut pos)?;
            // The entropy stage byte is the first byte of the body, which
            // is only visible without inflating when the body is stored.
            if flag == 0 {
                info.entropy_stage = payload.first().copied();
            }
            info.sections.push(section("body".into(), flag, payload));
        }
        Mode::LogPointwiseRel => {
            read_f64(src, &mut pos)?; // eb
            let (flag, payload) = read_flagged(src, &mut pos)?;
            info.sections
                .push(section("class plane".into(), flag, payload));
            // The rest (non-finite payload + nested container) has no
            // lossless framing of its own at this level.
        }
        Mode::Blocked => {
            let (version, params) = blocked::read_params(src, &mut pos, &header)?;
            info.blocked_version = Some(version);
            info.entropy_stage = Some(params.stage);
            info.predictor = Some(match params.pred {
                BlockPredictors::Uniform(m) => predictor_name(m.tag()),
                BlockPredictors::PerBlock => "per-block".to_string(),
            });
            info.chunk_dims = Some(params.grid.chunk_dims());
            info.grid_dims = Some(params.grid.grid_dims());
            match version {
                1 => {
                    let n_chunks = varint::read_u64(src, &mut pos)? as usize;
                    if n_chunks == 0 || n_chunks > src.len() {
                        return Err(SzError::Format("implausible lossless chunk count"));
                    }
                    for i in 0..n_chunks {
                        let (flag, payload) = read_flagged(src, &mut pos)?;
                        info.sections
                            .push(section(format!("chunk {i}"), flag, payload));
                    }
                }
                _ => {
                    // v2+: directory of (flag, len, crc) descriptors,
                    // meta-CRC, then the payloads back to back. Grid (v4)
                    // containers name blocks by their grid coordinate.
                    let mut descs = Vec::new();
                    if params.stage != 1 {
                        descs.push(("shared table".to_string(), blocked::read_section_desc(src, &mut pos)?));
                    }
                    for b in 0..params.grid.n_blocks() {
                        let name = if version >= 4 {
                            let c = params.grid.coord(b);
                            match params.grid.rank() {
                                1 => format!("block {b} @ ({})", c[0]),
                                2 => format!("block {b} @ ({},{})", c[0], c[1]),
                                _ => format!("block {b} @ ({},{},{})", c[0], c[1], c[2]),
                            }
                        } else {
                            format!("block {b}")
                        };
                        descs.push((name, blocked::read_section_desc(src, &mut pos)?));
                    }
                    take(src, &mut pos, 4)?; // meta-CRC
                    for (name, d) in descs {
                        let payload = take(src, &mut pos, d.comp_len)?;
                        let _ = d.crc;
                        info.sections.push(section(name, d.flag, payload));
                    }
                }
            }
        }
    }
    Ok(info)
}

/// Per-block payload inflation cap for [`inspect_block_predictors`]: far
/// above any real block body, far below anything a hostile length field
/// could use to balloon memory.
const PREDICTOR_PEEK_MAX_BODY: usize = 64 << 20;

/// The per-block predictor map of a v5 mixed-predictor container.
///
/// Returns `None` for anything that is not a blocked container with
/// per-block predictors (monolithic modes and uniform v1–v4 containers
/// report their single predictor through
/// [`ContainerInfo::predictor`]). Each entry is the predictor name for
/// that block in directory order, or `"damaged"` where the payload fails
/// its CRC or cannot be inflated.
///
/// Unlike [`inspect_sections`] this *does* inflate block payloads (the
/// predictor tag lives inside the per-block CRC's protection, ahead of the
/// code stream), bounded per block by a fixed cap so arbitrary bytes still
/// cannot balloon memory.
///
/// # Errors
/// [`SzError`] when the container framing (header, parameter block,
/// directory) is malformed — the same failure modes as
/// [`inspect_sections`].
pub fn inspect_block_predictors(src: &[u8]) -> Result<Option<Vec<String>>, SzError> {
    let (src, _crc_ok) = split_and_check_crc(src, false)?;
    let mut pos = 0usize;
    let header = format::read_header(src, &mut pos)?;
    if header.mode != Mode::Blocked {
        return Ok(None);
    }
    let (_, params) = blocked::read_params(src, &mut pos, &header)?;
    if !matches!(params.pred, BlockPredictors::PerBlock) {
        return Ok(None);
    }
    let table_desc = if params.stage != 1 {
        Some(blocked::read_section_desc(src, &mut pos)?)
    } else {
        None
    };
    let mut descs = Vec::with_capacity(params.grid.n_blocks().min(src.len()));
    for _ in 0..params.grid.n_blocks() {
        descs.push(blocked::read_section_desc(src, &mut pos)?);
    }
    take(src, &mut pos, 4)?; // meta-CRC
    if let Some(d) = table_desc {
        take(src, &mut pos, d.comp_len)?; // skip the shared-table payload
    }
    Ok(Some(read_block_predictor_names(src, pos, &descs)?))
}

/// Walk the payloads behind the directory and name each block's predictor.
fn read_block_predictor_names(
    src: &[u8],
    mut pos: usize,
    descs: &[blocked::SectionDesc],
) -> Result<Vec<String>, SzError> {
    let mut names = Vec::with_capacity(descs.len());
    for d in descs {
        let payload = take(src, &mut pos, d.comp_len)?;
        if losslesskit::crc32::crc32(payload) != d.crc {
            names.push("damaged".to_string());
            continue;
        }
        match undo_lossless_bounded(d.flag, payload, PREDICTOR_PEEK_MAX_BODY) {
            Ok(body) => match body.first() {
                Some(&tag) => names.push(predictor_name(tag)),
                None => names.push("damaged".to_string()),
            },
            Err(_) => names.push("damaged".to_string()),
        }
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::compress;
    use crate::config::{ErrorBound, SzConfig};
    use ndfield::Field;

    fn wavy(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            ((i as f32) * 0.07).sin() * ((j as f32) * 0.05).cos() * 10.0
        })
    }

    #[test]
    fn quantized_container_reports_body_section() {
        let bytes = compress(&wavy(64, 64), &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
        let info = inspect_sections(&bytes).unwrap();
        assert_eq!(info.sections.len(), 1);
        let body = &info.sections[0];
        assert_eq!(body.name, "body");
        assert!(body.flag == 0 || body.flag == 2, "flag {}", body.flag);
        if body.flag == 2 {
            assert!(!body.chunks.is_empty());
            let raw: usize = body.chunks.iter().map(|c| c.raw_len).sum();
            assert_eq!(Some(raw), body.raw_len);
        }
    }

    #[test]
    fn blocked_container_reports_every_section() {
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(2)
            .with_block_rows(16);
        let bytes = compress(&wavy(64, 64), &cfg).unwrap();
        let info = inspect_sections(&bytes).unwrap();
        assert_eq!(info.blocked_version, Some(3));
        assert_eq!(info.entropy_stage, Some(2));
        // Shared table + 4 blocks.
        assert_eq!(info.sections.len(), 5);
        assert_eq!(info.sections[0].name, "shared table");
        assert_eq!(info.sections[4].name, "block 3");
    }

    #[test]
    fn v5_container_reports_per_block_predictor_map() {
        use crate::predictor::PredictorKind;
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(2)
            .with_block_rows(16)
            .with_predictor(PredictorKind::Auto);
        let bytes = compress(&wavy(64, 64), &cfg).unwrap();
        let info = inspect_sections(&bytes).unwrap();
        assert_eq!(info.blocked_version, Some(5));
        assert_eq!(info.predictor.as_deref(), Some("per-block"));
        let map = inspect_block_predictors(&bytes).unwrap().unwrap();
        assert_eq!(map.len(), 4);
        let known = ["lorenzo", "lorenzo2", "regression", "spline"];
        for name in &map {
            assert!(known.contains(&name.as_str()), "unexpected predictor {name}");
        }
        // Uniform containers have no per-block map.
        let uniform = compress(
            &wavy(64, 64),
            &SzConfig::new(ErrorBound::Abs(1e-3)).with_threads(2),
        )
        .unwrap();
        assert_eq!(inspect_block_predictors(&uniform).unwrap(), None);
    }

    #[test]
    fn inspection_is_total_on_truncated_input() {
        let bytes = compress(&wavy(32, 32), &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
        for cut in 0..bytes.len() {
            let _ = inspect_sections(&bytes[..cut]); // must not panic
        }
    }
}
