//! The compression/decompression pipelines.
//!
//! The quantized path is the faithful SZ 1.4 reproduction: a single
//! row-major walk predicts each sample from the reconstructed prefix
//! (Lorenzo), quantizes the prediction error on the uniform grid, and falls
//! back to a bit-exact escape when the grid cannot honour the bound. The
//! decompressor replays the identical walk, which is what Theorem 1 of the
//! paper formalises.
//!
//! Besides the quantized path the container supports a `Constant` mode
//! (zero value range), a `Raw` lossless mode (`eb = 0` or degenerate
//! inputs), and a `LogPointwiseRel` mode implementing pointwise-relative
//! bounds through a log transform (the SZ 2.x scheme) — included because
//! §II-B of the paper surveys exactly these error-control strategies.

use crate::config::{EntropyCoder, ErrorBound, EscapeCoding, KernelMode, LosslessBackend, SzConfig};
use crate::error::{DecodeError, SzError};
use crate::format::{self, Header, Mode};
use crate::kernels;
use crate::predictor::{
    fit_regression, Predictor, PredictorKind, PredictorModel, REGRESSION_COEFF_BYTES,
};
use crate::quantizer::{LinearQuantizer, ESCAPE};
use crate::unpredictable;
use losslesskit::bitio::{BitReader, BitWriter};
use losslesskit::huffman::HuffmanCodec;
use losslesskit::crc32::crc32;
use losslesskit::{bakeoff, deflate_like, freq, mshuf, range, varint};
use ndfield::{io as fio, Field, Scalar, Shape};
use std::borrow::Cow;

/// Per-run accounting returned by [`compress_with_detail`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionDetail {
    /// Total samples in the field.
    pub n_samples: usize,
    /// Samples stored bit-exactly through the escape path.
    pub n_unpredictable: usize,
    /// Absolute bound the quantizer ran with (0 for constant/raw modes).
    pub eb_abs: f64,
    /// Value range of the original field.
    pub value_range: f64,
    /// Serialized Huffman table size.
    pub huffman_table_bytes: usize,
    /// Huffman-coded quantization-code stream size.
    pub code_stream_bytes: usize,
    /// Escape payload size (raw sample bytes).
    pub escape_payload_bytes: usize,
    /// Quantization bins actually used (differs from the configured cap
    /// when adaptive interval selection is on).
    pub quant_bins_used: usize,
    /// Container size before the final lossless stage.
    pub body_bytes: usize,
    /// Final container size.
    pub compressed_bytes: usize,
}

impl CompressionDetail {
    /// Compression ratio (original bytes / compressed bytes).
    pub fn ratio<T: Scalar>(&self) -> f64 {
        (self.n_samples * T::BYTES) as f64 / self.compressed_bytes.max(1) as f64
    }

    /// Bit rate in bits per sample.
    pub fn bit_rate(&self) -> f64 {
        self.compressed_bytes as f64 * 8.0 / self.n_samples.max(1) as f64
    }
}

/// Output of the prediction + quantization walk.
pub(crate) struct WalkOutput<T: Scalar> {
    pub(crate) codes: Vec<u32>,
    pub(crate) unpred: Vec<T>,
    pub(crate) pred_errors: Option<Vec<f64>>,
}

/// The single shared walk: identical logic drives compression, the Fig. 1
/// prediction-error probe, and (mirrored) decompression.
#[allow(clippy::too_many_arguments)]
fn quantized_walk<T: Scalar>(
    field: &Field<T>,
    eb: f64,
    bins: usize,
    model: PredictorModel,
    escape: EscapeCoding,
    collect_errors: bool,
    kernel: KernelMode,
) -> WalkOutput<T> {
    let mut recon = Vec::new();
    quantized_walk_on(
        field.as_slice(),
        field.shape(),
        eb,
        bins,
        model,
        escape,
        collect_errors,
        &mut recon,
        kernel,
    )
}

/// Slice-level walk with caller-owned reconstruction scratch: the blocked
/// path runs one walk per block on pool workers, and reusing `recon` across
/// the blocks a worker claims avoids the largest per-block allocation.
///
/// `kernel` selects the implementation; both produce identical output (the
/// fused kernels replicate this loop's float-op order exactly, and the
/// differential suite in `tests/kernel_equivalence.rs` holds them to it).
/// Error collection forces the reference walk — only it materializes the
/// raw prediction errors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quantized_walk_on<T: Scalar>(
    data: &[T],
    shape: Shape,
    eb: f64,
    bins: usize,
    model: PredictorModel,
    escape: EscapeCoding,
    collect_errors: bool,
    recon: &mut Vec<f64>,
    kernel: KernelMode,
) -> WalkOutput<T> {
    if kernel == KernelMode::Fused && !collect_errors {
        let out = crate::kernels::walk_fused(data, shape, eb, bins, model, escape, recon);
        return WalkOutput {
            codes: out.codes,
            unpred: out.unpred,
            pred_errors: None,
        };
    }
    let n = data.len();
    let quant = LinearQuantizer::new(eb, bins);
    let mut codes = Vec::with_capacity(n);
    let mut unpred = Vec::with_capacity(n / 64 + 4);
    recon.clear();
    recon.resize(n, 0.0);
    let recon = &mut recon[..];
    let mut pred_errors = collect_errors.then(|| Vec::with_capacity(n));
    for lin in 0..n {
        let x = data[lin].to_f64();
        let pred = model.predict(recon, shape, lin);
        let err = x - pred;
        if let Some(errs) = pred_errors.as_mut() {
            errs.push(err);
        }
        let mut escaped = true;
        if let Some((code, rerr)) = quant.quantize(err) {
            // Round through the target precision: the decompressor emits T,
            // so the bound must hold after that cast, and the prediction
            // walk must see the exact emitted value.
            let xr = T::from_f64(pred + rerr);
            if (x - xr.to_f64()).abs() <= eb {
                codes.push(code);
                recon[lin] = xr.to_f64();
                escaped = false;
            }
        }
        if escaped {
            codes.push(ESCAPE);
            unpred.push(data[lin]);
            // The walk must see the value the decoder will reconstruct:
            // the exact bits, or the bound-respecting truncation.
            recon[lin] = match escape {
                EscapeCoding::Exact => x,
                EscapeCoding::Truncated => unpredictable::truncate_to_bound(data[lin], eb)
                    .unwrap_or(data[lin])
                    .to_f64(),
            };
        }
    }
    WalkOutput {
        codes,
        unpred,
        pred_errors,
    }
}

/// Compress a field.
///
/// # Errors
/// [`SzError`] on invalid configuration or bounds.
pub fn compress<T: Scalar>(field: &Field<T>, cfg: &SzConfig) -> Result<Vec<u8>, SzError> {
    compress_with_detail(field, cfg).map(|(bytes, _)| bytes)
}

/// Compress a field and report per-stage accounting.
///
/// # Errors
/// [`SzError`] on invalid configuration or bounds.
pub fn compress_with_detail<T: Scalar>(
    field: &Field<T>,
    cfg: &SzConfig,
) -> Result<(Vec<u8>, CompressionDetail), SzError> {
    let _total = fpsnr_obs::span("sz.compress");
    cfg.validate()?;
    let (mut bytes, mut detail) = if let ErrorBound::PointwiseRel(eb) = cfg.bound {
        compress_log_rel(field, eb, cfg)?
    } else {
        let stats = field.stats();
        let vr = stats.range();
        let eb_abs = cfg.bound.absolute(vr)?;
        if vr == 0.0 && stats.non_finite == 0 && field.len() > 0 {
            compress_constant(field)?
        } else if eb_abs <= 0.0 {
            // `Abs(0)` or a zero-range field with NaNs: lossless fallback.
            compress_raw(field, cfg)?
        } else if crate::blocked::use_blocked(cfg) {
            crate::blocked::compress_blocked(field, eb_abs, vr, cfg)?
        } else {
            compress_quantized(field, eb_abs, vr, cfg)?
        }
    };
    // Integrity trailer: bit rot in archived streams must fail loudly.
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    detail.compressed_bytes = bytes.len();
    if fpsnr_obs::is_enabled() {
        fpsnr_obs::add("sz.fields", 1);
        fpsnr_obs::add("sz.bytes_in", (field.len() * T::BYTES) as u64);
        fpsnr_obs::add("sz.bytes_out", bytes.len() as u64);
        // Telemetry only: the dispatch tier never reaches container bytes
        // (byte-identity contract, DESIGN.md §17), but perf traces are
        // meaningless without knowing which kernel tier produced them.
        match losslesskit::simd::active() {
            losslesskit::simd::SimdLevel::Off => fpsnr_obs::add("sz.simd.off", 1),
            losslesskit::simd::SimdLevel::Sse2 => fpsnr_obs::add("sz.simd.sse2", 1),
            losslesskit::simd::SimdLevel::Avx2 => fpsnr_obs::add("sz.simd.avx2", 1),
        }
    }
    Ok((bytes, detail))
}

fn compress_constant<T: Scalar>(
    field: &Field<T>,
) -> Result<(Vec<u8>, CompressionDetail), SzError> {
    let mut out = Vec::new();
    format::write_header(&mut out, T::TAG, Mode::Constant, field.shape())?;
    field.as_slice()[0].write_le(&mut out);
    let detail = CompressionDetail {
        n_samples: field.len(),
        n_unpredictable: 0,
        eb_abs: 0.0,
        value_range: 0.0,
        huffman_table_bytes: 0,
        code_stream_bytes: 0,
        escape_payload_bytes: 0,
        quant_bins_used: 0,
        body_bytes: T::BYTES,
        compressed_bytes: out.len(),
    };
    Ok((out, detail))
}

fn compress_raw<T: Scalar>(
    field: &Field<T>,
    cfg: &SzConfig,
) -> Result<(Vec<u8>, CompressionDetail), SzError> {
    let mut out = Vec::with_capacity(field.len() * T::BYTES + 32);
    format::write_header(&mut out, T::TAG, Mode::Raw, field.shape())?;
    let raw = fio::to_le_bytes(field);
    let body_bytes = raw.len();
    let (flag, payload) = apply_lossless(raw, cfg);
    out.push(flag);
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let detail = CompressionDetail {
        n_samples: field.len(),
        n_unpredictable: field.len(),
        eb_abs: 0.0,
        value_range: field.value_range(),
        huffman_table_bytes: 0,
        code_stream_bytes: 0,
        escape_payload_bytes: body_bytes,
        quant_bins_used: 0,
        body_bytes,
        compressed_bytes: out.len(),
    };
    Ok((out, detail))
}

/// Run the configured lossless backend; returns `(flag, bytes)` keeping the
/// smaller of compressed/uncompressed so the backend can never inflate.
///
/// The `Lz` backend runs the per-chunk bake-off (flag 2): each 256 KiB
/// chunk independently picks stored/DEFLATE/Huffman/range by measured
/// entropy and probe cost. Flag 1 (whole-body DEFLATE) remains decodable
/// for containers written before v3.
pub(crate) fn apply_lossless(body: Vec<u8>, cfg: &SzConfig) -> (u8, Vec<u8>) {
    match cfg.lossless {
        LosslessBackend::None => (0, body),
        LosslessBackend::Lz => {
            let (baked, stats) = bakeoff::compress_with_stats(&body, cfg.effort);
            if fpsnr_obs::is_enabled() {
                for (i, backend) in bakeoff::Backend::ALL.iter().enumerate() {
                    if stats.chunks[i] > 0 {
                        let name = backend.name();
                        fpsnr_obs::add(&format!("sz.lossless.chunks.{name}"), stats.chunks[i]);
                        fpsnr_obs::add(&format!("sz.lossless.bytes.{name}"), stats.comp_bytes[i]);
                    }
                }
            }
            if baked.len() < body.len() {
                (2, baked)
            } else {
                (0, body)
            }
        }
    }
}

/// Inverse of [`apply_lossless`] with a hard cap on the inflated size, so a
/// hostile LZ header cannot demand an unbounded allocation. The
/// stored-as-is case borrows the payload instead of copying it.
pub(crate) fn undo_lossless_bounded(
    flag: u8,
    payload: &[u8],
    max_raw: usize,
) -> Result<Cow<'_, [u8]>, SzError> {
    match flag {
        0 => Ok(Cow::Borrowed(payload)),
        1 => deflate_like::lz_decompress_bounded(payload, max_raw)
            .map(Cow::Owned)
            .map_err(SzError::from),
        2 => bakeoff::decompress_bounded(payload, max_raw).map_err(SzError::from),
        _ => Err(SzError::Format("unknown lossless flag")),
    }
}

/// SZ 1.4's `optimize_intervals`: sample prediction errors (predicting from
/// *original* neighbours — cheap, and accurate enough for selection) and
/// pick the smallest power-of-two bin count whose grid covers at least
/// `threshold` of them. Points the chosen grid cannot represent become
/// bit-exact escapes during the real pass.
pub(crate) fn choose_intervals<T: Scalar>(
    field: &Field<T>,
    eb: f64,
    cap: usize,
    threshold: f64,
) -> usize {
    const TARGET_SAMPLES: usize = 65_536;
    let n = field.len();
    let data = field.as_slice();
    let shape = field.shape();
    let stride = (n / TARGET_SAMPLES).max(1);
    let at = |lin: usize| data[lin].to_f64();
    let mut qmags: Vec<u64> = Vec::with_capacity(n / stride + 1);
    let mut lin = 0usize;
    while lin < n {
        let pred = match shape {
            Shape::D1(_) => {
                if lin == 0 {
                    0.0
                } else {
                    at(lin - 1)
                }
            }
            Shape::D2(_, cols) => {
                let (i, j) = (lin / cols, lin % cols);
                match (i > 0, j > 0) {
                    (false, false) => 0.0,
                    (false, true) => at(lin - 1),
                    (true, false) => at(lin - cols),
                    (true, true) => at(lin - 1) + at(lin - cols) - at(lin - cols - 1),
                }
            }
            Shape::D3(_, d1, d2) => {
                let k = lin % d2;
                let j = (lin / d2) % d1;
                let i = lin / (d1 * d2);
                let g = |c: bool, off: usize| if c { at(lin - off) } else { 0.0 };
                g(k > 0, 1) + g(j > 0, d2) + g(i > 0, d1 * d2)
                    - g(j > 0 && k > 0, d2 + 1)
                    - g(i > 0 && k > 0, d1 * d2 + 1)
                    - g(i > 0 && j > 0, d1 * d2 + d2)
                    + g(i > 0 && j > 0 && k > 0, d1 * d2 + d2 + 1)
            }
        };
        let err = at(lin) - pred;
        let qmag = if err.is_finite() {
            (err.abs() / (2.0 * eb)).round().min(u64::MAX as f64) as u64
        } else {
            u64::MAX
        };
        qmags.push(qmag);
        lin += stride;
    }
    qmags.sort_unstable();
    let need = ((qmags.len() as f64) * threshold).ceil() as usize;
    let mut bins = 32usize;
    while bins < cap {
        let radius = (bins / 2 - 1) as u64;
        // Samples covered: qmag <= radius.
        let covered = qmags.partition_point(|&q| q <= radius);
        if covered >= need {
            return bins;
        }
        bins *= 2;
    }
    cap
}

/// Largest sample count the `Auto` bake-off walks per candidate. Above
/// this, scoring runs on the leading whole-row slab that fits the cap —
/// prediction only ever looks backward, so the slab's codes are exactly
/// the codes the real walk would emit for those samples.
const SELECT_SCORE_CAP: usize = 65_536;

/// Handicap (bits/value) a challenger must clear before it unseats
/// Lorenzo¹ in the `Auto` bake-off. The cost model scores the entropy of
/// the code stream in isolation, but the container's LZ tail typically
/// recovers several tenths of a bit/value more from Lorenzo's spatially
/// correlated codes than from coefficient-predictor codes — without the
/// handicap, sub-half-bit "wins" on the entropy score turned into
/// 5–16% *larger* containers on smooth GRF textures. Calibrated against
/// the shared evaluation corpora (see `tests/fixed_psnr_accuracy.rs`).
const SELECT_LZ_SLACK_BITS: f64 = 0.5;

/// The leading whole-row slab of `shape` holding at most `cap` samples
/// (never less than one row/plane), with its sample count.
fn score_slab(shape: Shape, cap: usize) -> (Shape, usize) {
    match shape {
        Shape::D1(n) => {
            let n = n.min(cap).max(1);
            (Shape::D1(n), n)
        }
        Shape::D2(r, c) => {
            let r = (cap / c.max(1)).clamp(1, r);
            (Shape::D2(r, c), r * c)
        }
        Shape::D3(a, b, c) => {
            let per = (b * c).max(1);
            let a = (cap / per).clamp(1, a);
            (Shape::D3(a, b, c), a * per)
        }
    }
}

/// Resolve a requested `PredictorKind` into the concrete [`PredictorModel`]
/// the walk will replay. Forced kinds map directly (Regression fits its
/// hyperplane here); `Auto` runs a cost-driven bake-off.
///
/// `Auto` runs the *real* prediction–quantization walk (reconstruction
/// feedback included) once per candidate over a leading slab of at most
/// [`SELECT_SCORE_CAP`] samples, then estimates coded bits/value from the
/// resulting code magnitudes with
/// [`crate::ratemodel::candidate_bits_per_value`] — the same
/// entropy-of-quantized-magnitudes model the rate pilot uses — and picks
/// the cheapest. Walking for real instead of sampling residuals against
/// the original data matters at coarse bounds: there the quantization
/// noise a neighbour stencil feeds back is the *same* noise it just
/// removed (piecewise-constant reconstructions predict themselves
/// exactly), which an additive analytic penalty systematically
/// overcharges — coarse-bound Lorenzo looked ~½ bit/value worse than it
/// is and lost bake-offs it should have won.
///
/// Regression additionally pays its coefficient payload up front:
/// `8·REGRESSION_COEFF_BYTES / n` extra bits/value.
///
/// Ties break deterministically toward the earlier candidate in the fixed
/// order Lorenzo¹, Lorenzo², Regression, Spline, so containers are
/// byte-reproducible across runs and thread counts.
pub(crate) fn select_model<T: Scalar>(
    data: &[T],
    shape: Shape,
    kind: PredictorKind,
    eb: f64,
    bins: usize,
) -> PredictorModel {
    match kind {
        PredictorKind::Lorenzo1 => return PredictorModel::Lorenzo1,
        PredictorKind::Lorenzo2 => return PredictorModel::Lorenzo2,
        PredictorKind::Spline => return PredictorModel::Spline,
        PredictorKind::Regression => {
            return PredictorModel::Regression(fit_regression(data, shape))
        }
        PredictorKind::Auto => {}
    }
    let n = data.len();
    if n == 0 || eb <= 0.0 {
        return PredictorModel::Lorenzo1;
    }
    let (slab_shape, slab_len) = score_slab(shape, SELECT_SCORE_CAP);
    let slab = &data[..slab_len.min(n)];
    let regression = PredictorModel::Regression(fit_regression(data, shape));
    let candidates: [(PredictorModel, f64); 4] = [
        (PredictorModel::Lorenzo1, 0.0),
        (PredictorModel::Lorenzo2, SELECT_LZ_SLACK_BITS),
        (
            regression,
            SELECT_LZ_SLACK_BITS + (REGRESSION_COEFF_BYTES * 8) as f64 / n as f64,
        ),
        (PredictorModel::Spline, SELECT_LZ_SLACK_BITS),
    ];
    let radius = (bins as u64 / 2).saturating_sub(1).max(1);
    let code_radius = (bins / 2) as i64;
    let sample_bits = (T::BYTES * 8) as f64;
    let mut best = PredictorModel::Lorenzo1;
    let mut best_cost = f64::INFINITY;
    let mut recon = Vec::new();
    let mut qmags = Vec::with_capacity(slab.len());
    for (model, extra_bits) in candidates {
        let walk = quantized_walk_on(
            slab,
            slab_shape,
            eb,
            bins,
            model,
            EscapeCoding::Exact,
            false,
            &mut recon,
            KernelMode::Fused,
        );
        qmags.clear();
        for &code in &walk.codes {
            qmags.push(if code == 0 {
                u64::MAX
            } else {
                (code as i64 - code_radius).unsigned_abs()
            });
        }
        let cost =
            crate::ratemodel::candidate_bits_per_value(&qmags, radius, sample_bits, extra_bits);
        if cost < best_cost {
            best_cost = cost;
            best = model;
        }
    }
    best
}

fn compress_quantized<T: Scalar>(
    field: &Field<T>,
    eb_abs: f64,
    vr: f64,
    cfg: &SzConfig,
) -> Result<(Vec<u8>, CompressionDetail), SzError> {
    // Stage 1 (sz.predict): per-field model selection — adaptive interval
    // sizing and predictor choice, both sampling the original data.
    let predict_span = fpsnr_obs::span("sz.predict");
    let bins = if cfg.auto_intervals {
        choose_intervals(field, eb_abs, cfg.quant_bins, cfg.pred_threshold)
    } else {
        cfg.quant_bins
    };
    let model = select_model(field.as_slice(), field.shape(), cfg.predictor, eb_abs, bins);
    drop(predict_span);

    // Stage 2 (sz.quantize): the prediction + linear-scaling quantization
    // walk over every sample, replaying whichever predictor was selected.
    let quantize_span = fpsnr_obs::span("sz.quantize");
    let walk = quantized_walk(field, eb_abs, bins, model, cfg.escape, false, cfg.kernel);
    drop(quantize_span);

    // Stage 3 (sz.encode): entropy stage over the code alphabet
    // (0 = escape): multi-stream interleaved Huffman (stage 2, the
    // default since container v3) or the adaptive range coder (stage 1).
    // Monolithic single-stream Huffman (stage 0) is decode-only legacy.
    let encode_span = fpsnr_obs::span("sz.encode");
    let mut body = Vec::with_capacity(walk.codes.len() / 2 + walk.unpred.len() * T::BYTES);
    let (table_len, stream_len) = match cfg.entropy {
        EntropyCoder::Huffman => {
            let counts = freq::count_dense(&walk.codes, bins);
            let codec = HuffmanCodec::from_counts(&counts);
            let mut table = Vec::new();
            codec.write_table(&mut table);
            let blob = mshuf::encode(&walk.codes, &codec, HUFF_STREAMS);
            body.push(2u8);
            varint::write_u64(&mut body, table.len() as u64);
            body.extend_from_slice(&table);
            varint::write_u64(&mut body, blob.len() as u64);
            body.extend_from_slice(&blob);
            (table.len(), blob.len())
        }
        EntropyCoder::Range => {
            let stream = range::range_encode(&walk.codes, bins);
            body.push(1u8);
            varint::write_u64(&mut body, stream.len() as u64);
            body.extend_from_slice(&stream);
            (0, stream.len())
        }
    };
    varint::write_u64(&mut body, walk.unpred.len() as u64);
    match cfg.escape {
        EscapeCoding::Exact => {
            body.push(0u8);
            for &u in &walk.unpred {
                u.write_le(&mut body);
            }
        }
        EscapeCoding::Truncated => {
            body.push(1u8);
            let mut bw = BitWriter::new();
            unpredictable::encode(&walk.unpred, eb_abs, &mut bw);
            let bits = bw.finish();
            varint::write_u64(&mut body, bits.len() as u64);
            body.extend_from_slice(&bits);
        }
    }
    let body_bytes = body.len();
    drop(encode_span);

    let mut out = Vec::new();
    format::write_header(&mut out, T::TAG, Mode::Quantized, field.shape())?;
    out.extend_from_slice(&eb_abs.to_le_bytes());
    varint::write_u64(&mut out, bins as u64);
    out.push(model.tag());
    // Regression carries its fitted coefficients inline, right after the
    // predictor tag: the decoder needs them before it can replay the walk.
    out.extend_from_slice(&model.coeff_bytes());
    // Stage 4 (sz.lossless): LZ pass over the serialized body.
    let lossless_span = fpsnr_obs::span("sz.lossless");
    let (flag, payload) = apply_lossless(body, cfg);
    drop(lossless_span);
    out.push(flag);
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);

    let detail = CompressionDetail {
        n_samples: field.len(),
        n_unpredictable: walk.unpred.len(),
        eb_abs,
        value_range: vr,
        huffman_table_bytes: table_len,
        code_stream_bytes: stream_len,
        escape_payload_bytes: walk.unpred.len() * T::BYTES,
        quant_bins_used: bins,
        body_bytes,
        compressed_bytes: out.len(),
    };
    Ok((out, detail))
}

/// The paper's pointwise-relative extension: compress `ln|x|` with the
/// equivalent absolute bound `ln(1+eb)`; signs/zeros/non-finites travel in
/// a 2-bit class plane.
fn compress_log_rel<T: Scalar>(
    field: &Field<T>,
    eb: f64,
    cfg: &SzConfig,
) -> Result<(Vec<u8>, CompressionDetail), SzError> {
    if !(eb.is_finite() && eb > 0.0) {
        return Err(SzError::BadBound(format!(
            "pointwise relative bound must be finite and positive, got {eb}"
        )));
    }
    let n = field.len();
    let data = field.as_slice();
    let mut classes = vec![0u8; n];
    let mut y = vec![T::default(); n];
    let mut nonfinite: Vec<T> = Vec::with_capacity(field.stats().non_finite);
    for (i, &x) in data.iter().enumerate() {
        let xf = x.to_f64();
        if !xf.is_finite() {
            classes[i] = 3;
            nonfinite.push(x);
        } else if xf == 0.0 {
            classes[i] = 2;
        } else {
            classes[i] = if xf < 0.0 { 1 } else { 0 };
            y[i] = T::from_f64(xf.abs().ln());
        }
    }
    // Pack the class plane 4 samples per byte.
    let mut packed = vec![0u8; n.div_ceil(4)];
    for (i, &c) in classes.iter().enumerate() {
        packed[i / 4] |= c << ((i % 4) * 2);
    }
    // Nested container over the log field with the derived absolute bound.
    let inner_cfg = SzConfig {
        bound: ErrorBound::Abs((1.0 + eb).ln()),
        ..*cfg
    };
    let y_field = Field::from_vec(field.shape(), y);
    let (inner, inner_detail) = compress_with_detail(&y_field, &inner_cfg)?;

    let mut out = Vec::with_capacity(inner.len() + packed.len() + nonfinite.len() * T::BYTES + 64);
    format::write_header(&mut out, T::TAG, Mode::LogPointwiseRel, field.shape())?;
    out.extend_from_slice(&eb.to_le_bytes());
    let (flag, class_payload) = apply_lossless(packed, cfg);
    out.push(flag);
    varint::write_u64(&mut out, class_payload.len() as u64);
    out.extend_from_slice(&class_payload);
    varint::write_u64(&mut out, nonfinite.len() as u64);
    for &v in &nonfinite {
        v.write_le(&mut out);
    }
    varint::write_u64(&mut out, inner.len() as u64);
    out.extend_from_slice(&inner);

    let detail = CompressionDetail {
        n_samples: n,
        n_unpredictable: inner_detail.n_unpredictable + nonfinite.len(),
        eb_abs: (1.0 + eb).ln(),
        value_range: field.value_range(),
        huffman_table_bytes: inner_detail.huffman_table_bytes,
        code_stream_bytes: inner_detail.code_stream_bytes,
        escape_payload_bytes: inner_detail.escape_payload_bytes,
        quant_bins_used: inner_detail.quant_bins_used,
        body_bytes: inner_detail.body_bytes,
        compressed_bytes: out.len(),
    };
    Ok((out, detail))
}

/// Decompress a container produced by [`compress`].
///
/// Blocked containers decode their blocks in parallel on the machine's
/// default thread count; use [`decompress_with_threads`] to control it.
/// The decoded samples never depend on the thread count.
///
/// # Errors
/// [`SzError::TypeMismatch`] when `T` differs from the compressed type, and
/// [`SzError::Format`]/[`SzError::Codec`] on malformed input.
pub fn decompress<T: Scalar>(src: &[u8]) -> Result<Field<T>, SzError> {
    decompress_with_threads(src, 0)
}

/// [`decompress`] with an explicit worker-thread count for blocked
/// containers (0 = auto-detect, 1 = fully sequential).
///
/// # Errors
/// Same failure modes as [`decompress`].
pub fn decompress_with_threads<T: Scalar>(src: &[u8], threads: usize) -> Result<Field<T>, SzError> {
    decompress_with_limits(src, threads, &DecodeLimits::default())
}

/// Hard resource caps enforced while decoding untrusted bytes.
///
/// Every size a container *declares* (output element count, inflated body
/// length, symbol counts) is checked against these caps before any
/// proportional allocation happens, so arbitrary input can make decoding
/// fail but never make it exhaust memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Cap on the decoded field size in bytes (default 1 GiB).
    pub max_output_bytes: u64,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits {
            max_output_bytes: 1 << 30,
        }
    }
}

impl DecodeLimits {
    /// Cap for intermediate (pre-output) buffers. Escape-heavy bodies can
    /// legitimately run a few times the output size, so allow 4x plus a
    /// floor for tiny outputs.
    pub(crate) fn max_body_bytes(&self) -> usize {
        let cap = self.max_output_bytes.saturating_mul(4).max(1 << 20);
        cap.min(usize::MAX as u64) as usize
    }
}

/// [`decompress_with_threads`] with explicit [`DecodeLimits`].
///
/// # Errors
/// Adds [`crate::DecodeError::LimitExceeded`] (wrapped in
/// [`SzError::Decode`]) when a declared size exceeds a cap; otherwise as
/// [`decompress`].
pub fn decompress_with_limits<T: Scalar>(
    src: &[u8],
    threads: usize,
    limits: &DecodeLimits,
) -> Result<Field<T>, SzError> {
    let _total = fpsnr_obs::span("sz.decompress");
    let (src, _crc_ok) = split_and_check_crc(src, true)?;
    let mut pos = 0usize;
    let header = format::read_header(src, &mut pos)?;
    check_type_and_limits::<T>(&header, limits)?;
    match header.mode {
        Mode::Constant => decompress_constant(src, pos, &header),
        Mode::Raw => decompress_raw(src, pos, &header, limits),
        Mode::Quantized => decompress_quantized(src, pos, &header, limits),
        Mode::LogPointwiseRel => decompress_log_rel(src, pos, &header, limits),
        Mode::Blocked => crate::blocked::decompress_blocked(src, pos, &header, threads, limits),
    }
}

/// Split the 4-byte CRC-32 trailer off a container and verify it.
///
/// In strict mode a mismatch is an error; the forgiving (partial) path
/// passes `strict = false` and gets the verdict back so it can keep going
/// and report it instead.
pub(crate) fn split_and_check_crc(src: &[u8], strict: bool) -> Result<(&[u8], bool), SzError> {
    if src.len() < 4 {
        return Err(DecodeError::Truncated {
            stage: "crc trailer",
            offset: 0,
            needed: 4,
            available: src.len() as u64,
        }
        .into());
    }
    let (body, trailer) = src.split_at(src.len() - 4);
    let mut stored = [0u8; 4];
    stored.copy_from_slice(trailer);
    let ok = crc32(body) == u32::from_le_bytes(stored);
    if strict && !ok {
        return Err(DecodeError::CrcMismatch {
            stage: "container",
            offset: body.len(),
        }
        .into());
    }
    Ok((body, ok))
}

pub(crate) fn check_type_and_limits<T: Scalar>(
    header: &Header,
    limits: &DecodeLimits,
) -> Result<(), SzError> {
    if header.scalar_tag != T::TAG {
        return Err(SzError::TypeMismatch {
            found: header.scalar_tag.to_string(),
            expected: T::TAG,
        });
    }
    let out_bytes = (header.shape.len() as u64).saturating_mul(T::BYTES as u64);
    if out_bytes > limits.max_output_bytes {
        return Err(DecodeError::LimitExceeded {
            stage: "header",
            what: "output bytes",
            requested: out_bytes,
            limit: limits.max_output_bytes,
        }
        .into());
    }
    Ok(())
}

/// Damage record for one independently-recoverable unit of a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDamage {
    /// Index of the damaged block (0 for monolithic containers).
    pub index: usize,
    /// Row-major linear sample range the damaged block covers. For slab
    /// blocks (v1–v3 containers) this is exactly the block's samples; for
    /// v4 grid blocks it is the smallest contiguous interval covering the
    /// block's strided footprint.
    pub sample_range: std::ops::Range<usize>,
    /// What failed — CRC mismatch, truncation, malformed payload.
    pub reason: String,
}

/// Outcome of a forgiving decode pass ([`decompress_partial`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DamageReport {
    /// Independently-recoverable units in the container. Monolithic modes
    /// have exactly one; v2 blocked containers have one per block.
    pub n_blocks: usize,
    /// Damaged units in ascending index order.
    pub damaged: Vec<BlockDamage>,
    /// Samples recovered bit-exactly.
    pub recovered_samples: usize,
    /// Whether the whole-container CRC-32 trailer matched.
    pub container_crc_ok: bool,
}

impl DamageReport {
    /// True when every unit decoded and the container CRC matched.
    pub fn is_clean(&self) -> bool {
        self.container_crc_ok && self.damaged.is_empty()
    }
}

/// Forgiving decode: recover as much of a damaged container as possible.
///
/// For v2 blocked containers each block carries its own CRC, so a damaged
/// slab is skipped (its samples become NaN) while every intact block is
/// recovered bit-exactly and reported. Monolithic containers have no
/// per-block framing, so recovery is all-or-nothing — but unlike
/// [`decompress`], a container whose only damage is a stale outer CRC
/// trailer still decodes, with `container_crc_ok = false` in the report.
///
/// # Errors
/// Same failure modes as [`decompress`] when nothing is recoverable.
pub fn decompress_partial<T: Scalar>(src: &[u8]) -> Result<(Field<T>, DamageReport), SzError> {
    decompress_partial_with_threads(src, 0)
}

/// [`decompress_partial`] with an explicit worker-thread count.
///
/// # Errors
/// Same failure modes as [`decompress_partial`].
pub fn decompress_partial_with_threads<T: Scalar>(
    src: &[u8],
    threads: usize,
) -> Result<(Field<T>, DamageReport), SzError> {
    let _total = fpsnr_obs::span("sz.decompress_partial");
    let limits = DecodeLimits::default();
    let (src, crc_ok) = split_and_check_crc(src, false)?;
    let mut pos = 0usize;
    let header = format::read_header(src, &mut pos)?;
    check_type_and_limits::<T>(&header, &limits)?;
    if header.mode == Mode::Blocked {
        return crate::blocked::decompress_blocked_partial(
            src, pos, &header, threads, &limits, crc_ok,
        );
    }
    let field = match header.mode {
        Mode::Constant => decompress_constant(src, pos, &header),
        Mode::Raw => decompress_raw(src, pos, &header, &limits),
        Mode::Quantized => decompress_quantized(src, pos, &header, &limits),
        Mode::LogPointwiseRel => decompress_log_rel(src, pos, &header, &limits),
        Mode::Blocked => unreachable!("handled above"),
    }?;
    let n = field.len();
    Ok((
        field,
        DamageReport {
            n_blocks: 1,
            damaged: Vec::new(),
            recovered_samples: n,
            container_crc_ok: crc_ok,
        },
    ))
}

pub(crate) fn take<'a>(src: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], SzError> {
    let available = src.len().saturating_sub(*pos);
    if available < n {
        return Err(DecodeError::Truncated {
            stage: "body",
            offset: *pos,
            needed: n as u64,
            available: available as u64,
        }
        .into());
    }
    let out = &src[*pos..*pos + n];
    *pos += n;
    Ok(out)
}

/// Read a little-endian `f64` at `pos`.
pub(crate) fn read_f64(src: &[u8], pos: &mut usize) -> Result<f64, SzError> {
    let bytes = take(src, pos, 8)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(bytes);
    Ok(f64::from_le_bytes(buf))
}

fn decompress_constant<T: Scalar>(
    src: &[u8],
    mut pos: usize,
    header: &Header,
) -> Result<Field<T>, SzError> {
    let v = T::read_le(take(src, &mut pos, T::BYTES)?);
    Ok(Field::from_vec(
        header.shape,
        vec![v; header.shape.len()],
    ))
}

fn decompress_raw<T: Scalar>(
    src: &[u8],
    mut pos: usize,
    header: &Header,
    _limits: &DecodeLimits,
) -> Result<Field<T>, SzError> {
    let flag = take(src, &mut pos, 1)?[0];
    let len = varint::read_u64(src, &mut pos)? as usize;
    let payload = take(src, &mut pos, len)?;
    // Raw bodies inflate to exactly the output size, which the caller has
    // already checked against the output cap.
    let raw = undo_lossless_bounded(flag, payload, header.shape.len() * T::BYTES)?;
    fio::from_le_bytes(header.shape, &raw).map_err(|_| SzError::Format("raw payload size"))
}

fn decompress_quantized<T: Scalar>(
    src: &[u8],
    mut pos: usize,
    header: &Header,
    limits: &DecodeLimits,
) -> Result<Field<T>, SzError> {
    let eb = read_f64(src, &mut pos)?;
    if !(eb.is_finite() && eb > 0.0) {
        return Err(SzError::Format("bad stored error bound"));
    }
    let bins = varint::read_u64(src, &mut pos)? as usize;
    if bins < 4 || bins % 2 != 0 || bins > (1 << 24) {
        return Err(SzError::Format("bad stored bin count"));
    }
    let pred_tag = take(src, &mut pos, 1)?[0];
    // Tag 3 (regression) is followed by its fitted-coefficient payload; the
    // other predictors are stateless and carry no coefficients.
    let coeffs: &[u8] = if pred_tag == 3 {
        take(src, &mut pos, REGRESSION_COEFF_BYTES)?
    } else {
        &[]
    };
    let model = PredictorModel::from_tag_and_coeffs(pred_tag, coeffs)
        .ok_or(SzError::Format("unknown predictor tag"))?;
    let flag = take(src, &mut pos, 1)?[0];
    let len = varint::read_u64(src, &mut pos)? as usize;
    let payload = take(src, &mut pos, len)?;
    let body = undo_lossless_bounded(flag, payload, limits.max_body_bytes())?;

    // Parse body sections. The code stream is *located* here but not yet
    // decoded: the escape payload behind it parses first, so the fused
    // mirror below can interleave LUT Huffman decoding with
    // reconstruction slice by slice instead of materializing all codes.
    let mut bpos = 0usize;
    let n = header.shape.len();
    let stage = *body.first().ok_or(SzError::Format("empty body"))?;
    bpos += 1;
    let (codec, stream) = match stage {
        0 | 2 => {
            let table_len = varint::read_u64(&body, &mut bpos)? as usize;
            let table_end = bpos
                .checked_add(table_len)
                .filter(|&e| e <= body.len())
                .ok_or(SzError::Format("table section overruns body"))?;
            let codec = HuffmanCodec::read_table(&body[..table_end], &mut bpos)?;
            if bpos != table_end {
                return Err(SzError::Format("table length mismatch"));
            }
            let stream_len = varint::read_u64(&body, &mut bpos)? as usize;
            if stream_len > body.len().saturating_sub(bpos) {
                return Err(SzError::Format("code stream overruns body"));
            }
            let stream = &body[bpos..bpos + stream_len];
            bpos += stream_len;
            (Some(codec), stream)
        }
        1 => {
            let stream_len = varint::read_u64(&body, &mut bpos)? as usize;
            if stream_len > body.len().saturating_sub(bpos) {
                return Err(SzError::Format("code stream overruns body"));
            }
            let stream = &body[bpos..bpos + stream_len];
            bpos += stream_len;
            (None, stream)
        }
        _ => return Err(SzError::Format("unknown entropy stage")),
    };
    let n_unpred = varint::read_u64(&body, &mut bpos)? as usize;
    if n_unpred > n {
        return Err(SzError::Format("more escapes than samples"));
    }
    let escape_tag = *body.get(bpos).ok_or(SzError::Format("missing escape tag"))?;
    bpos += 1;
    let unpred_values: Vec<T> = read_escape_values(&body, &mut bpos, n_unpred, escape_tag, eb)?;

    // Fused mirror of the compression walk (Theorem 1): decode the code
    // stream in outer-slice chunks and reconstruct each chunk immediately.
    let _mirror = fpsnr_obs::span("sz.kernel.decode");
    let samples = replay_quantized_walk(
        stream,
        codec.as_ref(),
        stage,
        header.shape,
        eb,
        bins,
        model,
        unpred_values,
    )?;
    Ok(Field::from_vec(header.shape, samples))
}

/// Parse an escape payload (tag 0: raw IEEE bits, tag 1: truncated binary
/// representation) starting at `bpos`, advancing it past the payload.
///
/// This is the single escape parser shared by the monolithic body, every
/// blocked-container block, and the random-access store.
pub(crate) fn read_escape_values<T: Scalar>(
    body: &[u8],
    bpos: &mut usize,
    n_unpred: usize,
    escape_tag: u8,
    eb: f64,
) -> Result<Vec<T>, SzError> {
    match escape_tag {
        0 => {
            // The caller has bounded `n_unpred` by the sample count, so the
            // multiply cannot overflow for any shape that passed the header
            // limits.
            if n_unpred * T::BYTES > body.len().saturating_sub(*bpos) {
                return Err(SzError::Format("escape payload overruns body"));
            }
            let vals = (0..n_unpred)
                .map(|i| T::read_le(&body[*bpos + i * T::BYTES..]))
                .collect();
            *bpos += n_unpred * T::BYTES;
            Ok(vals)
        }
        1 => {
            let bits_len = varint::read_u64(body, bpos)? as usize;
            if bits_len > body.len().saturating_sub(*bpos) {
                return Err(SzError::Format("escape bitstream overruns body"));
            }
            let mut br = BitReader::new(&body[*bpos..*bpos + bits_len]);
            let vals = unpredictable::decode::<T>(&mut br, n_unpred, eb)?;
            *bpos += bits_len;
            Ok(vals)
        }
        _ => Err(SzError::Format("unknown escape coding tag")),
    }
}

/// Entropy-decode a code stream and replay the prediction–quantization walk
/// over `shape` (the Theorem-1 mirror), interleaving decode and
/// reconstruction in outer-slice chunks.
///
/// The single walk-replay routine shared by the monolithic body, every
/// blocked-container block, and the random-access store.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_quantized_walk<T: Scalar>(
    stream: &[u8],
    codec: Option<&HuffmanCodec>,
    stage: u8,
    shape: Shape,
    eb: f64,
    bins: usize,
    model: PredictorModel,
    unpred: Vec<T>,
) -> Result<Vec<T>, SzError> {
    let n = shape.len();
    let mut dec = kernels::FusedDecoder::new(shape, eb, bins, model, unpred);
    match (stage, codec) {
        (0, Some(codec)) => {
            let mut br = BitReader::new(stream);
            let slice = dec.slice_len().max(1);
            let chunk = (DECODE_CHUNK_CODES / slice).max(1) * slice;
            let mut codes = Vec::with_capacity(chunk.min(n));
            while dec.remaining() > 0 {
                let now = chunk.min(dec.remaining());
                codes.clear();
                codec.decode(&mut br, now, &mut codes)?;
                dec.push(&codes)?;
            }
        }
        (2, Some(codec)) => {
            let mut reader = mshuf::InterleavedReader::new(stream)?;
            let slice = dec.slice_len().max(1);
            let chunk = (DECODE_CHUNK_CODES / slice).max(1) * slice;
            let mut codes = Vec::with_capacity(chunk.min(n));
            while dec.remaining() > 0 {
                let now = chunk.min(dec.remaining());
                codes.clear();
                reader.decode(codec, now, &mut codes)?;
                dec.push(&codes)?;
            }
        }
        _ => {
            let codes = range::range_decode_bounded(stream, n)?;
            if codes.len() != n {
                return Err(SzError::Format("range stream decoded wrong count"));
            }
            dec.push(&codes)?;
        }
    }
    dec.finish()
}

/// Target Huffman-decode granularity for the fused mirror, in codes; the
/// actual chunk is the nearest whole number of outer-dimension slices.
const DECODE_CHUNK_CODES: usize = 16 * 1024;

/// Interleaved Huffman streams written by the stage-2 entropy coder. Four
/// independent streams give the decoder four parallel bit-level dependency
/// chains, which is what lets it sustain >1 symbol per refill.
const HUFF_STREAMS: usize = 4;

fn decompress_log_rel<T: Scalar>(
    src: &[u8],
    mut pos: usize,
    header: &Header,
    limits: &DecodeLimits,
) -> Result<Field<T>, SzError> {
    let _eb = read_f64(src, &mut pos)?;
    let flag = take(src, &mut pos, 1)?[0];
    let class_len = varint::read_u64(src, &mut pos)? as usize;
    let class_payload = take(src, &mut pos, class_len)?;
    let n = header.shape.len();
    let packed = undo_lossless_bounded(flag, class_payload, n.div_ceil(4))?;
    if packed.len() != n.div_ceil(4) {
        return Err(SzError::Format("class plane size mismatch"));
    }
    let n_nonfinite = varint::read_u64(src, &mut pos)? as usize;
    if n_nonfinite > n {
        return Err(SzError::Format("more non-finites than samples"));
    }
    let nf_bytes = take(src, &mut pos, n_nonfinite * T::BYTES)?;
    let inner_len = varint::read_u64(src, &mut pos)? as usize;
    let inner = take(src, &mut pos, inner_len)?;
    // The encoder only ever nests a non-log-rel container here; a hostile
    // stream could otherwise chain log-rel containers into unbounded
    // recursion. Reject before recursing.
    if inner.len() >= format::MAGIC.len() + 2 + 4 {
        let mode_byte = inner[format::MAGIC.len() + 1];
        if mode_byte == Mode::LogPointwiseRel as u8 {
            return Err(DecodeError::Corrupt {
                stage: "log-rel body",
                offset: pos - inner.len(),
                what: "nested log-rel container",
            }
            .into());
        }
    }
    let y: Field<T> = decompress_with_limits(inner, 1, limits)?;
    if y.shape() != header.shape {
        return Err(SzError::Format("inner shape mismatch"));
    }
    let mut out = vec![T::default(); n];
    let mut nf_idx = 0usize;
    for lin in 0..n {
        let class = (packed[lin / 4] >> ((lin % 4) * 2)) & 0b11;
        out[lin] = match class {
            0 => T::from_f64(y.as_slice()[lin].to_f64().exp()),
            1 => T::from_f64(-y.as_slice()[lin].to_f64().exp()),
            2 => T::from_f64(0.0),
            _ => {
                if nf_idx >= n_nonfinite {
                    return Err(SzError::Format("more non-finites than stored"));
                }
                let v = T::read_le(&nf_bytes[nf_idx * T::BYTES..]);
                nf_idx += 1;
                v
            }
        };
    }
    if nf_idx != n_nonfinite {
        return Err(SzError::Format("unused non-finite values"));
    }
    Ok(Field::from_vec(header.shape, out))
}

/// Probe the prediction-error distribution (paper Fig. 1): runs the exact
/// compression walk and returns the per-sample prediction errors together
/// with the absolute bound the walk used.
///
/// # Errors
/// Same failure modes as [`compress`].
pub fn prediction_errors<T: Scalar>(
    field: &Field<T>,
    cfg: &SzConfig,
) -> Result<(Vec<f64>, f64), SzError> {
    cfg.validate()?;
    let vr = field.value_range();
    let eb_abs = cfg.bound.absolute(vr)?;
    if eb_abs <= 0.0 {
        return Err(SzError::BadBound(
            "prediction-error probe needs a positive bound".to_string(),
        ));
    }
    let model = select_model(
        field.as_slice(),
        field.shape(),
        cfg.predictor,
        eb_abs,
        cfg.quant_bins,
    );
    let walk = quantized_walk(
        field,
        eb_abs,
        cfg.quant_bins,
        model,
        cfg.escape,
        true,
        cfg.kernel,
    );
    Ok((
        walk.pred_errors.expect("collect_errors was set"),
        eb_abs,
    ))
}

/// Theorem-1 probe: runs the compression walk and returns, per sample, the
/// prediction error `Xpe` and its reconstruction `X̃pe` (the quantizer's
/// midpoint, or the exact value on the escape path). Theorem 1 states
/// `X − X̃ = Xpe − X̃pe`; the `theorem_check` experiment verifies that the
/// distortion measured on these pairs equals the distortion measured on the
/// actual decompressed output.
///
/// # Errors
/// Same failure modes as [`prediction_errors`].
pub fn quantization_probe<T: Scalar>(
    field: &Field<T>,
    cfg: &SzConfig,
) -> Result<(Vec<f64>, Vec<f64>, f64), SzError> {
    cfg.validate()?;
    let vr = field.value_range();
    let eb_abs = cfg.bound.absolute(vr)?;
    if eb_abs <= 0.0 {
        return Err(SzError::BadBound(
            "quantization probe needs a positive bound".to_string(),
        ));
    }
    let n = field.len();
    let shape = field.shape();
    let quant = LinearQuantizer::new(eb_abs, cfg.quant_bins);
    let model = select_model(
        field.as_slice(),
        shape,
        cfg.predictor,
        eb_abs,
        cfg.quant_bins,
    );
    let data = field.as_slice();
    let mut recon = vec![0.0f64; n];
    let mut pe = Vec::with_capacity(n);
    let mut pe_recon = Vec::with_capacity(n);
    for lin in 0..n {
        let x = data[lin].to_f64();
        let pred = model.predict(&recon, shape, lin);
        let err = x - pred;
        pe.push(err);
        let mut escaped = true;
        if let Some((_, rerr)) = quant.quantize(err) {
            let xr = T::from_f64(pred + rerr);
            if (x - xr.to_f64()).abs() <= eb_abs {
                // X̃pe as the decompressor sees it: X̃ − pred.
                pe_recon.push(xr.to_f64() - pred);
                recon[lin] = xr.to_f64();
                escaped = false;
            }
        }
        if escaped {
            let stored = match cfg.escape {
                EscapeCoding::Exact => x,
                EscapeCoding::Truncated => unpredictable::truncate_to_bound(data[lin], eb_abs)
                    .unwrap_or(data[lin])
                    .to_f64(),
            };
            pe_recon.push(stored - pred);
            recon[lin] = stored;
        }
    }
    Ok((pe, pe_recon, eb_abs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndfield::Shape;

    fn wavy_2d(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            let x = i as f32 * 0.07;
            let y = j as f32 * 0.05;
            (x.sin() * y.cos() * 10.0) + 0.3 * (x * 3.1).cos()
        })
    }

    fn max_abs_err(a: &Field<f32>, b: &Field<f32>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs() as f64)
            .fold(0.0, f64::max)
    }

    #[test]
    fn abs_bound_respected_2d() {
        let field = wavy_2d(50, 60);
        for eb in [1e-1, 1e-3, 1e-5] {
            let cfg = SzConfig::new(ErrorBound::Abs(eb));
            let bytes = compress(&field, &cfg).unwrap();
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert!(
                max_abs_err(&field, &back) <= eb,
                "bound {eb} violated: {}",
                max_abs_err(&field, &back)
            );
        }
    }

    #[test]
    fn rel_bound_respected() {
        let field = wavy_2d(40, 40);
        let vr = field.value_range();
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4));
        let bytes = compress(&field, &cfg).unwrap();
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert!(max_abs_err(&field, &back) <= 1e-4 * vr);
    }

    #[test]
    fn bound_respected_1d_and_3d() {
        let f1 = Field::from_fn_linear(Shape::D1(500), |i| ((i as f32) * 0.01).sin());
        let f3 = Field::from_fn_3d(12, 13, 14, |i, j, k| {
            ((i + 2 * j + 3 * k) as f32 * 0.02).sin() * 5.0
        });
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3));
        let b1: Field<f32> = decompress(&compress(&f1, &cfg).unwrap()).unwrap();
        let b3: Field<f32> = decompress(&compress(&f3, &cfg).unwrap()).unwrap();
        assert!(max_abs_err(&f1, &b1) <= 1e-3);
        assert!(max_abs_err(&f3, &b3) <= 1e-3);
    }

    #[test]
    fn smooth_field_compresses_well() {
        let field = wavy_2d(128, 128);
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let (bytes, detail) = compress_with_detail(&field, &cfg).unwrap();
        assert_eq!(bytes.len(), detail.compressed_bytes);
        assert!(
            detail.ratio::<f32>() > 4.0,
            "ratio only {:.2}",
            detail.ratio::<f32>()
        );
        assert!(detail.n_unpredictable < field.len() / 100);
    }

    #[test]
    fn constant_field_uses_constant_mode() {
        let field = Field::from_vec(Shape::D2(30, 30), vec![4.25f32; 900]);
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let bytes = compress(&field, &cfg).unwrap();
        assert!(bytes.len() < 32, "constant container is {} bytes", bytes.len());
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert_eq!(back.as_slice(), field.as_slice());
    }

    #[test]
    fn abs_zero_bound_is_lossless_raw() {
        let field = wavy_2d(20, 20);
        let cfg = SzConfig::new(ErrorBound::Abs(0.0));
        let bytes = compress(&field, &cfg).unwrap();
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert_eq!(back.as_slice(), field.as_slice());
    }

    #[test]
    fn nan_samples_survive_exactly() {
        let mut field = wavy_2d(16, 16);
        field.as_mut_slice()[37] = f32::NAN;
        field.as_mut_slice()[100] = f32::INFINITY;
        let cfg = SzConfig::new(ErrorBound::Abs(1e-2));
        let bytes = compress(&field, &cfg).unwrap();
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert!(back.as_slice()[37].is_nan());
        assert_eq!(back.as_slice()[100], f32::INFINITY);
        for (lin, (&x, &y)) in field
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .enumerate()
        {
            if x.is_finite() {
                assert!((x - y).abs() <= 1e-2, "sample {lin}");
            }
        }
    }

    #[test]
    fn f64_roundtrip() {
        let field = Field::from_fn_2d(40, 40, |i, j| ((i * j) as f64).sqrt());
        let cfg = SzConfig::new(ErrorBound::Abs(1e-9));
        let back: Field<f64> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        for (x, y) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((x - y).abs() <= 1e-9);
        }
    }

    #[test]
    fn type_mismatch_detected() {
        let field = wavy_2d(10, 10);
        let bytes = compress(&field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
        let res: Result<Field<f64>, _> = decompress(&bytes);
        assert!(matches!(res, Err(SzError::TypeMismatch { .. })));
    }

    #[test]
    fn truncated_container_fails_cleanly() {
        let field = wavy_2d(30, 30);
        let bytes = compress(&field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
        for cut in [8, bytes.len() / 2, bytes.len() - 1] {
            let res: Result<Field<f32>, _> = decompress(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn lossless_none_backend_roundtrips() {
        let field = wavy_2d(30, 30);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_lossless(LosslessBackend::None);
        let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        assert!(max_abs_err(&field, &back) <= 1e-3);
    }

    #[test]
    fn small_bin_count_forces_escapes_but_respects_bound() {
        // With only 8 bins, most prediction errors overflow the grid.
        let field = Field::from_fn_2d(32, 32, |i, j| ((i * 31 + j * 17) % 97) as f32);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-4)).with_quant_bins(8);
        let (bytes, detail) = compress_with_detail(&field, &cfg).unwrap();
        assert!(detail.n_unpredictable > 0);
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert!(max_abs_err(&field, &back) <= 1e-4);
    }

    #[test]
    fn pointwise_rel_bound_respected() {
        let field = Field::from_fn_2d(40, 40, |i, j| {
            let v = ((i + 1) * (j + 1)) as f32;
            if (i + j) % 3 == 0 {
                -v
            } else {
                v * 1e-3
            }
        });
        let eb = 1e-3;
        let cfg = SzConfig::new(ErrorBound::PointwiseRel(eb));
        let bytes = compress(&field, &cfg).unwrap();
        let back: Field<f32> = decompress(&bytes).unwrap();
        for (&x, &y) in field.as_slice().iter().zip(back.as_slice()) {
            let tol = eb * x.abs() as f64 * (1.0 + 1e-5) + 1e-30;
            assert!(
                ((x - y).abs() as f64) <= tol,
                "x={x} y={y} rel={}",
                ((x - y) / x).abs()
            );
        }
    }

    #[test]
    fn pointwise_rel_preserves_zeros_and_signs() {
        let mut field = Field::from_fn_linear(Shape::D1(100), |i| (i as f32 - 50.0) * 0.5);
        field.as_mut_slice()[10] = 0.0;
        field.as_mut_slice()[20] = f32::NAN;
        let cfg = SzConfig::new(ErrorBound::PointwiseRel(1e-2));
        let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        assert_eq!(back.as_slice()[10], 0.0);
        assert!(back.as_slice()[20].is_nan());
        for (&x, &y) in field.as_slice().iter().zip(back.as_slice()) {
            if x.is_finite() {
                assert_eq!(x.signum(), y.signum(), "sign flipped at x={x}");
            }
        }
    }

    #[test]
    fn prediction_errors_probe_matches_walk() {
        let field = wavy_2d(30, 30);
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let (errs, eb) = prediction_errors(&field, &cfg).unwrap();
        assert_eq!(errs.len(), field.len());
        assert!(eb > 0.0);
        // First sample is predicted as 0 ⇒ its error is the sample itself.
        assert_eq!(errs[0], field.as_slice()[0] as f64);
        // Smooth field ⇒ overwhelmingly small errors.
        let small = errs.iter().filter(|e| e.abs() < 0.5).count();
        assert!(small * 10 > errs.len() * 9);
    }

    #[test]
    fn detail_accounting_is_consistent() {
        let field = wavy_2d(64, 64);
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4));
        let (bytes, d) = compress_with_detail(&field, &cfg).unwrap();
        assert_eq!(d.n_samples, 64 * 64);
        assert_eq!(d.compressed_bytes, bytes.len());
        assert!(d.body_bytes >= d.huffman_table_bytes + d.code_stream_bytes);
        assert!(d.bit_rate() > 0.0);
    }

    #[test]
    fn auto_intervals_roundtrips_and_respects_bound() {
        let field = wavy_2d(80, 80);
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_auto_intervals(true);
        let (bytes, detail) = compress_with_detail(&field, &cfg).unwrap();
        assert!(detail.quant_bins_used >= 32);
        assert!(detail.quant_bins_used <= 65536);
        let back: Field<f32> = decompress(&bytes).unwrap();
        let eb = 1e-3 * field.value_range() as f64;
        assert!(max_abs_err(&field, &back) <= eb);
    }

    #[test]
    fn auto_intervals_picks_small_alphabet_on_smooth_data() {
        // A very smooth field has tiny prediction errors: the selector
        // should settle far below the 65536 cap, shrinking the alphabet.
        let field = Field::from_fn_2d(100, 100, |i, j| {
            (i as f32 * 0.01).sin() + (j as f32 * 0.008).cos()
        });
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4)).with_auto_intervals(true);
        let (_, detail) = compress_with_detail(&field, &cfg).unwrap();
        assert!(
            detail.quant_bins_used < 65536,
            "selector kept the cap: {}",
            detail.quant_bins_used
        );
    }

    #[test]
    fn auto_intervals_creates_escapes_on_heavy_tails() {
        // Mostly smooth with occasional large jumps: the 99% selection
        // leaves the jump tail outside the grid as bit-exact escapes.
        let field = Field::from_fn_2d(64, 64, |i, j| {
            let smooth = (i as f32 * 0.05).sin() * 0.1;
            if (i * 64 + j) % 97 == 0 {
                smooth + 50.0
            } else {
                smooth
            }
        });
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-5)).with_auto_intervals(true);
        let (bytes, detail) = compress_with_detail(&field, &cfg).unwrap();
        assert!(detail.n_unpredictable > 0, "expected escape tail");
        let back: Field<f32> = decompress(&bytes).unwrap();
        let eb = 1e-5 * field.value_range() as f64;
        assert!(max_abs_err(&field, &back) <= eb);
    }

    #[test]
    fn single_element_field_roundtrips() {
        let field = Field::from_vec(Shape::D1(1), vec![42.0f32]);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3));
        let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        assert_eq!(back.as_slice()[0], 42.0);
    }

    #[test]
    fn range_entropy_stage_roundtrips() {
        use crate::config::EntropyCoder;
        let field = wavy_2d(60, 60);
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3))
            .with_entropy(EntropyCoder::Range)
            .with_auto_intervals(true);
        let (bytes, _) = compress_with_detail(&field, &cfg).unwrap();
        let back: Field<f32> = decompress(&bytes).unwrap();
        let eb = 1e-3 * field.value_range() as f64;
        assert!(max_abs_err(&field, &back) <= eb);
    }

    #[test]
    fn range_stage_competitive_with_huffman_on_peaked_codes() {
        use crate::config::EntropyCoder;
        // Very smooth field + adaptive intervals (the realistic pairing:
        // a small alphabet lets the order-0 model adapt within the field):
        // codes collapse onto the central bin, where fractional-bit coding
        // beats Huffman's 1-bit floor.
        let field = Field::from_fn_2d(150, 150, |i, j| {
            (i as f32 * 0.005).sin() + (j as f32 * 0.004).cos()
        });
        // Compare the entropy stages in isolation (no LZ backend): the LZ
        // pass can squeeze Huffman's redundant 1-bit-per-symbol stream, so
        // the fractional-bit advantage shows at the stage boundary.
        let base = SzConfig::new(ErrorBound::ValueRangeRel(1e-2))
            .with_auto_intervals(true)
            .with_lossless(LosslessBackend::None);
        let h = compress(&field, &base).unwrap();
        let r = compress(&field, &base.with_entropy(EntropyCoder::Range)).unwrap();
        assert!(
            (r.len() as f64) < h.len() as f64 * 1.05,
            "range {} vs huffman {}",
            r.len(),
            h.len()
        );
    }

    #[test]
    fn lorenzo2_predictor_roundtrips_on_ramps() {
        use crate::predictor::PredictorKind;
        let field = Field::from_fn_2d(100, 100, |i, j| {
            (i as f32) * 2.0 - (j as f32) * 1.5 + ((i + j) as f32 * 0.05).sin() * 0.01
        });
        let eb = 1e-4 * field.value_range() as f64;
        let base = SzConfig::new(ErrorBound::Abs(eb));
        let b1 = compress(&field, &base).unwrap();
        let b2 = compress(&field, &base.with_predictor(PredictorKind::Lorenzo2)).unwrap();
        for bytes in [&b1, &b2] {
            let back: Field<f32> = decompress(bytes).unwrap();
            assert!(max_abs_err(&field, &back) <= eb);
        }
    }

    #[test]
    fn auto_predictor_selection_roundtrips() {
        use crate::predictor::PredictorKind;
        let field = wavy_2d(64, 64);
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3))
            .with_predictor(PredictorKind::Auto);
        let bytes = compress(&field, &cfg).unwrap();
        let back: Field<f32> = decompress(&bytes).unwrap();
        let eb = 1e-3 * field.value_range() as f64;
        assert!(max_abs_err(&field, &back) <= eb);
    }

    /// A field engineered to escape often: smooth background with frequent
    /// huge spikes and a tiny bin count.
    fn spiky() -> (Field<f32>, SzConfig) {
        let field = Field::from_fn_2d(48, 48, |i, j| {
            let smooth = (i as f32 * 0.05).sin() * 0.1;
            if (i * 48 + j) % 11 == 0 {
                smooth + 1000.0 + (i * j) as f32
            } else {
                smooth
            }
        });
        let cfg = SzConfig::new(ErrorBound::Abs(1e-4)).with_quant_bins(16);
        (field, cfg)
    }

    #[test]
    fn truncated_escapes_respect_bound() {
        use crate::config::EscapeCoding;
        let (field, cfg) = spiky();
        let cfg = cfg.with_escape(EscapeCoding::Truncated);
        let (bytes, detail) = compress_with_detail(&field, &cfg).unwrap();
        assert!(detail.n_unpredictable > 100, "test needs many escapes");
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert!(max_abs_err(&field, &back) <= 1e-4 * (1.0 + 1e-12));
    }

    #[test]
    fn truncated_escapes_shrink_the_stream_at_loose_bounds() {
        use crate::config::EscapeCoding;
        // Loose bound relative to the escape magnitudes: the truncation
        // keeps ~10 mantissa bits instead of 32 raw ones. (At bounds near
        // full f32 precision the encoder falls back to raw automatically —
        // covered by truncated_escapes_respect_bound.)
        let field = Field::from_fn_2d(48, 48, |i, j| {
            let smooth = (i as f32 * 0.05).sin() * 0.1;
            if (i * 48 + j) % 7 == 0 {
                smooth + 1000.0 + (i * j) as f32
            } else {
                smooth
            }
        });
        let cfg = SzConfig::new(ErrorBound::Abs(0.5)).with_quant_bins(16);
        let exact = compress(&field, &cfg).unwrap();
        let trunc = compress(&field, &cfg.with_escape(EscapeCoding::Truncated)).unwrap();
        assert!(
            trunc.len() < exact.len(),
            "truncated {} not smaller than exact {}",
            trunc.len(),
            exact.len()
        );
    }

    #[test]
    fn truncated_escape_probe_matches_data_mse() {
        // Theorem 1 must keep holding with truncated escapes: the probe's
        // quantizer-side MSE equals the end-to-end data MSE.
        use crate::config::EscapeCoding;
        let (field, cfg) = spiky();
        let cfg = cfg.with_escape(EscapeCoding::Truncated);
        let (pe, pe_recon, _) = quantization_probe(&field, &cfg).unwrap();
        let quant_mse: f64 = pe
            .iter()
            .zip(&pe_recon)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / pe.len() as f64;
        let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        let data_mse: f64 = field
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(x, y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            / field.len() as f64;
        let rel = if quant_mse > 0.0 {
            (quant_mse - data_mse).abs() / quant_mse
        } else {
            data_mse
        };
        assert!(rel < 1e-6, "quant {quant_mse:e} vs data {data_mse:e}");
    }
}
