//! Multi-dimensional chunk-grid geometry for blocked containers.
//!
//! A [`ChunkGrid`] partitions a row-major field into an axis-aligned grid
//! of chunks: every axis is cut into `ceil(dim / chunk)` pieces and a block
//! is one cell of the resulting grid, identified either by its row-major
//! block index or by its grid coordinate. The legacy slab layout (v1–v3
//! containers, `block_rows` slices along the slowest axis) is the special
//! case where every non-leading chunk extent equals the full dimension —
//! a 1×…×N grid — so one set of geometry routines serves every container
//! version.
//!
//! The grid is pure geometry: it maps block indices to shapes, origins and
//! covering linear ranges, gathers a block out of a full field (for the
//! encoder), scatters a decoded block back into a full field (for the
//! decoder), and intersects blocks with a [`Region`] for random-access
//! reads that copy only the overlapping samples, stride by stride.
//!
//! Internally everything is padded to three axes with extent-1 trailing
//! axes, so rank-generic loops are written once against `[usize; 3]`.

use crate::error::SzError;
use ndfield::Shape;

/// An axis-aligned sub-box of a field: `start[a]..end[a]` on each axis.
///
/// Regions are half-open, non-empty on every axis, and rank-typed (a 2-D
/// region only addresses 2-D fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    rank: usize,
    start: [usize; 3],
    end: [usize; 3],
}

impl Region {
    /// Build a region from per-axis half-open ranges (1–3 axes).
    ///
    /// # Errors
    /// [`SzError::BadConfig`] when the rank is outside 1..=3 or any axis
    /// range is empty or inverted.
    pub fn new(ranges: &[std::ops::Range<usize>]) -> Result<Region, SzError> {
        if ranges.is_empty() || ranges.len() > 3 {
            return Err(SzError::BadConfig(format!(
                "region rank must be 1..=3, got {}",
                ranges.len()
            )));
        }
        let mut start = [0usize; 3];
        let mut end = [1usize; 3];
        for (a, r) in ranges.iter().enumerate() {
            if r.start >= r.end {
                return Err(SzError::BadConfig(format!(
                    "region axis {a} is empty ({}..{})",
                    r.start, r.end
                )));
            }
            start[a] = r.start;
            end[a] = r.end;
        }
        Ok(Region {
            rank: ranges.len(),
            start,
            end,
        })
    }

    /// The region covering an entire field of the given shape.
    pub fn whole(shape: Shape) -> Region {
        let dims = shape.dims();
        let mut start = [0usize; 3];
        let mut end = [1usize; 3];
        for (a, &d) in dims.iter().enumerate() {
            start[a] = 0;
            end[a] = d;
        }
        Region {
            rank: dims.len(),
            start,
            end,
        }
    }

    /// Number of axes (1..=3).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Per-axis extents (`rank` entries).
    pub fn dims(&self) -> Vec<usize> {
        (0..self.rank).map(|a| self.end[a] - self.start[a]).collect()
    }

    /// The region's extents as a [`Shape`].
    pub fn shape(&self) -> Shape {
        match self.rank {
            1 => Shape::D1(self.end[0] - self.start[0]),
            2 => Shape::D2(self.end[0] - self.start[0], self.end[1] - self.start[1]),
            _ => Shape::D3(
                self.end[0] - self.start[0],
                self.end[1] - self.start[1],
                self.end[2] - self.start[2],
            ),
        }
    }

    /// Total samples in the region.
    pub fn len(&self) -> usize {
        (0..3).map(|a| self.end[a] - self.start[a]).product()
    }

    /// Regions are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the region lies fully inside a field of the given shape.
    pub fn fits(&self, shape: Shape) -> bool {
        let dims = shape.dims();
        self.rank == dims.len() && (0..self.rank).all(|a| self.end[a] <= dims[a])
    }

    /// Half-open range on axis `a` (padded axes report `0..1`).
    pub(crate) fn axis(&self, a: usize) -> (usize, usize) {
        (self.start[a], self.end[a])
    }
}

/// Row-major chunk-grid partition of a field (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkGrid {
    shape: Shape,
    rank: usize,
    /// Field dims, padded to 3 axes with trailing 1s.
    dim: [usize; 3],
    /// Chunk extents per axis, padded likewise (each in `1..=dim[a]`).
    chunk: [usize; 3],
    /// Grid extents: `ceil(dim[a] / chunk[a])`.
    grid: [usize; 3],
}

impl ChunkGrid {
    /// Pad a shape's dims to `[usize; 3]` with trailing 1s.
    fn pad(shape: Shape) -> (usize, [usize; 3]) {
        let dims = shape.dims();
        let mut dim = [1usize; 3];
        dim[..dims.len()].copy_from_slice(&dims);
        (dims.len(), dim)
    }

    /// Build a grid from per-axis chunk extents. An extent of 0 (or a
    /// missing trailing entry) means "full dimension" on that axis; extents
    /// are clamped to the dimension.
    ///
    /// # Errors
    /// [`SzError::BadConfig`] when more extents are given than the shape
    /// has axes (and the excess entries are non-zero).
    pub fn from_chunk_dims(shape: Shape, chunk_dims: &[usize]) -> Result<ChunkGrid, SzError> {
        let (rank, dim) = Self::pad(shape);
        if chunk_dims.iter().skip(rank).any(|&c| c != 0) {
            return Err(SzError::BadConfig(format!(
                "chunk dims specify {} axes but the field has rank {rank}",
                chunk_dims.len()
            )));
        }
        let mut chunk = [1usize; 3];
        for a in 0..rank {
            let req = chunk_dims.get(a).copied().unwrap_or(0);
            chunk[a] = if req == 0 { dim[a] } else { req.min(dim[a]) };
        }
        Ok(Self::from_padded(shape, rank, dim, chunk))
    }

    /// The legacy slab partition: `block_rows` slices along axis 0, full
    /// extent elsewhere (v1–v3 containers). `block_rows` must be in
    /// `1..=dim[0]` (the caller has validated it).
    pub(crate) fn slab(shape: Shape, block_rows: usize) -> ChunkGrid {
        let (rank, dim) = Self::pad(shape);
        let mut chunk = dim;
        chunk[0] = block_rows.min(dim[0]).max(1);
        Self::from_padded(shape, rank, dim, chunk)
    }

    fn from_padded(shape: Shape, rank: usize, dim: [usize; 3], chunk: [usize; 3]) -> ChunkGrid {
        let mut grid = [1usize; 3];
        for a in 0..3 {
            grid[a] = dim[a].div_ceil(chunk[a]);
        }
        ChunkGrid {
            shape,
            rank,
            dim,
            chunk,
            grid,
        }
    }

    /// The partitioned field's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of axes (1..=3).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Chunk extents per axis (`rank` entries).
    pub fn chunk_dims(&self) -> Vec<usize> {
        self.chunk[..self.rank].to_vec()
    }

    /// Grid extents per axis (`rank` entries).
    pub fn grid_dims(&self) -> Vec<usize> {
        self.grid[..self.rank].to_vec()
    }

    /// Total number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.grid.iter().product()
    }

    /// Whether this is a slab partition (full extent on axes 1..rank), i.e.
    /// every block is a contiguous row-major range.
    pub fn is_slab(&self) -> bool {
        (1..3).all(|a| self.grid[a] == 1)
    }

    /// Rows per block along axis 0 (the v1–v3 `block_rows` parameter).
    pub(crate) fn block_rows(&self) -> usize {
        self.chunk[0]
    }

    /// Grid coordinate of block `b` (row-major block order).
    pub fn coord(&self, b: usize) -> [usize; 3] {
        debug_assert!(b < self.n_blocks());
        [
            b / (self.grid[1] * self.grid[2]),
            (b / self.grid[2]) % self.grid[1],
            b % self.grid[2],
        ]
    }

    /// Sample-space origin of block `b` per axis.
    pub fn block_origin(&self, b: usize) -> [usize; 3] {
        let c = self.coord(b);
        [
            c[0] * self.chunk[0],
            c[1] * self.chunk[1],
            c[2] * self.chunk[2],
        ]
    }

    /// Padded per-axis extents of block `b` (edge blocks are smaller).
    fn block_dims(&self, b: usize) -> [usize; 3] {
        let o = self.block_origin(b);
        [
            self.chunk[0].min(self.dim[0] - o[0]),
            self.chunk[1].min(self.dim[1] - o[1]),
            self.chunk[2].min(self.dim[2] - o[2]),
        ]
    }

    /// Shape of block `b`, at the grid's rank.
    pub fn block_shape(&self, b: usize) -> Shape {
        let d = self.block_dims(b);
        match self.rank {
            1 => Shape::D1(d[0]),
            2 => Shape::D2(d[0], d[1]),
            _ => Shape::D3(d[0], d[1], d[2]),
        }
    }

    /// Samples in block `b`.
    pub fn block_len(&self, b: usize) -> usize {
        self.block_dims(b).iter().product()
    }

    /// The smallest contiguous row-major range of the *field* covering
    /// block `b`. For slab grids this is exactly the block's samples; for
    /// true grids it is a covering interval (used for damage reporting).
    pub fn covering_range(&self, b: usize) -> std::ops::Range<usize> {
        let o = self.block_origin(b);
        let d = self.block_dims(b);
        let s1 = self.dim[2];
        let s0 = self.dim[1] * self.dim[2];
        let first = o[0] * s0 + o[1] * s1 + o[2];
        let last = (o[0] + d[0] - 1) * s0 + (o[1] + d[1] - 1) * s1 + (o[2] + d[2] - 1);
        first..last + 1
    }

    /// Copy block `b` out of the full field into `dst` (cleared first), in
    /// the block's own row-major order.
    pub fn gather<T: Copy>(&self, src: &[T], b: usize, dst: &mut Vec<T>) {
        debug_assert_eq!(src.len(), self.shape.len());
        let o = self.block_origin(b);
        let d = self.block_dims(b);
        dst.clear();
        dst.reserve(d[0] * d[1] * d[2]);
        let s1 = self.dim[2];
        let s0 = self.dim[1] * self.dim[2];
        for i in o[0]..o[0] + d[0] {
            for j in o[1]..o[1] + d[1] {
                let row = i * s0 + j * s1 + o[2];
                dst.extend_from_slice(&src[row..row + d[2]]);
            }
        }
    }

    /// Scatter a decoded block back into the full field buffer.
    ///
    /// # Panics
    /// Debug-asserts `block.len()` matches the block and `dst` the field.
    pub fn scatter<T: Copy>(&self, block: &[T], b: usize, dst: &mut [T]) {
        debug_assert_eq!(dst.len(), self.shape.len());
        debug_assert_eq!(block.len(), self.block_len(b));
        let o = self.block_origin(b);
        let d = self.block_dims(b);
        let s1 = self.dim[2];
        let s0 = self.dim[1] * self.dim[2];
        let mut src_off = 0usize;
        for i in o[0]..o[0] + d[0] {
            for j in o[1]..o[1] + d[1] {
                let row = i * s0 + j * s1 + o[2];
                dst[row..row + d[2]].copy_from_slice(&block[src_off..src_off + d[2]]);
                src_off += d[2];
            }
        }
    }

    /// Fill block `b`'s footprint in the full field buffer with `value`
    /// (damaged-block poisoning in forgiving decodes).
    pub fn fill_block<T: Copy>(&self, b: usize, value: T, dst: &mut [T]) {
        let o = self.block_origin(b);
        let d = self.block_dims(b);
        let s1 = self.dim[2];
        let s0 = self.dim[1] * self.dim[2];
        for i in o[0]..o[0] + d[0] {
            for j in o[1]..o[1] + d[1] {
                let row = i * s0 + j * s1 + o[2];
                dst[row..row + d[2]].fill(value);
            }
        }
    }

    /// Block indices whose footprint intersects `region`, in ascending
    /// (row-major) block order. The region must fit the field.
    pub fn blocks_intersecting(&self, region: &Region) -> Vec<usize> {
        let mut lo = [0usize; 3];
        let mut hi = [1usize; 3];
        for a in 0..3 {
            let (s, e) = region.axis(a);
            lo[a] = s / self.chunk[a];
            hi[a] = (e - 1) / self.chunk[a] + 1;
        }
        let mut out = Vec::with_capacity(
            (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]),
        );
        for c0 in lo[0]..hi[0] {
            for c1 in lo[1]..hi[1] {
                for c2 in lo[2]..hi[2] {
                    out.push((c0 * self.grid[1] + c1) * self.grid[2] + c2);
                }
            }
        }
        out
    }

    /// Copy the intersection of block `b` and `region` from the decoded
    /// block into a region-shaped output buffer, run by run.
    pub fn copy_block_region<T: Copy>(
        &self,
        block: &[T],
        b: usize,
        region: &Region,
        out: &mut [T],
    ) {
        debug_assert_eq!(block.len(), self.block_len(b));
        debug_assert_eq!(out.len(), region.len());
        let o = self.block_origin(b);
        let d = self.block_dims(b);
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        let mut rdim = [1usize; 3];
        for a in 0..3 {
            let (s, e) = region.axis(a);
            lo[a] = s.max(o[a]);
            hi[a] = e.min(o[a] + d[a]);
            rdim[a] = e - s;
        }
        debug_assert!((0..3).all(|a| lo[a] < hi[a]), "block does not intersect region");
        let run = hi[2] - lo[2];
        let (r0, _) = region.axis(0);
        let (r1, _) = region.axis(1);
        let (r2, _) = region.axis(2);
        // Hierarchical coalescing: when the innermost runs tile axis 2 of
        // both the block and the region wall-to-wall (`run == d[2] ==
        // rdim[2]`, which forces the axis-2 offsets to 0 on both sides),
        // consecutive `j` rows are contiguous in both buffers and a whole
        // (j, k)-plane moves in one `copy_from_slice`; when the planes
        // tile axis 1 the same way, the entire intersection is one copy.
        // This is what rescues rank-1 and rank-2 fields, whose padded
        // leading axes make `run == 1` and would otherwise degrade the
        // row loop into per-element copies.
        if run == d[2] && run == rdim[2] {
            let rows = hi[1] - lo[1];
            let plane = rows * run;
            if rows == d[1] && rows == rdim[1] {
                let src = (lo[0] - o[0]) * d[1] * d[2];
                let dst = (lo[0] - r0) * rdim[1] * rdim[2];
                let n = (hi[0] - lo[0]) * plane;
                out[dst..dst + n].copy_from_slice(&block[src..src + n]);
                return;
            }
            for i in lo[0]..hi[0] {
                let src = ((i - o[0]) * d[1] + (lo[1] - o[1])) * d[2];
                let dst = ((i - r0) * rdim[1] + (lo[1] - r1)) * rdim[2];
                out[dst..dst + plane].copy_from_slice(&block[src..src + plane]);
            }
            return;
        }
        for i in lo[0]..hi[0] {
            for j in lo[1]..hi[1] {
                let src = ((i - o[0]) * d[1] + (j - o[1])) * d[2] + (lo[2] - o[2]);
                let dst = ((i - r0) * rdim[1] + (j - r1)) * rdim[2] + (lo[2] - r2);
                out[dst..dst + run].copy_from_slice(&block[src..src + run]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_3d() -> ChunkGrid {
        // 7×5×6 field in 3×2×4 chunks → 3×3×2 grid of 18 blocks.
        ChunkGrid::from_chunk_dims(Shape::D3(7, 5, 6), &[3, 2, 4]).unwrap()
    }

    #[test]
    fn grid_geometry_basics() {
        let g = grid_3d();
        assert_eq!(g.grid_dims(), vec![3, 3, 2]);
        assert_eq!(g.n_blocks(), 18);
        assert!(!g.is_slab());
        // Last block: coord (2, 2, 1) → origin (6, 4, 4) → dims (1, 1, 2).
        let b = g.n_blocks() - 1;
        assert_eq!(g.coord(b), [2, 2, 1]);
        assert_eq!(g.block_origin(b), [6, 4, 4]);
        assert_eq!(g.block_shape(b), Shape::D3(1, 1, 2));
        assert_eq!(g.block_len(b), 2);
    }

    #[test]
    fn slab_matches_block_rows_partition() {
        let g = ChunkGrid::slab(Shape::D2(10, 8), 4);
        assert!(g.is_slab());
        assert_eq!(g.n_blocks(), 3);
        assert_eq!(g.block_shape(0), Shape::D2(4, 8));
        assert_eq!(g.block_shape(2), Shape::D2(2, 8));
        assert_eq!(g.covering_range(1), 32..64);
    }

    #[test]
    fn zero_chunk_means_full_axis() {
        let g = ChunkGrid::from_chunk_dims(Shape::D3(8, 8, 8), &[4, 0, 0]).unwrap();
        assert!(g.is_slab());
        assert_eq!(g.chunk_dims(), vec![4, 8, 8]);
        assert!(ChunkGrid::from_chunk_dims(Shape::D2(8, 8), &[2, 2, 2]).is_err());
    }

    #[test]
    fn gather_scatter_roundtrip_every_block() {
        let g = grid_3d();
        let field: Vec<u32> = (0..g.shape().len() as u32).collect();
        let mut rebuilt = vec![u32::MAX; field.len()];
        let mut buf = Vec::new();
        for b in 0..g.n_blocks() {
            g.gather(&field, b, &mut buf);
            assert_eq!(buf.len(), g.block_len(b));
            g.scatter(&buf, b, &mut rebuilt);
        }
        assert_eq!(rebuilt, field);
    }

    #[test]
    fn intersection_finds_exactly_the_overlapping_blocks() {
        let g = grid_3d();
        let r = Region::new(&[2..4, 1..2, 3..5]).unwrap();
        // Axis 0: rows 2..4 → chunks 0..2; axis 1: 1..2 → chunk 0;
        // axis 2: 3..5 → chunks 0..2.
        let blocks = g.blocks_intersecting(&r);
        assert_eq!(blocks, vec![0, 1, 6, 7]);
        // Whole-field region touches every block.
        assert_eq!(
            g.blocks_intersecting(&Region::whole(g.shape())).len(),
            g.n_blocks()
        );
    }

    #[test]
    fn region_copy_matches_direct_slicing() {
        let g = grid_3d();
        let field: Vec<u32> = (0..g.shape().len() as u32).collect();
        let r = Region::new(&[1..6, 0..4, 2..6]).unwrap();
        let rdims = r.dims();
        let mut out = vec![u32::MAX; r.len()];
        let mut buf = Vec::new();
        for b in g.blocks_intersecting(&r) {
            g.gather(&field, b, &mut buf);
            g.copy_block_region(&buf, b, &r, &mut out);
        }
        // Oracle: direct strided slicing of the field.
        let (d1, d2) = (5, 6);
        let mut k = 0;
        for i in 1..6 {
            for j in 0..4 {
                for l in 2..6 {
                    assert_eq!(out[k], field[(i * d1 + j) * d2 + l]);
                    k += 1;
                }
            }
        }
        assert_eq!(k, rdims.iter().product::<usize>());
    }

    #[test]
    fn rank1_and_rank2_regions() {
        let g1 = ChunkGrid::from_chunk_dims(Shape::D1(100), &[32]).unwrap();
        assert_eq!(g1.n_blocks(), 4);
        let r = Region::new(&[40..70]).unwrap();
        assert_eq!(g1.blocks_intersecting(&r), vec![1, 2]);

        let g2 = ChunkGrid::from_chunk_dims(Shape::D2(9, 9), &[3, 3]).unwrap();
        let r = Region::new(&[4..5, 4..5]).unwrap();
        assert_eq!(g2.blocks_intersecting(&r), vec![4]);
        let field: Vec<u16> = (0..81).collect();
        let mut buf = Vec::new();
        g2.gather(&field, 4, &mut buf);
        let mut out = vec![0u16; 1];
        g2.copy_block_region(&buf, 4, &r, &mut out);
        assert_eq!(out[0], field[4 * 9 + 4]);
    }

    #[test]
    fn region_validation() {
        assert!(Region::new(&[]).is_err());
        assert!(Region::new(&[3..3]).is_err());
        assert!(Region::new(&[0..1, 0..1, 0..1, 0..1]).is_err());
        let r = Region::new(&[0..4, 2..8]).unwrap();
        assert_eq!(r.shape(), Shape::D2(4, 6));
        assert!(r.fits(Shape::D2(4, 8)));
        assert!(!r.fits(Shape::D2(4, 7)));
        assert!(!r.fits(Shape::D1(10)));
    }

    #[test]
    fn fill_block_poisons_exact_footprint() {
        let g = ChunkGrid::from_chunk_dims(Shape::D2(4, 4), &[2, 2]).unwrap();
        let mut buf = vec![0u8; 16];
        g.fill_block(3, 9, &mut buf); // bottom-right 2×2 block
        let hits: Vec<usize> = buf
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 9)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, vec![10, 11, 14, 15]);
    }
}
