//! Container format for compressed fields.
//!
//! ```text
//! magic   b"SZR1"
//! u8      scalar tag      0 = f32, 1 = f64
//! u8      mode            see [`Mode`]
//! u8      rank            1..=3
//! varint  dims[rank]      slowest-varying first
//! ...     mode-specific body
//! ```
//!
//! Modes:
//! - **Quantized** — the normal SZ pipeline (prediction + quantization +
//!   entropy stage + optional lossless pass). Body: `f64 eb_abs`,
//!   `varint quant_bins`, `u8 predictor` (a [`crate::PredictorKind`] tag;
//!   tag 3 = regression is followed by its 16-byte 4 × f32 LE coefficient
//!   payload), `u8 lossless_flag`, `varint body_len`, body (entropy
//!   stage ‖ escape payload). The entropy stage byte is 0 (legacy
//!   single-stream Huffman), 1 (adaptive range coder) or 2 (multi-stream
//!   interleaved Huffman, written since container v3); the lossless flag
//!   is 0 (stored), 1 (legacy whole-body DEFLATE) or 2 (per-chunk backend
//!   bake-off, [`losslesskit::bakeoff`]).
//! - **Constant** — the field has zero value range; body is one sample.
//! - **Raw** — pathological inputs (e.g. zero range but NaNs present);
//!   body is the lossless-compressed little-endian sample array.
//! - **LogPointwiseRel** — pointwise-relative mode via log transform; body
//!   is a class plane, a nested Quantized container of `ln|x|`, and the
//!   bit-exact non-finite payload.
//! - **Blocked** — block-parallel Quantized pipeline: the field is split
//!   into contiguous slabs along the slowest-varying dimension, each slab
//!   runs its own prediction/quantization walk, and all slabs share one
//!   Huffman table. Body: `u8 version`, `f64 eb_abs`, `varint quant_bins`,
//!   `u8 predictor`, `u8 escape`, `u8 stage`, partition (slab
//!   `block_rows`/`n_blocks` varints for versions ≤ 3, per-axis chunk
//!   varints for versions ≥ 4), shared-table section, per-block sections.
//!   Version 3 writes entropy stage 2 inside each section; version 4
//!   switches to the chunk grid; version 5 sets the predictor byte to the
//!   `0xFF` per-block sentinel and prefixes each block body with its own
//!   predictor tag (+ regression coefficients). Versions 1–4 remain
//!   decodable.
//!
//! The byte-level specification every version of these layouts is held
//! to lives in `DESIGN.md` §13.

use crate::error::{DecodeError, SzError};
use losslesskit::varint;
use ndfield::Shape;

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"SZR1";

/// Container payload kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Standard prediction + quantization pipeline.
    Quantized = 0,
    /// Constant field stored as a single sample.
    Constant = 1,
    /// Raw (lossless) sample dump.
    Raw = 2,
    /// Log-transformed pointwise-relative pipeline.
    LogPointwiseRel = 3,
    /// Block-parallel quantized pipeline with a shared Huffman table.
    Blocked = 4,
}

impl Mode {
    fn from_u8(v: u8) -> Result<Self, SzError> {
        match v {
            0 => Ok(Mode::Quantized),
            1 => Ok(Mode::Constant),
            2 => Ok(Mode::Raw),
            3 => Ok(Mode::LogPointwiseRel),
            4 => Ok(Mode::Blocked),
            _ => Err(SzError::Format("unknown mode byte")),
        }
    }
}

/// Decoded container header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Scalar type tag (`"f32"` / `"f64"`).
    pub scalar_tag: &'static str,
    /// Payload kind.
    pub mode: Mode,
    /// Grid shape.
    pub shape: Shape,
}

/// Append a header for the given scalar tag, mode and shape.
///
/// # Errors
/// [`DecodeError::BadScalarTag`] (wrapped in [`SzError::Decode`]) if the
/// scalar tag is not one the container format can express.
pub fn write_header(
    out: &mut Vec<u8>,
    scalar_tag: &str,
    mode: Mode,
    shape: Shape,
) -> Result<(), SzError> {
    let tag_byte = match scalar_tag {
        "f32" => 0u8,
        "f64" => 1u8,
        other => {
            return Err(DecodeError::BadScalarTag {
                tag: other.to_string(),
                offset: MAGIC.len(),
            }
            .into())
        }
    };
    out.extend_from_slice(&MAGIC);
    out.push(tag_byte);
    out.push(mode as u8);
    let dims = shape.dims();
    out.push(dims.len() as u8);
    for d in dims {
        varint::write_u64(out, d as u64);
    }
    Ok(())
}

/// Parse a header, advancing `pos`.
///
/// # Errors
/// [`SzError::Decode`] with stage/offset context on bad magic, unknown
/// tags/modes, truncation, or an implausible shape.
pub fn read_header(src: &[u8], pos: &mut usize) -> Result<Header, SzError> {
    let start = *pos;
    let available = src.len().saturating_sub(start) as u64;
    if available < 7 {
        return Err(DecodeError::Truncated {
            stage: "header",
            offset: start,
            needed: 7,
            available,
        }
        .into());
    }
    if src[start..start + 4] != MAGIC {
        return Err(DecodeError::Corrupt {
            stage: "header",
            offset: start,
            what: "bad magic",
        }
        .into());
    }
    *pos += 4;
    let scalar_tag = match src[*pos] {
        0 => "f32",
        1 => "f64",
        other => {
            return Err(DecodeError::BadScalarTag {
                tag: format!("{other:#04x}"),
                offset: *pos,
            }
            .into())
        }
    };
    let mode = Mode::from_u8(src[*pos + 1])?;
    let rank = src[*pos + 2] as usize;
    *pos += 3;
    if !(1..=3).contains(&rank) {
        return Err(DecodeError::Corrupt {
            stage: "header",
            offset: *pos - 1,
            what: "rank out of range",
        }
        .into());
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let d = varint::read_u64(src, pos).map_err(SzError::from)? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(DecodeError::LimitExceeded {
                stage: "header",
                what: "dimension",
                requested: d as u64,
                limit: 1 << 40,
            }
            .into());
        }
        dims.push(d);
    }
    // Guard the total element count before any allocation.
    let total: u128 = dims.iter().map(|&d| d as u128).product();
    if total > (1 << 40) {
        return Err(DecodeError::LimitExceeded {
            stage: "header",
            what: "element count",
            requested: total.min(u64::MAX as u128) as u64,
            limit: 1 << 40,
        }
        .into());
    }
    Ok(Header {
        scalar_tag,
        mode,
        shape: Shape::from_dims(&dims),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::error::DecodeError;

    /// Test helper: build a header for a tag known to be valid.
    fn must_write(tag: &str, mode: Mode, shape: Shape) -> Vec<u8> {
        let mut buf = Vec::new();
        write_header(&mut buf, tag, mode, shape).expect("known-good scalar tag");
        buf
    }

    #[test]
    fn header_roundtrip_all_modes() {
        for mode in [
            Mode::Quantized,
            Mode::Constant,
            Mode::Raw,
            Mode::LogPointwiseRel,
            Mode::Blocked,
        ] {
            for shape in [Shape::D1(100), Shape::D2(20, 30), Shape::D3(4, 5, 6)] {
                let buf = must_write("f32", mode, shape);
                let mut pos = 0;
                let h = match read_header(&buf, &mut pos) {
                    Ok(h) => h,
                    Err(e) => panic!("round-trip header failed to parse: {e}"),
                };
                assert_eq!(pos, buf.len());
                assert_eq!(h.mode, mode);
                assert_eq!(h.shape, shape);
                assert_eq!(h.scalar_tag, "f32");
            }
        }
    }

    #[test]
    fn f64_tag_roundtrip() {
        let buf = must_write("f64", Mode::Raw, Shape::D1(7));
        let mut pos = 0;
        let h = read_header(&buf, &mut pos).expect("valid f64 header parses");
        assert_eq!(h.scalar_tag, "f64");
    }

    #[test]
    fn unknown_scalar_tag_is_a_write_error_not_a_panic() {
        let mut buf = Vec::new();
        let err = write_header(&mut buf, "f16", Mode::Quantized, Shape::D1(4))
            .expect_err("f16 is not a supported tag");
        assert!(matches!(
            err,
            SzError::Decode(DecodeError::BadScalarTag { .. })
        ));
        assert!(buf.is_empty(), "failed write must not emit partial bytes");
    }

    #[test]
    fn unknown_scalar_tag_byte_rejected_on_read() {
        let mut buf = must_write("f32", Mode::Quantized, Shape::D1(7));
        buf[4] = 7; // neither 0 (f32) nor 1 (f64)
        let mut pos = 0;
        match read_header(&buf, &mut pos) {
            Err(SzError::Decode(DecodeError::BadScalarTag { tag, offset })) => {
                assert_eq!(offset, 4);
                assert!(tag.contains("0x07"), "tag string was {tag:?}");
            }
            other => panic!("expected BadScalarTag, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = must_write("f32", Mode::Quantized, Shape::D1(7));
        buf[0] = b'X';
        let mut pos = 0;
        assert_eq!(
            read_header(&buf, &mut pos),
            Err(SzError::Decode(DecodeError::Corrupt {
                stage: "header",
                offset: 0,
                what: "bad magic",
            }))
        );
    }

    #[test]
    fn truncated_header_rejected() {
        let buf = must_write("f32", Mode::Quantized, Shape::D1(7));
        let mut pos = 0;
        assert_eq!(
            read_header(&buf[..5], &mut pos),
            Err(SzError::Decode(DecodeError::Truncated {
                stage: "header",
                offset: 0,
                needed: 7,
                available: 5,
            }))
        );
    }

    #[test]
    fn unknown_mode_rejected() {
        let mut buf = must_write("f32", Mode::Quantized, Shape::D1(7));
        buf[5] = 99;
        let mut pos = 0;
        assert_eq!(
            read_header(&buf, &mut pos),
            Err(SzError::Format("unknown mode byte"))
        );
    }

    #[test]
    fn implausible_dims_rejected() {
        // Hand-craft a header with a dimension of 2^50.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(0); // f32
        buf.push(0); // quantized
        buf.push(1); // rank 1
        varint::write_u64(&mut buf, 1u64 << 50);
        let mut pos = 0;
        match read_header(&buf, &mut pos) {
            Err(SzError::Decode(DecodeError::LimitExceeded { what, .. })) => {
                assert_eq!(what, "dimension");
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn implausible_element_count_rejected() {
        // Each dim is legal (2^20) but the product 2^60 is not.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(0); // f32
        buf.push(0); // quantized
        buf.push(3); // rank 3
        for _ in 0..3 {
            varint::write_u64(&mut buf, 1u64 << 20);
        }
        let mut pos = 0;
        match read_header(&buf, &mut pos) {
            Err(SzError::Decode(DecodeError::LimitExceeded { what, .. })) => {
                assert_eq!(what, "element count");
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }
}
