//! Random-access region reads over blocked containers.
//!
//! [`SzStore`] parses a blocked container's directory **once** at open
//! time, then serves [`SzStore::read_region`] calls by decoding **only the
//! blocks whose footprint intersects the requested region** and assembling
//! the output with strided copies — a full-field buffer is never
//! materialized. Any v2+ blocked container works: the v4 chunk-grid layout
//! makes 2-D/3-D regions touch few blocks, while v2/v3 slab containers are
//! served as degenerate 1×…×N grids (region reads still skip
//! non-intersecting slabs along axis 0).
//!
//! Decoded blocks sit behind a sharded, byte-budgeted LRU cache of
//! `Arc<[T]>`-style entries, so the store is `Sync`: concurrent readers
//! share one decode per block, the hot hit path takes only its shard's
//! mutex for a map probe, and a *cold* block is decoded exactly once even
//! when many threads request it simultaneously (single-flight: later
//! requesters block on a condvar until the first decode publishes its
//! result). Eviction is lazy textbook LRU — touches append `(block,
//! stamp)` tickets to a deque and stale tickets are skipped/compacted —
//! with the budget split evenly across shards.
//!
//! Every cache and decode event feeds both a store-local atomic counter
//! set ([`SzStore::stats`], used by tests to reconcile hit/miss accounting
//! exactly) and the process-wide `fpsnr-obs` registry under `store.*`
//! (used by `fpsnr serve` for its hit-rate / bytes-decoded-per-byte-served
//! report).

use crate::blocked::{
    self, decode_block_body, read_section_desc, read_shared_table, BlockedParams,
};
use crate::compressor::{
    check_type_and_limits, split_and_check_crc, take, undo_lossless_bounded, DecodeLimits,
};
use crate::error::{DecodeError, SzError};
use crate::format::{self, Mode};
use crate::grid::{ChunkGrid, Region};
use losslesskit::crc32::crc32;
use losslesskit::huffman::HuffmanCodec;
use ndfield::{Field, Scalar};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Cache shards. A power of two so the block-index modulo is a mask; 16
/// keeps shard contention negligible at typical reader counts while the
/// per-shard budget stays coarse enough to hold multi-megabyte blocks.
const SHARDS: usize = 16;

/// Tuning knobs for [`SzStore::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Byte budget for decoded blocks across all cache shards (default
    /// 64 MiB). `0` disables caching entirely: every read decodes its
    /// blocks afresh (concurrent requests for the same block still share
    /// one in-flight decode).
    pub cache_budget: usize,
    /// Resource caps applied while parsing and decoding untrusted bytes.
    pub limits: DecodeLimits,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            cache_budget: 64 << 20,
            limits: DecodeLimits::default(),
        }
    }
}

/// Monotonic counter snapshot returned by [`SzStore::stats`].
///
/// The invariants tests reconcile: `hits + misses + waits` equals the
/// total block requests issued by `read_region`/`block` calls, and
/// `blocks_decoded == misses` on an undamaged container (a miss is the
/// requester that performed the decode; a wait piggybacked on one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Block requests served straight from the cache.
    pub hits: u64,
    /// Block requests that decoded the block themselves.
    pub misses: u64,
    /// Block requests that blocked on another thread's in-flight decode.
    pub waits: u64,
    /// Cache entries evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Blocks decoded successfully.
    pub blocks_decoded: u64,
    /// Decoded-sample bytes produced by those block decodes.
    pub bytes_decoded: u64,
    /// `read_region` calls completed.
    pub regions: u64,
    /// Output-sample bytes returned by those calls.
    pub bytes_served: u64,
    /// Blocks currently resident in the cache.
    pub cached_blocks: u64,
    /// Bytes currently resident in the cache.
    pub cached_bytes: u64,
}

impl StoreStats {
    /// Total block requests (hits + misses + waits).
    pub fn block_requests(&self) -> u64 {
        self.hits + self.misses + self.waits
    }

    /// Fraction of block requests served without decoding (hits + waits
    /// count a wait as a shared decode). 1.0 when no requests were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.block_requests();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Bytes decoded per byte served — the random-access win metric. A
    /// full-field decode scores ≥ 1; warm-cache region reads approach 0.
    pub fn decode_amplification(&self) -> f64 {
        self.bytes_decoded as f64 / self.bytes_served.max(1) as f64
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    evictions: AtomicU64,
    blocks_decoded: AtomicU64,
    bytes_decoded: AtomicU64,
    regions: AtomicU64,
    bytes_served: AtomicU64,
}

/// One block's location inside the container bytes.
struct BlockSection {
    flag: u8,
    crc: u32,
    off: usize,
    len: usize,
}

/// A finished or in-flight decode other threads can rendezvous on.
struct Flight<T> {
    done: Mutex<Option<Result<Arc<Vec<T>>, SzError>>>,
    cv: Condvar,
}

struct CacheEntry<T> {
    data: Arc<Vec<T>>,
    bytes: usize,
    stamp: u64,
}

struct Shard<T> {
    map: HashMap<usize, CacheEntry<T>>,
    /// Lazy-LRU tickets: `(block, stamp)`; a ticket is live only while it
    /// matches the map entry's current stamp.
    lru: VecDeque<(usize, u64)>,
    bytes: usize,
    tick: u64,
    inflight: HashMap<usize, Arc<Flight<T>>>,
}

impl<T> Shard<T> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            lru: VecDeque::new(),
            bytes: 0,
            tick: 0,
            inflight: HashMap::new(),
        }
    }

    fn touch(&mut self, b: usize) -> Option<Arc<Vec<T>>> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(&b)?;
        e.stamp = tick;
        let data = Arc::clone(&e.data);
        self.lru.push_back((b, tick));
        self.maybe_compact();
        Some(data)
    }

    /// Drop stale tickets once they dominate the deque, bounding its
    /// length at a small multiple of the live entry count.
    fn maybe_compact(&mut self) {
        if self.lru.len() > 4 * self.map.len() + 8 {
            let map = &self.map;
            self.lru
                .retain(|&(b, stamp)| map.get(&b).is_some_and(|e| e.stamp == stamp));
        }
    }
}

/// A thread-safe random-access view of one compressed blocked container.
///
/// See the module docs for the architecture; [`SzStore::read_region`] is
/// the workhorse. The store is cheap to share (`Arc<SzStore<T>>`) and all
/// methods take `&self`.
pub struct SzStore<T: Scalar> {
    bytes: Vec<u8>,
    version: u8,
    params: BlockedParams,
    codec: Option<HuffmanCodec>,
    sections: Vec<BlockSection>,
    max_body: usize,
    budget_per_shard: usize,
    shards: Vec<Mutex<Shard<T>>>,
    counters: Counters,
}

impl<T: Scalar> SzStore<T> {
    /// Open a blocked container for random access with default options.
    ///
    /// # Errors
    /// [`SzError`] when the bytes are not a clean blocked container of
    /// scalar type `T` with a per-block directory (v2+). v1 blocked
    /// containers and the monolithic modes have no random-access
    /// directory — re-encode to serve region reads.
    pub fn open(bytes: &[u8]) -> Result<Self, SzError> {
        Self::open_with(bytes.to_vec(), StoreOptions::default())
    }

    /// [`SzStore::open`] taking ownership of the bytes, with explicit
    /// cache-budget and decode-limit options.
    ///
    /// # Errors
    /// As [`SzStore::open`].
    pub fn open_with(bytes: Vec<u8>, opts: StoreOptions) -> Result<Self, SzError> {
        // Parse phase: everything below borrows `bytes`, so collect plain
        // offsets/owned values first and build the store after.
        let (version, params, codec, sections) = {
            let (body, _crc_ok) = split_and_check_crc(&bytes, true)?;
            let mut pos = 0usize;
            let header = format::read_header(body, &mut pos)?;
            check_type_and_limits::<T>(&header, &opts.limits)?;
            if header.mode != Mode::Blocked {
                return Err(SzError::Format(
                    "random-access store requires a blocked container",
                ));
            }
            let (version, params) = blocked::read_params(body, &mut pos, &header)?;
            if version < 2 {
                return Err(SzError::Format(
                    "v1 blocked containers have no per-block directory; re-encode for random access",
                ));
            }
            let n_blocks = params.grid.n_blocks();
            let table_desc = if params.stage != 1 {
                Some(read_section_desc(body, &mut pos)?)
            } else {
                None
            };
            let mut dir = Vec::with_capacity(n_blocks.min(body.len()));
            for _ in 0..n_blocks {
                dir.push(read_section_desc(body, &mut pos)?);
            }
            // Meta-CRC over everything up to (excluding) itself: a flipped
            // directory varint must not mis-slice every later payload.
            let meta_end = pos;
            let stored = {
                let b = take(body, &mut pos, 4)?;
                u32::from_le_bytes([b[0], b[1], b[2], b[3]])
            };
            if crc32(&body[..meta_end]) != stored {
                return Err(DecodeError::CrcMismatch {
                    stage: "blocked directory",
                    offset: meta_end,
                }
                .into());
            }
            let codec = match table_desc {
                Some(d) => {
                    let off = pos;
                    let payload = take(body, &mut pos, d.comp_len)?;
                    if crc32(payload) != d.crc {
                        return Err(DecodeError::CrcMismatch {
                            stage: "shared table",
                            offset: off,
                        }
                        .into());
                    }
                    let table = undo_lossless_bounded(
                        d.flag,
                        payload,
                        opts.limits.max_body_bytes(),
                    )?;
                    let mut tpos = 0usize;
                    Some(read_shared_table(&table, &mut tpos)?)
                }
                None => None,
            };
            let mut sections = Vec::with_capacity(n_blocks);
            for d in &dir {
                let off = pos;
                take(body, &mut pos, d.comp_len)?;
                sections.push(BlockSection {
                    flag: d.flag,
                    crc: d.crc,
                    off,
                    len: d.comp_len,
                });
            }
            (version, params, codec, sections)
        };
        Ok(SzStore {
            bytes,
            version,
            params,
            codec,
            sections,
            max_body: opts.limits.max_body_bytes(),
            budget_per_shard: if opts.cache_budget == 0 {
                0
            } else {
                (opts.cache_budget / SHARDS).max(1)
            },
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            counters: Counters::default(),
        })
    }

    /// The stored field's shape.
    pub fn shape(&self) -> ndfield::Shape {
        self.params.grid.shape()
    }

    /// The container's chunk-grid partition.
    pub fn grid(&self) -> &ChunkGrid {
        &self.params.grid
    }

    /// The blocked-container version byte (2 through 5).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Decode the sub-field covered by `region`, touching only the blocks
    /// that intersect it.
    ///
    /// Bit-identical to slicing the same region out of a full
    /// [`crate::decompress`] of the container (Theorem 1 holds per block,
    /// and blocks decode independently of which region requested them).
    ///
    /// # Errors
    /// [`SzError::BadConfig`] when the region's rank or extent doesn't fit
    /// the stored shape; decode errors when an intersecting block is
    /// damaged.
    pub fn read_region(&self, region: &Region) -> Result<Field<T>, SzError> {
        let _span = fpsnr_obs::span("store.read");
        if !region.fits(self.shape()) {
            return Err(SzError::BadConfig(format!(
                "region (rank {}) does not fit the stored shape {:?}",
                region.rank(),
                self.shape().dims()
            )));
        }
        let out_shape = region.shape();
        let mut out = vec![T::default(); out_shape.len()];
        for b in self.params.grid.blocks_intersecting(region) {
            let block = self.block(b)?;
            self.params
                .grid
                .copy_block_region(&block, b, region, &mut out);
        }
        self.counters.regions.fetch_add(1, Ordering::Relaxed);
        let served = (out.len() * T::BYTES) as u64;
        self.counters
            .bytes_served
            .fetch_add(served, Ordering::Relaxed);
        fpsnr_obs::add("store.read.regions", 1);
        fpsnr_obs::add("store.read.bytes_served", served);
        Ok(Field::from_vec(out_shape, out))
    }

    /// Fetch one decoded block (cache-aware, single-flight). The `Arc` is
    /// shared with the cache and any concurrent requester.
    ///
    /// # Errors
    /// Decode errors when the block payload is damaged (errors are
    /// propagated to concurrent waiters but never cached — a transient
    /// reader pile-up on a damaged block retries the decode).
    pub fn block(&self, b: usize) -> Result<Arc<Vec<T>>, SzError> {
        debug_assert!(b < self.sections.len());
        let shard_i = b % SHARDS;
        loop {
            let mut shard = self.shards[shard_i].lock().expect("store shard lock");
            if let Some(data) = shard.touch(b) {
                drop(shard);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                fpsnr_obs::add("store.cache.hit", 1);
                return Ok(data);
            }
            if let Some(flight) = shard.inflight.get(&b) {
                let flight = Arc::clone(flight);
                drop(shard);
                self.counters.waits.fetch_add(1, Ordering::Relaxed);
                fpsnr_obs::add("store.cache.wait", 1);
                let mut done = flight.done.lock().expect("flight lock");
                while done.is_none() {
                    done = flight.cv.wait(done).expect("flight wait");
                }
                return done.clone().expect("flight published");
            }
            // Cold miss: claim the flight, decode outside the shard lock,
            // publish to cache and waiters.
            let flight = Arc::new(Flight {
                done: Mutex::new(None),
                cv: Condvar::new(),
            });
            shard.inflight.insert(b, Arc::clone(&flight));
            drop(shard);
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            fpsnr_obs::add("store.cache.miss", 1);

            let result = self.decode_block_uncached(b).map(Arc::new);

            let mut shard = self.shards[shard_i].lock().expect("store shard lock");
            shard.inflight.remove(&b);
            if let Ok(data) = &result {
                self.insert_and_evict(&mut shard, b, Arc::clone(data));
            }
            drop(shard);
            *flight.done.lock().expect("flight lock") = Some(result.clone());
            flight.cv.notify_all();
            return result;
        }
    }

    fn insert_and_evict(&self, shard: &mut Shard<T>, b: usize, data: Arc<Vec<T>>) {
        if self.budget_per_shard == 0 {
            return;
        }
        shard.tick += 1;
        let stamp = shard.tick;
        let bytes = data.len() * T::BYTES;
        shard.bytes += bytes;
        shard.map.insert(
            b,
            CacheEntry {
                data,
                bytes,
                stamp,
            },
        );
        shard.lru.push_back((b, stamp));
        // Evict least-recently-used live entries until back inside the
        // budget, always retaining the entry just inserted (a block larger
        // than the whole per-shard budget still caches — evicting it
        // immediately would defeat warm repeats).
        while shard.bytes > self.budget_per_shard && shard.map.len() > 1 {
            let Some((victim, vstamp)) = shard.lru.pop_front() else {
                break;
            };
            let live = shard
                .map
                .get(&victim)
                .is_some_and(|e| e.stamp == vstamp);
            if live && victim != b {
                let e = shard.map.remove(&victim).expect("live victim");
                shard.bytes -= e.bytes;
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                fpsnr_obs::add("store.cache.evict", 1);
            } else if live {
                // The just-inserted entry reached the front: everything
                // else is stale tickets. Put it back and stop.
                shard.lru.push_front((victim, vstamp));
                break;
            }
        }
        shard.maybe_compact();
    }

    /// Decode block `b` straight from the container bytes (CRC check,
    /// lossless undo, shared per-block decode routine).
    fn decode_block_uncached(&self, b: usize) -> Result<Vec<T>, SzError> {
        let _span = fpsnr_obs::span("store.decode");
        let sec = &self.sections[b];
        let payload = &self.bytes[sec.off..sec.off + sec.len];
        if crc32(payload) != sec.crc {
            return Err(DecodeError::CrcMismatch {
                stage: "block payload",
                offset: sec.off,
            }
            .into());
        }
        let body = undo_lossless_bounded(sec.flag, payload, self.max_body)?;
        let bshape = self.params.grid.block_shape(b);
        let samples =
            decode_block_body::<T>(&body, bshape, &self.params, self.codec.as_ref())?;
        if samples.len() != bshape.len() {
            return Err(SzError::Format("blocked payload sample count mismatch"));
        }
        self.counters.blocks_decoded.fetch_add(1, Ordering::Relaxed);
        let decoded = (samples.len() * T::BYTES) as u64;
        self.counters
            .bytes_decoded
            .fetch_add(decoded, Ordering::Relaxed);
        fpsnr_obs::add("store.decode.blocks", 1);
        fpsnr_obs::add("store.decode.bytes", decoded);
        Ok(samples)
    }

    /// Snapshot the store's counters (plus current cache residency).
    pub fn stats(&self) -> StoreStats {
        let mut cached_blocks = 0u64;
        let mut cached_bytes = 0u64;
        for shard in &self.shards {
            let s = shard.lock().expect("store shard lock");
            cached_blocks += s.map.len() as u64;
            cached_bytes += s.bytes as u64;
        }
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            waits: self.counters.waits.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            blocks_decoded: self.counters.blocks_decoded.load(Ordering::Relaxed),
            bytes_decoded: self.counters.bytes_decoded.load(Ordering::Relaxed),
            regions: self.counters.regions.load(Ordering::Relaxed),
            bytes_served: self.counters.bytes_served.load(Ordering::Relaxed),
            cached_blocks,
            cached_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::{compress, decompress};
    use crate::config::{ErrorBound, SzConfig};
    use ndfield::{Field, Shape};

    fn field_3d(d0: usize, d1: usize, d2: usize) -> Field<f32> {
        Field::from_fn_3d(d0, d1, d2, |i, j, k| {
            ((i as f32) * 0.11).sin() + ((j as f32) * 0.07).cos() * ((k as f32) * 0.05).sin()
        })
    }

    fn grid_container(d: usize, chunk: usize) -> (Field<f32>, Vec<u8>) {
        let field = field_3d(d, d, d);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_chunk_dims([chunk; 3]);
        let bytes = compress(&field, &cfg).unwrap();
        (field, bytes)
    }

    #[test]
    fn region_read_matches_full_decode_slice() {
        let (_, bytes) = grid_container(24, 8);
        let full: Field<f32> = decompress(&bytes).unwrap();
        let store: SzStore<f32> = SzStore::open(&bytes).unwrap();
        let region = Region::new(&[5..14, 0..24, 7..9]).unwrap();
        let got = store.read_region(&region).unwrap();
        assert_eq!(got.shape(), Shape::D3(9, 24, 2));
        let mut k = 0;
        for i in 5..14 {
            for j in 0..24 {
                for l in 7..9 {
                    let want = full.as_slice()[(i * 24 + j) * 24 + l];
                    assert_eq!(got.as_slice()[k].to_bits(), want.to_bits());
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn small_region_decodes_few_blocks() {
        let (_, bytes) = grid_container(24, 8); // 3×3×3 = 27 blocks
        let store: SzStore<f32> = SzStore::open(&bytes).unwrap();
        let region = Region::new(&[0..8, 8..16, 16..24]).unwrap();
        store.read_region(&region).unwrap();
        let s = store.stats();
        assert_eq!(s.blocks_decoded, 1, "chunk-aligned region is one block");
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn warm_repeat_reads_do_zero_decodes() {
        let (_, bytes) = grid_container(16, 8);
        let store: SzStore<f32> = SzStore::open(&bytes).unwrap();
        let region = Region::new(&[2..14, 2..14, 2..14]).unwrap();
        let a = store.read_region(&region).unwrap();
        let decoded_cold = store.stats().blocks_decoded;
        assert!(decoded_cold > 0);
        let b = store.read_region(&region).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        let s = store.stats();
        assert_eq!(s.blocks_decoded, decoded_cold, "warm read decoded blocks");
        assert!(s.hits >= decoded_cold);
        assert_eq!(s.block_requests(), s.hits + s.misses);
    }

    #[test]
    fn zero_budget_disables_caching_but_still_reads() {
        let (_, bytes) = grid_container(16, 8);
        let store = SzStore::<f32>::open_with(
            bytes,
            StoreOptions {
                cache_budget: 0,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let region = Region::new(&[0..16, 0..16, 0..16]).unwrap();
        store.read_region(&region).unwrap();
        store.read_region(&region).unwrap();
        let s = store.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 16);
        assert_eq!(s.cached_blocks, 0);
    }

    #[test]
    fn tiny_budget_evicts_but_stays_correct() {
        let (_, bytes) = grid_container(24, 6); // 4³ = 64 blocks of 6³ f32 = 864 B
        let full: Field<f32> = decompress(&bytes).unwrap();
        let store = SzStore::<f32>::open_with(
            bytes,
            StoreOptions {
                cache_budget: 8 * 1024, // far below the ~55 KiB working set
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for pass in 0..3 {
            let region = Region::new(&[0..24, 0..24, 0..24]).unwrap();
            let got = store.read_region(&region).unwrap();
            assert_eq!(got.as_slice(), full.as_slice(), "pass {pass}");
        }
        let s = store.stats();
        assert!(s.evictions > 0, "budget never forced an eviction");
        // Per-shard budget is 512 B < one 864 B block, and each shard
        // retains its most recent entry: steady state is one block per
        // shard, far below the 55 KiB working set.
        assert!(s.cached_bytes <= 16 * 864, "cache blew its floor");
        assert!(s.cached_blocks <= 16);
        assert_eq!(s.block_requests(), s.hits + s.misses);
    }

    #[test]
    fn slab_containers_serve_region_reads() {
        let field = field_3d(20, 12, 10);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(2)
            .with_block_rows(4);
        let bytes = compress(&field, &cfg).unwrap();
        let full: Field<f32> = decompress(&bytes).unwrap();
        let store: SzStore<f32> = SzStore::open(&bytes).unwrap();
        assert_eq!(store.version(), 3);
        assert!(store.grid().is_slab());
        let region = Region::new(&[9..12, 3..7, 0..10]).unwrap();
        let got = store.read_region(&region).unwrap();
        let mut k = 0;
        for i in 9..12 {
            for j in 3..7 {
                for l in 0..10 {
                    assert_eq!(
                        got.as_slice()[k].to_bits(),
                        full.as_slice()[(i * 12 + j) * 10 + l].to_bits()
                    );
                    k += 1;
                }
            }
        }
        // Rows 9..12 with block_rows 4 touch one slab (rows 8..12).
        assert_eq!(store.stats().blocks_decoded, 1);
    }

    #[test]
    fn open_rejects_monolithic_and_wrong_type() {
        let field = field_3d(8, 8, 8);
        let mono = compress(&field, &SzConfig::new(ErrorBound::Abs(1e-3))).unwrap();
        assert!(SzStore::<f32>::open(&mono).is_err());
        let (_, blocked) = grid_container(16, 8);
        assert!(SzStore::<f64>::open(&blocked).is_err());
        assert!(SzStore::<f32>::open(&blocked).is_ok());
    }

    #[test]
    fn open_rejects_corrupt_container() {
        let (_, mut bytes) = grid_container(16, 8);
        let n = bytes.len();
        bytes[n - 2] ^= 0x40; // outer CRC trailer
        assert!(SzStore::<f32>::open(&bytes).is_err());
    }

    #[test]
    fn damaged_block_errors_only_regions_touching_it() {
        let (_, bytes) = grid_container(24, 8);
        let store_clean: SzStore<f32> = SzStore::open(&bytes).unwrap();
        // Find block 0's payload offset by decoding it once, then flip a
        // byte inside it and rebuild the outer CRC so open() succeeds.
        let sec0 = (store_clean.sections[0].off, store_clean.sections[0].len);
        let mut dam = bytes.clone();
        dam[sec0.0 + sec0.1 / 2] ^= 0xFF;
        let body_len = dam.len() - 4;
        let crc = crc32(&dam[..body_len]).to_le_bytes();
        dam[body_len..].copy_from_slice(&crc);
        let store: SzStore<f32> = SzStore::open(&dam).unwrap();
        // Block 0 covers [0..8]³; a far-away region still reads fine.
        let far = Region::new(&[16..24, 16..24, 16..24]).unwrap();
        assert!(store.read_region(&far).is_ok());
        let near = Region::new(&[0..4, 0..4, 0..4]).unwrap();
        assert!(store.read_region(&near).is_err());
        // Errors are not cached: stats show a decode attempt per try.
        assert!(store.read_region(&near).is_err());
        let s = store.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.blocks_decoded, 1, "only the clean far block decoded");
    }

    #[test]
    fn region_must_fit_shape() {
        let (_, bytes) = grid_container(16, 8);
        let store: SzStore<f32> = SzStore::open(&bytes).unwrap();
        assert!(store
            .read_region(&Region::new(&[0..17, 0..16, 0..16]).unwrap())
            .is_err());
        assert!(store.read_region(&Region::new(&[0..4, 0..4]).unwrap()).is_err());
    }

    #[test]
    fn concurrent_readers_share_decodes() {
        use std::sync::Arc;
        let (_, bytes) = grid_container(24, 8);
        let full: Field<f32> = decompress(&bytes).unwrap();
        let store = Arc::new(SzStore::<f32>::open(&bytes).unwrap());
        let full = Arc::new(full);
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            let full = Arc::clone(&full);
            handles.push(std::thread::spawn(move || {
                for r in 0..6 {
                    let lo = (t + r) % 12;
                    let region =
                        Region::new(&[lo..lo + 9, 0..24, lo..lo + 12]).unwrap();
                    let got = store.read_region(&region).unwrap();
                    let mut k = 0;
                    for i in lo..lo + 9 {
                        for j in 0..24 {
                            for l in lo..lo + 12 {
                                assert_eq!(
                                    got.as_slice()[k].to_bits(),
                                    full.as_slice()[(i * 24 + j) * 24 + l].to_bits()
                                );
                                k += 1;
                            }
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = store.stats();
        assert_eq!(s.block_requests(), s.hits + s.misses + s.waits);
        assert_eq!(s.blocks_decoded, s.misses);
        // The cache fits everything: 27 blocks decode at most once each.
        assert!(s.blocks_decoded <= 27, "{} decodes", s.blocks_decoded);
    }
}
