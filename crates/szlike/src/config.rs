//! Compressor configuration: error-bound modes, bin counts, backends.

use crate::error::SzError;
use crate::predictor::PredictorKind;
pub use losslesskit::lz77::Effort;

/// Pointwise error-control mode (SZ §II-B of the paper).
///
/// The fixed-PSNR mode of the paper is *not* listed here on purpose: it
/// lives one layer up in `fpsnr-core`, which derives a
/// [`ErrorBound::ValueRangeRel`] bound from the PSNR target (Eq. 8) and then
/// invokes this compressor — exactly how the paper implements it on top of
/// unmodified SZ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|x − x̃| ≤ eb` for every sample.
    Abs(f64),
    /// Value-range-relative bound: `|x − x̃| ≤ eb_rel · (max − min)`.
    ValueRangeRel(f64),
    /// Pointwise relative bound `|x − x̃| ≤ eb·|x|`, implemented by
    /// compressing `ln|x|` with an absolute bound (the SZ 2.x
    /// log-transform scheme). Signs and zeros are stored exactly.
    PointwiseRel(f64),
}

impl ErrorBound {
    /// Resolve the mode to the absolute bound used by the quantizer, given
    /// the field's value range.
    ///
    /// # Errors
    /// Rejects non-finite or negative bounds, and zero bounds (SZ treats
    /// `eb = 0` as an error; use a lossless compressor instead).
    pub fn absolute(&self, value_range: f64) -> Result<f64, SzError> {
        let raw = match *self {
            ErrorBound::Abs(eb) => eb,
            ErrorBound::ValueRangeRel(rel) => rel * value_range,
            ErrorBound::PointwiseRel(eb) => {
                // In log space the absolute bound is ln(1 + eb) (a value
                // reconstructed within that log-distance is within a factor
                // 1±eb of the original).
                if !(eb.is_finite() && eb > 0.0) {
                    return Err(SzError::BadBound(format!(
                        "pointwise relative bound must be finite and positive, got {eb}"
                    )));
                }
                (1.0 + eb).ln()
            }
        };
        if !raw.is_finite() || raw < 0.0 {
            return Err(SzError::BadBound(format!(
                "resolved absolute bound is {raw}"
            )));
        }
        Ok(raw)
    }
}

/// Which entropy coder encodes the quantization-code stream (SZ step 2's
/// "customized Huffman"; the adaptive range coder is the ablation
/// alternative — better ratio on heavily peaked code distributions, slower).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntropyCoder {
    /// Canonical Huffman with a serialized table (SZ's choice).
    Huffman,
    /// Adaptive range coder (no table; fractional-bit codes).
    Range,
}

/// How escaped (unpredictable) samples are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeCoding {
    /// Full IEEE bits — zero error on escapes (this library's default:
    /// strictly better quality at a small ratio cost on the escape tail).
    Exact,
    /// SZ 1.4's binary-representation truncation: keep only the mantissa
    /// bits the error bound requires (escape error ≤ eb, smaller streams).
    Truncated,
}

/// Which implementation runs the quantized walk (and its decode mirror).
///
/// Both produce **bit-identical containers** — the fused kernels replicate
/// the reference walk's floating-point evaluation order operation for
/// operation — so this knob only trades implementation strategy, never
/// bytes. The reference walk is kept as the correctness oracle for the
/// differential test suite and as a readable spec of the walk semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Fused predict–quantize–encode kernels: boundary/interior region
    /// decomposition with branch-free, dimensionality-specialized interior
    /// loops (default).
    Fused,
    /// The per-element reference walk with generic stencil dispatch.
    Reference,
}

/// Which lossless backend runs over the entropy-coded payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LosslessBackend {
    /// Store the Huffman bytes as-is (fastest; ratio left on the table).
    None,
    /// Per-chunk entropy bake-off ([`losslesskit::bakeoff`]): each 256 KiB
    /// chunk of the serialized body independently picks stored, DEFLATE-like
    /// LZ77+Huffman, order-0 Huffman or adaptive range coding, whichever
    /// measures smallest (default).
    Lz,
}

/// Full compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SzConfig {
    /// Pointwise error-control mode.
    pub bound: ErrorBound,
    /// Total quantization bins `2n` (paper's notation) — the *cap* when
    /// [`SzConfig::auto_intervals`] is on. SZ's default is 65536; must be
    /// an even value ≥ 4.
    pub quant_bins: usize,
    /// SZ 1.4's adaptive interval selection: sample the prediction errors
    /// and pick the smallest power-of-two bin count covering at least
    /// [`SzConfig::pred_threshold`] of them (points outside become
    /// bit-exact escapes). Smaller alphabets entropy-code better, and the
    /// ~1% of near-exact escapes is part of why real SZ lands slightly
    /// *above* the Eq. 7 PSNR estimate.
    pub auto_intervals: bool,
    /// Coverage target for the interval selection (SZ's `predThreshold`;
    /// 0.97, the value SZ's shipped `sz.config` uses).
    pub pred_threshold: f64,
    /// Prediction stencil (SZ 1.4 default: first-order Lorenzo). `Auto`
    /// samples both stencils per field and keeps the better one, echoing
    /// early SZ's best-fit predictor selection.
    pub predictor: PredictorKind,
    /// Entropy coder for the quantization codes.
    pub entropy: EntropyCoder,
    /// Storage scheme for escaped samples.
    pub escape: EscapeCoding,
    /// Lossless backend for stage 3.
    pub lossless: LosslessBackend,
    /// LZ77 match effort for the lossless stage.
    pub effort: Effort,
    /// Worker threads for the block-parallel path (0 = auto-detect, 1 =
    /// monolithic single pass). The container bytes never depend on this —
    /// only on [`SzConfig::block_rows`] — so any thread count decodes any
    /// blocked stream and re-encoding with more threads is byte-identical.
    pub threads: usize,
    /// Rows (slowest-varying-dimension slices) per block in the blocked
    /// path; 0 = derive from the shape. The blocked container is used when
    /// `threads != 1`, `block_rows > 0`, or `chunk_dims` is set.
    pub block_rows: usize,
    /// Per-axis chunk extents for the multi-dimensional chunk-grid layout
    /// (container v4). All-zero (the default) keeps the slab layout; a
    /// non-zero entry cuts that axis into chunks of that extent, and a
    /// zero entry inside a non-zero request means "full extent on this
    /// axis". Trailing entries beyond the field's rank must be zero. Chunk
    /// grids make random-access region reads cheap along every axis
    /// (see `szlike::store`) at a small ratio cost from the extra
    /// per-block framing.
    pub chunk_dims: [usize; 3],
    /// Which walk implementation runs the hot loop. Container bytes are
    /// identical either way; [`KernelMode::Fused`] is the fast default.
    pub kernel: KernelMode,
}

impl SzConfig {
    /// Configuration with SZ defaults (65536-bin cap, fixed intervals, LZ
    /// backend).
    pub fn new(bound: ErrorBound) -> Self {
        SzConfig {
            bound,
            quant_bins: 65536,
            auto_intervals: false,
            pred_threshold: 0.97,
            predictor: PredictorKind::Lorenzo1,
            entropy: EntropyCoder::Huffman,
            escape: EscapeCoding::Exact,
            lossless: LosslessBackend::Lz,
            effort: Effort::Default,
            threads: 1,
            block_rows: 0,
            chunk_dims: [0; 3],
            kernel: KernelMode::Fused,
        }
    }

    /// Enable SZ 1.4-style adaptive interval selection.
    pub fn with_auto_intervals(mut self, on: bool) -> Self {
        self.auto_intervals = on;
        self
    }

    /// Override the prediction stencil.
    pub fn with_predictor(mut self, kind: PredictorKind) -> Self {
        self.predictor = kind;
        self
    }

    /// Override the entropy coder.
    pub fn with_entropy(mut self, coder: EntropyCoder) -> Self {
        self.entropy = coder;
        self
    }

    /// Override the escape storage scheme.
    pub fn with_escape(mut self, escape: EscapeCoding) -> Self {
        self.escape = escape;
        self
    }

    /// Override the quantization bin count.
    pub fn with_quant_bins(mut self, bins: usize) -> Self {
        self.quant_bins = bins;
        self
    }

    /// Override the lossless backend.
    pub fn with_lossless(mut self, backend: LosslessBackend) -> Self {
        self.lossless = backend;
        self
    }

    /// Set the worker-thread count for the blocked path (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the block size in slowest-dimension rows (0 = auto).
    pub fn with_block_rows(mut self, rows: usize) -> Self {
        self.block_rows = rows;
        self
    }

    /// Request the multi-dimensional chunk-grid layout (container v4) with
    /// the given per-axis chunk extents. Entries beyond the field's rank
    /// must be zero; a zero entry means "full extent on this axis".
    pub fn with_chunk_dims(mut self, chunk_dims: [usize; 3]) -> Self {
        self.chunk_dims = chunk_dims;
        self
    }

    /// Select the walk implementation (fused kernels vs reference oracle).
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Validate structural parameters (bin count parity and range).
    ///
    /// # Errors
    /// [`SzError::BadConfig`] when the bin count is odd, too small, or too
    /// large for the `u32` code space.
    pub fn validate(&self) -> Result<(), SzError> {
        if self.quant_bins < 4 || self.quant_bins % 2 != 0 {
            return Err(SzError::BadConfig(format!(
                "quant_bins must be an even value >= 4, got {}",
                self.quant_bins
            )));
        }
        if self.quant_bins > (1 << 24) {
            return Err(SzError::BadConfig(format!(
                "quant_bins {} exceeds the 2^24 code-space cap",
                self.quant_bins
            )));
        }
        if !(0.0..=1.0).contains(&self.pred_threshold) || !self.pred_threshold.is_finite() {
            return Err(SzError::BadConfig(format!(
                "pred_threshold must be in [0, 1], got {}",
                self.pred_threshold
            )));
        }
        if self.threads > 4096 {
            return Err(SzError::BadConfig(format!(
                "threads {} exceeds the 4096 sanity cap",
                self.threads
            )));
        }
        if self.chunk_dims != [0; 3] && self.block_rows > 0 {
            return Err(SzError::BadConfig(
                "block_rows and chunk_dims are mutually exclusive: the chunk \
                 grid already fixes the axis-0 extent"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_mode_passes_through() {
        assert_eq!(ErrorBound::Abs(0.5).absolute(100.0).unwrap(), 0.5);
    }

    #[test]
    fn rel_mode_scales_with_range() {
        assert_eq!(
            ErrorBound::ValueRangeRel(1e-3).absolute(200.0).unwrap(),
            0.2
        );
    }

    #[test]
    fn pointwise_rel_uses_log_bound() {
        let eb = ErrorBound::PointwiseRel(0.01).absolute(1.0).unwrap();
        assert!((eb - 1.01f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn nan_bound_rejected() {
        assert!(ErrorBound::Abs(f64::NAN).absolute(1.0).is_err());
        assert!(ErrorBound::ValueRangeRel(f64::INFINITY).absolute(1.0).is_err());
        assert!(ErrorBound::PointwiseRel(-0.5).absolute(1.0).is_err());
    }

    #[test]
    fn negative_bound_rejected() {
        assert!(ErrorBound::Abs(-1.0).absolute(1.0).is_err());
    }

    #[test]
    fn zero_range_rel_bound_resolves_to_zero() {
        // Constant field: eb_abs = 0; the compressor special-cases it.
        assert_eq!(ErrorBound::ValueRangeRel(1e-3).absolute(0.0).unwrap(), 0.0);
    }

    #[test]
    fn config_validation() {
        assert!(SzConfig::new(ErrorBound::Abs(1.0)).validate().is_ok());
        assert!(SzConfig::new(ErrorBound::Abs(1.0))
            .with_quant_bins(5)
            .validate()
            .is_err());
        assert!(SzConfig::new(ErrorBound::Abs(1.0))
            .with_quant_bins(2)
            .validate()
            .is_err());
        assert!(SzConfig::new(ErrorBound::Abs(1.0))
            .with_quant_bins(1 << 25)
            .validate()
            .is_err());
    }

    #[test]
    fn builder_overrides() {
        let cfg = SzConfig::new(ErrorBound::Abs(1.0))
            .with_quant_bins(1024)
            .with_lossless(LosslessBackend::None);
        assert_eq!(cfg.quant_bins, 1024);
        assert_eq!(cfg.lossless, LosslessBackend::None);
    }
}
