//! # szlike — SZ-style prediction-based error-bounded lossy compression
//!
//! A from-scratch reimplementation of the SZ 1.4 pipeline the paper builds
//! its fixed-PSNR mode on:
//!
//! 1. **Prediction** — the Lorenzo predictor approximates each sample from
//!    its already-reconstructed preceding neighbours in 1/2/3-D
//!    ([`predictor`]). Compression and decompression run the *identical*
//!    procedure on the *reconstructed* values, which is what makes the
//!    paper's Theorem 1 (`X − X̃ = Xpe − X̃pe`) hold exactly.
//! 2. **Error-controlled quantization** — prediction errors are mapped to
//!    integer codes on a uniform grid of bin size `2·eb_abs`; values the
//!    grid cannot represent within the bound become *unpredictable* escapes
//!    stored bit-exactly ([`quantizer`]).
//! 3. **Entropy + lossless stages** — the code stream is Huffman-coded and
//!    the result (plus the escape payload) passed through the DEFLATE-like
//!    backend, standing in for SZ's customized-Huffman + GZIP stages.
//!
//! The hard guarantee `|x − x̃| ≤ eb_abs` holds for every finite sample: the
//! compressor verifies each reconstruction and demotes any violation to an
//! escape (the same safety net SZ uses against floating-point round-off).
//!
//! ```
//! use ndfield::{Field, Shape};
//! use szlike::{compress, decompress, ErrorBound, SzConfig};
//!
//! let field = Field::from_fn_2d(64, 64, |i, j| ((i + j) as f32 * 0.1).sin());
//! let cfg = SzConfig::new(ErrorBound::Abs(1e-3));
//! let bytes = compress(&field, &cfg).unwrap();
//! let back: Field<f32> = decompress(&bytes).unwrap();
//! for (a, b) in field.as_slice().iter().zip(back.as_slice()) {
//!     assert!((a - b).abs() <= 1e-3);
//! }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub(crate) mod blocked;
pub mod compressor;
pub mod config;
pub mod error;
pub mod format;
pub mod grid;
pub mod inspect;
pub mod kernels;
pub mod predictor;
pub mod quantizer;
pub mod ratemodel;
pub mod store;
pub mod unpredictable;

pub use compressor::{
    compress, compress_with_detail, decompress, decompress_partial,
    decompress_partial_with_threads, decompress_with_limits, decompress_with_threads,
    prediction_errors, quantization_probe, BlockDamage, CompressionDetail, DamageReport,
    DecodeLimits,
};
pub use config::{EntropyCoder, ErrorBound, EscapeCoding, KernelMode, LosslessBackend, SzConfig};
pub use error::{DecodeError, SzError};
pub use grid::{ChunkGrid, Region};
pub use inspect::{
    inspect_block_predictors, inspect_sections, ContainerInfo, SectionInfo,
};
pub use store::{StoreOptions, StoreStats, SzStore};
pub use predictor::{Predictor, PredictorKind, PredictorModel};
pub use quantizer::LinearQuantizer;
pub use ratemodel::{RateCurve, RateModel};
