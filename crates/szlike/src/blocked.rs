//! Block-parallel quantized pipeline ([`Mode::Blocked`]).
//!
//! The field is partitioned by a [`ChunkGrid`]: by default into contiguous
//! slabs of `block_rows` slices along the slowest-varying dimension (the
//! v1–v3 layout, where every block is a contiguous range of the row-major
//! sample array), or — when [`SzConfig::chunk_dims`] is set — into a
//! multi-dimensional grid of axis-aligned chunks (the v4 layout, whose
//! directory is indexed by grid coordinate so region reads along *any*
//! axis touch few blocks). Each block runs its own prediction +
//! quantization walk with reconstruction state starting from zero, which
//! keeps the paper's Theorem 1 intact *per block*: the decoder replays each
//! block's walk independently, so `X − X̃ = Xpe − X̃pe` holds inside every
//! block exactly as it does for a whole field.
//!
//! The entropy stage is shared: per-block symbol frequencies are merged
//! once and a single Huffman table serves every block, so the table cost is
//! paid once while the per-block code streams stay independently decodable
//! (each one is byte-aligned).
//!
//! The lossless stage runs **per section** (the shared table and each block
//! payload are compressed independently, in parallel), and the v2 container
//! carries a CRC-32 directory: one `(flag, length, crc)` descriptor per
//! section up front, sealed by a meta-CRC over everything from the
//! container start through the directory. That framing is what makes
//! [`crate::decompress_partial`] possible — a damaged slab fails its own
//! CRC and is skipped, while every other block still decodes bit-exactly
//! from its independent payload. Version 1 containers (whole-body chunked
//! LZ, no per-block integrity) remain decodable.
//!
//! **Determinism**: the container bytes depend only on the configuration
//! and the shape-derived block partition — never on the worker-thread
//! count. Compressing with 1 or 16 threads produces identical bytes, and
//! decoding with any thread count produces identical samples.

use crate::compressor::{
    apply_lossless, choose_intervals, quantized_walk_on, read_escape_values, read_f64,
    replay_quantized_walk, select_model, take, undo_lossless_bounded, BlockDamage,
    CompressionDetail, DamageReport, DecodeLimits, WalkOutput,
};
use crate::config::{EntropyCoder, EscapeCoding, KernelMode, SzConfig};
use crate::error::{DecodeError, SzError};
use crate::format::{self, Header, Mode};
use crate::grid::ChunkGrid;
use crate::predictor::{Predictor, PredictorKind, PredictorModel, REGRESSION_COEFF_BYTES};
use crate::unpredictable;
use fpsnr_parallel::pool::ThreadPool;
use losslesskit::bitio::BitWriter;
use losslesskit::crc32::crc32;
use losslesskit::huffman::HuffmanCodec;
use losslesskit::{mshuf, range, varint};
use ndfield::{Field, Scalar, Shape};
use std::borrow::Cow;
use std::sync::{Arc, Mutex};

/// Blocked-container version byte for slab partitions (v3: v2's
/// per-section lossless + CRC directory, with the Huffman code streams
/// interleaved across [`HUFF_STREAMS`] independent bit streams — entropy
/// stage 2). The decoder also accepts versions 1 and 2.
const BLOCKED_VERSION: u8 = 3;

/// Blocked-container version byte for multi-dimensional chunk grids: same
/// section framing as v3, but the partition parameters are per-axis chunk
/// extents and the directory is indexed by row-major grid coordinate.
const BLOCKED_VERSION_GRID: u8 = 4;

/// Blocked-container version byte for mixed per-block predictors: same
/// section framing and per-axis partition encoding as v4, but the
/// container-level predictor byte is the [`PER_BLOCK_PREDICTORS`] sentinel
/// and each block payload starts with its own predictor tag (+ fitted
/// regression coefficients for tag 3) ahead of the code stream, so the
/// decoder replays exactly the predictor the encoder chose per block.
const BLOCKED_VERSION_MIXED: u8 = 5;

/// Container-level predictor byte of a v5 container: "look inside each
/// block". Deliberately outside every [`PredictorKind`] tag.
const PER_BLOCK_PREDICTORS: u8 = 0xFF;

/// Interleaved Huffman streams per block section (entropy stage 2).
const HUFF_STREAMS: usize = 4;

/// Auto block sizing targets at least this many samples per block: small
/// enough to feed 8–16 workers on a 64³ field, large enough that the
/// per-block framing and the block-boundary prediction reset stay noise.
const AUTO_BLOCK_SAMPLES: usize = 32 * 1024;

/// Whether the configuration routes quantized compression through the
/// blocked container (any explicit parallelism, block-size, or chunk-grid
/// request).
pub(crate) fn use_blocked(cfg: &SzConfig) -> bool {
    cfg.threads != 1 || cfg.block_rows > 0 || cfg.chunk_dims != [0; 3]
}

/// Resolve the partition for a compression run: the slab layout (v3) by
/// default, or a multi-dimensional chunk grid (v4) when the config asks
/// for one. Depends only on the shape and the config — never on the
/// thread count (determinism).
fn resolve_partition(shape: Shape, cfg: &SzConfig) -> Result<(u8, ChunkGrid), SzError> {
    if cfg.chunk_dims == [0; 3] {
        let block_rows = resolve_block_rows(shape, cfg.block_rows);
        Ok((BLOCKED_VERSION, ChunkGrid::slab(shape, block_rows)))
    } else {
        let grid = ChunkGrid::from_chunk_dims(shape, &cfg.chunk_dims)?;
        Ok((BLOCKED_VERSION_GRID, grid))
    }
}

/// Resolve the rows-per-block knob. Depends only on the shape and the
/// configured `block_rows` — never on the thread count (determinism).
pub(crate) fn resolve_block_rows(shape: Shape, requested: usize) -> usize {
    let rows = shape.dims()[0];
    if requested > 0 {
        return requested.min(rows);
    }
    let per_row = (shape.len() / rows).max(1);
    AUTO_BLOCK_SAMPLES.div_ceil(per_row).clamp(1, rows)
}

fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        fpsnr_parallel::default_threads()
    } else {
        requested
    }
}

/// Shape and sample count of block `b`.
fn block_shape(shape: Shape, block_rows: usize, b: usize) -> (Shape, usize) {
    let rows = shape.dims()[0];
    let r0 = b * block_rows;
    let nr = block_rows.min(rows - r0);
    let bshape = match shape {
        Shape::D1(_) => Shape::D1(nr),
        Shape::D2(_, c) => Shape::D2(nr, c),
        Shape::D3(_, d1, d2) => Shape::D3(nr, d1, d2),
    };
    let n = bshape.len();
    (bshape, n)
}

/// The contiguous sample range of block `b` (row-major, slowest dim split).
pub(crate) fn block_range(
    shape: Shape,
    block_rows: usize,
    b: usize,
) -> (std::ops::Range<usize>, Shape) {
    let per_row = shape.len() / shape.dims()[0];
    let (bshape, bn) = block_shape(shape, block_rows, b);
    let start = b * block_rows * per_row;
    (start..start + bn, bshape)
}

/// One block's serialized section (entropy stream + escape payload; the
/// lossless pass runs once over all sections, not per block — LZ windows on
/// kilobyte-sized blocks waste most of the backend's cross-block
/// redundancy).
struct BlockBits {
    payload: Vec<u8>,
    stream_len: usize,
    n_unpred: usize,
}

#[allow(clippy::too_many_arguments)]
fn encode_block<T: Scalar>(
    codes: &[u32],
    unpred: &[T],
    codec: Option<&HuffmanCodec>,
    bins: usize,
    eb: f64,
    cfg: &SzConfig,
    model: PredictorModel,
    per_block_header: bool,
) -> BlockBits {
    let stream = match codec {
        Some(c) => mshuf::encode(codes, c, HUFF_STREAMS),
        None => range::range_encode(codes, bins),
    };
    let mut body = Vec::with_capacity(stream.len() + unpred.len() * T::BYTES + 16);
    if per_block_header {
        // v5 per-block predictor prefix: tag byte, then the fitted
        // coefficients for regression. It lives inside the block payload so
        // the per-block CRC covers it — a flipped tag or truncated
        // coefficient run reads as block damage, never as silent misreplay.
        body.push(model.tag());
        body.extend_from_slice(&model.coeff_bytes());
    }
    varint::write_u64(&mut body, stream.len() as u64);
    body.extend_from_slice(&stream);
    varint::write_u64(&mut body, unpred.len() as u64);
    match cfg.escape {
        EscapeCoding::Exact => {
            for &u in unpred {
                u.write_le(&mut body);
            }
        }
        EscapeCoding::Truncated => {
            let mut bw = BitWriter::new();
            unpredictable::encode(unpred, eb, &mut bw);
            let bits = bw.finish();
            varint::write_u64(&mut body, bits.len() as u64);
            body.extend_from_slice(&bits);
        }
    }
    BlockBits {
        stream_len: stream.len(),
        n_unpred: unpred.len(),
        payload: body,
    }
}

/// Phase 1: the per-block prediction + quantization walks. On the pool
/// path each worker pops a reusable reconstruction buffer from a shared
/// arena, so a thread processing many blocks allocates it once. Slab
/// blocks are walked in place over the field's own storage; grid blocks
/// are gathered into a contiguous scratch buffer first.
///
/// Predictor selection happens here, per block, inside the walk task:
/// [`select_model`] depends only on the block's samples and the config, so
/// the chosen models — and therefore the container bytes — are identical
/// for any thread count.
#[allow(clippy::too_many_arguments)]
fn run_walks<T: Scalar>(
    field: &Field<T>,
    grid: &ChunkGrid,
    eb: f64,
    bins: usize,
    kind: PredictorKind,
    escape: EscapeCoding,
    kernel: KernelMode,
    pool: Option<&ThreadPool>,
) -> Vec<(PredictorModel, WalkOutput<T>)> {
    let n_blocks = grid.n_blocks();
    let data = field.as_slice();
    let slab = grid.is_slab();
    match pool {
        None => {
            let mut recon = Vec::new();
            let mut gathered: Vec<T> = Vec::new();
            (0..n_blocks)
                .map(|b| {
                    let bshape = grid.block_shape(b);
                    let samples: &[T] = if slab {
                        &data[grid.covering_range(b)]
                    } else {
                        grid.gather(data, b, &mut gathered);
                        &gathered
                    };
                    let model = select_model(samples, bshape, kind, eb, bins);
                    let out = quantized_walk_on(
                        samples, bshape, eb, bins, model, escape, false, &mut recon, kernel,
                    );
                    (model, out)
                })
                .collect()
        }
        Some(pool) => {
            let results: Arc<Mutex<Vec<Option<(PredictorModel, WalkOutput<T>)>>>> =
                Arc::new(Mutex::new((0..n_blocks).map(|_| None).collect()));
            let scratch: Arc<Mutex<Vec<Vec<f64>>>> = Arc::new(Mutex::new(Vec::new()));
            for b in 0..n_blocks {
                let bshape = grid.block_shape(b);
                // Pool jobs are 'static: hand each one an owned copy of its
                // block (a strided memcpy, dwarfed by the walk itself).
                let block = if slab {
                    data[grid.covering_range(b)].to_vec()
                } else {
                    let mut buf = Vec::new();
                    grid.gather(data, b, &mut buf);
                    buf
                };
                let results = Arc::clone(&results);
                let scratch = Arc::clone(&scratch);
                pool.execute(move || {
                    let mut recon = scratch
                        .lock()
                        .expect("scratch arena lock")
                        .pop()
                        .unwrap_or_default();
                    let model = select_model(&block, bshape, kind, eb, bins);
                    let out = quantized_walk_on(
                        &block, bshape, eb, bins, model, escape, false, &mut recon, kernel,
                    );
                    scratch.lock().expect("scratch arena lock").push(recon);
                    results.lock().expect("walk results lock")[b] = Some((model, out));
                });
            }
            pool.wait();
            let mut guard = results.lock().expect("walk results lock");
            guard
                .iter_mut()
                .map(|o| o.take().expect("every block walked"))
                .collect()
        }
    }
}

/// Phase 3: per-block entropy encode + escape payload + lossless pass, all
/// against the shared codec.
#[allow(clippy::too_many_arguments)]
fn run_encodes<T: Scalar>(
    walks: Vec<(PredictorModel, WalkOutput<T>)>,
    codec: Option<Arc<HuffmanCodec>>,
    bins: usize,
    eb: f64,
    cfg: &SzConfig,
    per_block_header: bool,
    pool: Option<&ThreadPool>,
) -> Vec<BlockBits> {
    match pool {
        None => walks
            .into_iter()
            .map(|(m, w)| {
                encode_block(
                    &w.codes,
                    &w.unpred,
                    codec.as_deref(),
                    bins,
                    eb,
                    cfg,
                    m,
                    per_block_header,
                )
            })
            .collect(),
        Some(pool) => {
            let n = walks.len();
            let results: Arc<Mutex<Vec<Option<BlockBits>>>> =
                Arc::new(Mutex::new((0..n).map(|_| None).collect()));
            let cfg = *cfg;
            for (b, (m, w)) in walks.into_iter().enumerate() {
                let codec = codec.clone();
                let results = Arc::clone(&results);
                pool.execute(move || {
                    let bits = encode_block(
                        &w.codes,
                        &w.unpred,
                        codec.as_deref(),
                        bins,
                        eb,
                        &cfg,
                        m,
                        per_block_header,
                    );
                    results.lock().expect("encode results lock")[b] = Some(bits);
                });
            }
            pool.wait();
            let mut guard = results.lock().expect("encode results lock");
            guard
                .iter_mut()
                .map(|o| o.take().expect("every block encoded"))
                .collect()
        }
    }
}

/// Compress a field through the blocked pipeline. Caller has already
/// resolved the absolute bound (`eb_abs > 0`) and validated the config.
pub(crate) fn compress_blocked<T: Scalar>(
    field: &Field<T>,
    eb_abs: f64,
    vr: f64,
    cfg: &SzConfig,
) -> Result<(Vec<u8>, CompressionDetail), SzError> {
    // Global interval sizing, exactly as the monolithic path does it: one
    // whole-field sample shared by every block. Predictor selection moved
    // *into* the per-block walk tasks (see `run_walks`): forced Lorenzo
    // kinds stay uniform (the legacy v3/v4 layouts, byte-identical), while
    // Auto / Regression / Spline route to the v5 mixed-predictor layout
    // where each block carries the model it actually replayed.
    let predict_span = fpsnr_obs::span("sz.predict");
    let bins = if cfg.auto_intervals {
        choose_intervals(field, eb_abs, cfg.quant_bins, cfg.pred_threshold)
    } else {
        cfg.quant_bins
    };
    drop(predict_span);
    let per_block = !matches!(
        cfg.predictor,
        PredictorKind::Lorenzo1 | PredictorKind::Lorenzo2
    );

    let shape = field.shape();
    let (version, grid) = resolve_partition(shape, cfg)?;
    let version = if per_block { BLOCKED_VERSION_MIXED } else { version };
    let n_blocks = grid.n_blocks();
    let lz_threads = resolve_threads(cfg.threads).max(1);
    let threads = lz_threads.min(n_blocks);
    let pool = (threads > 1).then(|| ThreadPool::new(threads));

    // Phase 1 (sz.block.walk): independent per-block walks.
    // Record which kernel tier drives them — telemetry only, the dispatch
    // level never influences container bytes (DESIGN.md §17).
    if fpsnr_obs::is_enabled() {
        let tier = match losslesskit::simd::active() {
            losslesskit::simd::SimdLevel::Off => "sz.block.simd.off",
            losslesskit::simd::SimdLevel::Sse2 => "sz.block.simd.sse2",
            losslesskit::simd::SimdLevel::Avx2 => "sz.block.simd.avx2",
        };
        fpsnr_obs::add(tier, n_blocks as u64);
    }
    let walk_span = fpsnr_obs::span("sz.block.walk");
    let walks = run_walks(
        field,
        &grid,
        eb_abs,
        bins,
        cfg.predictor,
        cfg.escape,
        cfg.kernel,
        pool.as_ref(),
    );
    drop(walk_span);

    // Phase 2 (sz.block.merge): merge frequencies, build the shared table.
    let merge_span = fpsnr_obs::span("sz.block.merge");
    let (codec, table) = match cfg.entropy {
        EntropyCoder::Huffman => {
            let mut counts = vec![0u64; bins];
            for (_, w) in &walks {
                for &c in &w.codes {
                    counts[c as usize] += 1;
                }
            }
            let codec = HuffmanCodec::from_counts(&counts);
            let mut table = Vec::new();
            codec.write_table(&mut table);
            (Some(Arc::new(codec)), table)
        }
        EntropyCoder::Range => (None, Vec::new()),
    };
    let table_len = table.len();
    drop(merge_span);

    // Phase 3 (sz.block.encode): per-block entropy + lossless stages.
    let encode_span = fpsnr_obs::span("sz.block.encode");
    let blocks = run_encodes(walks, codec, bins, eb_abs, cfg, per_block, pool.as_ref());
    drop(encode_span);

    // Stage 4 (sz.lossless): compress each section INDEPENDENTLY — the
    // shared table and every block payload get their own lossless pass, in
    // parallel. Severing the sections costs LZ a little cross-block
    // redundancy, but it is what makes each block independently
    // verifiable and recoverable: a bit flip in one payload can no longer
    // poison the inflation of every block behind it.
    let body_bytes =
        table_len + blocks.iter().map(|b| b.payload.len()).sum::<usize>();
    let lossless_span = fpsnr_obs::span("sz.lossless");
    let table_packed: Option<(u8, Vec<u8>)> = if cfg.entropy == EntropyCoder::Huffman {
        let mut tsec = Vec::with_capacity(table_len + 10);
        varint::write_u64(&mut tsec, table.len() as u64);
        tsec.extend_from_slice(&table);
        Some(apply_lossless(tsec, cfg))
    } else {
        None
    };
    let payloads: Vec<&[u8]> = blocks.iter().map(|b| b.payload.as_slice()).collect();
    let packed: Vec<(u8, Vec<u8>)> =
        fpsnr_parallel::par_map(&payloads, lz_threads, |&p| apply_lossless(p.to_vec(), cfg));
    drop(lossless_span);

    // v2/v3/v4 layout: params, then a CRC-32 directory (one descriptor per
    // section: lossless flag, compressed length, CRC of the compressed
    // payload), a meta-CRC sealing everything up to this point, then the
    // payloads back to back. The decoder can verify each slab before
    // inflating it and locate every payload even when one is damaged.
    let packed_total: usize = packed.iter().map(|(_, p)| p.len() + 10).sum();
    let mut out = Vec::with_capacity(packed_total + 64);
    format::write_header(&mut out, T::TAG, Mode::Blocked, shape)?;
    out.push(version);
    out.extend_from_slice(&eb_abs.to_le_bytes());
    varint::write_u64(&mut out, bins as u64);
    out.push(if per_block {
        PER_BLOCK_PREDICTORS
    } else {
        cfg.predictor.tag()
    });
    out.push(match cfg.escape {
        EscapeCoding::Exact => 0,
        EscapeCoding::Truncated => 1,
    });
    // Entropy stage byte: v3+ write interleaved Huffman as stage 2
    // (stage 0, the monolithic single-stream form, is decode-only legacy).
    out.push(match cfg.entropy {
        EntropyCoder::Huffman => 2,
        EntropyCoder::Range => 1,
    });
    if version >= BLOCKED_VERSION_GRID {
        // v4/v5 partition parameters: per-axis chunk extents. The grid
        // dims (and the block count) are derived from the header shape;
        // slab partitions encode as a grid with full non-leading extents.
        for c in grid.chunk_dims() {
            varint::write_u64(&mut out, c as u64);
        }
    } else {
        varint::write_u64(&mut out, grid.block_rows() as u64);
        varint::write_u64(&mut out, n_blocks as u64);
    }
    if let Some((flag, payload)) = &table_packed {
        out.push(*flag);
        varint::write_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    for (flag, payload) in &packed {
        out.push(*flag);
        varint::write_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    out.extend_from_slice(&crc32(&out).to_le_bytes());
    if let Some((_, payload)) = &table_packed {
        out.extend_from_slice(payload);
    }
    for (_, payload) in &packed {
        out.extend_from_slice(payload);
    }

    let detail = CompressionDetail {
        n_samples: field.len(),
        n_unpredictable: blocks.iter().map(|b| b.n_unpred).sum(),
        eb_abs,
        value_range: vr,
        huffman_table_bytes: table_len,
        code_stream_bytes: blocks.iter().map(|b| b.stream_len).sum(),
        escape_payload_bytes: blocks.iter().map(|b| b.n_unpred).sum::<usize>() * T::BYTES,
        quant_bins_used: bins,
        body_bytes,
        compressed_bytes: out.len(),
    };
    Ok((out, detail))
}

/// Decode one block's (already-inflated) body to its samples: parse the
/// code stream and escape payload, then replay the walk (the Theorem-1
/// mirror, per block). This is the single per-block decode routine shared
/// by full decode, forgiving partial decode, and the random-access store.
pub(crate) fn decode_block_body<T: Scalar>(
    body: &[u8],
    bshape: Shape,
    params: &BlockedParams,
    codec: Option<&HuffmanCodec>,
) -> Result<Vec<T>, SzError> {
    let bn = bshape.len();
    let mut bpos = 0usize;
    // v5 blocks lead with their own predictor prefix; earlier versions
    // inherit the container-level model.
    let model = match params.pred {
        BlockPredictors::Uniform(model) => model,
        BlockPredictors::PerBlock => {
            let tag = *body
                .first()
                .ok_or(SzError::Format("missing block predictor tag"))?;
            bpos += 1;
            let coeffs: &[u8] = if tag == 3 {
                let end = bpos
                    .checked_add(REGRESSION_COEFF_BYTES)
                    .filter(|&e| e <= body.len())
                    .ok_or(SzError::Format("truncated regression coefficients"))?;
                let c = &body[bpos..end];
                bpos = end;
                c
            } else {
                &[]
            };
            PredictorModel::from_tag_and_coeffs(tag, coeffs)
                .ok_or(SzError::Format("unknown block predictor tag"))?
        }
    };
    // Locate the code stream but defer entropy decoding: the escape
    // payload behind it parses first so the fused mirror can interleave
    // Huffman decoding with reconstruction slice by slice.
    let stream_len = varint::read_u64(body, &mut bpos)? as usize;
    if stream_len > body.len().saturating_sub(bpos) {
        return Err(SzError::Format("block code stream overruns payload"));
    }
    let stream = &body[bpos..bpos + stream_len];
    bpos += stream_len;
    let n_unpred = varint::read_u64(body, &mut bpos)? as usize;
    if n_unpred > bn {
        return Err(SzError::Format("more escapes than block samples"));
    }
    let unpred_values: Vec<T> =
        read_escape_values(body, &mut bpos, n_unpred, params.escape_tag, params.eb)?;
    replay_quantized_walk(
        stream,
        codec,
        params.stage,
        bshape,
        params.eb,
        params.bins,
        model,
        unpred_values,
    )
}

/// Where a blocked container's predictor lives: one container-level model
/// shared by every block (v1–v4), or a per-block prefix inside each block
/// payload (v5).
#[derive(Debug, Clone, Copy)]
pub(crate) enum BlockPredictors {
    Uniform(PredictorModel),
    PerBlock,
}

/// Pipeline parameters shared by every blocked-container version.
pub(crate) struct BlockedParams {
    pub(crate) eb: f64,
    pub(crate) bins: usize,
    pub(crate) pred: BlockPredictors,
    pub(crate) escape_tag: u8,
    pub(crate) stage: u8,
    /// The block partition: a slab grid for v1–v3, a chunk grid for v4/v5.
    pub(crate) grid: ChunkGrid,
}

/// Read the version byte and the parameter block, validating every field
/// against the header's shape. v1–v3 store `block_rows` + `n_blocks`
/// (slab partition); v4/v5 store per-axis chunk extents (grid partition).
/// v5 additionally requires the [`PER_BLOCK_PREDICTORS`] sentinel — its
/// predictors live inside the block payloads.
pub(crate) fn read_params(
    src: &[u8],
    pos: &mut usize,
    header: &Header,
) -> Result<(u8, BlockedParams), SzError> {
    let version = take(src, pos, 1)?[0];
    if version == 0 || version > BLOCKED_VERSION_MIXED {
        return Err(SzError::Format("unsupported blocked container version"));
    }
    let eb = read_f64(src, pos)?;
    if !(eb.is_finite() && eb > 0.0) {
        return Err(SzError::Format("bad stored error bound"));
    }
    let bins = varint::read_u64(src, pos)? as usize;
    if bins < 4 || bins % 2 != 0 || bins > (1 << 24) {
        return Err(SzError::Format("bad stored bin count"));
    }
    let pred_byte = take(src, pos, 1)?[0];
    let pred = if version >= BLOCKED_VERSION_MIXED {
        if pred_byte != PER_BLOCK_PREDICTORS {
            return Err(SzError::Format("v5 container without per-block sentinel"));
        }
        BlockPredictors::PerBlock
    } else {
        // A container-level tag must be self-contained: regression (tag 3)
        // needs coefficients, which only v5's per-block prefix carries.
        BlockPredictors::Uniform(
            PredictorModel::from_tag_and_coeffs(pred_byte, &[])
                .ok_or(SzError::Format("unknown predictor tag"))?,
        )
    };
    let escape_tag = take(src, pos, 1)?[0];
    if escape_tag > 1 {
        return Err(SzError::Format("unknown escape coding tag"));
    }
    // Stage 2 (interleaved Huffman) only exists from container v3 on; a
    // v1/v2 container claiming it is corrupt, not merely newer.
    let stage = take(src, pos, 1)?[0];
    if stage > 2 || (stage == 2 && version < 3) {
        return Err(SzError::Format("unknown entropy stage"));
    }
    let dims = header.shape.dims();
    let grid = if version >= BLOCKED_VERSION_GRID {
        let mut chunk = [0usize; 3];
        for (a, &d) in dims.iter().enumerate() {
            let c = varint::read_u64(src, pos)? as usize;
            if c == 0 || c > d {
                return Err(SzError::Format("inconsistent chunk partition"));
            }
            chunk[a] = c;
        }
        ChunkGrid::from_chunk_dims(header.shape, &chunk[..dims.len()])?
    } else {
        let block_rows = varint::read_u64(src, pos)? as usize;
        let n_blocks = varint::read_u64(src, pos)? as usize;
        let rows = dims[0];
        if block_rows == 0 || block_rows > rows || n_blocks != rows.div_ceil(block_rows) {
            return Err(SzError::Format("inconsistent block partition"));
        }
        ChunkGrid::slab(header.shape, block_rows)
    };
    Ok((
        version,
        BlockedParams {
            eb,
            bins,
            pred,
            escape_tag,
            stage,
            grid,
        },
    ))
}

/// Decompress a blocked container; blocks decode in parallel (`threads`,
/// 0 = auto) and the output is identical for any thread count.
pub(crate) fn decompress_blocked<T: Scalar>(
    src: &[u8],
    mut pos: usize,
    header: &Header,
    threads: usize,
    limits: &DecodeLimits,
) -> Result<Field<T>, SzError> {
    let (version, params) = read_params(src, &mut pos, header)?;
    match version {
        1 => decode_v1(src, pos, header, &params, threads, limits),
        // v3 only changes the entropy stage inside each section, and v4
        // only the partition parameters; the section framing (directory,
        // meta-CRC, payloads) is identical to v2.
        2..=BLOCKED_VERSION_MIXED => {
            decode_v2(src, pos, header, &params, threads, limits, true).map(|(f, _)| f)
        }
        _ => Err(SzError::Format("unsupported blocked container version")),
    }
}

/// Forgiving blocked decode (see [`crate::decompress_partial`]).
pub(crate) fn decompress_blocked_partial<T: Scalar>(
    src: &[u8],
    mut pos: usize,
    header: &Header,
    threads: usize,
    limits: &DecodeLimits,
    crc_ok: bool,
) -> Result<(Field<T>, DamageReport), SzError> {
    let (version, params) = read_params(src, &mut pos, header)?;
    match version {
        1 => {
            // v1 has no per-block integrity metadata, so recovery is
            // all-or-nothing exactly like the monolithic modes.
            let field = decode_v1::<T>(src, pos, header, &params, threads, limits)?;
            let n = field.len();
            Ok((
                field,
                DamageReport {
                    n_blocks: params.grid.n_blocks(),
                    damaged: Vec::new(),
                    recovered_samples: n,
                    container_crc_ok: crc_ok,
                },
            ))
        }
        2..=BLOCKED_VERSION_MIXED => {
            let n_blocks = params.grid.n_blocks();
            let (field, damaged) = decode_v2::<T>(src, pos, header, &params, threads, limits, false)?;
            // A damaged grid block is a strided footprint, not a contiguous
            // range, so count lost samples through the grid geometry (its
            // `sample_range` is only a covering interval).
            let lost: usize = damaged.iter().map(|d| params.grid.block_len(d.index)).sum();
            fpsnr_obs::add("sz.decode.corrupt_blocks", damaged.len() as u64);
            fpsnr_obs::add(
                "sz.decode.recovered_blocks",
                (n_blocks - damaged.len()) as u64,
            );
            let n = field.len();
            Ok((
                field,
                DamageReport {
                    n_blocks,
                    damaged,
                    recovered_samples: n - lost,
                    container_crc_ok: crc_ok,
                },
            ))
        }
        _ => Err(SzError::Format("unsupported blocked container version")),
    }
}

/// Decode the legacy v1 body: whole-body chunked LZ, no per-block CRCs.
fn decode_v1<T: Scalar>(
    src: &[u8],
    mut pos: usize,
    header: &Header,
    params: &BlockedParams,
    threads: usize,
    limits: &DecodeLimits,
) -> Result<Field<T>, SzError> {
    // Undo the chunked lossless pass (chunks inflate in parallel), then
    // slice the shared table and the per-block sections out of the body.
    let n_chunks = varint::read_u64(src, &mut pos)? as usize;
    if n_chunks == 0 || n_chunks > src.len() {
        return Err(SzError::Format("implausible lossless chunk count"));
    }
    let mut chunks = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let flag = take(src, &mut pos, 1)?[0];
        let len = varint::read_u64(src, &mut pos)? as usize;
        chunks.push((flag, take(src, &mut pos, len)?));
    }
    let max_body = limits.max_body_bytes();
    let threads = resolve_threads(threads);
    let unpacked: Vec<Result<Cow<'_, [u8]>, SzError>> =
        fpsnr_parallel::par_map(&chunks, threads, |&(flag, payload)| {
            undo_lossless_bounded(flag, payload, max_body)
        });
    let body: Cow<'_, [u8]> = if n_chunks == 1 {
        unpacked.into_iter().next().expect("one chunk")?
    } else {
        let mut buf = Vec::new();
        for r in unpacked {
            buf.extend_from_slice(&r?);
            if buf.len() > max_body {
                return Err(DecodeError::LimitExceeded {
                    stage: "blocked body",
                    what: "inflated body bytes",
                    requested: buf.len() as u64,
                    limit: max_body as u64,
                }
                .into());
            }
        }
        Cow::Owned(buf)
    };
    let mut bpos = 0usize;
    let codec = if params.stage == 0 {
        Some(read_shared_table(&body, &mut bpos)?)
    } else {
        None
    };
    let n_blocks = params.grid.n_blocks();
    let mut sections = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let slen = varint::read_u64(&body, &mut bpos)? as usize;
        if slen > body.len().saturating_sub(bpos) {
            return Err(SzError::Format("block section overruns body"));
        }
        sections.push(&body[bpos..bpos + slen]);
        bpos += slen;
    }

    let shape = header.shape;
    let decoded: Vec<Result<Vec<T>, SzError>> =
        fpsnr_parallel::par_map_indexed(&sections, threads, |b, &section| {
            decode_block_body::<T>(section, params.grid.block_shape(b), params, codec.as_ref())
        });
    // v1 grids are always slabs, so blocks concatenate in order.
    let mut out = Vec::with_capacity(shape.len());
    for r in decoded {
        out.extend_from_slice(&r?);
    }
    if out.len() != shape.len() {
        return Err(SzError::Format("blocked payload sample count mismatch"));
    }
    Ok(Field::from_vec(shape, out))
}

/// Parse a `varint tlen | table` section into a Huffman codec, requiring
/// the table to span the declared length exactly.
pub(crate) fn read_shared_table(body: &[u8], bpos: &mut usize) -> Result<HuffmanCodec, SzError> {
    let tlen = varint::read_u64(body, bpos)? as usize;
    let tend = bpos
        .checked_add(tlen)
        .filter(|&e| e <= body.len())
        .ok_or(SzError::Format("shared table overruns body"))?;
    let codec = HuffmanCodec::read_table(&body[..tend], bpos)?;
    if *bpos != tend {
        return Err(SzError::Format("shared table length mismatch"));
    }
    Ok(codec)
}

/// One v2 directory entry: lossless flag + compressed length + CRC-32 of
/// the compressed payload.
pub(crate) struct SectionDesc {
    pub(crate) flag: u8,
    pub(crate) comp_len: usize,
    pub(crate) crc: u32,
}

pub(crate) fn read_section_desc(src: &[u8], pos: &mut usize) -> Result<SectionDesc, SzError> {
    let flag = take(src, pos, 1)?[0];
    let comp_len = varint::read_u64(src, pos)? as usize;
    let crc_bytes = take(src, pos, 4)?;
    let crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    Ok(SectionDesc {
        flag,
        comp_len,
        crc,
    })
}

/// Decode a v2 body. In strict mode any damage is an error; in forgiving
/// mode damaged blocks are NaN-filled and reported while intact blocks
/// decode normally. The directory itself (and the shared table) have no
/// redundancy, so damage there is unrecoverable either way.
#[allow(clippy::too_many_arguments)]
fn decode_v2<T: Scalar>(
    src: &[u8],
    mut pos: usize,
    header: &Header,
    params: &BlockedParams,
    threads: usize,
    limits: &DecodeLimits,
    strict: bool,
) -> Result<(Field<T>, Vec<BlockDamage>), SzError> {
    // Huffman stages (0 legacy, 2 interleaved) share one table section;
    // the range stage (1) carries its model adaptively and has none.
    let table_desc = if params.stage != 1 {
        Some(read_section_desc(src, &mut pos)?)
    } else {
        None
    };
    let n_blocks = params.grid.n_blocks();
    let mut dir = Vec::with_capacity(n_blocks.min(src.len()));
    for _ in 0..n_blocks {
        dir.push(read_section_desc(src, &mut pos)?);
    }
    // The meta-CRC seals everything from the container start through the
    // directory. Without it a flipped length varint would mis-slice every
    // later payload and make single-block damage look like total loss.
    let meta_end = pos;
    let stored = {
        let b = take(src, &mut pos, 4)?;
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    };
    if crc32(&src[..meta_end]) != stored {
        return Err(DecodeError::CrcMismatch {
            stage: "blocked directory",
            offset: meta_end,
        }
        .into());
    }
    let table_payload = match &table_desc {
        Some(d) => {
            let off = pos;
            Some((d, off, take(src, &mut pos, d.comp_len)?))
        }
        None => None,
    };
    let mut payloads = Vec::with_capacity(n_blocks);
    for d in &dir {
        let off = pos;
        payloads.push((d.flag, d.crc, off, take(src, &mut pos, d.comp_len)?));
    }

    // Shared-table damage makes every block undecodable: strict errors
    // out, forgiving reports all blocks damaged.
    let max_body = limits.max_body_bytes();
    let table_state: Result<Option<HuffmanCodec>, SzError> = match table_payload {
        None => Ok(None),
        Some((d, off, payload)) => {
            if crc32(payload) != d.crc {
                Err(DecodeError::CrcMismatch {
                    stage: "shared table",
                    offset: off,
                }
                .into())
            } else {
                undo_lossless_bounded(d.flag, payload, max_body).and_then(|body| {
                    let mut tpos = 0usize;
                    read_shared_table(&body, &mut tpos).map(Some)
                })
            }
        }
    };

    let shape = header.shape;
    let threads = resolve_threads(threads);
    let mut damaged: Vec<BlockDamage> = Vec::new();
    let decoded: Vec<Result<Vec<T>, SzError>> = match &table_state {
        Err(e) => {
            if strict {
                return Err(e.clone());
            }
            (0..n_blocks)
                .map(|_| Err(SzError::Format("shared entropy table damaged")))
                .collect()
        }
        Ok(codec) => fpsnr_parallel::par_map_indexed(&payloads, threads, |b, &(flag, crc, off, payload)| {
            if crc32(payload) != crc {
                return Err(DecodeError::CrcMismatch {
                    stage: "block payload",
                    offset: off,
                }
                .into());
            }
            let body = undo_lossless_bounded(flag, payload, max_body)?;
            decode_block_body::<T>(&body, params.grid.block_shape(b), params, codec.as_ref())
        }),
    };

    // Assemble by scatter: for slab grids every scatter is one contiguous
    // copy; for v4 grids each block lands on its strided footprint.
    let mut out = vec![T::default(); shape.len()];
    for (b, r) in decoded.into_iter().enumerate() {
        match r {
            Ok(samples) => {
                if samples.len() != params.grid.block_len(b) {
                    return Err(SzError::Format("blocked payload sample count mismatch"));
                }
                params.grid.scatter(&samples, b, &mut out);
            }
            Err(e) => {
                if strict {
                    return Err(e);
                }
                let reason = match &table_state {
                    Err(te) => format!("shared entropy table damaged: {te}"),
                    Ok(_) => e.to_string(),
                };
                params.grid.fill_block(b, T::from_f64(f64::NAN), &mut out);
                damaged.push(BlockDamage {
                    index: b,
                    // For grid blocks this is the covering row-major
                    // interval, not an exact footprint (see BlockDamage).
                    sample_range: params.grid.covering_range(b),
                    reason,
                });
            }
        }
    }
    Ok((Field::from_vec(shape, out), damaged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::{compress, compress_with_detail, decompress};
    use crate::config::ErrorBound;

    fn wavy(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            ((i as f32) * 0.07).sin() * ((j as f32) * 0.05).cos() * 10.0
        })
    }

    #[test]
    fn blocked_routes_and_roundtrips() {
        let field = wavy(64, 64);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_threads(4)
            .with_block_rows(16);
        let bytes = compress(&field, &cfg).unwrap();
        // Mode byte sits right after the 4-byte magic + scalar tag.
        assert_eq!(bytes[5], Mode::Blocked as u8);
        let back: Field<f32> = decompress(&bytes).unwrap();
        for (a, b) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 1e-3);
        }
    }

    #[test]
    fn container_bytes_independent_of_thread_count() {
        let field = wavy(96, 40);
        let mut images = Vec::new();
        for threads in [1, 2, 3, 8] {
            let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4))
                .with_threads(threads)
                .with_block_rows(13);
            images.push(compress(&field, &cfg).unwrap());
        }
        for img in &images[1..] {
            assert_eq!(img, &images[0], "container bytes depend on threads");
        }
    }

    #[test]
    fn auto_partition_is_shape_derived() {
        // threads=2 with auto block size must equal threads=7 with auto.
        let field = wavy(80, 80);
        let a = compress(
            &field,
            &SzConfig::new(ErrorBound::Abs(1e-4)).with_threads(2),
        )
        .unwrap();
        let b = compress(
            &field,
            &SzConfig::new(ErrorBound::Abs(1e-4)).with_threads(7),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_block_still_uses_blocked_container() {
        let field = wavy(4, 8);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_threads(8);
        let (bytes, detail) = compress_with_detail(&field, &cfg).unwrap();
        assert_eq!(bytes[5], Mode::Blocked as u8);
        assert_eq!(detail.n_samples, 32);
        let back: Field<f32> = decompress(&bytes).unwrap();
        for (a, b) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 1e-3);
        }
    }

    #[test]
    fn blocked_ratio_close_to_monolithic() {
        // The v2 container compresses every block payload independently so
        // each one is separately verifiable and recoverable — which severs
        // the LZ matches that used to reach across blocks. On this highly
        // self-similar synthetic field with a deliberately fine partition
        // (8 blocks of 6 planes each) that costs real ratio, so the bound
        // here is a regression guard on the integrity overhead, not a
        // near-parity claim. The auto partition (>= 32 Ki samples/block)
        // is checked separately below at a much tighter bound.
        let field = Field::from_fn_3d(48, 48, 48, |i, j, k| {
            ((i as f32) * 0.05).sin() * ((j as f32) * 0.07).cos()
                + ((k as f32) * 0.03).sin() * 2.0
        });
        let mono = SzConfig::new(ErrorBound::ValueRangeRel(1e-4));
        let blk = mono.with_threads(4).with_block_rows(6);
        let (m, _) = compress_with_detail(&field, &mono).unwrap();
        let (b, _) = compress_with_detail(&field, &blk).unwrap();
        let inflation = b.len() as f64 / m.len() as f64;
        assert!(
            inflation < 1.25,
            "blocked container {:.1}% larger than monolithic",
            (inflation - 1.0) * 100.0
        );
    }

    #[test]
    fn auto_partition_ratio_overhead_is_small() {
        // At the default auto partition each block holds >= 32 Ki samples,
        // so the per-block framing (directory entry + severed LZ window)
        // amortises. The residual gap vs monolithic is cross-block LZ
        // redundancy this synthetic separable field is unusually rich in;
        // it is the price of independently recoverable blocks.
        let field = Field::from_fn_3d(48, 48, 48, |i, j, k| {
            ((i as f32) * 0.05).sin() * ((j as f32) * 0.07).cos()
                + ((k as f32) * 0.03).sin() * 2.0
        });
        let mono = SzConfig::new(ErrorBound::ValueRangeRel(1e-4));
        let blk = mono.with_threads(4);
        let (m, _) = compress_with_detail(&field, &mono).unwrap();
        let (b, _) = compress_with_detail(&field, &blk).unwrap();
        let inflation = b.len() as f64 / m.len() as f64;
        assert!(
            inflation < 1.15,
            "auto-partition blocked container {:.1}% larger than monolithic",
            (inflation - 1.0) * 100.0
        );
    }

    #[test]
    fn odd_block_sizes_roundtrip_3d() {
        let field = Field::from_fn_3d(17, 11, 13, |i, j, k| {
            ((i + 2 * j + 3 * k) as f32 * 0.03).sin() * 4.0
        });
        for block_rows in [1, 3, 5, 17, 50] {
            let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
                .with_threads(3)
                .with_block_rows(block_rows);
            let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
            for (a, b) in field.as_slice().iter().zip(back.as_slice()) {
                assert!((a - b).abs() <= 1e-3, "block_rows={block_rows}");
            }
        }
    }

    #[test]
    fn blocked_range_entropy_roundtrips() {
        let field = wavy(60, 30);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3))
            .with_entropy(EntropyCoder::Range)
            .with_threads(2)
            .with_block_rows(7);
        let back: Field<f32> = decompress(&compress(&field, &cfg).unwrap()).unwrap();
        for (a, b) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 1e-3);
        }
    }

    #[test]
    fn blocked_truncated_escapes_respect_bound() {
        let field = Field::from_fn_2d(48, 48, |i, j| {
            let smooth = (i as f32 * 0.05).sin() * 0.1;
            if (i * 48 + j) % 11 == 0 {
                smooth + 1000.0 + (i * j) as f32
            } else {
                smooth
            }
        });
        let cfg = SzConfig::new(ErrorBound::Abs(1e-4))
            .with_quant_bins(16)
            .with_escape(EscapeCoding::Truncated)
            .with_threads(4)
            .with_block_rows(9);
        let (bytes, detail) = compress_with_detail(&field, &cfg).unwrap();
        assert!(detail.n_unpredictable > 100, "test needs many escapes");
        let back: Field<f32> = decompress(&bytes).unwrap();
        for (a, b) in field.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn truncated_blocked_container_fails_cleanly() {
        let field = wavy(64, 64);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_threads(2);
        let bytes = compress(&field, &cfg).unwrap();
        for cut in [8, bytes.len() / 3, bytes.len() - 1] {
            let res: Result<Field<f32>, _> = decompress(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn decode_threads_do_not_change_output() {
        use crate::compressor::decompress_with_threads;
        let field = wavy(100, 50);
        let cfg = SzConfig::new(ErrorBound::Abs(1e-4))
            .with_threads(4)
            .with_block_rows(11);
        let bytes = compress(&field, &cfg).unwrap();
        let base: Field<f32> = decompress_with_threads(&bytes, 1).unwrap();
        for threads in [2, 3, 8] {
            let out: Field<f32> = decompress_with_threads(&bytes, threads).unwrap();
            assert_eq!(out.as_slice(), base.as_slice());
        }
    }
}
