//! Error-bounded truncated storage of unpredictable values.
//!
//! SZ 1.4 does not store escaped ("unpredictable") samples verbatim: it
//! analyses their binary representation and keeps only the leading
//! mantissa bits needed to stay inside the error bound. This module
//! reproduces that idea with a per-value variable-length code:
//!
//! ```text
//! 1 bit   raw flag        1 ⇒ the full IEEE bits follow (non-finite or
//!                         pathological values)
//! 1 bit   sign
//! 12 bits biased exponent e + 2047; 0 ⇒ the value is exactly ±0 and
//!         nothing follows
//! m bits  leading mantissa bits, where m = m(e, eb) is recomputed by the
//!         decoder from the exponent and the bound — no per-value length
//!         field needed
//! ```
//!
//! Truncation keeps the reconstruction within `eb` (verified at encode
//! time; violations fall back to the raw path), and both sides reconstruct
//! *bit-identically*, which the prediction walk requires (the reconstructed
//! escape feeds later predictions).

use losslesskit::bitio::{BitReader, BitWriter};
use losslesskit::CodecError;
use ndfield::Scalar;

const EXP_BIAS: i64 = 2047;
const EXP_BITS: u32 = 12;
/// Exponent-field value marking exact zero.
const EXP_ZERO: u64 = 0;

/// Mantissa bits required so the truncation error `< 2^(e−m)` stays `≤ eb`.
fn mantissa_bits(e: i64, eb: f64) -> u32 {
    debug_assert!(eb > 0.0);
    let need = e as f64 - eb.log2();
    need.ceil().max(0.0).min(52.0) as u32
}

/// Deterministic truncation of `v` to the bound: the value both the
/// encoder and decoder reconstruct. Returns `None` when `v` must travel
/// raw (non-finite, or the truncated form misses the bound).
pub fn truncate_to_bound<T: Scalar>(v: T, eb: f64) -> Option<T> {
    let x = v.to_f64();
    if !x.is_finite() {
        return None;
    }
    if x == 0.0 {
        // Preserve the sign of zero so the walk's reconstruction matches
        // the decoder's bit-for-bit.
        return Some(T::from_f64(if x.is_sign_negative() { -0.0 } else { 0.0 }));
    }
    // Subnormals (raw exponent field 0) skip the truncated path — their
    // mantissa has no implicit leading 1, so the bit arithmetic below does
    // not apply; they are rare enough to travel raw.
    if (x.abs().to_bits() >> 52) == 0 {
        return None;
    }
    let e = exponent_of(x);
    let m = mantissa_bits(e, eb);
    // Size-aware path choice: the truncated form costs 2 + 12 + m bits vs
    // 1 + 8·BYTES raw. When the bound demands (nearly) full precision the
    // raw path is cheaper AND exact — take it. The choice is a pure
    // function of (v, eb), so walk, encoder and decoder stay in lockstep.
    if (14 + m as usize) >= 1 + 8 * T::BYTES {
        return None;
    }
    let bits = x.abs().to_bits();
    let keep_mask = if m >= 52 {
        u64::MAX
    } else {
        !((1u64 << (52 - m)) - 1)
    };
    let recon = f64::from_bits(bits & keep_mask) * x.signum();
    let back = T::from_f64(recon);
    if (back.to_f64() - x).abs() <= eb {
        Some(back)
    } else {
        None
    }
}

/// IEEE exponent of a finite nonzero normal f64 (unbiased).
fn exponent_of(x: f64) -> i64 {
    ((x.abs().to_bits() >> 52) as i64) - 1023
}

/// Encode escaped values. The reconstruction of each value is exactly what
/// [`truncate_to_bound`] returns (the walk must have used the same).
pub fn encode<T: Scalar>(values: &[T], eb: f64, w: &mut BitWriter) {
    for &v in values {
        match truncate_to_bound(v, eb) {
            Some(_) => {
                let x = v.to_f64();
                w.write_bit(false); // truncated path
                if x == 0.0 {
                    w.write_bit(x.is_sign_negative());
                    w.write_bits(EXP_ZERO, EXP_BITS);
                    continue;
                }
                w.write_bit(x < 0.0);
                let e = exponent_of(x);
                w.write_bits((e + EXP_BIAS) as u64, EXP_BITS);
                let m = mantissa_bits(e, eb);
                if m > 0 {
                    let mant = (x.abs().to_bits() & ((1u64 << 52) - 1)) >> (52 - m);
                    // BitWriter takes ≤57 bits per call; m ≤ 52 fits.
                    w.write_bits(mant, m);
                }
            }
            None => {
                w.write_bit(true); // raw path
                w.write_bits(v.to_bits_u64() & 0xffff_ffff, 32);
                w.write_bits(v.to_bits_u64() >> 32, if T::BYTES == 8 { 32 } else { 0 });
            }
        }
    }
}

/// Decode `n` values written by [`encode`] with the same bound.
///
/// # Errors
/// [`CodecError::UnexpectedEof`] on truncation.
pub fn decode<T: Scalar>(r: &mut BitReader<'_>, n: usize, eb: f64) -> Result<Vec<T>, CodecError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if r.read_bit()? {
            // Raw path.
            let lo = r.read_bits(32)?;
            let hi = if T::BYTES == 8 { r.read_bits(32)? } else { 0 };
            out.push(T::from_bits_u64(lo | (hi << 32)));
            continue;
        }
        let neg = r.read_bit()?;
        let e_field = r.read_bits(EXP_BITS)?;
        if e_field == EXP_ZERO {
            out.push(T::from_f64(if neg { -0.0 } else { 0.0 }));
            continue;
        }
        let e = e_field as i64 - EXP_BIAS;
        if !(-1022..=1023).contains(&e) {
            return Err(CodecError::Corrupt("escape exponent out of range"));
        }
        let m = mantissa_bits(e, eb);
        let mant = if m > 0 { r.read_bits(m)? } else { 0 };
        let bits = (((e + 1023) as u64) << 52) | if m > 0 { mant << (52 - m) } else { 0 };
        let mag = f64::from_bits(bits);
        out.push(T::from_f64(if neg { -mag } else { mag }));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(values: &[T], eb: f64) -> Vec<T> {
        let mut w = BitWriter::new();
        encode(values, eb, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        decode::<T>(&mut r, values.len(), eb).unwrap()
    }

    #[test]
    fn reconstruction_matches_truncate_to_bound() {
        let values: Vec<f32> = vec![1.5, -273.125, 1e-8, 3.4e37, -0.0625, 7.0];
        let eb = 1e-3;
        let decoded = roundtrip(&values, eb);
        for (&v, &d) in values.iter().zip(&decoded) {
            // None ⇒ the encoder chose the raw path (cheaper or required):
            // the decoder must then return the exact bits.
            let expect = truncate_to_bound(v, eb).unwrap_or(v);
            assert_eq!(d.to_bits(), expect.to_bits(), "v={v}");
        }
    }

    #[test]
    fn huge_magnitudes_choose_raw_path() {
        // eb tiny relative to the value: truncation would need >= full
        // mantissa, so the size-aware choice falls back to raw (exact).
        assert!(truncate_to_bound(3.4e37f32, 1e-3).is_none());
        assert!(truncate_to_bound(1.0e200f64, 1e-3).is_none());
        // Moderate magnitudes still truncate.
        assert!(truncate_to_bound(1.5f32, 1e-3).is_some());
    }

    #[test]
    fn error_within_bound_for_wide_value_range() {
        let eb = 1e-2;
        let values: Vec<f64> = (0..2000)
            .map(|i| {
                let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
                sign * (i as f64 * 0.731).exp2().min(1e200) * 1e-3
            })
            .collect();
        let decoded = roundtrip(&values, eb);
        for (&v, &d) in values.iter().zip(&decoded) {
            assert!((v - d).abs() <= eb, "v={v} d={d}");
        }
    }

    #[test]
    fn zeros_and_signed_zeros_exact() {
        let values = vec![0.0f32, -0.0];
        let decoded = roundtrip(&values, 1e-3);
        assert_eq!(decoded[0], 0.0);
        assert_eq!(decoded[1], 0.0);
        assert!(decoded[1].is_sign_negative());
    }

    #[test]
    fn non_finite_travel_raw_and_exact() {
        let values = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0];
        let decoded = roundtrip(&values, 1e-3);
        assert!(decoded[0].is_nan());
        assert_eq!(decoded[1], f32::INFINITY);
        assert_eq!(decoded[2], f32::NEG_INFINITY);
    }

    #[test]
    fn tighter_bound_keeps_more_bits() {
        let v = std::f64::consts::PI;
        let loose = truncate_to_bound(v, 1e-1).unwrap();
        let tight = truncate_to_bound(v, 1e-12).unwrap();
        assert!((v - loose).abs() <= 1e-1);
        assert!((v - tight).abs() <= 1e-12);
        assert!((v - tight).abs() <= (v - loose).abs());
    }

    #[test]
    fn truncated_is_smaller_than_raw_for_loose_bounds() {
        let values: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
        let mut w = BitWriter::new();
        encode(&values, 1.0, &mut w); // loose: few mantissa bits
        let loose = w.finish().len();
        assert!(
            loose < values.len() * 4,
            "truncated encoding ({loose} B) not smaller than raw ({} B)",
            values.len() * 4
        );
    }

    #[test]
    fn f64_roundtrip_within_bound() {
        let values: Vec<f64> = vec![1.0e-300, -2.5e300, 3.0, -4.0e-5];
        let eb = 1e-6;
        let decoded = roundtrip(&values, eb);
        for (&v, &d) in values.iter().zip(&decoded) {
            // Huge-magnitude values have exponent > eb precision ⇒ m ≤ 52
            // keeps relative precision; the *absolute* bound only holds for
            // values where it is representable — encode() verifies and falls
            // back to raw otherwise, so the decoded error is always ≤ eb or 0.
            let err = (v - d).abs();
            assert!(err <= eb || err == 0.0, "v={v} err={err}");
        }
    }

    #[test]
    fn subnormal_values_roundtrip() {
        let values = vec![f64::MIN_POSITIVE / 8.0, -f64::MIN_POSITIVE / 1024.0];
        let decoded = roundtrip(&values, 1e-3);
        for (&v, &d) in values.iter().zip(&decoded) {
            assert!((v - d).abs() <= 1e-3);
        }
    }

    #[test]
    fn truncated_eof_detected() {
        let mut w = BitWriter::new();
        encode(&[1.0f32; 100], 1e-6, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..bytes.len() / 2]);
        assert!(decode::<f32>(&mut r, 100, 1e-6).is_err());
    }
}
