//! Ratio–quality modeling: predict compressed bits/value as a function of
//! the error bound from **one cheap pilot pass**, then invert the curve to
//! pick the bound that hits a target compression ratio.
//!
//! The paper's fixed-PSNR mode inverts a *distortion* target analytically
//! (Eq. 8); the dual contract — "give me N× compression" — has no closed
//! form because the compressed size depends on the whole prediction-error
//! *distribution*, not just the bin width. FRaZ-style tooling answers it
//! with black-box reruns; ratio–quality modeling (Jin et al.,
//! arXiv:2111.09815) shows the size is predictable from quantization-bin
//! statistics. This module implements that idea for our SZ pipeline:
//!
//! 1. **Pilot pass** — one quantized walk (prediction + quantization only;
//!    no entropy coding, no LZ) at a fine *reference* bound
//!    `eb_ref = vr·1e-6` collects the signed code-magnitude histogram. For
//!    blocked configurations the pilot runs the same per-block walks the
//!    blocked compressor does and merges the per-block histograms — the
//!    exact shared-frequency-table structure of the blocked container.
//! 2. **Curve** — for any coarser bound `eb = s·eb_ref`, the histogram
//!    rebins by `m ↦ round(m/s)` (bin widths scale linearly with the
//!    bound, Eq. 6's `δ = 2·eb`). Predicted bits/value is the Shannon
//!    entropy of the rebinned symbol stream (the Huffman+LZ pipeline
//!    estimate) plus escape-payload bits, a precision-ramp term for bounds
//!    near the scalar's ulp, and serialized-container overhead — all
//!    multiplied by an LZ-gain correction the caller fits online after the
//!    first real pass.
//! 3. **Inversion** — bits/value is monotone non-increasing in the bound,
//!    so a bisection on `ln eb` (pure histogram arithmetic, no
//!    compression) returns the bound whose predicted rate meets the
//!    target.
//!
//! The model is intentionally approximate (adaptive interval selection,
//! LZ window effects and table compression are folded into one fitted
//! gain); the fixed-ratio driver in `fpsnr-core` closes the residual with
//! at most two bounded secant refinements on *measured* ratios.

use std::collections::HashMap;

use ndfield::{Field, Scalar};

use crate::blocked::{block_range, resolve_block_rows, use_blocked};
use crate::compressor::{quantized_walk_on, select_model};
use crate::config::{LosslessBackend, SzConfig};
use crate::error::SzError;

/// Value-range-relative reference bound of the pilot walk. Fine enough
/// that every practically requested bound is a *coarsening* (`s ≥ 1`)
/// while staying well above f32's representable resolution.
const EB_REF_REL: f64 = 1e-6;
/// Quantizer grid of the pilot walk. Radius `2²¹` covers prediction
/// errors up to twice the value range at `eb_ref`, so pilot escapes are
/// (almost) only non-finite samples.
const PILOT_BINS: usize = 1 << 22;
/// Serialized fixed overhead estimate: header, mode/bound fields, varint
/// lengths, CRC trailer.
const HEADER_BYTES: f64 = 48.0;
/// Estimated serialized bytes per distinct Huffman symbol (canonical
/// table entry: symbol varint + code length).
const TABLE_BYTES_PER_SYMBOL: f64 = 3.0;
/// Estimated per-block framing bytes in the v2 blocked layout (directory
/// entry: lossless flag, length varint, CRC).
const BLOCK_FRAME_BYTES: f64 = 14.0;
/// Quantization-noise-feedback entropy floor, in bits per octave of
/// dynamic range per bin (see [`RateModel::predict_bits_per_value`]).
const NOISE_FLOOR_BITS_PER_OCTAVE: f64 = 0.28;
/// Saturation of the noise-feedback floor: reconstruction noise has a
/// standard deviation of roughly half a bin, and a discrete distribution
/// that wide carries ≈ 1.4 bits however coarse the bound gets.
const NOISE_FLOOR_CAP_BITS: f64 = 1.4;

/// Estimate coded bits/value for one predictor candidate from its sampled
/// quantized error magnitudes — the shared cost model behind
/// [`crate::compressor::select_model`]'s per-field and per-block bake-offs.
///
/// `qmags` holds the quantized error magnitude per sampled point with
/// `u64::MAX` (or anything `> radius`) marking an escape. Magnitudes are
/// priced like an exponent/mantissa code (the JPEG-DC / Elias-γ shape a
/// canonical Huffman code converges to on long-tailed alphabets): Shannon
/// entropy over the exponent classes — zero, `[2^(k−1), 2^k)` for each
/// `k`, escapes as one more class — plus `k−1` mantissa bits and one sign
/// bit per nonzero in-range magnitude, plus `sample_bits` per escape,
/// plus `extra_bits` of per-value side-channel overhead (regression
/// spends `8·REGRESSION_COEFF_BYTES / n` here). Pricing the within-class
/// spread explicitly matters for wide residual distributions: flat
/// buckets made a predictor whose magnitudes span thousands of bins look
/// several bits/value cheaper than its real Huffman stream.
pub(crate) fn candidate_bits_per_value(
    qmags: &[u64],
    radius: u64,
    sample_bits: f64,
    extra_bits: f64,
) -> f64 {
    if qmags.is_empty() {
        return extra_bits;
    }
    // Class 0 holds zeros; class k (1..=64) holds magnitudes with k bits.
    let mut hist = [0u64; 65];
    let mut escapes = 0u64;
    let mut nonzero_live = 0u64;
    let mut mantissa_bits = 0u64;
    for &q in qmags {
        if q > radius {
            escapes += 1;
        } else if q == 0 {
            hist[0] += 1;
        } else {
            let k = 64 - q.leading_zeros() as usize;
            hist[k] += 1;
            mantissa_bits += (k - 1) as u64;
            nonzero_live += 1;
        }
    }
    let n = qmags.len() as f64;
    let mut h = 0.0;
    for &c in hist.iter().chain(std::iter::once(&escapes)) {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
    }
    let esc_frac = escapes as f64 / n;
    h + (mantissa_bits + nonzero_live) as f64 / n + esc_frac * sample_bits + extra_bits
}

/// The ratio–quality curve built from one pilot pass over one field.
///
/// Immutable once built: every prediction/inversion is pure histogram
/// arithmetic, so probing the curve costs microseconds, not compressions.
#[derive(Debug, Clone)]
pub struct RateModel {
    /// Signed pilot code magnitudes (`code − radius`) with their counts,
    /// sorted by magnitude; escapes excluded.
    mags: Vec<(i64, u64)>,
    /// `log2 |x|` buckets of the data values (zeros and non-finite
    /// excluded) — drives the precision-escape ramp.
    absmag: Vec<(i32, u64)>,
    /// Total samples.
    n: u64,
    /// Pilot samples with a *nonzero* code — the mass that participates in
    /// quantization-noise feedback. Constant runs predict exactly and stay
    /// silent at every bound, so they are exempt from the noise floor.
    pilot_live: u64,
    /// Samples that escaped even at the reference bound (non-finite
    /// values, pathological round-off).
    pilot_escapes: u64,
    /// Absolute reference bound the pilot walked with.
    eb_ref: f64,
    /// Value range of the field.
    value_range: f64,
    /// Bits per raw sample (32 or 64).
    sample_bits: f64,
    /// Relative round-off scale of the scalar type (≈ its ulp at 1.0).
    scalar_eps: f64,
    /// Quantization-bin cap of the target pipeline.
    quant_bins: usize,
    /// Lossless backend of the target pipeline.
    lossless: LosslessBackend,
    /// Blocks the pilot (and the target container) partitions into.
    n_blocks: usize,
}

impl RateModel {
    /// Run the pilot pass: one quantized walk at the reference bound (per
    /// block when `cfg` routes to the blocked container, mirroring its
    /// merged frequency tables), plus a value-magnitude scan.
    ///
    /// `cfg.bound` is ignored — the pilot picks its own reference bound;
    /// every other knob (bins, predictor, escape coding, lossless,
    /// threads/block_rows) describes the pipeline being modeled.
    ///
    /// # Errors
    /// [`SzError::BadBound`] for constant or non-finite-range fields (the
    /// ratio–quality curve is undefined there: the container size no
    /// longer depends on the bound), or an invalid `cfg`.
    pub fn pilot<T: Scalar>(field: &Field<T>, cfg: &SzConfig) -> Result<RateModel, SzError> {
        cfg.validate()?;
        let _span = fpsnr_obs::span("sz.ratemodel.pilot");
        let vr = field.value_range();
        if !vr.is_finite() || vr <= 0.0 {
            return Err(SzError::BadBound(format!(
                "ratio–quality pilot needs a finite nonzero value range, got {vr}"
            )));
        }
        let eb_ref = vr * EB_REF_REL;
        let shape = field.shape();
        let data = field.as_slice();
        let model = select_model(data, shape, cfg.predictor, eb_ref, PILOT_BINS);
        let radius = (PILOT_BINS / 2) as i64;
        let mut mag_counts: HashMap<i64, u64> = HashMap::new();
        let mut escapes = 0u64;
        let mut recon = Vec::new();
        let mut tally = |codes: &[u32]| {
            for &code in codes {
                if code == 0 {
                    escapes += 1;
                } else {
                    *mag_counts.entry(code as i64 - radius).or_insert(0) += 1;
                }
            }
        };
        let n_blocks = if use_blocked(cfg) {
            let block_rows = resolve_block_rows(shape, cfg.block_rows);
            let blocks = shape.dims()[0].div_ceil(block_rows);
            for b in 0..blocks {
                let (range, bshape) = block_range(shape, block_rows, b);
                let walk = quantized_walk_on(
                    &data[range],
                    bshape,
                    eb_ref,
                    PILOT_BINS,
                    model,
                    cfg.escape,
                    false,
                    &mut recon,
                    cfg.kernel,
                );
                tally(&walk.codes);
            }
            blocks
        } else {
            let walk = quantized_walk_on(
                data, shape, eb_ref, PILOT_BINS, model, cfg.escape, false, &mut recon,
                cfg.kernel,
            );
            tally(&walk.codes);
            1
        };
        let mut absmag_counts: HashMap<i32, u64> = HashMap::new();
        for v in data {
            let a = v.to_f64().abs();
            if a.is_finite() && a > 0.0 {
                *absmag_counts.entry(a.log2().floor() as i32).or_insert(0) += 1;
            }
        }
        let mut mags: Vec<(i64, u64)> = mag_counts.into_iter().collect();
        mags.sort_unstable();
        let pilot_live: u64 = mags.iter().filter(|&&(m, _)| m != 0).map(|&(_, c)| c).sum();
        let mut absmag: Vec<(i32, u64)> = absmag_counts.into_iter().collect();
        absmag.sort_unstable();
        Ok(RateModel {
            mags,
            absmag,
            n: data.len() as u64,
            pilot_live,
            pilot_escapes: escapes,
            eb_ref,
            value_range: vr,
            sample_bits: (T::BYTES * 8) as f64,
            scalar_eps: if T::BYTES == 4 {
                2.0f64.powi(-23)
            } else {
                2.0f64.powi(-52)
            },
            quant_bins: cfg.quant_bins,
            lossless: cfg.lossless,
            n_blocks,
        })
    }

    /// Value range of the piloted field (the `eb_rel ↔ eb_abs` conversion
    /// factor).
    pub fn value_range(&self) -> f64 {
        self.value_range
    }

    /// Predicted compressed bits per value at absolute bound `eb_abs`.
    ///
    /// `lz_gain` is the online-fitted correction for everything the
    /// entropy estimate cannot see (LZ window effects, table compression,
    /// adaptive interval selection); pass `1.0` before the first real
    /// compression and the driver's fitted value afterwards.
    pub fn predict_bits_per_value(&self, eb_abs: f64, lz_gain: f64) -> f64 {
        let n = self.n as f64;
        if n == 0.0 {
            return 0.0;
        }
        let s = eb_abs / self.eb_ref;
        let radius = (self.quant_bins / 2) as i64;
        // Rebin the sorted pilot magnitudes: m ↦ round(m/s) is monotone in
        // m, so equal targets form runs and one linear merge suffices.
        let mut merged: Vec<u64> = Vec::with_capacity(self.mags.len());
        let mut rebin_escapes = self.pilot_escapes;
        let mut prev: Option<i64> = None;
        for &(m, c) in &self.mags {
            let m2f = (m as f64 / s).round();
            if m2f.abs() >= (radius - 1) as f64 {
                rebin_escapes += c;
                continue;
            }
            let m2 = m2f as i64;
            match prev {
                Some(p) if p == m2 => *merged.last_mut().expect("run open") += c,
                _ => {
                    merged.push(c);
                    prev = Some(m2);
                }
            }
        }
        // Precision ramp: a sample whose own round-off exceeds the bound
        // cannot be reconstructed within it and escapes, whatever the
        // predictor does. This is what makes very fine bounds on f32 data
        // blow up to raw size instead of compressing further.
        let mut precision_escapes = 0u64;
        for &(bucket, c) in &self.absmag {
            if 2.0f64.powi(bucket) * self.scalar_eps > eb_abs {
                precision_escapes += c;
            }
        }
        let esc_frac =
            (((rebin_escapes + precision_escapes) as f64) / n).min(1.0);
        // Mixture entropy: escape symbol with mass e, code j with mass
        // (1−e)·qⱼ ⇒ H = −e·log e − (1−e)·log(1−e) + (1−e)·H(q).
        let hist_total: u64 = merged.iter().sum();
        let mut h = 0.0;
        if esc_frac > 0.0 && esc_frac < 1.0 {
            h -= esc_frac * esc_frac.log2()
                + (1.0 - esc_frac) * (1.0 - esc_frac).log2();
        }
        if hist_total > 0 && esc_frac < 1.0 {
            let total = hist_total as f64;
            let mut hq = 0.0;
            for &c in &merged {
                let p = c as f64 / total;
                hq -= p * p.log2();
            }
            if s < 1.0 {
                // Bounds finer than the pilot's reference split bins the
                // histogram cannot resolve; under the flat-within-bin
                // assumption each halving of the bound adds one bit.
                hq = (hq + (1.0 / s).log2()).min((self.quant_bins as f64).log2());
            }
            // Quantization-noise feedback floor. Rebinning alone predicts
            // H → 0 once the bound dwarfs the pilot prediction errors, but
            // the real pipeline predicts from *reconstructed* neighbours:
            // each carries O(eb) rounding noise, which keeps codes jittering
            // over a few bins. Measured code entropy on live fields tracks
            // min(0.28·t, 1.4) where t = log₂(vr / 2eb) is the octaves of
            // dynamic range per bin — the feedback dies (t → 0) exactly when
            // one bin swallows the whole range and reconstruction snaps
            // flat. Constant-predicting mass is exempt (no rounding, no
            // noise), hence the live-fraction scaling.
            let live_frac = self.pilot_live as f64 / n;
            let range_octaves = (self.value_range / (2.0 * eb_abs)).log2().max(0.0);
            let floor = (NOISE_FLOOR_BITS_PER_OCTAVE * range_octaves)
                .min(NOISE_FLOOR_CAP_BITS)
                * live_frac;
            h += (1.0 - esc_frac) * hq.max(floor);
        }
        let mut payload = h + esc_frac * self.sample_bits;
        if self.lossless == LosslessBackend::None {
            // Without the LZ stage the canonical-Huffman 1-bit/symbol
            // floor is real output, not squashable redundancy.
            payload = payload.max(1.0 + esc_frac * self.sample_bits);
        }
        let distinct = merged.len() as f64 + 1.0;
        let overhead_bytes = HEADER_BYTES
            + TABLE_BYTES_PER_SYMBOL * distinct
            + BLOCK_FRAME_BYTES * self.n_blocks as f64;
        payload * lz_gain + overhead_bytes * 8.0 / n
    }

    /// Predicted total container bytes at absolute bound `eb_abs` — the
    /// [`Self::predict_bits_per_value`] rate times the sample count.
    pub fn predict_bytes(&self, eb_abs: f64, lz_gain: f64) -> f64 {
        self.predict_bits_per_value(eb_abs, lz_gain) * self.n as f64 / 8.0
    }

    /// Sample the whole predicted bytes-vs-PSNR curve on a uniform PSNR
    /// grid (`psnr_lo + i·step` for `i in 0..points`), mapping each grid
    /// PSNR to its Eq. 8 bound (`eb_abs = √3·10^(−PSNR/20)·vr`) and
    /// evaluating the rate model there.
    ///
    /// This is the snapshot-allocation interface: the fixed-ratio driver
    /// needs one inversion ([`Self::invert_for_ratio`]), but a global
    /// bit-allocation solver probes *many* (PSNR, bytes) points per field
    /// while water-filling a shared budget, so it wants the whole curve
    /// materialized once — every later probe is an array lookup, not a
    /// histogram rebin. Bytes are forced monotone non-decreasing in PSNR
    /// (the model is monotone up to floating-point noise; solvers rely on
    /// it exactly).
    ///
    /// # Panics
    /// Panics when `points == 0` or `step` is not finite and positive.
    pub fn curve(&self, psnr_lo: f64, step: f64, points: usize, lz_gain: f64) -> RateCurve {
        assert!(points > 0, "curve needs at least one grid point");
        assert!(
            step.is_finite() && step > 0.0,
            "curve step must be finite and positive"
        );
        let mut bytes = Vec::with_capacity(points);
        let mut prev = 0.0f64;
        for i in 0..points {
            let psnr = psnr_lo + step * i as f64;
            let eb_abs = 3f64.sqrt() * 10f64.powf(-psnr / 20.0) * self.value_range;
            let b = self.predict_bytes(eb_abs, lz_gain).max(prev);
            bytes.push(b);
            prev = b;
        }
        RateCurve {
            psnr_lo,
            step,
            bytes,
            value_range: self.value_range,
            n_samples: self.n,
        }
    }

    /// Invert the curve: the absolute bound whose predicted rate meets
    /// `target_ratio`, found by bisection on `ln eb` (the rate is monotone
    /// non-increasing in the bound). Clamped to `[vr·1e-12, 2·vr]` when
    /// the target is outside the reachable range — the driver detects the
    /// resulting miss from the measured ratio.
    pub fn invert_for_ratio(&self, target_ratio: f64, lz_gain: f64) -> f64 {
        let target_bpv = self.sample_bits / target_ratio;
        let eb_min = self.value_range * 1e-12;
        let eb_max = self.value_range * 2.0;
        if self.predict_bits_per_value(eb_min, lz_gain) <= target_bpv {
            return eb_min;
        }
        if self.predict_bits_per_value(eb_max, lz_gain) >= target_bpv {
            return eb_max;
        }
        let (mut lo, mut hi) = (eb_min.ln(), eb_max.ln());
        for _ in 0..44 {
            let mid = 0.5 * (lo + hi);
            if self.predict_bits_per_value(mid.exp(), lz_gain) > target_bpv {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (0.5 * (lo + hi)).exp()
    }
}

/// One field's predicted bytes-vs-PSNR curve, sampled by
/// [`RateModel::curve`] on a uniform PSNR grid.
///
/// The curve is immutable and cheap to probe (array lookups), which is
/// what lets a snapshot-level allocator sum and scan curves for dozens of
/// fields per solver iteration. Grid PSNRs map to bounds via Eq. 8, so
/// compressing a field at grid point `i` means running fixed-PSNR mode at
/// `psnr_at(i)`.
#[derive(Debug, Clone)]
pub struct RateCurve {
    /// PSNR of grid index 0, in dB.
    psnr_lo: f64,
    /// Grid spacing in dB.
    step: f64,
    /// Predicted container bytes per grid point, non-decreasing.
    bytes: Vec<f64>,
    /// Value range of the piloted field.
    value_range: f64,
    /// Samples in the piloted field.
    n_samples: u64,
}

impl RateCurve {
    /// Number of grid points.
    pub fn points(&self) -> usize {
        self.bytes.len()
    }

    /// PSNR of grid index `i` (dB).
    pub fn psnr_at(&self, i: usize) -> f64 {
        self.psnr_lo + self.step * i as f64
    }

    /// Predicted container bytes at grid index `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn bytes_at(&self, i: usize) -> f64 {
        self.bytes[i]
    }

    /// Largest grid index whose predicted bytes fit within `budget`, or
    /// `None` when even index 0 exceeds it. Binary search over the
    /// monotone byte array.
    pub fn max_index_within(&self, budget: f64) -> Option<usize> {
        if self.bytes[0] > budget {
            return None;
        }
        let (mut lo, mut hi) = (0usize, self.bytes.len() - 1);
        while lo < hi {
            let mid = (lo + hi + 1) / 2;
            if self.bytes[mid] <= budget {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(lo)
    }

    /// A copy of the curve with every predicted byte count multiplied by
    /// `gain` — the allocation driver's feedback correction: after one
    /// real compression pass, `gain = achieved / predicted` re-anchors the
    /// curve so it passes through the measured point while keeping the
    /// pilot-derived shape.
    pub fn scaled(&self, gain: f64) -> RateCurve {
        RateCurve {
            psnr_lo: self.psnr_lo,
            step: self.step,
            bytes: self.bytes.iter().map(|b| b * gain).collect(),
            value_range: self.value_range,
            n_samples: self.n_samples,
        }
    }

    /// Value range of the piloted field.
    pub fn value_range(&self) -> f64 {
        self.value_range
    }

    /// Samples in the piloted field.
    pub fn n_samples(&self) -> u64 {
        self.n_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorBound;
    use crate::{compress, SzConfig};
    use ndfield::Shape;

    fn textured(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            let x = i as f32 * 0.13;
            let y = j as f32 * 0.17;
            10.0 * (x.sin() + y.cos()) + 2.0 * ((x * 5.1).sin() * (y * 4.3).cos())
        })
    }

    fn cfg() -> SzConfig {
        SzConfig::new(ErrorBound::Abs(1.0))
    }

    #[test]
    fn rate_curve_is_monotone_in_the_bound() {
        let f = textured(96, 96);
        let model = RateModel::pilot(&f, &cfg()).unwrap();
        let vr = model.value_range();
        let mut prev = f64::INFINITY;
        for rel in [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1] {
            let bpv = model.predict_bits_per_value(rel * vr, 1.0);
            assert!(
                bpv <= prev + 1e-6,
                "rate increased with a looser bound at eb_rel {rel}: {bpv} > {prev}"
            );
            prev = bpv;
        }
    }

    #[test]
    fn prediction_tracks_measured_size_within_a_factor() {
        // The pilot model must land in the right ballpark (the driver's
        // secant refinements absorb the residual, but only if the first
        // guess is sane).
        let f = textured(128, 128);
        let model = RateModel::pilot(&f, &cfg()).unwrap();
        let vr = model.value_range();
        for rel in [1e-4, 1e-3, 1e-2] {
            let predicted = model.predict_bits_per_value(rel * vr, 1.0);
            let bytes =
                compress(&f, &SzConfig::new(ErrorBound::ValueRangeRel(rel))).unwrap();
            let actual = bytes.len() as f64 * 8.0 / f.len() as f64;
            let err = predicted / actual;
            assert!(
                (0.4..=2.5).contains(&err),
                "eb_rel {rel}: predicted {predicted:.3} bpv vs actual {actual:.3} bpv"
            );
        }
    }

    #[test]
    fn inversion_crosses_the_target_rate() {
        let f = textured(96, 128);
        let model = RateModel::pilot(&f, &cfg()).unwrap();
        for ratio in [4.0, 8.0, 16.0] {
            let eb = model.invert_for_ratio(ratio, 1.0);
            let bpv = model.predict_bits_per_value(eb, 1.0);
            let target_bpv = 32.0 / ratio;
            assert!(
                (bpv - target_bpv).abs() / target_bpv < 0.1,
                "ratio {ratio}: inverted bound predicts {bpv:.3} bpv, want {target_bpv:.3}"
            );
        }
    }

    #[test]
    fn blocked_pilot_merges_per_block_histograms() {
        let f = textured(64, 96);
        let mono = RateModel::pilot(&f, &cfg()).unwrap();
        let blocked = RateModel::pilot(
            &f,
            &cfg().with_threads(2).with_block_rows(16),
        )
        .unwrap();
        assert_eq!(blocked.n_blocks, 4);
        assert_eq!(mono.n, blocked.n);
        // Same data, same reference bound: the merged histogram mass must
        // match the monolithic one (block boundaries only perturb a few
        // first-row predictions).
        let mono_mass: u64 = mono.mags.iter().map(|&(_, c)| c).sum();
        let blk_mass: u64 = blocked.mags.iter().map(|&(_, c)| c).sum();
        assert_eq!(mono_mass + mono.pilot_escapes, blk_mass + blocked.pilot_escapes);
    }

    #[test]
    fn curve_is_monotone_and_matches_pointwise_prediction() {
        let f = textured(96, 96);
        let model = RateModel::pilot(&f, &cfg()).unwrap();
        let curve = model.curve(20.0, 0.25, 481, 1.0);
        assert_eq!(curve.points(), 481);
        assert!((curve.psnr_at(0) - 20.0).abs() < 1e-12);
        assert!((curve.psnr_at(480) - 140.0).abs() < 1e-9);
        let mut prev = 0.0;
        for i in 0..curve.points() {
            assert!(curve.bytes_at(i) >= prev, "bytes dipped at index {i}");
            prev = curve.bytes_at(i);
        }
        // Away from the monotonicity clamp, the grid must agree with a
        // direct model evaluation at the same Eq. 8 bound.
        let psnr = curve.psnr_at(200);
        let eb = 3f64.sqrt() * 10f64.powf(-psnr / 20.0) * model.value_range();
        let direct = model.predict_bytes(eb, 1.0);
        assert!(
            (curve.bytes_at(200) - direct).abs() <= direct * 1e-9 + 1e-6,
            "grid {} vs direct {direct}",
            curve.bytes_at(200)
        );
    }

    #[test]
    fn curve_inverse_lookup_brackets_the_budget() {
        let f = textured(64, 96);
        let model = RateModel::pilot(&f, &cfg()).unwrap();
        let curve = model.curve(20.0, 0.5, 241, 1.0);
        // A budget below the cheapest point is infeasible.
        assert!(curve.max_index_within(curve.bytes_at(0) - 1.0).is_none());
        // Any point's own byte count maps back to at least that index.
        for i in [0, 17, 120, 240] {
            let j = curve.max_index_within(curve.bytes_at(i)).unwrap();
            assert!(j >= i, "index {i} inverted to {j}");
            if j + 1 < curve.points() {
                assert!(curve.bytes_at(j + 1) > curve.bytes_at(i));
            }
        }
    }

    #[test]
    fn scaled_curve_multiplies_bytes() {
        let f = textured(48, 48);
        let model = RateModel::pilot(&f, &cfg()).unwrap();
        let curve = model.curve(30.0, 1.0, 50, 1.0);
        let scaled = curve.scaled(1.5);
        for i in 0..curve.points() {
            assert!((scaled.bytes_at(i) - curve.bytes_at(i) * 1.5).abs() < 1e-6);
        }
        assert_eq!(scaled.points(), curve.points());
        assert_eq!(scaled.n_samples(), curve.n_samples());
    }

    #[test]
    fn constant_field_rejected() {
        let f = Field::from_vec(Shape::D2(8, 8), vec![2.5f32; 64]);
        assert!(RateModel::pilot(&f, &cfg()).is_err());
    }

    #[test]
    fn precision_ramp_caps_fine_bounds() {
        // At bounds below f32 round-off the model must predict ~raw size,
        // not an ever-growing entropy: the inversion then never chases
        // unreachable ratios into the ulp regime.
        let f = textured(64, 64);
        let model = RateModel::pilot(&f, &cfg()).unwrap();
        let vr = model.value_range();
        let bpv = model.predict_bits_per_value(vr * 1e-12, 1.0);
        assert!(bpv > 30.0, "ulp-regime prediction only {bpv:.2} bpv");
    }
}
