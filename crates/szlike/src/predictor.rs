//! The composable prediction stage (SZ step 1).
//!
//! Prediction is a pluggable stage: the pipeline walks carry a
//! [`PredictorModel`] — a concrete predictor *instance*, coefficients
//! included — and every model obeys the [`Predictor`] contract: the
//! encoder's predict half and the decoder's replay half are the same
//! function of the reconstructed prefix, so both sides compute
//! bit-identical predictions. That symmetry is the premise of the paper's
//! Theorem 1 (`Xpred = X̃pred`, hence `X − X̃ = Xpe − X̃pe`), and it holds
//! per predictor, per block.
//!
//! Four model families are implemented:
//!
//! - **Lorenzo** ([`lorenzo_1d`]/[`lorenzo_2d`]/[`lorenzo_3d`]): each
//!   sample predicted from its preceding row-major neighbours. With
//!   out-of-grid neighbours treated as zero, the d-dimensional stencil
//!   automatically degrades to the (d−1)-dimensional one along boundary
//!   faces.
//! - **Lorenzo²** ([`lorenzo2_1d`] and friends): the two-layer stencil,
//!   exact on per-axis quadratics.
//! - **Regression** ([`fit_regression`]): a per-block least-squares
//!   hyperplane over the block-local grid coordinates (Tao'17's
//!   multidimensional regression, restricted to first order). Predictions
//!   depend only on the coordinates and the stored coefficients — never on
//!   the reconstruction — so quantization noise cannot feed back.
//! - **Spline** ([`spline_predict`]): cubic-stencil extrapolation along
//!   the fastest-varying axis (`3·r[k−1] − 3·r[k−2] + r[k−3]`, the
//!   three-point tail of the binomial `(1−B)³` filter — exact on per-row
//!   quadratics), falling back to first-order Lorenzo where fewer than
//!   three in-row predecessors exist.

use ndfield::Shape;

/// Predict sample `idx` of a 1-D series from the reconstructed prefix
/// `recon[..idx]`.
#[inline]
pub fn lorenzo_1d(recon: &[f64], idx: usize) -> f64 {
    if idx == 0 {
        0.0
    } else {
        recon[idx - 1]
    }
}

/// Predict sample `(i, j)` of a 2-D grid (`cols` fastest-varying) from the
/// reconstructed prefix. Three-point stencil
/// `r[i,j−1] + r[i−1,j] − r[i−1,j−1]`.
#[inline]
pub fn lorenzo_2d(recon: &[f64], cols: usize, i: usize, j: usize) -> f64 {
    let at = |ii: usize, jj: usize| recon[ii * cols + jj];
    match (i > 0, j > 0) {
        (false, false) => 0.0,
        (false, true) => at(0, j - 1),
        (true, false) => at(i - 1, 0),
        (true, true) => {
            // Interior: one window slice ending at the predicted sample
            // covers all three neighbours (up-left at 0, up at 1, left at
            // cols), replacing three independently bounds-checked indexed
            // loads. Term order matches the indexed form bit for bit.
            let base = i * cols + j;
            let w = &recon[base - cols - 1..base];
            w[cols] + w[1] - w[0]
        }
    }
}

/// Predict sample `(i, j, k)` of a 3-D grid from the reconstructed prefix.
/// Seven-point Lorenzo stencil (inclusion–exclusion over the preceding
/// corner of the unit cube).
#[inline]
pub fn lorenzo_3d(recon: &[f64], d1: usize, d2: usize, i: usize, j: usize, k: usize) -> f64 {
    if i > 0 && j > 0 && k > 0 {
        // Interior: the seven stencil taps all live in a window of
        // `d1·d2 + d2 + 2` samples ending at the predicted one, so a single
        // slice bounds check replaces seven guarded indexed loads. The
        // summation order is the guarded expression's, term for term, so
        // the result is bit-identical.
        let p = d1 * d2;
        let base = (i * d1 + j) * d2 + k;
        let w = &recon[base - p - d2 - 1..base];
        return w[p + d2] + w[p + 1] + w[d2 + 1] - w[p] - w[d2] - w[1] + w[0];
    }
    // Out-of-grid neighbours contribute 0; guard before indexing.
    let at = |cond: bool, ii: usize, jj: usize, kk: usize| {
        if cond {
            recon[(ii * d1 + jj) * d2 + kk]
        } else {
            0.0
        }
    };
    at(k > 0, i, j, k.wrapping_sub(1))
        + at(j > 0, i, j.wrapping_sub(1), k)
        + at(i > 0, i.wrapping_sub(1), j, k)
        - at(j > 0 && k > 0, i, j.wrapping_sub(1), k.wrapping_sub(1))
        - at(i > 0 && k > 0, i.wrapping_sub(1), j, k.wrapping_sub(1))
        - at(i > 0 && j > 0, i.wrapping_sub(1), j.wrapping_sub(1), k)
        + at(
            i > 0 && j > 0 && k > 0,
            i.wrapping_sub(1),
            j.wrapping_sub(1),
            k.wrapping_sub(1),
        )
}

/// Predict the sample at linear offset `lin` for any supported shape,
/// dispatching to the rank-specific stencil.
#[inline]
pub fn predict(recon: &[f64], shape: Shape, lin: usize) -> f64 {
    match shape {
        Shape::D1(_) => lorenzo_1d(recon, lin),
        Shape::D2(_, cols) => lorenzo_2d(recon, cols, lin / cols, lin % cols),
        Shape::D3(_, d1, d2) => {
            let k = lin % d2;
            let rest = lin / d2;
            lorenzo_3d(recon, d1, d2, rest / d1, rest % d1, k)
        }
    }
}

/// Which prediction family the pipeline uses.
///
/// SZ's early versions select the best-fit predictor per field among
/// several curve-fitting orders; SZ3 generalizes that into a composable
/// per-block stage. This enum names the design space: first-order Lorenzo
/// (SZ 1.4's default), second-order Lorenzo (exact for per-axis
/// quadratics), a per-block least-squares regression plane (Tao'17), a
/// cubic-spline extrapolator, or cost-driven automatic selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// One-layer Lorenzo stencil (SZ 1.4 default).
    Lorenzo1,
    /// Two-layer (second-order) Lorenzo stencil.
    Lorenzo2,
    /// Per-block least-squares hyperplane over the grid coordinates;
    /// coefficients are fit at encode time and stored in the container.
    Regression,
    /// Cubic extrapolation along the fastest-varying axis.
    Spline,
    /// Estimate coded bits/value per candidate from sampled prediction
    /// errors and keep the cheapest (per block on the blocked path).
    Auto,
}

impl PredictorKind {
    /// Stable byte tag stored in the container (`Auto` never reaches the
    /// container — selection happens at compression time).
    pub fn tag(self) -> u8 {
        match self {
            PredictorKind::Lorenzo1 => 1,
            PredictorKind::Lorenzo2 => 2,
            PredictorKind::Regression => 3,
            PredictorKind::Spline => 4,
            PredictorKind::Auto => 0,
        }
    }

    /// Inverse of [`PredictorKind::tag`] for concrete predictors.
    pub fn from_tag(tag: u8) -> Option<PredictorKind> {
        match tag {
            1 => Some(PredictorKind::Lorenzo1),
            2 => Some(PredictorKind::Lorenzo2),
            3 => Some(PredictorKind::Regression),
            4 => Some(PredictorKind::Spline),
            _ => None,
        }
    }

    /// Human-readable name (CLI/inspect output).
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Lorenzo1 => "lorenzo",
            PredictorKind::Lorenzo2 => "lorenzo2",
            PredictorKind::Regression => "regression",
            PredictorKind::Spline => "spline",
            PredictorKind::Auto => "auto",
        }
    }

    /// Parse a CLI spelling (`lorenzo` means first-order Lorenzo).
    pub fn parse(s: &str) -> Option<PredictorKind> {
        match s {
            "lorenzo" | "lorenzo1" | "l1" => Some(PredictorKind::Lorenzo1),
            "lorenzo2" | "l2" => Some(PredictorKind::Lorenzo2),
            "regression" | "reg" => Some(PredictorKind::Regression),
            "spline" => Some(PredictorKind::Spline),
            "auto" => Some(PredictorKind::Auto),
            _ => None,
        }
    }
}

/// Serialized size of a regression coefficient payload: four `f32`
/// little-endian words. Coefficients are fit in `f64` and *quantized to
/// `f32`* before storage; the model predicts with the quantized values, so
/// encoder and decoder replay the identical plane.
pub const REGRESSION_COEFF_BYTES: usize = 16;

/// The contract every prediction stage obeys.
///
/// A predictor has two halves that must be the *same function*:
///
/// - the **predict half**, run by the encoder during the quantization walk,
///   maps the reconstructed prefix `recon[..lin]` (plus any fitted
///   coefficients the model carries) to a prediction for sample `lin`;
/// - the **replay half**, run by the decoder while reconstructing, must
///   return the bit-identical prediction from the bit-identical prefix.
///
/// Because both halves read only reconstructed values (never the original
/// data) and any fitted coefficients travel in the container verbatim, the
/// decoder replays the exact walk the encoder ran — which is what keeps
/// the paper's Theorem 1 intact for every predictor, per block.
///
/// ```
/// use szlike::predictor::{Predictor, PredictorModel};
/// use ndfield::Shape;
///
/// let model = PredictorModel::Regression([1.0, 0.5, -0.25, 0.0]);
/// let shape = Shape::D2(4, 4);
/// // The encoder's predict half and the decoder's replay half agree
/// // bit for bit on every sample — regardless of the prefix contents.
/// let recon = vec![0.0; 16];
/// for lin in 0..16 {
///     let p = model.predict(&recon, shape, lin);
///     let r = model.replay(&recon, shape, lin);
///     assert_eq!(p.to_bits(), r.to_bits());
/// }
/// // Coefficient-carrying models round-trip through their payload.
/// let bytes = model.coeff_bytes();
/// let back = PredictorModel::from_tag_and_coeffs(model.tag(), &bytes).unwrap();
/// assert_eq!(back, model);
/// ```
pub trait Predictor {
    /// Predict sample `lin` from the reconstructed prefix `recon[..lin]`.
    fn predict(&self, recon: &[f64], shape: Shape, lin: usize) -> f64;

    /// The decoder-side replay half. Must equal [`Predictor::predict`]
    /// bit for bit; the default implementation guarantees it.
    #[inline]
    fn replay(&self, recon: &[f64], shape: Shape, lin: usize) -> f64 {
        self.predict(recon, shape, lin)
    }

    /// Stable container tag for this predictor family.
    fn tag(&self) -> u8;

    /// Serialized coefficient payload (empty for coefficient-free
    /// predictors). Stored verbatim so the decoder replays the exact fit.
    fn coeff_bytes(&self) -> Vec<u8>;
}

/// A concrete predictor instance: the family plus any fitted coefficients.
///
/// This is what the walks actually dispatch on — `Copy`, self-contained,
/// and serializable to (tag, coefficient payload) for the container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorModel {
    /// One-layer Lorenzo stencil.
    Lorenzo1,
    /// Two-layer Lorenzo stencil.
    Lorenzo2,
    /// Least-squares hyperplane `β₀ + β₁·i + β₂·j + β₃·k` over the
    /// block-local grid coordinates (unused trailing coordinates have zero
    /// coefficients). Every `βᵢ` is `f32`-exact — see
    /// [`REGRESSION_COEFF_BYTES`].
    Regression([f64; 4]),
    /// Cubic extrapolation along the fastest-varying axis.
    Spline,
}

impl PredictorModel {
    /// The family this model belongs to.
    pub fn kind(&self) -> PredictorKind {
        match self {
            PredictorModel::Lorenzo1 => PredictorKind::Lorenzo1,
            PredictorModel::Lorenzo2 => PredictorKind::Lorenzo2,
            PredictorModel::Regression(_) => PredictorKind::Regression,
            PredictorModel::Spline => PredictorKind::Spline,
        }
    }

    /// Reconstruct a model from its container tag and coefficient payload.
    /// Returns `None` on an unknown tag or a short payload.
    pub fn from_tag_and_coeffs(tag: u8, coeffs: &[u8]) -> Option<PredictorModel> {
        match PredictorKind::from_tag(tag)? {
            PredictorKind::Lorenzo1 => Some(PredictorModel::Lorenzo1),
            PredictorKind::Lorenzo2 => Some(PredictorModel::Lorenzo2),
            PredictorKind::Spline => Some(PredictorModel::Spline),
            PredictorKind::Regression => {
                if coeffs.len() < REGRESSION_COEFF_BYTES {
                    return None;
                }
                let mut c = [0.0f64; 4];
                for (a, slot) in c.iter_mut().enumerate() {
                    let mut w = [0u8; 4];
                    w.copy_from_slice(&coeffs[a * 4..a * 4 + 4]);
                    let v = f32::from_le_bytes(w);
                    if !v.is_finite() {
                        return None;
                    }
                    *slot = v as f64;
                }
                Some(PredictorModel::Regression(c))
            }
            PredictorKind::Auto => None,
        }
    }
}

impl Predictor for PredictorModel {
    #[inline(always)]
    fn predict(&self, recon: &[f64], shape: Shape, lin: usize) -> f64 {
        match self {
            PredictorModel::Lorenzo1 => predict(recon, shape, lin),
            PredictorModel::Lorenzo2 => match shape {
                Shape::D1(_) => lorenzo2_1d(recon, lin),
                Shape::D2(_, cols) => lorenzo2_2d(recon, cols, lin / cols, lin % cols),
                Shape::D3(_, d1, d2) => {
                    let k = lin % d2;
                    let rest = lin / d2;
                    lorenzo2_3d(recon, d1, d2, rest / d1, rest % d1, k)
                }
            },
            PredictorModel::Regression(c) => regression_predict(c, shape, lin),
            PredictorModel::Spline => spline_predict(recon, shape, lin),
        }
    }

    fn tag(&self) -> u8 {
        self.kind().tag()
    }

    fn coeff_bytes(&self) -> Vec<u8> {
        match self {
            PredictorModel::Regression(c) => {
                let mut out = Vec::with_capacity(REGRESSION_COEFF_BYTES);
                for &v in c {
                    out.extend_from_slice(&(v as f32).to_le_bytes());
                }
                out
            }
            _ => Vec::new(),
        }
    }
}

/// Evaluate a regression plane at linear offset `lin`. The prediction is a
/// pure function of the coordinates and the stored coefficients — the
/// reconstruction buffer is never read, so the replay is trivially exact.
#[inline(always)]
pub fn regression_predict(c: &[f64; 4], shape: Shape, lin: usize) -> f64 {
    match shape {
        Shape::D1(_) => c[0] + c[1] * lin as f64,
        Shape::D2(_, cols) => c[0] + c[1] * (lin / cols) as f64 + c[2] * (lin % cols) as f64,
        Shape::D3(_, d1, d2) => {
            let k = lin % d2;
            let rest = lin / d2;
            c[0] + c[1] * (rest / d1) as f64 + c[2] * (rest % d1) as f64 + c[3] * k as f64
        }
    }
}

/// Cubic-stencil extrapolation along the fastest-varying axis:
/// `3·r[k−1] − 3·r[k−2] + r[k−3]` (setting the third backward difference
/// to zero, which reproduces per-row polynomials up to degree 2 exactly),
/// degrading to the first-order Lorenzo stencil where fewer than three
/// same-row predecessors exist.
#[inline(always)]
pub fn spline_predict(recon: &[f64], shape: Shape, lin: usize) -> f64 {
    let k = match shape {
        Shape::D1(_) => lin,
        Shape::D2(_, cols) => lin % cols,
        Shape::D3(_, _, d2) => lin % d2,
    };
    if k >= 3 {
        3.0 * recon[lin - 1] - 3.0 * recon[lin - 2] + recon[lin - 3]
    } else {
        predict(recon, shape, lin)
    }
}

/// Fit the least-squares hyperplane `β₀ + β₁·i + β₂·j + β₃·k` over a block
/// (or whole field) of original samples, then quantize each coefficient
/// through `f32` so the stored [`REGRESSION_COEFF_BYTES`] payload
/// reproduces the model exactly.
///
/// On a complete grid the coordinate covariance matrix is diagonal
/// (axes are independent and uniform), so the normal equations decouple:
/// `βₐ = Σ x·(cₐ − c̄ₐ) / Σ (cₐ − c̄ₐ)²` per axis and
/// `β₀ = x̄ − Σ βₐ·c̄ₐ`. Non-finite samples are skipped (the fit is a
/// prediction model, not a correctness dependency); a fit with no finite
/// samples, or any non-finite coefficient, degrades to the zero plane.
pub fn fit_regression<T: ndfield::Scalar>(data: &[T], shape: Shape) -> [f64; 4] {
    let dims = shape.dims();
    let rank = dims.len();
    // Axis means over the full grid: (d−1)/2.
    let mut cbar = [0.0f64; 3];
    for (a, &d) in dims.iter().enumerate() {
        cbar[a] = (d as f64 - 1.0) / 2.0;
    }
    // Accumulate against grid-centered coordinates u = c − c̄_grid (small
    // magnitudes), then correct for the mean of the *included* points: when
    // non-finite samples are skipped the included-coordinate mean shifts
    // away from the grid mean, and using the raw sums would bias the slope.
    // On a complete grid Σu is exactly 0 and the correction terms vanish
    // bit for bit.
    let mut n = 0.0f64;
    let mut sx = 0.0f64;
    let mut su = [0.0f64; 3]; // Σ uₐ over *finite* samples
    let mut sxu = [0.0f64; 3]; // Σ x·uₐ
    let mut suu = [0.0f64; 3]; // Σ uₐ²
    for (lin, v) in data.iter().enumerate() {
        let x = v.to_f64();
        if !x.is_finite() {
            continue;
        }
        let coords: [usize; 3] = match shape {
            Shape::D1(_) => [lin, 0, 0],
            Shape::D2(_, cols) => [lin / cols, lin % cols, 0],
            Shape::D3(_, d1, d2) => {
                let k = lin % d2;
                let rest = lin / d2;
                [rest / d1, rest % d1, k]
            }
        };
        n += 1.0;
        sx += x;
        for a in 0..rank {
            let u = coords[a] as f64 - cbar[a];
            su[a] += u;
            sxu[a] += x * u;
            suu[a] += u * u;
        }
    }
    if n == 0.0 {
        return [0.0; 4];
    }
    let xbar = sx / n;
    let mut beta = [0.0f64; 4];
    let mut ubar = [0.0f64; 3];
    for a in 0..rank {
        ubar[a] = su[a] / n;
        let var = suu[a] - n * ubar[a] * ubar[a];
        if var > 0.0 {
            beta[a + 1] = (sxu[a] - sx * ubar[a]) / var;
        }
    }
    // Quantize the slopes through f32 (the stored precision) and re-derive
    // the intercept against the quantized slopes so the plane stays
    // centred on the included points.
    for b in beta.iter_mut().skip(1) {
        *b = *b as f32 as f64;
    }
    beta[0] = (xbar
        - (0..rank)
            .map(|a| beta[a + 1] * (ubar[a] + cbar[a]))
            .sum::<f64>()) as f32 as f64;
    if beta.iter().any(|b| !b.is_finite()) {
        return [0.0; 4];
    }
    beta
}

/// Binomial coefficient `C(2, i)` for the two-layer stencil weights.
#[inline]
fn c2(i: usize) -> f64 {
    match i {
        0 => 1.0,
        1 => 2.0,
        _ => 1.0,
    }
}

/// Second-order Lorenzo in 1-D: `2·r[i−1] − r[i−2]` (exact on quadratics),
/// degrading to first-order then zero at the boundary.
#[inline]
pub fn lorenzo2_1d(recon: &[f64], idx: usize) -> f64 {
    match idx {
        0 => 0.0,
        1 => recon[0],
        _ => 2.0 * recon[idx - 1] - recon[idx - 2],
    }
}

/// Second-order Lorenzo in 2-D: the 8-point two-layer stencil
/// `Σ_{(a,b)≠(0,0)} −(−1)^{a+b} C(2,a) C(2,b) · r[i−a, j−b]`,
/// with out-of-grid neighbours treated as contributing their first-order
/// degradation (boundaries fall back to [`lorenzo2_1d`]-style handling by
/// zero-padding the stencil).
#[inline]
pub fn lorenzo2_2d(recon: &[f64], cols: usize, i: usize, j: usize) -> f64 {
    if i < 2 || j < 2 {
        // Near the boundary the two-layer stencil is not fully available;
        // degrade to the first-order stencil (still exactly mirrored by
        // the decompressor, which is all correctness needs).
        return lorenzo_2d(recon, cols, i, j);
    }
    // weight(a,b) = −(−1)^(a+b) · C(2,a) · C(2,b), origin excluded; the
    // residual equals Δ₁²Δ₂²f, which vanishes for per-axis quadratics.
    //
    // Unrolled over the three stencil rows, each loaded through one window
    // slice (one bounds check per row instead of one per tap). The signed
    // weights are the loop's `sign · C(2,a) · C(2,b)` products — exact
    // small-integer constants, so folding them keeps every partial sum
    // bit-identical to the loop form, accumulated in the same (a,b) order.
    let r0 = &recon[i * cols + j - 2..i * cols + j];
    let r1 = &recon[(i - 1) * cols + j - 2..(i - 1) * cols + j + 1];
    let r2 = &recon[(i - 2) * cols + j - 2..(i - 2) * cols + j + 1];
    let mut pred = 0.0;
    pred += 2.0 * r0[1]; // (a,b) = (0,1)
    pred -= r0[0]; // (0,2)
    pred += 2.0 * r1[2]; // (1,0)
    pred -= 4.0 * r1[1]; // (1,1)
    pred += 2.0 * r1[0]; // (1,2)
    pred -= r2[2]; // (2,0)
    pred += 2.0 * r2[1]; // (2,1)
    pred -= r2[0]; // (2,2)
    pred
}

/// Second-order Lorenzo in 3-D, with first-order fallback near boundaries.
#[inline]
pub fn lorenzo2_3d(recon: &[f64], d1: usize, d2: usize, i: usize, j: usize, k: usize) -> f64 {
    if i < 2 || j < 2 || k < 2 {
        return lorenzo_3d(recon, d1, d2, i, j, k);
    }
    let at = |a: usize, b: usize, c: usize| recon[((i - a) * d1 + (j - b)) * d2 + (k - c)];
    let mut pred = 0.0;
    for a in 0..=2usize {
        for b in 0..=2usize {
            for c in 0..=2usize {
                if a == 0 && b == 0 && c == 0 {
                    continue;
                }
                let sign = if (a + b + c) % 2 == 0 { -1.0 } else { 1.0 };
                pred += sign * c2(a) * c2(b) * c2(c) * at(a, b, c);
            }
        }
    }
    pred
}

/// Predict with an explicit concrete predictor.
#[inline]
pub fn predict_with(kind: PredictorKind, recon: &[f64], shape: Shape, lin: usize) -> f64 {
    match kind {
        PredictorKind::Lorenzo1 => predict(recon, shape, lin),
        PredictorKind::Lorenzo2 => match shape {
            Shape::D1(_) => lorenzo2_1d(recon, lin),
            Shape::D2(_, cols) => lorenzo2_2d(recon, cols, lin / cols, lin % cols),
            Shape::D3(_, d1, d2) => {
                let k = lin % d2;
                let rest = lin / d2;
                lorenzo2_3d(recon, d1, d2, rest / d1, rest % d1, k)
            }
        },
        PredictorKind::Spline => spline_predict(recon, shape, lin),
        PredictorKind::Regression => {
            unreachable!("Regression predicts through its fitted PredictorModel")
        }
        PredictorKind::Auto => unreachable!("Auto resolves before prediction"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_first_sample_predicts_zero() {
        assert_eq!(lorenzo_1d(&[], 0), 0.0);
        assert_eq!(lorenzo_1d(&[5.0, 7.0], 2), 7.0);
    }

    #[test]
    fn d2_boundary_degrades_to_1d() {
        // recon laid out 2x3: [[1,2,3],[4,_,_]]
        let recon = vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0];
        assert_eq!(lorenzo_2d(&recon, 3, 0, 0), 0.0);
        assert_eq!(lorenzo_2d(&recon, 3, 0, 2), 2.0); // left neighbour
        assert_eq!(lorenzo_2d(&recon, 3, 1, 0), 1.0); // above neighbour
    }

    #[test]
    fn d2_interior_is_planar_exact() {
        // For data on a plane a + b·i + c·j the Lorenzo prediction is exact.
        let cols = 8;
        let plane = |i: usize, j: usize| 2.0 + 0.5 * i as f64 - 1.25 * j as f64;
        let mut recon = vec![0.0; 64];
        for i in 0..8 {
            for j in 0..cols {
                recon[i * cols + j] = plane(i, j);
            }
        }
        for i in 1..8 {
            for j in 1..cols {
                let p = lorenzo_2d(&recon, cols, i, j);
                assert!((p - plane(i, j)).abs() < 1e-12, "({i},{j}): {p}");
            }
        }
    }

    #[test]
    fn d3_interior_is_trilinear_plane_exact() {
        // Lorenzo 3D reproduces any function of the form
        // a + b·i + c·j + d·k + e·ij + f·ik + g·jk exactly (degree-1 per axis
        // cross terms cancel in the inclusion-exclusion).
        let (d1, d2) = (5, 6);
        let f = |i: usize, j: usize, k: usize| {
            1.0 + 0.3 * i as f64 - 0.7 * j as f64 + 0.1 * k as f64
                + 0.05 * (i * j) as f64
                - 0.02 * (i * k) as f64
                + 0.04 * (j * k) as f64
        };
        let mut recon = vec![0.0; 4 * d1 * d2];
        for i in 0..4 {
            for j in 0..d1 {
                for k in 0..d2 {
                    recon[(i * d1 + j) * d2 + k] = f(i, j, k);
                }
            }
        }
        for i in 1..4 {
            for j in 1..d1 {
                for k in 1..d2 {
                    let p = lorenzo_3d(&recon, d1, d2, i, j, k);
                    assert!((p - f(i, j, k)).abs() < 1e-9, "({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn d3_boundary_faces_degrade() {
        let (d1, d2) = (3, 3);
        let mut recon = vec![0.0; 27];
        for (n, v) in recon.iter_mut().enumerate() {
            *v = n as f64;
        }
        // Origin predicts 0.
        assert_eq!(lorenzo_3d(&recon, d1, d2, 0, 0, 0), 0.0);
        // k-axis edge (i=j=0): 1D along k.
        assert_eq!(lorenzo_3d(&recon, d1, d2, 0, 0, 2), recon[1]);
        // Face i=0: 2D Lorenzo in (j,k).
        let expect = recon[4] + recon[2 * 3 + 1] - recon[3 + 1];
        // (j=2,k=2) on face i=0: r[0,2,1] + r[0,1,2] - r[0,1,1]
        let expect_face =
            recon[(0 * 3 + 2) * 3 + 1] + recon[(0 * 3 + 1) * 3 + 2] - recon[(0 * 3 + 1) * 3 + 1];
        assert_eq!(lorenzo_3d(&recon, d1, d2, 0, 2, 2), expect_face);
        let _ = expect;
    }

    #[test]
    fn lorenzo2_1d_exact_on_linear_and_const_residual_on_quadratic() {
        // 2·r[i−1] − r[i−2] annihilates linear trends exactly...
        let lin: Vec<f64> = (0..20).map(|i| 3.0 + 0.5 * i as f64).collect();
        for idx in 2..20 {
            assert!((lorenzo2_1d(&lin, idx) - lin[idx]).abs() < 1e-12, "idx {idx}");
        }
        // ...and leaves the constant second difference on quadratics
        // (where the first-order stencil leaves a *growing* error).
        let quad: Vec<f64> = (0..20).map(|i| 0.25 * (i * i) as f64).collect();
        for idx in 2..20 {
            let resid2 = quad[idx] - lorenzo2_1d(&quad, idx);
            assert!((resid2 - 0.5).abs() < 1e-12, "idx {idx}: {resid2}");
            let resid1 = quad[idx] - lorenzo_1d(&quad, idx);
            assert!(resid1.abs() > resid2.abs(), "order-2 not better at {idx}");
        }
        // Boundary degradations.
        assert_eq!(lorenzo2_1d(&lin, 0), 0.0);
        assert_eq!(lorenzo2_1d(&lin, 1), lin[0]);
    }

    #[test]
    fn lorenzo2_2d_exact_on_per_axis_quadratics() {
        let cols = 10;
        let f = |i: usize, j: usize| {
            1.0 + 0.3 * i as f64 + 0.7 * (i * i) as f64 - 0.2 * j as f64
                + 0.05 * (j * j) as f64
                + 0.01 * (i * j) as f64
                + 0.002 * (i * i * j) as f64
        };
        let mut recon = vec![0.0; 8 * cols];
        for i in 0..8 {
            for j in 0..cols {
                recon[i * cols + j] = f(i, j);
            }
        }
        for i in 2..8 {
            for j in 2..cols {
                let p = lorenzo2_2d(&recon, cols, i, j);
                assert!((p - f(i, j)).abs() < 1e-8, "({i},{j}): {p} vs {}", f(i, j));
            }
        }
    }

    #[test]
    fn lorenzo2_2d_boundary_degrades_to_first_order() {
        let recon: Vec<f64> = (0..30).map(|v| v as f64).collect();
        assert_eq!(lorenzo2_2d(&recon, 6, 1, 3), lorenzo_2d(&recon, 6, 1, 3));
        assert_eq!(lorenzo2_2d(&recon, 6, 3, 1), lorenzo_2d(&recon, 6, 3, 1));
    }

    #[test]
    fn lorenzo2_3d_exact_on_per_axis_quadratics() {
        let (d1, d2) = (6, 7);
        let f = |i: usize, j: usize, k: usize| {
            2.0 + 0.1 * (i * i) as f64 - 0.2 * (j * j) as f64 + 0.3 * (k * k) as f64
                + 0.01 * (i * j * k) as f64
        };
        let mut recon = vec![0.0; 6 * d1 * d2];
        for i in 0..6 {
            for j in 0..d1 {
                for k in 0..d2 {
                    recon[(i * d1 + j) * d2 + k] = f(i, j, k);
                }
            }
        }
        for i in 2..6 {
            for j in 2..d1 {
                for k in 2..d2 {
                    let p = lorenzo2_3d(&recon, d1, d2, i, j, k);
                    assert!((p - f(i, j, k)).abs() < 1e-8, "({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn window_fast_paths_match_naive_formulas_bitwise() {
        // The interior window-slice arms must reproduce the guarded
        // indexed formulas *bit for bit* (container stability depends on
        // it), so compare via to_bits on awkward values, including a
        // negative zero and denormal-scale samples.
        let (rows, cols) = (7usize, 9usize);
        let mut recon: Vec<f64> = (0..rows * cols)
            .map(|n| ((n as f64) * 0.7371).sin() * 1e3 + (n % 5) as f64 * 1e-310)
            .collect();
        recon[3 * cols + 4] = -0.0;
        for i in 1..rows {
            for j in 1..cols {
                let naive = recon[i * cols + j - 1] + recon[(i - 1) * cols + j]
                    - recon[(i - 1) * cols + j - 1];
                assert_eq!(lorenzo_2d(&recon, cols, i, j).to_bits(), naive.to_bits());
            }
        }
        for i in 2..rows {
            for j in 2..cols {
                let at = |a: usize, b: usize| recon[(i - a) * cols + (j - b)];
                let mut naive = 0.0;
                for a in 0..=2usize {
                    for b in 0..=2usize {
                        if a == 0 && b == 0 {
                            continue;
                        }
                        let sign = if (a + b) % 2 == 0 { -1.0 } else { 1.0 };
                        naive += sign * c2(a) * c2(b) * at(a, b);
                    }
                }
                assert_eq!(lorenzo2_2d(&recon, cols, i, j).to_bits(), naive.to_bits());
            }
        }
        let (d0, d1, d2) = (4usize, 5usize, 6usize);
        let recon3: Vec<f64> = (0..d0 * d1 * d2)
            .map(|n| ((n as f64) * 1.618).cos() / 3.0)
            .collect();
        for i in 1..d0 {
            for j in 1..d1 {
                for k in 1..d2 {
                    let at = |a: usize, b: usize, c: usize| {
                        recon3[((i - a) * d1 + (j - b)) * d2 + (k - c)]
                    };
                    let naive = at(0, 0, 1) + at(0, 1, 0) + at(1, 0, 0)
                        - at(0, 1, 1)
                        - at(1, 0, 1)
                        - at(1, 1, 0)
                        + at(1, 1, 1);
                    assert_eq!(
                        lorenzo_3d(&recon3, d1, d2, i, j, k).to_bits(),
                        naive.to_bits(),
                        "({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn predictor_kind_tags_roundtrip() {
        assert_eq!(
            PredictorKind::from_tag(PredictorKind::Lorenzo1.tag()),
            Some(PredictorKind::Lorenzo1)
        );
        assert_eq!(
            PredictorKind::from_tag(PredictorKind::Lorenzo2.tag()),
            Some(PredictorKind::Lorenzo2)
        );
        assert_eq!(
            PredictorKind::from_tag(PredictorKind::Regression.tag()),
            Some(PredictorKind::Regression)
        );
        assert_eq!(
            PredictorKind::from_tag(PredictorKind::Spline.tag()),
            Some(PredictorKind::Spline)
        );
        assert_eq!(PredictorKind::from_tag(0), None);
        assert_eq!(PredictorKind::from_tag(99), None);
    }

    #[test]
    fn regression_fit_is_exact_on_planes_and_f32_stable() {
        // An exact plane (f32-representable coefficients) fits exactly:
        // residuals vanish and the stored payload reproduces the model.
        let cols = 9usize;
        let plane = |i: usize, j: usize| 2.5 + 0.5 * i as f64 - 0.25 * j as f64;
        let data: Vec<f64> = (0..7 * cols)
            .map(|lin| plane(lin / cols, lin % cols))
            .collect();
        let shape = Shape::D2(7, cols);
        let c = fit_regression(&data, shape);
        let model = PredictorModel::Regression(c);
        for (lin, &x) in data.iter().enumerate() {
            let p = model.predict(&[], shape, lin); // prefix unused
            assert!((p - x).abs() < 1e-9, "lin {lin}: {p} vs {x}");
        }
        let back =
            PredictorModel::from_tag_and_coeffs(model.tag(), &model.coeff_bytes()).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn regression_fit_skips_non_finite_and_survives_empty() {
        let shape = Shape::D1(8);
        let mut data = vec![1.0f64; 8];
        data[3] = f64::NAN;
        let c = fit_regression(&data, shape);
        assert!(c.iter().all(|b| b.is_finite()));
        assert!((c[0] - 1.0).abs() < 1e-6);
        let all_nan = vec![f64::NAN; 8];
        assert_eq!(fit_regression(&all_nan, shape), [0.0; 4]);
    }

    #[test]
    fn spline_exact_on_row_quadratics_with_lorenzo_fallback() {
        // Zeroing the third backward difference reproduces degree ≤ 2
        // polynomials exactly (a cubic term would leave a constant 6·a₃
        // residual per step).
        let cols = 12usize;
        let f = |j: usize| 1.0 - 0.5 * j as f64 + 0.125 * (j * j) as f64;
        let mut recon = vec![0.0; 3 * cols];
        for i in 0..3 {
            for j in 0..cols {
                recon[i * cols + j] = f(j) + i as f64;
            }
        }
        let shape = Shape::D2(3, cols);
        for i in 0..3 {
            for j in 3..cols {
                let lin = i * cols + j;
                let p = spline_predict(&recon, shape, lin);
                assert!((p - recon[lin]).abs() < 1e-9, "({i},{j}): {p}");
            }
            for j in 0..3 {
                let lin = i * cols + j;
                assert_eq!(
                    spline_predict(&recon, shape, lin).to_bits(),
                    predict(&recon, shape, lin).to_bits()
                );
            }
        }
    }

    #[test]
    fn predictor_model_replay_equals_predict_bitwise() {
        let recon: Vec<f64> = (0..60).map(|v| ((v as f64) * 0.613).sin() * 40.0).collect();
        let models = [
            PredictorModel::Lorenzo1,
            PredictorModel::Lorenzo2,
            PredictorModel::Regression([0.5, -0.1, 0.2, 0.0]),
            PredictorModel::Spline,
        ];
        for shape in [Shape::D1(60), Shape::D2(6, 10), Shape::D3(3, 4, 5)] {
            for m in models {
                for lin in 0..shape.len() {
                    assert_eq!(
                        m.predict(&recon, shape, lin).to_bits(),
                        m.replay(&recon, shape, lin).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn predict_with_dispatches() {
        let recon: Vec<f64> = (0..24).map(|v| (v * v) as f64).collect();
        assert_eq!(
            predict_with(PredictorKind::Lorenzo1, &recon, Shape::D1(24), 5),
            lorenzo_1d(&recon, 5)
        );
        assert_eq!(
            predict_with(PredictorKind::Lorenzo2, &recon, Shape::D1(24), 5),
            lorenzo2_1d(&recon, 5)
        );
    }

    #[test]
    fn generic_predict_matches_specific() {
        let recon: Vec<f64> = (0..24).map(|v| (v as f64).sqrt()).collect();
        // 1D
        for lin in 0..24 {
            assert_eq!(
                predict(&recon, Shape::D1(24), lin),
                lorenzo_1d(&recon, lin)
            );
        }
        // 2D 4x6
        for lin in 0..24 {
            assert_eq!(
                predict(&recon, Shape::D2(4, 6), lin),
                lorenzo_2d(&recon, 6, lin / 6, lin % 6)
            );
        }
        // 3D 2x3x4
        for lin in 0..24 {
            let k = lin % 4;
            let j = (lin / 4) % 3;
            let i = lin / 12;
            assert_eq!(
                predict(&recon, Shape::D3(2, 3, 4), lin),
                lorenzo_3d(&recon, 3, 4, i, j, k)
            );
        }
    }
}
