//! Error type for the szlike codec.

use losslesskit::CodecError;

/// Everything that can go wrong compressing or decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzError {
    /// The requested error bound is not usable (negative, NaN, or zero for
    /// a mode that cannot express lossless).
    BadBound(String),
    /// Configuration rejected (e.g. too few quantization bins).
    BadConfig(String),
    /// The compressed container is malformed.
    Format(&'static str),
    /// The scalar type of the container does not match the requested type.
    TypeMismatch {
        /// Type tag found in the container.
        found: String,
        /// Type tag the caller asked for.
        expected: &'static str,
    },
    /// A lossless sub-decoder failed.
    Codec(CodecError),
}

impl From<CodecError> for SzError {
    fn from(e: CodecError) -> Self {
        SzError::Codec(e)
    }
}

impl std::fmt::Display for SzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzError::BadBound(msg) => write!(f, "invalid error bound: {msg}"),
            SzError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SzError::Format(what) => write!(f, "malformed container: {what}"),
            SzError::TypeMismatch { found, expected } => {
                write!(f, "container holds {found}, caller requested {expected}")
            }
            SzError::Codec(e) => write!(f, "lossless stage failed: {e}"),
        }
    }
}

impl std::error::Error for SzError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SzError::TypeMismatch {
            found: "f64".into(),
            expected: "f32",
        };
        let msg = e.to_string();
        assert!(msg.contains("f64") && msg.contains("f32"));
    }

    #[test]
    fn codec_error_converts() {
        let e: SzError = CodecError::UnexpectedEof.into();
        assert_eq!(e, SzError::Codec(CodecError::UnexpectedEof));
    }
}
