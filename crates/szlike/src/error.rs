//! Error types for the szlike codec.
//!
//! Two layers:
//! - [`DecodeError`] — structured taxonomy for the untrusted-bytes decode
//!   path, carrying the pipeline stage and byte offset where parsing
//!   failed. Every decoder entry point must return one of these (wrapped
//!   in [`SzError::Decode`]) instead of panicking, whatever the input.
//! - [`SzError`] — the crate-wide error. Legacy deep-body checks still use
//!   the lighter `Format(&'static str)` variant.

use losslesskit::CodecError;

/// Structured decode failure: what went wrong, at which pipeline stage,
/// and at (or near) which byte offset in the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The scalar-type tag is not one the codec knows.
    BadScalarTag {
        /// The offending tag (byte value on decode, type name on encode).
        tag: String,
        /// Byte offset of the tag in the container.
        offset: usize,
    },
    /// The container ended before a required field or payload.
    Truncated {
        /// Pipeline stage that hit the end of input.
        stage: &'static str,
        /// Byte offset where the read started.
        offset: usize,
        /// Bytes the stage needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A field parsed but its value is impossible or inconsistent.
    Corrupt {
        /// Pipeline stage that rejected the value.
        stage: &'static str,
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// A declared size exceeds the decoder's hard resource limits.
    LimitExceeded {
        /// Pipeline stage that enforced the limit.
        stage: &'static str,
        /// Which quantity was limited (e.g. "output bytes").
        what: &'static str,
        /// The size the container asked for.
        requested: u64,
        /// The enforced cap.
        limit: u64,
    },
    /// A checksum over some section of the container did not match.
    CrcMismatch {
        /// Section whose checksum failed (e.g. "container", "block 3").
        stage: &'static str,
        /// Byte offset of the checksummed section.
        offset: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadScalarTag { tag, offset } => {
                write!(f, "unknown scalar tag {tag} at byte {offset}")
            }
            DecodeError::Truncated {
                stage,
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated at stage '{stage}' (byte {offset}): \
                 needed {needed} bytes, {available} available"
            ),
            DecodeError::Corrupt {
                stage,
                offset,
                what,
            } => write!(f, "corrupt at stage '{stage}' (byte {offset}): {what}"),
            DecodeError::LimitExceeded {
                stage,
                what,
                requested,
                limit,
            } => write!(
                f,
                "limit exceeded at stage '{stage}': {what} {requested} > cap {limit}"
            ),
            DecodeError::CrcMismatch { stage, offset } => {
                write!(f, "CRC mismatch over '{stage}' (byte {offset})")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Everything that can go wrong compressing or decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzError {
    /// The requested error bound is not usable (negative, NaN, or zero for
    /// a mode that cannot express lossless).
    BadBound(String),
    /// Configuration rejected (e.g. too few quantization bins).
    BadConfig(String),
    /// The compressed container is malformed.
    Format(&'static str),
    /// Structured decode failure with stage and byte-offset context.
    Decode(DecodeError),
    /// The scalar type of the container does not match the requested type.
    TypeMismatch {
        /// Type tag found in the container.
        found: String,
        /// Type tag the caller asked for.
        expected: &'static str,
    },
    /// A lossless sub-decoder failed.
    Codec(CodecError),
}

impl From<CodecError> for SzError {
    fn from(e: CodecError) -> Self {
        SzError::Codec(e)
    }
}

impl From<DecodeError> for SzError {
    fn from(e: DecodeError) -> Self {
        SzError::Decode(e)
    }
}

impl std::fmt::Display for SzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzError::BadBound(msg) => write!(f, "invalid error bound: {msg}"),
            SzError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SzError::Format(what) => write!(f, "malformed container: {what}"),
            SzError::Decode(e) => write!(f, "decode failed: {e}"),
            SzError::TypeMismatch { found, expected } => {
                write!(f, "container holds {found}, caller requested {expected}")
            }
            SzError::Codec(e) => write!(f, "lossless stage failed: {e}"),
        }
    }
}

impl std::error::Error for SzError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SzError::TypeMismatch {
            found: "f64".into(),
            expected: "f32",
        };
        let msg = e.to_string();
        assert!(msg.contains("f64") && msg.contains("f32"));
    }

    #[test]
    fn codec_error_converts() {
        let e: SzError = CodecError::UnexpectedEof.into();
        assert_eq!(e, SzError::Codec(CodecError::UnexpectedEof));
    }

    #[test]
    fn decode_error_converts_and_displays_context() {
        let e: SzError = DecodeError::Truncated {
            stage: "header",
            offset: 3,
            needed: 7,
            available: 5,
        }
        .into();
        let msg = e.to_string();
        assert!(msg.contains("header") && msg.contains('3') && msg.contains('7'));

        let lim = DecodeError::LimitExceeded {
            stage: "constant",
            what: "output bytes",
            requested: 1 << 41,
            limit: 1 << 30,
        };
        assert!(lim.to_string().contains("output bytes"));
    }
}
