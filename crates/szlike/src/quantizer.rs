//! Error-controlled linear-scaling quantization (SZ step 2).
//!
//! The value axis is split into `2n` uniform bins of width `δ = 2·eb_abs`
//! centred on the predicted value. A prediction error `e` maps to the code
//! `n + round(e/δ)`; decoding reconstructs the bin *midpoint*
//! `pred + (code − n)·δ`, so the pointwise error is at most `eb_abs` —
//! and, as the paper's Fig. 1 illustrates, the reconstruction levels are
//! exactly the midpoints assumed by the MSE model of Eq. (3).
//!
//! Code 0 is the *escape* (SZ's "unpredictable data"): the error fell
//! outside the bin range, or midpoint reconstruction failed the bound check
//! under floating-point round-off. Escaped samples are stored bit-exactly.

/// Uniform (linear-scaling) quantizer with an escape code.
#[derive(Debug, Clone, Copy)]
pub struct LinearQuantizer {
    /// Absolute error bound; bin width is `2 * eb`.
    eb: f64,
    /// Precomputed `1 / (2·eb)`: quantization multiplies by the inverse bin
    /// width instead of dividing, and the fused kernels share the exact
    /// same multiply so both walks stay bit-identical.
    inv_bin: f64,
    /// Half the bin count (`n` in the paper; codes span `1..2n`).
    radius: u32,
}

/// Code reserved for unpredictable (escaped) samples.
pub const ESCAPE: u32 = 0;

impl LinearQuantizer {
    /// Build a quantizer from an absolute bound and total bin count `2n`.
    ///
    /// # Panics
    /// Panics when `eb` is not finite-positive or `bins` is odd/too small —
    /// callers validate via `SzConfig::validate` and `ErrorBound::absolute`.
    pub fn new(eb: f64, bins: usize) -> Self {
        assert!(eb.is_finite() && eb > 0.0, "bad error bound {eb}");
        assert!(bins >= 4 && bins % 2 == 0, "bad bin count {bins}");
        LinearQuantizer {
            eb,
            inv_bin: 1.0 / (2.0 * eb),
            radius: (bins / 2) as u32,
        }
    }

    /// The absolute error bound.
    #[inline]
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// Precomputed inverse bin width `1 / (2·eb)`, the exact factor the
    /// quantizer multiplies by. Fused kernels must use this value (not
    /// recompute it) to stay bit-identical with [`Self::quantize`].
    #[inline]
    pub fn inv_bin_width(&self) -> f64 {
        self.inv_bin
    }

    /// Bin width `δ = 2·eb`.
    #[inline]
    pub fn bin_width(&self) -> f64 {
        2.0 * self.eb
    }

    /// Alphabet size for the entropy stage (codes `0..2n`).
    #[inline]
    pub fn alphabet(&self) -> usize {
        2 * self.radius as usize
    }

    /// The center code (`n`), to which a zero prediction error maps.
    #[inline]
    pub fn center(&self) -> u32 {
        self.radius
    }

    /// Quantize a prediction error. Returns the code and the reconstructed
    /// error (bin midpoint), or `None` when the error cannot be represented
    /// (escape). Non-finite errors always escape.
    #[inline]
    pub fn quantize(&self, err: f64) -> Option<(u32, f64)> {
        if !err.is_finite() {
            return None;
        }
        let scaled = err * self.inv_bin;
        // round-half-away-from-zero matches SZ's (int)(x+0.5) on |x|.
        let q = scaled.round();
        // Valid codes are 1..2n-1 around the center n ⇒ |q| ≤ n−1.
        if q.abs() > (self.radius - 1) as f64 {
            return None;
        }
        let code = (self.radius as i64 + q as i64) as u32;
        let recon = q * 2.0 * self.eb;
        Some((code, recon))
    }

    /// Reconstruct the prediction error encoded by a non-escape code.
    #[inline]
    pub fn reconstruct(&self, code: u32) -> f64 {
        debug_assert!(code != ESCAPE, "reconstruct called on escape code");
        (code as i64 - self.radius as i64) as f64 * 2.0 * self.eb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_maps_to_center() {
        let q = LinearQuantizer::new(0.1, 1024);
        let (code, recon) = q.quantize(0.0).unwrap();
        assert_eq!(code, q.center());
        assert_eq!(recon, 0.0);
    }

    #[test]
    fn reconstruction_error_within_bound() {
        let q = LinearQuantizer::new(0.05, 4096);
        let mut err = -50.0f64;
        while err < 50.0 {
            if let Some((code, recon)) = q.quantize(err) {
                assert!(
                    (err - recon).abs() <= q.error_bound() * (1.0 + 1e-12),
                    "err {err} recon {recon}"
                );
                assert_eq!(q.reconstruct(code), recon);
            }
            err += 0.013;
        }
    }

    #[test]
    fn escape_outside_range() {
        let q = LinearQuantizer::new(0.1, 8);
        // radius = 4, representable |q| ≤ 3 ⇒ |err| ≤ 0.7 (3.5 bins * 0.2).
        assert!(q.quantize(10.0).is_none());
        assert!(q.quantize(-10.0).is_none());
        assert!(q.quantize(0.55).is_some());
    }

    #[test]
    fn non_finite_errors_escape() {
        let q = LinearQuantizer::new(0.1, 64);
        assert!(q.quantize(f64::NAN).is_none());
        assert!(q.quantize(f64::INFINITY).is_none());
        assert!(q.quantize(f64::NEG_INFINITY).is_none());
    }

    #[test]
    fn codes_stay_in_alphabet() {
        let q = LinearQuantizer::new(1.0, 16);
        let mut err = -20.0;
        while err <= 20.0 {
            if let Some((code, _)) = q.quantize(err) {
                assert!(code as usize > 0 && (code as usize) < q.alphabet());
            }
            err += 0.25;
        }
    }

    #[test]
    fn symmetric_codes_for_symmetric_errors() {
        let q = LinearQuantizer::new(0.5, 256);
        let (cp, rp) = q.quantize(3.2).unwrap();
        let (cn, rn) = q.quantize(-3.2).unwrap();
        assert_eq!(cp - q.center(), q.center() - cn);
        assert_eq!(rp, -rn);
    }

    #[test]
    fn bin_width_is_twice_bound() {
        let q = LinearQuantizer::new(0.25, 64);
        assert_eq!(q.bin_width(), 0.5);
    }

    #[test]
    fn half_bin_boundary_rounds_away_from_zero() {
        let q = LinearQuantizer::new(0.5, 64); // bin width 1.0
        let (code, _) = q.quantize(0.5).unwrap();
        assert_eq!(code, q.center() + 1);
        let (code, _) = q.quantize(-0.5).unwrap();
        assert_eq!(code, q.center() - 1);
    }
}
