//! Throughput of the SZ-like codec (compress/decompress, 2-D and 3-D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{DatasetId, Resolution};
use fpsnr_bench::dataset_fields;
use ndfield::Field;
use szlike::{ErrorBound, SzConfig};

fn bench_szlike(c: &mut Criterion) {
    let atm = dataset_fields(DatasetId::Atm, Resolution::Small, 1);
    let hurricane = dataset_fields(DatasetId::Hurricane, Resolution::Small, 1);
    let cases: Vec<(&str, &Field<f32>)> = vec![
        ("atm_2d_TS", &atm.iter().find(|f| f.0 == "TS").unwrap().1),
        ("hurricane_3d_P", &hurricane.iter().find(|f| f.0 == "P").unwrap().1),
    ];
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));

    let mut group = c.benchmark_group("szlike_compress");
    for (name, field) in &cases {
        group.throughput(Throughput::Bytes((field.len() * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), field, |b, f| {
            b.iter(|| szlike::compress(f, &cfg).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("szlike_decompress");
    for (name, field) in &cases {
        let bytes = szlike::compress(field, &cfg).unwrap();
        group.throughput(Throughput::Bytes((field.len() * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            b.iter(|| szlike::decompress::<f32>(bytes).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_szlike);
criterion_main!(benches);
