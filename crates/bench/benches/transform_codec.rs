//! Throughput of the orthogonal-transform codec, against szlike on the
//! same field (the prediction-vs-transform design-space the paper's §II
//! surveys).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datagen::{DatasetId, Resolution};
use fpsnr_bench::dataset_fields;
use fpsnr_transform::{transform_compress, transform_decompress, TransformConfig};
use szlike::{ErrorBound, SzConfig};

fn bench_transform(c: &mut Criterion) {
    let atm = dataset_fields(DatasetId::Atm, Resolution::Small, 1);
    let field = &atm.iter().find(|f| f.0 == "TS").unwrap().1;
    let bytes_in = (field.len() * 4) as u64;

    let mut group = c.benchmark_group("transform_vs_prediction");
    group.throughput(Throughput::Bytes(bytes_in));
    group.bench_function("transform_compress_b4", |b| {
        let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(1e-3));
        b.iter(|| transform_compress(field, &cfg).unwrap());
    });
    group.bench_function("transform_compress_b8", |b| {
        let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_block(8);
        b.iter(|| transform_compress(field, &cfg).unwrap());
    });
    group.bench_function("szlike_compress", |b| {
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));
        b.iter(|| szlike::compress(field, &cfg).unwrap());
    });
    group.finish();

    let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(1e-3));
    let compressed = transform_compress(field, &cfg).unwrap();
    let mut group = c.benchmark_group("transform_decompress");
    group.throughput(Throughput::Bytes(bytes_in));
    group.bench_function("b4", |b| {
        b.iter(|| transform_decompress::<f32>(&compressed).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
