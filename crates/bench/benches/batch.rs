//! Snapshot-scale batch compression: serial vs parallel over many fields —
//! the CESM "100+ fields per dump" scenario that motivates the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{DatasetId, Resolution};
use fpsnr_bench::dataset_fields;
use fpsnr_core::batch::run_batch;
use fpsnr_core::fixed_psnr::FixedPsnrOptions;

fn bench_batch(c: &mut Criterion) {
    let fields = dataset_fields(DatasetId::Atm, Resolution::Small, 1);
    let total_bytes: usize = fields.iter().map(|(_, f)| f.len() * 4).sum();
    let opts = FixedPsnrOptions::default();

    let mut group = c.benchmark_group("batch_79_atm_fields");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total_bytes as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| run_batch(&fields, 80.0, &opts, threads));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
