//! The paper's overhead claim (§IV): the fixed-PSNR mode's only cost over
//! plain SZ is evaluating Eq. 8 once per field — negligible.
//!
//! Benchmarks the identical field through (a) SZ with a directly supplied
//! value-range-relative bound and (b) the fixed-PSNR driver with the target
//! whose Eq. 8 derivation yields that same bound. Any measurable gap would
//! falsify the claim.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datagen::{DatasetId, Resolution};
use fpsnr_bench::dataset_fields;
use fpsnr_core::ebrel_for_psnr;
use fpsnr_core::fixed_psnr::{compress_fixed_psnr_only, FixedPsnrOptions};
use szlike::{ErrorBound, SzConfig};

fn bench_overhead(c: &mut Criterion) {
    let atm = dataset_fields(DatasetId::Atm, Resolution::Small, 1);
    let field = &atm.iter().find(|f| f.0 == "TS").unwrap().1;
    let target = 80.0;
    let ebrel = ebrel_for_psnr(target);

    let mut group = c.benchmark_group("fixed_psnr_overhead");
    group.throughput(Throughput::Bytes((field.len() * 4) as u64));
    group.bench_function("plain_sz_rel_bound", |b| {
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));
        b.iter(|| szlike::compress(field, &cfg).unwrap());
    });
    group.bench_function("fixed_psnr_mode", |b| {
        let opts = FixedPsnrOptions::default();
        b.iter(|| compress_fixed_psnr_only(field, target, &opts).unwrap());
    });
    group.finish();

    // The Eq. 8 derivation itself, in isolation: nanoseconds.
    c.bench_function("eq8_derivation_alone", |b| {
        b.iter(|| std::hint::black_box(ebrel_for_psnr(std::hint::black_box(80.0))));
    });
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
