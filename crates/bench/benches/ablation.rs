//! Wall-clock cost of the design alternatives (the ratio/quality side is
//! measured by the `ablation` binary; this bench covers speed).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datagen::{DatasetId, Resolution};
use fpsnr_bench::dataset_fields;
use szlike::{EntropyCoder, ErrorBound, LosslessBackend, PredictorKind, SzConfig};

fn bench_ablation(c: &mut Criterion) {
    let atm = dataset_fields(DatasetId::Atm, Resolution::Small, 1);
    let field = &atm.iter().find(|f| f.0 == "TS").unwrap().1;
    let bytes_in = (field.len() * 4) as u64;
    let base = SzConfig::new(ErrorBound::ValueRangeRel(1e-3));

    let mut group = c.benchmark_group("ablation_compress");
    group.throughput(Throughput::Bytes(bytes_in));
    group.bench_function("baseline_huffman_l1_lz", |b| {
        b.iter(|| szlike::compress(field, &base).unwrap())
    });
    group.bench_function("auto_intervals", |b| {
        let cfg = base.with_auto_intervals(true);
        b.iter(|| szlike::compress(field, &cfg).unwrap())
    });
    group.bench_function("range_coder", |b| {
        let cfg = base.with_entropy(EntropyCoder::Range);
        b.iter(|| szlike::compress(field, &cfg).unwrap())
    });
    group.bench_function("lorenzo2", |b| {
        let cfg = base.with_predictor(PredictorKind::Lorenzo2);
        b.iter(|| szlike::compress(field, &cfg).unwrap())
    });
    group.bench_function("no_lossless", |b| {
        let cfg = base.with_lossless(LosslessBackend::None);
        b.iter(|| szlike::compress(field, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
