//! Criterion micro-benches for the fused predict–quantize–encode kernels
//! vs the per-element reference walk, per stage and per predictor.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use datagen::grf::grf_3d;
use ndfield::{Field, Shape};
use szlike::kernels::{reconstruct_fused, reconstruct_reference, walk_fused, walk_reference};
use szlike::{ErrorBound, EscapeCoding, KernelMode, PredictorKind, SzConfig};

fn bench_hotloop(c: &mut Criterion) {
    let dim = 32usize; // CI-friendly; the hotloop bin sweeps 64^3
    let data: Vec<f32> = grf_3d(dim, dim, dim, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let field = Field::from_vec(Shape::D3(dim, dim, dim), data);
    let shape = field.shape();
    let raw = (field.len() * 4) as u64;
    let eb = 1e-4 * field.value_range();
    let bins = 65536usize;

    let mut group = c.benchmark_group("kernel_walk");
    group.throughput(Throughput::Bytes(raw));
    for pred in [PredictorKind::Lorenzo1, PredictorKind::Lorenzo2] {
        let tag = match pred {
            PredictorKind::Lorenzo1 => "l1",
            _ => "l2",
        };
        group.bench_function(format!("fused_{tag}"), |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                walk_fused::<f32>(
                    black_box(field.as_slice()),
                    shape,
                    eb,
                    bins,
                    pred,
                    EscapeCoding::Exact,
                    &mut scratch,
                )
            });
        });
        group.bench_function(format!("reference_{tag}"), |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                walk_reference::<f32>(
                    black_box(field.as_slice()),
                    shape,
                    eb,
                    bins,
                    pred,
                    EscapeCoding::Exact,
                    &mut scratch,
                )
            });
        });
    }
    group.finish();

    let mut scratch = Vec::new();
    let walk = walk_fused::<f32>(
        field.as_slice(),
        shape,
        eb,
        bins,
        PredictorKind::Lorenzo1,
        EscapeCoding::Exact,
        &mut scratch,
    );
    let mut group = c.benchmark_group("kernel_reconstruct");
    group.throughput(Throughput::Bytes(raw));
    group.bench_function("fused", |b| {
        b.iter(|| {
            reconstruct_fused(
                black_box(&walk.codes),
                walk.unpred.clone(),
                shape,
                eb,
                bins,
                PredictorKind::Lorenzo1,
            )
            .unwrap()
        });
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            reconstruct_reference(
                black_box(&walk.codes),
                &walk.unpred,
                shape,
                eb,
                bins,
                PredictorKind::Lorenzo1,
            )
            .unwrap()
        });
    });
    group.finish();

    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4)).with_auto_intervals(true);
    let mut group = c.benchmark_group("kernel_compress");
    group.throughput(Throughput::Bytes(raw));
    group.bench_function("fused", |b| {
        b.iter(|| szlike::compress(&field, &cfg.with_kernel(KernelMode::Fused)).unwrap());
    });
    group.bench_function("reference", |b| {
        b.iter(|| szlike::compress(&field, &cfg.with_kernel(KernelMode::Reference)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_hotloop);
criterion_main!(benches);
