//! Throughput of the lossless toolkit (the GZIP stand-in and the Huffman
//! stage it wraps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use losslesskit::huffman::HuffmanCodec;
use losslesskit::lz77::Effort;
use losslesskit::{deflate_like, freq};

fn make_compressible(n: usize) -> Vec<u8> {
    // Huffman-coded quantization codes look like this: long runs of a few
    // hot byte values with occasional excursions.
    (0..n)
        .map(|i| match i % 97 {
            0..=69 => 0x80u8,
            70..=89 => 0x7f,
            90..=95 => 0x81,
            _ => (i / 97) as u8,
        })
        .collect()
}

fn bench_lossless(c: &mut Criterion) {
    let data = make_compressible(1 << 20);

    let mut group = c.benchmark_group("lz_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for effort in [Effort::Fast, Effort::Default, Effort::Best] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{effort:?}")),
            &data,
            |b, d| {
                b.iter(|| deflate_like::lz_compress_with(d, effort));
            },
        );
    }
    group.finish();

    let compressed = deflate_like::lz_compress(&data);
    let mut group = c.benchmark_group("lz_decompress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("default", |b| {
        b.iter(|| deflate_like::lz_decompress(&compressed).unwrap());
    });
    group.finish();

    // Huffman over a 65536-symbol alphabet, SZ-style peaked distribution.
    let center = 32768u32;
    let symbols: Vec<u32> = (0..1_000_000u32)
        .map(|i| (center as i64 + ((i.wrapping_mul(2654435761)) % 31) as i64 - 15) as u32)
        .collect();
    let counts = freq::count_dense(&symbols, 65536);
    let mut group = c.benchmark_group("huffman");
    group.throughput(Throughput::Elements(symbols.len() as u64));
    group.bench_function("build_encode_1M_codes", |b| {
        b.iter(|| {
            let codec = HuffmanCodec::from_counts(&counts);
            let mut w = losslesskit::BitWriter::new();
            codec.encode(&symbols, &mut w);
            w.finish()
        });
    });
    let codec = HuffmanCodec::from_counts(&counts);
    let mut w = losslesskit::BitWriter::new();
    codec.encode(&symbols, &mut w);
    let stream = w.finish();
    group.bench_function("decode_1M_codes", |b| {
        b.iter(|| {
            let mut r = losslesskit::BitReader::new(&stream);
            let mut out = Vec::new();
            codec.decode(&mut r, symbols.len(), &mut out).unwrap();
            out
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lossless);
criterion_main!(benches);
