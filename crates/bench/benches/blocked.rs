//! Criterion bench for the block-parallel pipeline: monolithic vs blocked
//! compress/decompress across thread counts on a 3-D GRF.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::grf::grf_3d;
use ndfield::{Field, Shape};
use szlike::{ErrorBound, SzConfig};

fn bench_blocked(c: &mut Criterion) {
    let dim = 32usize; // power of two (GRF synthesis); the bin sweeps 64^3
    let data: Vec<f32> = grf_3d(dim, dim, dim, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let field = Field::from_vec(Shape::D3(dim, dim, dim), data);
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4)).with_auto_intervals(true);
    let raw = (field.len() * 4) as u64;

    let mut group = c.benchmark_group("blocked_compress");
    group.throughput(Throughput::Bytes(raw));
    group.bench_function("monolithic", |b| {
        b.iter(|| szlike::compress(&field, &cfg).unwrap());
    });
    for threads in [2usize, 4, 8] {
        let bcfg = cfg.with_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &bcfg,
            |b, bcfg| {
                b.iter(|| szlike::compress(&field, bcfg).unwrap());
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("blocked_decompress");
    group.throughput(Throughput::Bytes(raw));
    let mono = szlike::compress(&field, &cfg).unwrap();
    group.bench_function("monolithic", |b| {
        b.iter(|| szlike::decompress::<f32>(&mono).unwrap());
    });
    let blocked = szlike::compress(&field, &cfg.with_threads(4)).unwrap();
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &blocked,
            |b, bytes| {
                b.iter(|| szlike::decompress_with_threads::<f32>(bytes, threads).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_blocked);
criterion_main!(benches);
