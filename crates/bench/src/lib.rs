//! Shared plumbing for the experiment binaries and Criterion benches.
//!
//! Every binary honours two environment knobs so the whole evaluation can
//! be re-run at different scales without recompiling:
//!
//! - `FPSNR_RES` — `small` | `default` (default: `default`); grid tier of
//!   the synthetic data sets,
//! - `FPSNR_SEED` — master seed (default: 20180713, the paper's arXiv v3
//!   date),
//! - `FPSNR_THREADS` — worker threads for batch runs (default: machine
//!   parallelism).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use datagen::{DatasetId, Resolution};
use ndfield::Field;

/// Resolution tier selected by `FPSNR_RES`.
pub fn resolution_from_env() -> Resolution {
    match std::env::var("FPSNR_RES").as_deref() {
        Ok("small") => Resolution::Small,
        Ok("paper") => Resolution::Paper,
        _ => Resolution::Default,
    }
}

/// Master seed selected by `FPSNR_SEED`.
pub fn seed_from_env() -> u64 {
    std::env::var("FPSNR_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20180713)
}

/// Thread count selected by `FPSNR_THREADS`.
pub fn threads_from_env() -> usize {
    std::env::var("FPSNR_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(fpsnr_parallel::default_threads)
}

/// Generate a data set as `(name, field)` pairs ready for the batch runner.
pub fn dataset_fields(
    id: DatasetId,
    res: Resolution,
    seed: u64,
) -> Vec<(String, Field<f32>)> {
    datagen::generate(id, res, seed)
        .into_iter()
        .map(|nf| (nf.name, nf.data))
        .collect()
}

/// The paper's Table II reference values: `(user_psnr, [(AVG, STDEV); NYX,
/// ATM, Hurricane])` — printed next to our measurements so the shape
/// comparison is immediate.
pub const PAPER_TABLE2: [(f64, [(f64, f64); 3]); 6] = [
    (20.0, [(24.3, 1.82), (21.9, 3.34), (25.0, 6.52)]),
    (40.0, [(41.9, 2.32), (40.9, 1.80), (42.0, 3.97)]),
    (60.0, [(60.7, 0.74), (60.2, 0.62), (60.5, 0.74)]),
    (80.0, [(80.1, 0.05), (80.1, 0.35), (80.1, 0.32)]),
    (100.0, [(100.1, 0.07), (100.2, 0.17), (100.1, 0.39)]),
    (120.0, [(120.1, 0.01), (120.2, 0.19), (120.3, 0.63)]),
];

/// The user-set PSNR sweep of Table II.
pub const TABLE2_TARGETS: [f64; 6] = [20.0, 40.0, 60.0, 80.0, 100.0, 120.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Without the env vars set the defaults apply (test processes do
        // not set them).
        if std::env::var("FPSNR_SEED").is_err() {
            assert_eq!(seed_from_env(), 20180713);
        }
        assert!(threads_from_env() >= 1);
    }

    #[test]
    fn dataset_fields_named() {
        let fields = dataset_fields(DatasetId::Nyx, Resolution::Small, 1);
        assert_eq!(fields.len(), 6);
        assert_eq!(fields[0].0, "baryon_density");
    }

    #[test]
    fn reference_table_is_monotone_in_target() {
        for w in PAPER_TABLE2.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }
}
