//! Single-thread hot-loop benchmark: fused kernels vs the per-element
//! reference walk, stage by stage and end to end, swept across every
//! available SIMD dispatch level.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin hotloop
//! FPSNR_GRF_DIM=32 FPSNR_REPS=2 cargo run --release -p fpsnr-bench --bin hotloop   # CI smoke
//! ```
//!
//! Levels are forced in-process (`losslesskit::simd::force`) and the
//! repetitions interleave level sweeps, so every level sees the same
//! thermal/steal conditions — on a shared single-core host, back-to-back
//! whole-process runs disagree by far more than the effects measured here.
//!
//! Writes `BENCH_hotloop.json` (override with `FPSNR_OUT`) recording, per
//! corpus: walk / reconstruct / compress / decompress wall time per
//! dispatch level, the reference-kernel times, the SIMD-over-forced-scalar
//! speedups, and whether every (level × kernel-mode) container was
//! byte-identical. Exits nonzero if any container pair differs — the bench
//! doubles as the bit-identity tripwire CI runs on every push.

use datagen::grf::{grf_2d, grf_3d};
use datagen::timeseries::DriftField;
use losslesskit::simd::{self, SimdLevel};
use ndfield::{Field, Shape};
use std::fmt::Write as _;
use std::time::Instant;
use szlike::kernels::{reconstruct_fused, reconstruct_reference, walk_fused, walk_reference};
use szlike::{ErrorBound, EscapeCoding, KernelMode, PredictorModel, SzConfig};

const EB_REL: f64 = 1e-4;
const BINS: usize = 65536;

/// Per-level best-of wall times for the four measured stages, seconds.
#[derive(Clone)]
struct StageTimes {
    walk_s: f64,
    recon_s: f64,
    compress_s: f64,
    decompress_s: f64,
}

impl StageTimes {
    fn inf() -> Self {
        StageTimes {
            walk_s: f64::INFINITY,
            recon_s: f64::INFINITY,
            compress_s: f64::INFINITY,
            decompress_s: f64::INFINITY,
        }
    }
}

struct CorpusResult {
    name: &'static str,
    shape: String,
    raw_bytes: usize,
    /// Reference-kernel times (level-independent; measured every rep).
    reference: StageTimes,
    /// Fused-kernel times, one entry per swept level.
    per_level: Vec<StageTimes>,
    compressed_bytes: usize,
    containers_identical: bool,
}

/// One timed call, folded into the running best.
fn timed<R>(best: &mut f64, f: impl FnOnce() -> R) -> R {
    let t0 = Instant::now();
    let r = f();
    *best = best.min(t0.elapsed().as_secs_f64());
    r
}

fn run_corpus(
    name: &'static str,
    field: &Field<f32>,
    levels: &[SimdLevel],
    reps: usize,
) -> CorpusResult {
    let raw_bytes = field.len() * 4;
    let shape = field.shape();
    let eb = EB_REL * field.value_range();
    let data = field.as_slice();
    let pred = PredictorModel::Lorenzo1;
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(EB_REL)).with_auto_intervals(true);

    // Correctness pass first, untimed: every level's walk and container
    // must be byte-identical to the forced-scalar ones and to the
    // reference kernel's.
    let mut scratch = Vec::new();
    simd::force(Some(SimdLevel::Off));
    let w0 = walk_fused::<f32>(data, shape, eb, BINS, pred, EscapeCoding::Exact, &mut scratch);
    let bytes0 = szlike::compress(field, &cfg.with_kernel(KernelMode::Fused)).unwrap();
    let wr = walk_reference::<f32>(data, shape, eb, BINS, pred, EscapeCoding::Exact, &mut scratch);
    let bytes_ref = szlike::compress(field, &cfg.with_kernel(KernelMode::Reference)).unwrap();
    let mut identical = w0.codes == wr.codes && bytes0 == bytes_ref;
    for &level in &levels[1..] {
        simd::force(Some(level));
        let w = walk_fused::<f32>(data, shape, eb, BINS, pred, EscapeCoding::Exact, &mut scratch);
        let bytes = szlike::compress(field, &cfg.with_kernel(KernelMode::Fused)).unwrap();
        identical &= w.codes == w0.codes && bytes == bytes0;
        let back = szlike::decompress::<f32>(&bytes).unwrap();
        let back0 = {
            simd::force(Some(SimdLevel::Off));
            szlike::decompress::<f32>(&bytes0).unwrap()
        };
        identical &= back == back0;
    }

    // Timed pass: each repetition sweeps reference + every level once, so
    // all columns share drift. The level order rotates per repetition:
    // on a busy single-core host, frequency drift within one repetition
    // otherwise biases whichever level is always measured last.
    let mut reference = StageTimes::inf();
    let mut per_level = vec![StageTimes::inf(); levels.len()];
    for rep in 0..reps {
        simd::force(Some(SimdLevel::Off));
        timed(&mut reference.walk_s, || {
            walk_reference::<f32>(data, shape, eb, BINS, pred, EscapeCoding::Exact, &mut scratch)
        });
        timed(&mut reference.recon_s, || {
            reconstruct_reference(&w0.codes, &w0.unpred, shape, eb, BINS, pred).unwrap()
        });
        timed(&mut reference.compress_s, || {
            szlike::compress(field, &cfg.with_kernel(KernelMode::Reference)).unwrap()
        });
        reference.decompress_s = 0.0; // reference kernel has no decode path of its own
        for idx in 0..levels.len() {
            let li = (idx + rep) % levels.len();
            let level = levels[li];
            simd::force(Some(level));
            let t = &mut per_level[li];
            timed(&mut t.walk_s, || {
                walk_fused::<f32>(data, shape, eb, BINS, pred, EscapeCoding::Exact, &mut scratch)
            });
            timed(&mut t.recon_s, || {
                reconstruct_fused(&w0.codes, w0.unpred.clone(), shape, eb, BINS, pred).unwrap()
            });
            timed(&mut t.compress_s, || {
                szlike::compress(field, &cfg.with_kernel(KernelMode::Fused)).unwrap()
            });
            timed(&mut t.decompress_s, || {
                szlike::decompress::<f32>(&bytes0).unwrap()
            });
        }
    }
    simd::force(None);

    CorpusResult {
        name,
        shape: format!("{shape:?}"),
        raw_bytes,
        reference,
        per_level,
        compressed_bytes: bytes0.len(),
        containers_identical: identical,
    }
}

fn main() {
    let dim: usize = std::env::var("FPSNR_GRF_DIM")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let reps: usize = std::env::var("FPSNR_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out_path =
        std::env::var("FPSNR_OUT").unwrap_or_else(|_| "BENCH_hotloop.json".to_string());

    let detected = simd::detect();
    let levels: Vec<SimdLevel> = SimdLevel::ALL
        .iter()
        .copied()
        .filter(|&l| l <= detected)
        .collect();

    let grf3: Vec<f32> = grf_3d(dim, dim, dim, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let grf3 = Field::from_vec(Shape::D3(dim, dim, dim), grf3);
    let side = 4 * dim;
    let grf2: Vec<f32> = grf_2d(side, side, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let grf2 = Field::from_vec(Shape::D2(side, side), grf2);
    // 1-D corpus: a drifting snapshot flattened to a series, so the walk
    // sees realistic smooth-plus-detail structure rather than pure noise.
    let drift = DriftField {
        rows: dim,
        cols: 4 * dim,
        ..DriftField::default()
    }
    .at(0.0);
    let n1 = drift.len();
    let series = Field::from_vec(Shape::D1(n1), drift.as_slice().to_vec());

    let corpora = [
        ("grf3d", &grf3),
        ("grf2d", &grf2),
        ("timeseries1d", &series),
    ];

    let mut results = Vec::new();
    for (name, field) in corpora {
        results.push(run_corpus(name, field, &levels, reps));
    }

    let mib = |bytes: usize, s: f64| bytes as f64 / (1024.0 * 1024.0) / s;
    println!(
        "hot-loop kernels, eb_rel {EB_REL}, best of {reps}, single thread, \
         simd detected: {}",
        detected.name()
    );
    for r in &results {
        println!(
            "{}: {} ({:.1} MiB), {} bytes, containers identical: {}",
            r.name,
            r.shape,
            r.raw_bytes as f64 / (1024.0 * 1024.0),
            r.compressed_bytes,
            r.containers_identical,
        );
        println!(
            "  reference  walk {:7.1} MiB/s  reconstruct {:7.1} MiB/s  compress {:7.1} MiB/s",
            mib(r.raw_bytes, r.reference.walk_s),
            mib(r.raw_bytes, r.reference.recon_s),
            mib(r.raw_bytes, r.reference.compress_s),
        );
        for (li, t) in r.per_level.iter().enumerate() {
            println!(
                "  fused/{:<5} walk {:7.1} MiB/s  reconstruct {:7.1} MiB/s  compress {:7.1} MiB/s  decompress {:7.1} MiB/s",
                levels[li].name(),
                mib(r.raw_bytes, t.walk_s),
                mib(r.raw_bytes, t.recon_s),
                mib(r.raw_bytes, t.compress_s),
                mib(r.raw_bytes, t.decompress_s),
            );
        }
        let last = r.per_level.last().unwrap();
        let off = &r.per_level[0];
        println!(
            "  simd vs scalar: walk {:.2}x  reconstruct {:.2}x  compress {:.2}x  decompress {:.2}x",
            off.walk_s / last.walk_s,
            off.recon_s / last.recon_s,
            off.compress_s / last.compress_s,
            off.decompress_s / last.decompress_s,
        );
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"hotloop\",\n  \"grf_dim\": {dim},\n  \"reps\": {reps},\n  \
         \"eb_rel\": {EB_REL},\n  \"simd_detected\": \"{}\",\n  \"levels\": [{}],\n  \"corpora\": [",
        detected.name(),
        levels
            .iter()
            .map(|l| format!("\"{}\"", l.name()))
            .collect::<Vec<_>>()
            .join(", "),
    );
    for (i, r) in results.iter().enumerate() {
        let last = r.per_level.last().unwrap();
        let off = &r.per_level[0];
        let _ = write!(
            json,
            "{}\n    {{\"name\": \"{}\", \"shape\": \"{}\", \"raw_bytes\": {},\n     \
             \"reference\": {{\"walk_s\": {:.6}, \"reconstruct_s\": {:.6}, \"compress_s\": {:.6}}},\n     \
             \"levels\": {{",
            if i == 0 { "" } else { "," },
            r.name,
            r.shape,
            r.raw_bytes,
            r.reference.walk_s,
            r.reference.recon_s,
            r.reference.compress_s,
        );
        for (li, t) in r.per_level.iter().enumerate() {
            let _ = write!(
                json,
                "{}\n       \"{}\": {{\"walk_s\": {:.6}, \"reconstruct_s\": {:.6}, \
                 \"compress_s\": {:.6}, \"decompress_s\": {:.6}, \
                 \"compress_mib_s\": {:.2}, \"decompress_mib_s\": {:.2}}}",
                if li == 0 { "" } else { "," },
                levels[li].name(),
                t.walk_s,
                t.recon_s,
                t.compress_s,
                t.decompress_s,
                mib(r.raw_bytes, t.compress_s),
                mib(r.raw_bytes, t.decompress_s),
            );
        }
        let _ = write!(
            json,
            "\n     }},\n     \"simd_speedup\": {{\"walk\": {:.4}, \"reconstruct\": {:.4}, \
             \"compress\": {:.4}, \"decompress\": {:.4}}},\n     \
             \"fused_vs_reference_walk\": {:.4},\n     \
             \"compressed_bytes\": {}, \"containers_identical\": {}}}",
            off.walk_s / last.walk_s,
            off.recon_s / last.recon_s,
            off.compress_s / last.compress_s,
            off.decompress_s / last.decompress_s,
            r.reference.walk_s / last.walk_s,
            r.compressed_bytes,
            r.containers_identical,
        );
    }
    let all_identical = results.iter().all(|r| r.containers_identical);
    let _ = write!(
        json,
        "\n  ],\n  \"all_containers_identical\": {all_identical}\n}}\n"
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !all_identical {
        eprintln!("FAIL: containers differed across kernels or SIMD dispatch levels");
        std::process::exit(1);
    }
}
