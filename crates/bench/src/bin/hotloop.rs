//! Single-thread hot-loop benchmark: fused kernels vs the per-element
//! reference walk, stage by stage and end to end.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin hotloop
//! FPSNR_GRF_DIM=32 FPSNR_REPS=2 cargo run --release -p fpsnr-bench --bin hotloop   # CI smoke
//! ```
//!
//! Writes `BENCH_hotloop.json` (override with `FPSNR_OUT`) recording, per
//! corpus: walk / reconstruct / full-compress wall time and MB/s for both
//! kernel modes, the fused-over-reference speedups, the decompress
//! throughput, and whether the two modes produced byte-identical
//! containers. Exits nonzero if any container pair differs — the bench
//! doubles as the bit-identity tripwire CI runs on every push.

use datagen::grf::{grf_2d, grf_3d};
use datagen::timeseries::DriftField;
use ndfield::{Field, Shape};
use std::fmt::Write as _;
use std::time::Instant;
use szlike::kernels::{reconstruct_fused, reconstruct_reference, walk_fused, walk_reference};
use szlike::{ErrorBound, EscapeCoding, KernelMode, PredictorModel, SzConfig};

/// Best-of-N wall-clock for one closure, in seconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

struct CorpusResult {
    name: &'static str,
    shape: String,
    raw_bytes: usize,
    walk_fused_s: f64,
    walk_reference_s: f64,
    recon_fused_s: f64,
    recon_reference_s: f64,
    compress_fused_s: f64,
    compress_reference_s: f64,
    decompress_s: f64,
    compressed_bytes: usize,
    containers_identical: bool,
}

const EB_REL: f64 = 1e-4;
const BINS: usize = 65536;

fn run_corpus(name: &'static str, field: &Field<f32>, reps: usize) -> CorpusResult {
    let raw_bytes = field.len() * 4;
    let shape = field.shape();
    let eb = EB_REL * field.value_range();
    let data = field.as_slice();
    let pred = PredictorModel::Lorenzo1;

    // Stage benches: raw walk and raw reconstruct, outside the container.
    let mut scratch = Vec::new();
    let (walk_fused_s, wf) = time_best(reps, || {
        walk_fused::<f32>(data, shape, eb, BINS, pred, EscapeCoding::Exact, &mut scratch)
    });
    let (walk_reference_s, wr) = time_best(reps, || {
        walk_reference::<f32>(data, shape, eb, BINS, pred, EscapeCoding::Exact, &mut scratch)
    });
    assert_eq!(wf.codes, wr.codes, "{name}: walk codes diverged");

    let (recon_fused_s, rf) = time_best(reps, || {
        reconstruct_fused(&wf.codes, wf.unpred.clone(), shape, eb, BINS, pred).unwrap()
    });
    let (recon_reference_s, rr) = time_best(reps, || {
        reconstruct_reference(&wr.codes, &wr.unpred, shape, eb, BINS, pred).unwrap()
    });
    assert_eq!(rf, rr, "{name}: reconstructions diverged");

    // End-to-end container benches.
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(EB_REL)).with_auto_intervals(true);
    let (compress_fused_s, fused_bytes) = time_best(reps, || {
        szlike::compress(field, &cfg.with_kernel(KernelMode::Fused)).unwrap()
    });
    let (compress_reference_s, reference_bytes) = time_best(reps, || {
        szlike::compress(field, &cfg.with_kernel(KernelMode::Reference)).unwrap()
    });
    let containers_identical = fused_bytes == reference_bytes;
    let (decompress_s, _back) =
        time_best(reps, || szlike::decompress::<f32>(&fused_bytes).unwrap());

    CorpusResult {
        name,
        shape: format!("{shape:?}"),
        raw_bytes,
        walk_fused_s,
        walk_reference_s,
        recon_fused_s,
        recon_reference_s,
        compress_fused_s,
        compress_reference_s,
        decompress_s,
        compressed_bytes: fused_bytes.len(),
        containers_identical,
    }
}

fn main() {
    let dim: usize = std::env::var("FPSNR_GRF_DIM")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let reps: usize = std::env::var("FPSNR_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out_path =
        std::env::var("FPSNR_OUT").unwrap_or_else(|_| "BENCH_hotloop.json".to_string());

    let grf3: Vec<f32> = grf_3d(dim, dim, dim, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let grf3 = Field::from_vec(Shape::D3(dim, dim, dim), grf3);
    let side = 4 * dim;
    let grf2: Vec<f32> = grf_2d(side, side, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let grf2 = Field::from_vec(Shape::D2(side, side), grf2);
    // 1-D corpus: a drifting snapshot flattened to a series, so the walk
    // sees realistic smooth-plus-detail structure rather than pure noise.
    let drift = DriftField {
        rows: dim,
        cols: 4 * dim,
        ..DriftField::default()
    }
    .at(0.0);
    let n1 = drift.len();
    let series = Field::from_vec(Shape::D1(n1), drift.as_slice().to_vec());

    let corpora = [
        ("grf3d", &grf3),
        ("grf2d", &grf2),
        ("timeseries1d", &series),
    ];

    let mut results = Vec::new();
    for (name, field) in corpora {
        results.push(run_corpus(name, field, reps));
    }

    let mib = |bytes: usize, s: f64| bytes as f64 / (1024.0 * 1024.0) / s;
    println!("hot-loop kernels, eb_rel {EB_REL}, best of {reps}, single thread");
    for r in &results {
        println!(
            "{}: {} ({:.1} MiB)\n  walk       fused {:.1} MiB/s vs reference {:.1} MiB/s ({:.2}x)\n  \
             reconstruct fused {:.1} MiB/s vs reference {:.1} MiB/s ({:.2}x)\n  \
             compress   fused {:.1} MiB/s vs reference {:.1} MiB/s ({:.2}x), decompress {:.1} MiB/s\n  \
             {} bytes, containers identical: {}",
            r.name,
            r.shape,
            r.raw_bytes as f64 / (1024.0 * 1024.0),
            mib(r.raw_bytes, r.walk_fused_s),
            mib(r.raw_bytes, r.walk_reference_s),
            r.walk_reference_s / r.walk_fused_s,
            mib(r.raw_bytes, r.recon_fused_s),
            mib(r.raw_bytes, r.recon_reference_s),
            r.recon_reference_s / r.recon_fused_s,
            mib(r.raw_bytes, r.compress_fused_s),
            mib(r.raw_bytes, r.compress_reference_s),
            r.compress_reference_s / r.compress_fused_s,
            mib(r.raw_bytes, r.decompress_s),
            r.compressed_bytes,
            r.containers_identical,
        );
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"hotloop\",\n  \"grf_dim\": {dim},\n  \"reps\": {reps},\n  \
         \"eb_rel\": {EB_REL},\n  \"corpora\": ["
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"name\": \"{}\", \"shape\": \"{}\", \"raw_bytes\": {},\n     \
             \"walk\": {{\"fused_s\": {:.6}, \"reference_s\": {:.6}, \"speedup\": {:.4}}},\n     \
             \"reconstruct\": {{\"fused_s\": {:.6}, \"reference_s\": {:.6}, \"speedup\": {:.4}}},\n     \
             \"compress\": {{\"fused_s\": {:.6}, \"reference_s\": {:.6}, \"speedup\": {:.4}, \
             \"fused_mib_s\": {:.2}, \"reference_mib_s\": {:.2}}},\n     \
             \"decompress_s\": {:.6}, \"decompress_mib_s\": {:.2},\n     \
             \"compressed_bytes\": {}, \"containers_identical\": {}}}",
            if i == 0 { "" } else { "," },
            r.name,
            r.shape,
            r.raw_bytes,
            r.walk_fused_s,
            r.walk_reference_s,
            r.walk_reference_s / r.walk_fused_s,
            r.recon_fused_s,
            r.recon_reference_s,
            r.recon_reference_s / r.recon_fused_s,
            r.compress_fused_s,
            r.compress_reference_s,
            r.compress_reference_s / r.compress_fused_s,
            mib(r.raw_bytes, r.compress_fused_s),
            mib(r.raw_bytes, r.compress_reference_s),
            r.decompress_s,
            mib(r.raw_bytes, r.decompress_s),
            r.compressed_bytes,
            r.containers_identical,
        );
    }
    let all_identical = results.iter().all(|r| r.containers_identical);
    let _ = write!(
        json,
        "\n  ],\n  \"all_containers_identical\": {all_identical}\n}}\n"
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !all_identical {
        eprintln!("FAIL: fused and reference kernels produced different container bytes");
        std::process::exit(1);
    }
}
