//! Per-block predictor bake-off: `--predictor auto` vs Lorenzo-only, at
//! fixed PSNR, over the shared evaluation corpora (the same fields the
//! accuracy harnesses sweep — registry NYX/ATM/Hurricane at seed 27, the
//! power-law GRF trio, the drifting time series).
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin predictors
//! FPSNR_TARGETS=80,100 cargo run --release -p fpsnr-bench --bin predictors  # CI smoke
//! ```
//!
//! Writes `BENCH_predictors.json` (override with `FPSNR_OUT`) recording,
//! per corpus × target: total compressed bytes for both predictor
//! configurations, the byte delta, wall time, and the per-block predictor
//! histogram of every v5 container. Exits nonzero if any gate fails —
//! the gates mirror `tests/fixed_psnr_accuracy.rs` and are calibrated
//! one notch below the measured uplift (EXPERIMENTS.md) so only a real
//! selection regression trips them:
//!
//! - **guardrail** — on every corpus × target, auto never costs more
//!   than 0.5% over Lorenzo (measured worst case: +0.14%, pure v5
//!   per-block tag bytes);
//! - **uplift** — auto beats Lorenzo by ≥ 10% on ATM @ 80 dB (measured
//!   −14.7%), ≥ 5% on the time series @ 80 dB (measured −9.9%), and
//!   ≥ 15% on NYX @ 30 dB (measured −23.2%) — each gate checked only
//!   when its target is in the sweep;
//! - **diversity** — the auto containers use ≥ 2 distinct predictors
//!   (the bake-off actually mixes models, it is not Lorenzo in a v5
//!   wrapper).

use datagen::grf::grf_2d;
use datagen::timeseries::DriftField;
use datagen::{generate, DatasetId, Resolution};
use fpsnr_core::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
use ndfield::{Field, Scalar, Shape};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;
use szlike::PredictorKind;

/// Corpus seeds/shapes pinned to `tests/common/corpora.rs` so this bench
/// regenerates the EXPERIMENTS.md table over identical bytes.
const REGISTRY_SEED: u64 = 27;
const GRF_ALPHAS: [f64; 3] = [1.5, 2.5, 3.5];
const GRF_SEED_BASE: u64 = 28;

struct CellResult {
    corpus: &'static str,
    target: f64,
    lorenzo_bytes: usize,
    auto_bytes: usize,
    lorenzo_s: f64,
    auto_s: f64,
    /// predictor name -> block count, summed over the corpus' containers.
    mix: BTreeMap<String, usize>,
}

impl CellResult {
    fn delta_pct(&self) -> f64 {
        (self.auto_bytes as f64 / self.lorenzo_bytes as f64 - 1.0) * 100.0
    }
}

fn run_cell<T: Scalar>(
    corpus: &'static str,
    fields: &[(String, Field<T>)],
    target: f64,
) -> CellResult {
    let lorenzo = FixedPsnrOptions {
        threads: 0,
        ..FixedPsnrOptions::default()
    };
    let auto = FixedPsnrOptions {
        predictor: PredictorKind::Auto,
        ..lorenzo
    };
    let total = |opts: &FixedPsnrOptions, mix: Option<&mut BTreeMap<String, usize>>| {
        let t0 = Instant::now();
        let mut bytes = 0usize;
        let mut containers = Vec::new();
        for (name, f) in fields {
            let run = compress_fixed_psnr(f, target, opts)
                .unwrap_or_else(|e| panic!("{corpus}/{name} @ {target} dB: {e}"));
            bytes += run.bytes.len();
            containers.push(run.bytes);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        if let Some(mix) = mix {
            for c in &containers {
                if let Ok(Some(names)) = szlike::inspect_block_predictors(c) {
                    for n in names {
                        *mix.entry(n).or_insert(0) += 1;
                    }
                }
            }
        }
        (bytes, elapsed)
    };
    let (lorenzo_bytes, lorenzo_s) = total(&lorenzo, None);
    let mut mix = BTreeMap::new();
    let (auto_bytes, auto_s) = total(&auto, Some(&mut mix));
    CellResult {
        corpus,
        target,
        lorenzo_bytes,
        auto_bytes,
        lorenzo_s,
        auto_s,
        mix,
    }
}

fn registry(id: DatasetId) -> Vec<(String, Field<f32>)> {
    generate(id, Resolution::Small, REGISTRY_SEED)
        .into_iter()
        .map(|nf| (nf.name, nf.data))
        .collect()
}

fn grf_corpus() -> Vec<(String, Field<f64>)> {
    GRF_ALPHAS
        .iter()
        .enumerate()
        .map(|(k, &alpha)| {
            (
                format!("grf_a{alpha}"),
                Field::from_vec(
                    Shape::D2(64, 128),
                    grf_2d(64, 128, alpha, GRF_SEED_BASE + k as u64),
                ),
            )
        })
        .collect()
}

fn ts_corpus() -> Vec<(String, Field<f32>)> {
    DriftField::default()
        .series(6, 0.5)
        .into_iter()
        .enumerate()
        .map(|(k, f)| (format!("ts_{k}"), f))
        .collect()
}

fn main() {
    let targets: Vec<f64> = std::env::var("FPSNR_TARGETS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("FPSNR_TARGETS: bad number"))
                .collect()
        })
        .unwrap_or_else(|| vec![30.0, 40.0, 50.0, 60.0, 80.0, 100.0]);
    let out_path =
        std::env::var("FPSNR_OUT").unwrap_or_else(|_| "BENCH_predictors.json".to_string());

    let grf = grf_corpus();
    let ts = ts_corpus();
    let nyx = registry(DatasetId::Nyx);
    let atm = registry(DatasetId::Atm);
    let hurricane = registry(DatasetId::Hurricane);

    println!("predictor bake-off (auto vs lorenzo), blocked containers, targets {targets:?}");
    let mut results: Vec<CellResult> = Vec::new();
    for &target in &targets {
        results.push(run_cell("GRF", &grf, target));
        results.push(run_cell("TS", &ts, target));
        results.push(run_cell("NYX", &nyx, target));
        results.push(run_cell("ATM", &atm, target));
        results.push(run_cell("Hurricane", &hurricane, target));
    }

    let mut failures: Vec<String> = Vec::new();
    let mut global_mix: BTreeMap<String, usize> = BTreeMap::new();
    for r in &results {
        let mix: Vec<String> = r.mix.iter().map(|(k, v)| format!("{k}:{v}")).collect();
        println!(
            "  {:<9} @ {:>5.1} dB: lorenzo {:>8} B  auto {:>8} B  ({:+6.2}%)  [{}]",
            r.corpus,
            r.target,
            r.lorenzo_bytes,
            r.auto_bytes,
            r.delta_pct(),
            mix.join(" ")
        );
        for (k, v) in &r.mix {
            *global_mix.entry(k.clone()).or_insert(0) += v;
        }
        // Guardrail: never more than the per-block tag overhead.
        if r.auto_bytes as f64 > r.lorenzo_bytes as f64 * 1.005 {
            failures.push(format!(
                "{} @ {} dB: auto {} B exceeds lorenzo {} B by more than 0.5%",
                r.corpus, r.target, r.auto_bytes, r.lorenzo_bytes
            ));
        }
    }
    // Uplift gates, each active only when its target was swept.
    for (corpus, target, ceiling, measured) in [
        ("ATM", 80.0, 0.90, "-14.7%"),
        ("TS", 80.0, 0.95, "-9.9%"),
        ("NYX", 30.0, 0.85, "-23.2%"),
    ] {
        if let Some(r) = results
            .iter()
            .find(|r| r.corpus == corpus && r.target == target)
        {
            if r.auto_bytes as f64 > r.lorenzo_bytes as f64 * ceiling {
                failures.push(format!(
                    "{corpus} @ {target} dB: auto {} B vs lorenzo {} B — uplift fell below \
                     {:.0}% (measured {measured})",
                    r.auto_bytes,
                    r.lorenzo_bytes,
                    (1.0 - ceiling) * 100.0
                ));
            }
        }
    }
    let distinct: Vec<&String> = global_mix
        .keys()
        .filter(|k| !k.starts_with("unknown") && *k != "damaged")
        .collect();
    println!(
        "  predictor mix over all auto containers: {}",
        global_mix
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    if distinct.len() < 2 {
        failures.push(format!(
            "auto containers used {} distinct predictor(s) ({distinct:?}); the bake-off \
             should mix at least 2",
            distinct.len()
        ));
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"predictors\",\n  \"targets\": {targets:?},\n  \"cells\": ["
    );
    for (i, r) in results.iter().enumerate() {
        let mix: Vec<String> = r
            .mix
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let _ = write!(
            json,
            "{}\n    {{\"corpus\": \"{}\", \"target_db\": {}, \"lorenzo_bytes\": {}, \
             \"auto_bytes\": {}, \"delta_pct\": {:.4}, \"lorenzo_s\": {:.4}, \
             \"auto_s\": {:.4}, \"predictor_blocks\": {{{}}}}}",
            if i == 0 { "" } else { "," },
            r.corpus,
            r.target,
            r.lorenzo_bytes,
            r.auto_bytes,
            r.delta_pct(),
            r.lorenzo_s,
            r.auto_s,
            mix.join(", ")
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"distinct_predictors\": {},\n  \"gates_passed\": {}\n}}\n",
        distinct.len(),
        failures.is_empty()
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
