//! Block-parallel pipeline benchmark: monolithic vs blocked compression on
//! a 3-D Gaussian random field, sweeping the worker-thread count.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin blocked
//! FPSNR_GRF_DIM=32 cargo run --release -p fpsnr-bench --bin blocked   # CI smoke
//! ```
//!
//! Writes `BENCH_blocked.json` (override with `FPSNR_OUT`) recording, per
//! thread count: compression/decompression throughput, achieved PSNR, and
//! compressed size — plus the monolithic baseline, so the speedup and the
//! ratio/PSNR deltas the blocked mode promises are checkable from the
//! artifact alone.

use datagen::grf::grf_3d;
use fpsnr_metrics::Distortion;
use ndfield::{Field, Shape};
use std::fmt::Write as _;
use std::time::Instant;
use szlike::{ErrorBound, SzConfig};

/// Best-of-N wall-clock for one closure, in seconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

struct Row {
    threads: usize,
    compress_s: f64,
    decompress_s: f64,
    bytes: usize,
    psnr: f64,
}

fn main() {
    let dim: usize = std::env::var("FPSNR_GRF_DIM")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let reps: usize = std::env::var("FPSNR_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out_path =
        std::env::var("FPSNR_OUT").unwrap_or_else(|_| "BENCH_blocked.json".to_string());

    let data: Vec<f32> = grf_3d(dim, dim, dim, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let field = Field::from_vec(Shape::D3(dim, dim, dim), data);
    let raw_bytes = field.len() * 4;
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4)).with_auto_intervals(true);

    // Monolithic baseline (threads = 1, no blocking).
    let (mono_c, mono_bytes) = time_best(reps, || szlike::compress(&field, &cfg).unwrap());
    let (mono_d, mono_back) =
        time_best(reps, || szlike::decompress::<f32>(&mono_bytes).unwrap());
    let mono_psnr = Distortion::between(&field, &mono_back).psnr();

    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let bcfg = cfg.with_threads(threads);
        let (c_s, bytes) = time_best(reps, || szlike::compress(&field, &bcfg).unwrap());
        let (d_s, back) = time_best(reps, || {
            szlike::decompress_with_threads::<f32>(&bytes, threads).unwrap()
        });
        let psnr = Distortion::between(&field, &back).psnr();
        rows.push(Row {
            threads,
            compress_s: c_s,
            decompress_s: d_s,
            bytes: bytes.len(),
            psnr,
        });
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mib = raw_bytes as f64 / (1024.0 * 1024.0);
    println!(
        "GRF {dim}^3 ({mib:.1} MiB f32), eb_rel 1e-4, best of {reps}, {cores} core(s)\n\
         monolithic: compress {:.1} MiB/s, decompress {:.1} MiB/s, {} bytes, PSNR {:.2} dB",
        mib / mono_c,
        mib / mono_d,
        mono_bytes.len(),
        mono_psnr
    );
    for r in &rows {
        println!(
            "blocked t={}: compress {:.1} MiB/s ({:.2}x), decompress {:.1} MiB/s, \
             {} bytes ({:+.2}% vs mono), PSNR {:.2} dB ({:+.3} dB)",
            r.threads,
            mib / r.compress_s,
            mono_c / r.compress_s,
            mib / r.decompress_s,
            r.bytes,
            (r.bytes as f64 / mono_bytes.len() as f64 - 1.0) * 100.0,
            r.psnr,
            r.psnr - mono_psnr
        );
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"blocked\",\n  \"grf_dim\": {dim},\n  \"raw_bytes\": {raw_bytes},\n  \
         \"available_parallelism\": {cores},\n  \
         \"eb_rel\": 1e-4,\n  \"reps\": {reps},\n  \"monolithic\": {{\"compress_s\": {mono_c:.6}, \
         \"decompress_s\": {mono_d:.6}, \"bytes\": {}, \"psnr_db\": {mono_psnr:.4}}},\n  \
         \"blocked\": [",
        mono_bytes.len()
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"threads\": {}, \"compress_s\": {:.6}, \"decompress_s\": {:.6}, \
             \"bytes\": {}, \"psnr_db\": {:.4}, \"compress_speedup\": {:.4}}}",
            if i == 0 { "" } else { "," },
            r.threads,
            r.compress_s,
            r.decompress_s,
            r.bytes,
            r.psnr,
            mono_c / r.compress_s
        );
    }
    let _ = write!(json, "\n  ]\n}}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
