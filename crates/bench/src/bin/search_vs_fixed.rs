//! The motivation experiment (§I): fixed-PSNR one-shot compression versus
//! the pre-paper baseline of re-running the compressor with bisected error
//! bounds until the PSNR lands.
//!
//! Reports, per data set and target: compressor invocations and wall time
//! for both strategies, and the PSNR each delivered.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin search_vs_fixed
//! ```

use datagen::DatasetId;
use fpsnr_bench::{dataset_fields, resolution_from_env, seed_from_env};
use fpsnr_core::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
use fpsnr_core::search::search_to_target_psnr;
use std::time::Instant;

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    let tolerance_db = 3.0;
    println!(
        "SEARCH vs FIXED-PSNR ({res:?}, tolerance +{tolerance_db} dB, 2 fields per data set)"
    );
    println!();
    println!(
        "{:<10} {:<20} {:>6} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>9} | {:>7}",
        "dataset", "field", "target", "fix PSNR", "fix inv", "fix ms", "srch PSNR", "srch inv", "srch ms", "speedup"
    );
    println!("{}", "-".repeat(118));

    let mut total_fixed_inv = 0usize;
    let mut total_search_inv = 0usize;
    for id in DatasetId::ALL {
        let fields = dataset_fields(id, res, seed);
        for (name, field) in fields.iter().take(2) {
            for target in [40.0, 80.0] {
                let t0 = Instant::now();
                let Ok(fixed) =
                    compress_fixed_psnr(field, target, &FixedPsnrOptions::default())
                else {
                    continue;
                };
                let fixed_ms = t0.elapsed().as_secs_f64() * 1e3;

                let t1 = Instant::now();
                let search = search_to_target_psnr(field, target, tolerance_db, 30)
                    .expect("search");
                let search_ms = t1.elapsed().as_secs_f64() * 1e3;

                total_fixed_inv += 1;
                total_search_inv += search.invocations;
                println!(
                    "{:<10} {:<20} {:>6.0} | {:>8.2} {:>8} {:>9.1} | {:>8.2} {:>8} {:>9.1} | {:>6.1}x",
                    id.name(),
                    name,
                    target,
                    fixed.outcome.achieved_psnr,
                    1,
                    fixed_ms,
                    search.achieved_psnr,
                    search.invocations,
                    search_ms,
                    search_ms / fixed_ms.max(1e-9)
                );
            }
        }
    }
    println!();
    println!(
        "totals: fixed-PSNR used {total_fixed_inv} compressor invocations; the search\n\
         baseline used {total_search_inv} ({:.1}x more) — the cost Eq. 8 removes,\n\
         multiplied across the 100+ fields of a production snapshot (paper §I).",
        total_search_inv as f64 / total_fixed_inv.max(1) as f64
    );
}
