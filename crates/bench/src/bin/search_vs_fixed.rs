//! The motivation experiment (§I): fixed-PSNR one-shot compression versus
//! the pre-paper baseline of re-running the compressor with bisected error
//! bounds until the PSNR lands.
//!
//! Reports, per data set and target: compressor invocations and wall time
//! for both strategies, and the PSNR each delivered. The run is armed with
//! `fpsnr-obs`, so after the comparison table it prints the instrumented
//! per-stage breakdown of where each strategy spent its time (the Eq. 8
//! derivation span versus the repeated `search.probe` cycles).
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin search_vs_fixed
//! FPSNR_PROFILE=json cargo run --release -p fpsnr-bench --bin search_vs_fixed
//! ```

use datagen::DatasetId;
use fpsnr_bench::{dataset_fields, resolution_from_env, seed_from_env};
use fpsnr_core::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
use fpsnr_core::search::search_to_target_psnr;
use std::time::Instant;

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    let tolerance_db = 3.0;
    fpsnr_obs::enable();
    println!(
        "SEARCH vs FIXED-PSNR ({res:?}, tolerance +{tolerance_db} dB, 2 fields per data set)"
    );
    println!();
    println!(
        "{:<10} {:<20} {:>6} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>9} | {:>7}",
        "dataset", "field", "target", "fix PSNR", "fix inv", "fix ms", "srch PSNR", "srch inv", "srch ms", "speedup"
    );
    println!("{}", "-".repeat(118));

    let mut total_fixed_inv = 0usize;
    let mut total_search_inv = 0usize;
    for id in DatasetId::ALL {
        let fields = dataset_fields(id, res, seed);
        for (name, field) in fields.iter().take(2) {
            for target in [40.0, 80.0] {
                let t0 = Instant::now();
                let Ok(fixed) =
                    compress_fixed_psnr(field, target, &FixedPsnrOptions::default())
                else {
                    continue;
                };
                let fixed_ms = t0.elapsed().as_secs_f64() * 1e3;

                let t1 = Instant::now();
                let search = search_to_target_psnr(field, target, tolerance_db, 30)
                    .expect("search");
                let search_ms = t1.elapsed().as_secs_f64() * 1e3;

                total_fixed_inv += 1;
                total_search_inv += search.invocations;
                println!(
                    "{:<10} {:<20} {:>6.0} | {:>8.2} {:>8} {:>9.1} | {:>8.2} {:>8} {:>9.1} | {:>6.1}x",
                    id.name(),
                    name,
                    target,
                    fixed.outcome.achieved_psnr,
                    1,
                    fixed_ms,
                    search.achieved_psnr,
                    search.invocations,
                    search_ms,
                    search_ms / fixed_ms.max(1e-9)
                );
            }
        }
    }
    println!();
    println!(
        "totals: fixed-PSNR used {total_fixed_inv} compressor invocations; the search\n\
         baseline used {total_search_inv} ({:.1}x more) — the cost Eq. 8 removes,\n\
         multiplied across the 100+ fields of a production snapshot (paper §I).",
        total_search_inv as f64 / total_fixed_inv.max(1) as f64
    );

    fpsnr_obs::disable();
    let report = fpsnr_obs::snapshot();
    println!();
    println!("instrumented overhead (fpsnr-obs spans across the whole run):");
    let total_of = |path: &str| report.span(path).map_or(0, |s| s.total_ns);
    let fixed_ns = total_of("fpsnr.compress");
    let derive_ns = total_of("fpsnr.compress/fpsnr.derive");
    let search_ns = total_of("search.run");
    let probe = report.span("search.run/search.probe");
    println!(
        "  fixed-PSNR   : {:>10.1} ms total, of which Eq. 8 derivation {:>8.3} ms ({:.4}%)",
        fixed_ns as f64 / 1e6,
        derive_ns as f64 / 1e6,
        100.0 * derive_ns as f64 / fixed_ns.max(1) as f64
    );
    match probe {
        Some(p) => println!(
            "  search       : {:>10.1} ms total across {} probes (each a full \
             compress+decompress+measure cycle, mean {:.1} ms)",
            search_ns as f64 / 1e6,
            p.count,
            p.total_ns as f64 / 1e6 / p.count.max(1) as f64
        ),
        None => println!("  search       : {:>10.1} ms total", search_ns as f64 / 1e6),
    }
    println!(
        "  invocations  : fixed {} vs search {} (counters fpsnr.invocations / search.invocations)",
        report.counter("fpsnr.invocations").unwrap_or(0),
        report.counter("search.invocations").unwrap_or(0)
    );
    if std::env::var("FPSNR_PROFILE").as_deref() == Ok("json") {
        println!();
        println!("{}", report.to_json());
    }
}
