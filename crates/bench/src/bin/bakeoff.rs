//! Entropy-backend bake-off bench and ratio-regression gate.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin bakeoff
//! FPSNR_GRF_DIM=32 cargo run --release -p fpsnr-bench --bin bakeoff   # CI smoke
//! ```
//!
//! Feeds the per-chunk bake-off ([`losslesskit::bakeoff`]) a deterministic
//! corpus spanning the byte distributions the lossless tail actually sees —
//! a serialized quantized-container body, raw float samples, a
//! low-entropy plane, and incompressible noise — and measures, per corpus,
//! the chosen-backend size and encode/decode throughput against forced
//! always-DEFLATE. Writes `BENCH_bakeoff.json` (override with `FPSNR_OUT`).
//!
//! The gate: on every corpus the bake-off's pick must stay within 1% (plus
//! a small absolute slack for tiny inputs) of the always-DEFLATE size.
//! Exit is nonzero on any violation, so CI catches a cost-model regression
//! that starts picking worse backends.

use datagen::grf::grf_3d;
use losslesskit::bakeoff::{self, Backend};
use losslesskit::lz77::Effort;
use ndfield::{Field, Shape};
use std::fmt::Write as _;
use std::time::Instant;
use szlike::{ErrorBound, LosslessBackend, SzConfig};

/// Best-of-N wall-clock for one closure, in seconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

struct CorpusResult {
    name: &'static str,
    raw_bytes: usize,
    baked_bytes: usize,
    deflate_bytes: usize,
    encode_s: f64,
    decode_s: f64,
    /// Chunk counts per backend, indexed like [`Backend::ALL`].
    chunks: [u64; 4],
    gate_ok: bool,
}

/// Permitted inflation of the bake-off pick over always-DEFLATE: 1%
/// relative plus 64 bytes absolute (per-chunk tag overhead on tiny inputs).
fn gate(baked: usize, deflate: usize) -> bool {
    baked as f64 <= deflate as f64 * 1.01 + 64.0
}

fn run_corpus(name: &'static str, data: &[u8], reps: usize) -> CorpusResult {
    let effort = Effort::Default;
    let (encode_s, (baked, stats)) =
        time_best(reps, || bakeoff::compress_with_stats(data, effort));
    let deflate = bakeoff::compress_forced(data, effort, Backend::Deflate);
    let (decode_s, back) = time_best(reps, || {
        bakeoff::decompress_bounded(&baked, data.len()).unwrap()
    });
    assert_eq!(back.as_ref(), data, "{name}: bake-off round-trip mismatch");
    let deflate_back = bakeoff::decompress_bounded(&deflate, data.len()).unwrap();
    assert_eq!(deflate_back.as_ref(), data, "{name}: forced-DEFLATE round-trip mismatch");
    CorpusResult {
        name,
        raw_bytes: data.len(),
        baked_bytes: baked.len(),
        deflate_bytes: deflate.len(),
        encode_s,
        decode_s,
        chunks: stats.chunks,
        gate_ok: gate(baked.len(), deflate.len()),
    }
}

fn main() {
    let dim: usize = std::env::var("FPSNR_GRF_DIM")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let reps: usize = std::env::var("FPSNR_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out_path =
        std::env::var("FPSNR_OUT").unwrap_or_else(|_| "BENCH_bakeoff.json".to_string());

    let grf: Vec<f32> = grf_3d(dim, dim, dim, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let field = Field::from_vec(Shape::D3(dim, dim, dim), grf);

    // The realistic input: a quantized container body with the lossless
    // stage off, i.e. exactly the bytes apply_lossless sees in production.
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4))
        .with_auto_intervals(true)
        .with_lossless(LosslessBackend::None);
    let sz_body = szlike::compress(&field, &cfg).expect("compress grf");

    // Raw little-endian float samples: structured, byte-planes of mixed
    // entropy.
    let raw_floats: Vec<u8> = field
        .as_slice()
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();

    // Low-entropy plane: long runs with a slow ramp (stored/Huffman bait).
    let low_entropy: Vec<u8> = (0..1 << 20).map(|i| ((i >> 12) & 0x0f) as u8).collect();

    // Incompressible noise from a fixed xorshift64 stream: every backend
    // should lose to stored here.
    let mut s = 0x9e3779b97f4a7c15u64;
    let noise: Vec<u8> = (0..1 << 20)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 32) as u8
        })
        .collect();

    let corpora: [(&'static str, &[u8]); 4] = [
        ("sz_body", &sz_body),
        ("raw_floats", &raw_floats),
        ("low_entropy", &low_entropy),
        ("noise", &noise),
    ];

    let mut results = Vec::new();
    for (name, data) in corpora {
        results.push(run_corpus(name, data, reps));
    }

    let mib = |bytes: usize, sec: f64| bytes as f64 / (1024.0 * 1024.0) / sec;
    println!("entropy-backend bake-off vs always-DEFLATE, best of {reps}, single thread");
    for r in &results {
        let picks: Vec<String> = Backend::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| r.chunks[*i] > 0)
            .map(|(i, b)| format!("{}x{}", r.chunks[i], b.name()))
            .collect();
        println!(
            "{}: {} raw -> {} baked vs {} deflate ({:+.2}%), encode {:.1} MiB/s, decode {:.1} MiB/s, picks [{}]{}",
            r.name,
            r.raw_bytes,
            r.baked_bytes,
            r.deflate_bytes,
            (r.baked_bytes as f64 / r.deflate_bytes as f64 - 1.0) * 100.0,
            mib(r.raw_bytes, r.encode_s),
            mib(r.raw_bytes, r.decode_s),
            picks.join(", "),
            if r.gate_ok { "" } else { "  GATE FAIL" },
        );
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"bakeoff\",\n  \"grf_dim\": {dim},\n  \"reps\": {reps},\n  \"corpora\": ["
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"name\": \"{}\", \"raw_bytes\": {}, \"baked_bytes\": {}, \
             \"deflate_bytes\": {},\n     \"encode_s\": {:.6}, \"decode_s\": {:.6}, \
             \"encode_mib_s\": {:.2}, \"decode_mib_s\": {:.2},\n     \
             \"chunks\": {{\"stored\": {}, \"deflate\": {}, \"huffman\": {}, \"range\": {}}}, \
             \"gate_ok\": {}}}",
            if i == 0 { "" } else { "," },
            r.name,
            r.raw_bytes,
            r.baked_bytes,
            r.deflate_bytes,
            r.encode_s,
            r.decode_s,
            mib(r.raw_bytes, r.encode_s),
            mib(r.raw_bytes, r.decode_s),
            r.chunks[0],
            r.chunks[1],
            r.chunks[2],
            r.chunks[3],
            r.gate_ok,
        );
    }
    let all_ok = results.iter().all(|r| r.gate_ok);
    let _ = write!(json, "\n  ],\n  \"gate_ok\": {all_ok}\n}}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !all_ok {
        eprintln!("FAIL: bake-off pick regressed >1% vs always-DEFLATE on some corpus");
        std::process::exit(1);
    }
}
