//! Snapshot bit-allocation bench: the 79-field CESM-ATM registry
//! snapshot under one global byte budget, allocator vs oracle.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin snapshot_alloc
//! FPSNR_ALLOC_FACTORS=4,16,64 cargo run --release -p fpsnr-bench --bin snapshot_alloc
//! ```
//!
//! For every budget factor `x` the snapshot gets `raw/x` bytes; the
//! allocator runs both objectives and the max-min answer is compared
//! against the *oracle* — the highest shared target PSNR that fits the
//! budget, found by bisection with real compressions of all 79 fields
//! (≈ 10 full snapshot compressions, the cost the allocator's
//! pilot+solve machinery exists to avoid).
//!
//! Writes `BENCH_alloc.json` (override with `FPSNR_OUT`) with the
//! per-field allocation table and the aggregate record. Exits nonzero
//! if any gate fails at the acceptance factor (16×):
//!
//! - **budget** — total ≤ 1.02 × budget;
//! - **utilization** — ≥ 0.90 of the budget actually spent;
//! - **pass bound** — no field compresses more than twice;
//! - **oracle gap** — achieved min PSNR within 1.5 dB of the oracle.

use datagen::{generate, DatasetId, Resolution};
use fpsnr_core::alloc::{allocate_snapshot, AllocObjective, AllocOptions, AnyField, SnapshotField};
use fpsnr_core::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// Seed pinned to `tests/common/corpora.rs` so this bench regenerates
/// the EXPERIMENTS.md table over identical bytes.
const REGISTRY_SEED: u64 = 27;

/// Acceptance gates, applied at this budget factor only.
const GATE_FACTOR: u64 = 16;
const GATE_BUDGET_TOL: f64 = 0.02;
const GATE_UTILIZATION: f64 = 0.90;
const GATE_MAX_PASSES: u32 = 2;
const GATE_ORACLE_GAP_DB: f64 = 1.5;

fn snapshot() -> Vec<SnapshotField> {
    generate(DatasetId::Atm, Resolution::Small, REGISTRY_SEED)
        .into_iter()
        .map(|nf| SnapshotField::f32(nf.name, nf.data))
        .collect()
}

fn compress_all_at(fields: &[SnapshotField], target: f64, opts: &FixedPsnrOptions) -> (u64, f64) {
    let mut total = 0u64;
    let mut min_psnr = f64::INFINITY;
    for f in fields {
        let AnyField::F32(fld) = &f.data else {
            unreachable!("ATM registry is f32")
        };
        let run = compress_fixed_psnr(fld, target, opts)
            .unwrap_or_else(|e| panic!("{} @ {target} dB: {e}", f.name));
        total += run.bytes.len() as u64;
        min_psnr = min_psnr.min(run.outcome.achieved_psnr);
    }
    (total, min_psnr)
}

struct Oracle {
    target: f64,
    min_achieved: f64,
    total: u64,
    compressions: usize,
    elapsed_s: f64,
}

/// Bisect the highest shared target PSNR whose real compressed total
/// fits the budget.
fn oracle(fields: &[SnapshotField], budget: u64, opts: &AllocOptions) -> Option<Oracle> {
    let t0 = Instant::now();
    let copts = opts.compress;
    let mut lo = opts.psnr_lo;
    let mut hi = opts.psnr_lo + opts.psnr_step * (opts.psnr_points - 1) as f64;
    let mut compressions = fields.len();
    let (floor_total, floor_min) = compress_all_at(fields, lo, &copts);
    if floor_total > budget {
        return None;
    }
    let mut best = Oracle {
        target: lo,
        min_achieved: floor_min,
        total: floor_total,
        compressions,
        elapsed_s: 0.0,
    };
    for _ in 0..10 {
        let mid = 0.5 * (lo + hi);
        let (total, min_a) = compress_all_at(fields, mid, &copts);
        compressions += fields.len();
        if total <= budget {
            best.target = mid;
            best.min_achieved = min_a;
            best.total = total;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best.compressions = compressions;
    best.elapsed_s = t0.elapsed().as_secs_f64();
    Some(best)
}

fn main() {
    let factors: Vec<u64> = std::env::var("FPSNR_ALLOC_FACTORS")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("FPSNR_ALLOC_FACTORS: bad number"))
                .collect()
        })
        .unwrap_or_else(|| vec![GATE_FACTOR]);
    let out_path = std::env::var("FPSNR_OUT").unwrap_or_else(|_| "BENCH_alloc.json".to_string());

    let fields = snapshot();
    let raw: u64 = fields.iter().map(|f| f.data.raw_bytes()).sum();
    println!(
        "snapshot allocation bench: ATM Small, {} fields, {} raw bytes, factors {factors:?}",
        fields.len(),
        raw
    );

    let mut failures: Vec<String> = Vec::new();
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"snapshot_alloc\",\n  \"corpus\": \"ATM/Small\",\n  \
         \"n_fields\": {},\n  \"raw_bytes\": {},\n  \"runs\": [",
        fields.len(),
        raw
    );

    for (fi, &factor) in factors.iter().enumerate() {
        let budget = raw / factor;
        let opts = AllocOptions::new(budget);

        let t0 = Instant::now();
        let run = allocate_snapshot(&fields, &opts).expect("allocation");
        let alloc_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let weighted = allocate_snapshot(
            &fields,
            &AllocOptions {
                objective: AllocObjective::WeightedMse,
                ..opts
            },
        )
        .expect("weighted allocation");
        let weighted_s = t0.elapsed().as_secs_f64();

        let orc = oracle(&fields, budget, &opts);

        let sm = &run.summary;
        println!("== {factor}x: budget {budget} bytes ==");
        println!(
            "  min-psnr : {}/{} bytes (utilization {:.3}), min assigned {:.2} dB \
             achieved {:.2} dB, passes max {} total {}, re-solves {}, {:.2}s",
            sm.total_bytes,
            sm.budget_bytes,
            sm.utilization,
            sm.min_assigned_psnr,
            sm.min_achieved_psnr,
            sm.max_passes,
            sm.total_passes,
            run.resolves,
            alloc_s
        );
        let wsm = &weighted.summary;
        println!(
            "  weighted : {}/{} bytes (utilization {:.3}), min achieved {:.2} dB, \
             passes max {}, {:.2}s",
            wsm.total_bytes, wsm.budget_bytes, wsm.utilization, wsm.min_achieved_psnr,
            wsm.max_passes, weighted_s
        );
        match &orc {
            Some(o) => println!(
                "  oracle   : target {:.2} dB, min achieved {:.2} dB, {} bytes \
                 ({} compressions, {:.2}s) — gap {:.2} dB at {:.1}x the allocator's cost",
                o.target,
                o.min_achieved,
                o.total,
                o.compressions,
                o.elapsed_s,
                o.min_achieved - sm.min_achieved_psnr,
                o.elapsed_s / alloc_s.max(1e-9)
            ),
            None => println!("  oracle   : infeasible at the grid floor"),
        }

        if factor == GATE_FACTOR {
            if sm.total_bytes as f64 > budget as f64 * (1.0 + GATE_BUDGET_TOL) {
                failures.push(format!(
                    "{factor}x: total {} exceeds budget {budget} by more than {:.0}%",
                    sm.total_bytes,
                    GATE_BUDGET_TOL * 100.0
                ));
            }
            if sm.utilization < GATE_UTILIZATION {
                failures.push(format!(
                    "{factor}x: utilization {:.3} below {GATE_UTILIZATION}",
                    sm.utilization
                ));
            }
            if sm.max_passes > GATE_MAX_PASSES {
                failures.push(format!(
                    "{factor}x: {} passes on some field (bound {GATE_MAX_PASSES})",
                    sm.max_passes
                ));
            }
            match &orc {
                Some(o) if sm.min_achieved_psnr < o.min_achieved - GATE_ORACLE_GAP_DB => {
                    failures.push(format!(
                        "{factor}x: min PSNR {:.2} trails the oracle {:.2} by more \
                         than {GATE_ORACLE_GAP_DB} dB",
                        sm.min_achieved_psnr, o.min_achieved
                    ));
                }
                None => failures.push(format!("{factor}x: oracle infeasible — budget too tight")),
                _ => {}
            }
        }

        let _ = write!(
            json,
            "{}\n    {{\"factor\": {factor}, \"budget_bytes\": {budget}, \
             \"total_bytes\": {}, \"utilization\": {:.4}, \
             \"min_assigned_psnr\": {:.3}, \"min_achieved_psnr\": {:.3}, \
             \"max_passes\": {}, \"total_passes\": {}, \"resolves\": {}, \
             \"quarantined\": {}, \"alloc_s\": {:.4}, \
             \"weighted_total_bytes\": {}, \"weighted_min_psnr\": {:.3}, \
             \"weighted_s\": {:.4},",
            if fi == 0 { "" } else { "," },
            sm.total_bytes,
            sm.utilization,
            sm.min_assigned_psnr,
            sm.min_achieved_psnr,
            sm.max_passes,
            sm.total_passes,
            run.resolves,
            sm.n_quarantined,
            alloc_s,
            wsm.total_bytes,
            wsm.min_achieved_psnr,
            weighted_s
        );
        match &orc {
            Some(o) => {
                let _ = write!(
                    json,
                    "\n     \"oracle_target_db\": {:.3}, \"oracle_min_psnr\": {:.3}, \
                     \"oracle_bytes\": {}, \"oracle_s\": {:.4},",
                    o.target, o.min_achieved, o.total, o.elapsed_s
                );
            }
            None => {
                let _ = write!(json, "\n     \"oracle_target_db\": null,");
            }
        }
        let _ = write!(json, "\n     \"fields\": [");
        for (i, r) in run.fields.iter().enumerate() {
            let s = &r.stat;
            let _ = write!(
                json,
                "{}\n      {{\"field\": \"{}\", \"assigned_psnr\": {:.2}, \
                 \"achieved_psnr\": {:.2}, \"bytes\": {}, \"raw_bytes\": {}, \
                 \"passes\": {}, \"quarantined\": {}}}",
                if i == 0 { "" } else { "," },
                s.field,
                s.assigned_psnr,
                s.achieved_psnr,
                s.achieved_bytes,
                s.raw_bytes,
                s.passes,
                s.quarantined
            );
        }
        let _ = write!(json, "\n     ]}}");
    }

    let _ = write!(
        json,
        "\n  ],\n  \"gates_passed\": {}\n}}\n",
        failures.is_empty()
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
