//! Regenerates **Figure 2** — achieved PSNR for *all 79 ATM fields* at
//! user-set PSNRs of 40, 80 and 120 dB, plus the "more than 90+% of fields
//! meet the demand" claim.
//!
//! ```text
//! cargo run -p fpsnr-bench --bin fig2            # default resolution
//! FPSNR_RES=small cargo run -p fpsnr-bench --bin fig2
//! ```

use datagen::DatasetId;
use fpsnr_bench::{dataset_fields, resolution_from_env, seed_from_env, threads_from_env};
use fpsnr_core::batch::run_batch_summary;
use fpsnr_core::fixed_psnr::FixedPsnrOptions;

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    let threads = threads_from_env();
    let fields = dataset_fields(DatasetId::Atm, res, seed);
    println!(
        "FIGURE 2: fixed-PSNR on all {} ATM fields ({:?}, seed {seed}, {threads} threads)",
        fields.len(),
        res
    );

    for (panel, target) in [("(a)", 40.0), ("(b)", 80.0), ("(c)", 120.0)] {
        let (outcomes, summary) = run_batch_summary(
            "ATM",
            &fields,
            target,
            &FixedPsnrOptions::default(),
            threads,
        );
        println!();
        println!(
            "--- panel {panel}: user-set PSNR = {target} dB (red dash line of the paper) ---"
        );
        // The paper plots a per-field series; print it four fields per row.
        for chunk in outcomes.chunks(4) {
            let row: Vec<String> = chunk
                .iter()
                .map(|o| format!("{:<10} {:>7.2}", o.field, o.achieved_psnr))
                .collect();
            println!("  {}", row.join(" | "));
        }
        let met = outcomes.iter().filter(|o| o.meets_target()).count();
        println!(
            "  meet-rate (achieved >= target): {met}/{} = {:.1}%   AVG {:.2}  STDEV {:.2}",
            outcomes.len(),
            summary.meet_rate * 100.0,
            summary.avg,
            summary.stdev
        );
        println!(
            "  paper claim at this panel: fields cluster on the target line; >90% meet it"
        );
    }
}
