//! Empirically verifies **Theorem 1** (prediction-based) and **Theorem 2**
//! (orthogonal-transform): the l2 distortion of the reconstructed data
//! equals the distortion the quantizer introduced in step 2.
//!
//! Two *independent* measurement paths per field:
//! - quantizer-side MSE from the probe APIs (`szlike::quantization_probe`,
//!   `fpsnr_transform::theorem2_probe`),
//! - data-side MSE from an actual compress → decompress → compare cycle.
//!
//! ```text
//! cargo run -p fpsnr-bench --bin theorem_check
//! ```

use datagen::DatasetId;
use fpsnr_bench::{dataset_fields, resolution_from_env, seed_from_env};
use fpsnr_metrics::psnr::mse_slices;
use fpsnr_metrics::Distortion;
use fpsnr_transform::codec::theorem2_probe;
use fpsnr_transform::TransformConfig;
use ndfield::Field;
use szlike::{quantization_probe, ErrorBound, SzConfig};

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    let ebrel = 1e-3;
    println!("THEOREM CHECK (eb_rel = {ebrel}, {res:?}, seed {seed})");
    println!();
    println!(
        "{:<10} {:<20} {:>14} {:>14} {:>10}",
        "dataset", "field", "quantizer MSE", "data MSE", "rel diff"
    );
    println!("{}", "-".repeat(74));

    let mut worst_t1 = 0.0f64;
    for id in DatasetId::ALL {
        let fields = dataset_fields(id, res, seed);
        // Three representative fields per data set keep the output readable.
        for (name, field) in fields.iter().take(3) {
            let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));
            let Ok((pe, pe_recon, _)) = quantization_probe(field, &cfg) else {
                println!("{:<10} {:<20} (degenerate field skipped)", id.name(), name);
                continue;
            };
            let quant_mse = mse_slices(&pe, &pe_recon);
            let bytes = szlike::compress(field, &cfg).expect("compress");
            let back: Field<f32> = szlike::decompress(&bytes).expect("decompress");
            let data_mse = Distortion::between(field, &back).mse;
            let rel = if quant_mse > 0.0 {
                (quant_mse - data_mse).abs() / quant_mse
            } else {
                0.0
            };
            worst_t1 = worst_t1.max(rel);
            println!(
                "{:<10} {:<20} {:>14.6e} {:>14.6e} {:>10.2e}",
                id.name(),
                name,
                quant_mse,
                data_mse,
                rel
            );
        }
    }
    println!();
    println!(
        "Theorem 1: worst relative difference {worst_t1:.2e} -> {}",
        if worst_t1 < 1e-6 { "HOLDS (exact up to f32 rounding)" } else { "HOLDS approximately" }
    );

    println!();
    println!("Theorem 2 (orthogonal transform, block-aligned fields):");
    println!(
        "{:<24} {:>14} {:>14} {:>10}",
        "field", "coeff MSE", "data MSE", "rel diff"
    );
    println!("{}", "-".repeat(66));
    let mut worst_t2 = 0.0f64;
    // Block-aligned synthetic fields (Theorem 2 is exact without padding).
    let cases: Vec<(&str, Field<f32>)> = vec![
        (
            "wave_2d_64x64",
            Field::from_fn_2d(64, 64, |i, j| {
                ((i as f32 * 0.2).sin() + (j as f32 * 0.17).cos()) * 8.0
            }),
        ),
        (
            "ramp_2d_128x128",
            Field::from_fn_2d(128, 128, |i, j| (i as f32 * 0.5 - j as f32 * 0.25) * 0.1),
        ),
        (
            "turb_3d_16x16x16",
            Field::from_fn_3d(16, 16, 16, |i, j, k| {
                ((i * 7 + j * 3 + k) as f32 * 0.31).sin() * 5.0
            }),
        ),
    ];
    for (name, field) in &cases {
        let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(ebrel));
        let (coeff_mse, data_mse, _) = theorem2_probe(field, &cfg).expect("probe");
        let rel = if coeff_mse > 0.0 {
            (coeff_mse - data_mse).abs() / coeff_mse
        } else {
            0.0
        };
        worst_t2 = worst_t2.max(rel);
        println!("{name:<24} {coeff_mse:>14.6e} {data_mse:>14.6e} {rel:>10.2e}");
    }
    println!();
    println!(
        "Theorem 2: worst relative difference {worst_t2:.2e} -> {}",
        if worst_t2 < 1e-9 { "HOLDS (orthonormal transform preserves l2)" } else { "CHECK" }
    );
}
