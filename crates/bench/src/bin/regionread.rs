//! Random-access region-read benchmark: how much decode work a region
//! read over a chunk-grid container saves versus a full-field decode.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin regionread
//! FPSNR_GRF_DIM=48 cargo run --release -p fpsnr-bench --bin regionread  # CI smoke
//! ```
//!
//! A 3-D Gaussian random field of `FPSNR_GRF_DIM`³ samples is compressed
//! into a v4 grid container (chunks of dim/8 per axis). The benchmark then
//! reads a deterministic set of 1/64-volume regions (dim/4 per axis) twice:
//!
//! - **cold** — fresh store per region, measuring blocks decoded per read.
//!   The gate: each 1/64-volume read must decode **< 1/16 of the blocks**
//!   (it actually touches ≤ 27 of 512 on aligned grids).
//! - **warm** — one shared store, repeating the same regions. The gate:
//!   the repeat pass decodes **zero** blocks.
//!
//! Every region is also verified bit-identical against slicing the full
//! decompress. Results go to `BENCH_regionread.json` (override with
//! `FPSNR_OUT`); the process exits nonzero if any gate fails, so CI can
//! run the binary directly.

use datagen::grf::grf_3d;
use ndfield::{Field, Shape};
use std::fmt::Write as _;
use std::ops::Range;
use std::time::Instant;
use szlike::{ErrorBound, Region, StoreOptions, SzConfig, SzStore};

/// xorshift64 — deterministic region placement.
fn next(h: &mut u64) -> u64 {
    *h ^= *h << 13;
    *h ^= *h >> 7;
    *h ^= *h << 17;
    *h
}

fn main() {
    let dim: usize = std::env::var("FPSNR_GRF_DIM")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let n_regions: usize = std::env::var("FPSNR_REGIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let out_path =
        std::env::var("FPSNR_OUT").unwrap_or_else(|_| "BENCH_regionread.json".to_string());
    // Chunk edge dim/8 → an 8³ = 512-block grid, so a dim/4-edge region
    // covers at most 27 blocks ≈ 1/19 of the directory, inside the 1/16
    // gate. (Chunks of dim/4 would cover up to 8/64 = 1/8 and fail it.)
    let chunk = (dim / 8).max(4);
    let region_edge = (dim / 4).max(1);

    let data: Vec<f32> = grf_3d(dim, dim, dim, 3.0, 20180713)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let field = Field::from_vec(Shape::D3(dim, dim, dim), data);
    let raw_bytes = field.len() * 4;
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(1e-4))
        .with_auto_intervals(true)
        .with_chunk_dims([chunk; 3]);
    let bytes = szlike::compress(&field, &cfg).unwrap();

    let t0 = Instant::now();
    let full: Field<f32> = szlike::decompress(&bytes).unwrap();
    let full_decode_s = t0.elapsed().as_secs_f64();

    // Deterministic 1/64-volume regions.
    let mut h = 0x2545F4914F6CDD1Du64;
    let regions: Vec<[Range<usize>; 3]> = (0..n_regions)
        .map(|_| {
            std::array::from_fn(|_| {
                let start = (next(&mut h) % (dim - region_edge + 1) as u64) as usize;
                start..start + region_edge
            })
        })
        .collect();

    let probe: SzStore<f32> = SzStore::open(&bytes).unwrap();
    let n_blocks = probe.grid().n_blocks();
    let block_gate = n_blocks / 16;
    drop(probe);

    // Cold pass: fresh store per region, so every read starts uncached.
    let mut gate_ok = true;
    let mut cold_lat = Vec::with_capacity(n_regions);
    let mut cold_blocks_total = 0u64;
    let mut cold_bytes_decoded = 0u64;
    let mut bytes_served = 0u64;
    let mut max_cold_blocks = 0u64;
    for axes in &regions {
        let store: SzStore<f32> = SzStore::open(&bytes).unwrap();
        let region = Region::new(axes).unwrap();
        let t0 = Instant::now();
        let got = store.read_region(&region).unwrap();
        cold_lat.push(t0.elapsed().as_secs_f64());
        let s = store.stats();
        cold_blocks_total += s.blocks_decoded;
        cold_bytes_decoded += s.bytes_decoded;
        bytes_served += s.bytes_served;
        max_cold_blocks = max_cold_blocks.max(s.blocks_decoded);
        if s.blocks_decoded as usize >= block_gate {
            eprintln!(
                "GATE FAIL: region {axes:?} decoded {} of {n_blocks} blocks (gate < {block_gate})",
                s.blocks_decoded
            );
            gate_ok = false;
        }
        // Bit-identity against the full decode.
        let mut k = 0;
        for i in axes[0].clone() {
            for j in axes[1].clone() {
                for l in axes[2].clone() {
                    let want = full.as_slice()[(i * dim + j) * dim + l];
                    assert_eq!(
                        got.as_slice()[k].to_bits(),
                        want.to_bits(),
                        "region read diverged from full decode at ({i},{j},{l})"
                    );
                    k += 1;
                }
            }
        }
    }

    // Warm pass: one store, every region twice — the repeat must be free.
    let store = SzStore::<f32>::open_with(bytes.clone(), StoreOptions::default()).unwrap();
    for axes in &regions {
        store.read_region(&Region::new(axes).unwrap()).unwrap();
    }
    let decoded_after_first = store.stats().blocks_decoded;
    let mut warm_lat = Vec::with_capacity(n_regions);
    for axes in &regions {
        let t0 = Instant::now();
        store.read_region(&Region::new(axes).unwrap()).unwrap();
        warm_lat.push(t0.elapsed().as_secs_f64());
    }
    let warm_stats = store.stats();
    let warm_decodes = warm_stats.blocks_decoded - decoded_after_first;
    if warm_decodes != 0 {
        eprintln!("GATE FAIL: warm repeat pass decoded {warm_decodes} blocks (want 0)");
        gate_ok = false;
    }

    let pct = |lat: &mut Vec<f64>, p: f64| -> f64 {
        lat.sort_by(f64::total_cmp);
        lat[((lat.len() as f64 - 1.0) * p).round() as usize]
    };
    let cold_p50 = pct(&mut cold_lat, 0.50);
    let cold_p99 = pct(&mut cold_lat, 0.99);
    let warm_p50 = pct(&mut warm_lat, 0.50);
    let warm_p99 = pct(&mut warm_lat, 0.99);
    let decode_ratio = cold_bytes_decoded as f64 / bytes_served.max(1) as f64;
    let blocks_frac = cold_blocks_total as f64 / (n_regions * n_blocks) as f64;

    println!(
        "GRF {dim}^3, {chunk}^3 chunks -> {n_blocks} blocks, {n_regions} regions of {region_edge}^3\n\
         full decode          {:.1} ms\n\
         cold: avg {:.1} of {n_blocks} blocks/read (max {max_cold_blocks}, gate < {block_gate}), \
         {decode_ratio:.3} bytes decoded/served, p50 {:.3} ms, p99 {:.3} ms\n\
         warm: {warm_decodes} decodes over the repeat pass, p50 {:.3} ms, p99 {:.3} ms\n\
         gates {}",
        full_decode_s * 1e3,
        cold_blocks_total as f64 / n_regions as f64,
        cold_p50 * 1e3,
        cold_p99 * 1e3,
        warm_p50 * 1e3,
        warm_p99 * 1e3,
        if gate_ok { "OK" } else { "FAILED" }
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"regionread\",\n  \"grf_dim\": {dim},\n  \"raw_bytes\": {raw_bytes},\n  \
         \"chunk\": {chunk},\n  \"n_blocks\": {n_blocks},\n  \"n_regions\": {n_regions},\n  \
         \"region_edge\": {region_edge},\n  \"full_decode_s\": {full_decode_s:.6},\n  \
         \"cold\": {{\"blocks_per_read\": {:.3}, \"max_blocks\": {max_cold_blocks}, \
         \"block_gate\": {block_gate}, \"bytes_decoded\": {cold_bytes_decoded}, \
         \"bytes_served\": {bytes_served}, \"decode_amplification\": {decode_ratio:.4}, \
         \"blocks_fraction\": {blocks_frac:.4}, \"p50_s\": {cold_p50:.6}, \"p99_s\": {cold_p99:.6}}},\n  \
         \"warm\": {{\"repeat_decodes\": {warm_decodes}, \"hits\": {}, \"p50_s\": {warm_p50:.6}, \
         \"p99_s\": {warm_p99:.6}}},\n  \"gates_ok\": {gate_ok}\n}}\n",
        cold_blocks_total as f64 / n_regions as f64,
        warm_stats.hits,
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
    if !gate_ok {
        std::process::exit(1);
    }
}
