//! Fixed-ratio mode accuracy and cost: achieved ratio vs target over the
//! registry data sets, with the pass economy (how many compressions the
//! ratio–quality model actually spent) read back from the obs counters.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin fixed_ratio
//! FPSNR_RES=small FPSNR_RATIO_BLOCKED=1 cargo run --release -p fpsnr-bench --bin fixed_ratio
//! ```

use datagen::DatasetId;
use fpsnr_bench::{dataset_fields, resolution_from_env, seed_from_env};
use fpsnr_core::fixed_ratio::{compress_fixed_ratio, FixedRatioOptions};

const TARGETS: [f64; 4] = [4.0, 8.0, 16.0, 32.0];

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    let blocked = std::env::var_os("FPSNR_RATIO_BLOCKED").is_some();
    println!(
        "FIXED-RATIO ACCURACY ({res:?}, seed {seed}, {} path)",
        if blocked { "blocked" } else { "monolithic" }
    );
    println!();
    println!(
        "{:>10} | {:>8} | {:>12} {:>9} {:>10} | {:>5} {:>5} {:>5}",
        "dataset", "target", "mean ratio", "in band", "worst off", "1p", "2p", "3p"
    );
    println!("{}", "-".repeat(80));

    fpsnr_obs::reset();
    fpsnr_obs::enable();
    let mut grand_passes = [0usize; 3];
    for &id in &DatasetId::ALL {
        let fields = dataset_fields(id, res, seed);
        for &target in &TARGETS {
            let mut ratios = Vec::new();
            let mut hits = 0usize;
            let mut worst = 1.0f64;
            let mut passes = [0usize; 3];
            for (name, field) in &fields {
                let opts = FixedRatioOptions {
                    threads: if blocked { 2 } else { 1 },
                    ..FixedRatioOptions::new(target)
                };
                let run = compress_fixed_ratio(field, &opts)
                    .unwrap_or_else(|e| panic!("{}/{name} @ {target}x: {e}", id.name()));
                ratios.push(run.achieved_ratio);
                hits += usize::from(run.within_tolerance);
                worst = worst.max((run.achieved_ratio / target).max(target / run.achieved_ratio));
                passes[run.passes.min(3) - 1] += 1;
                grand_passes[run.passes.min(3) - 1] += 1;
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
            println!(
                "{:>10} | {target:>7.0}x | {mean:>11.2}x {:>6}/{:<2} {worst:>9.2}x | {:>5} {:>5} {:>5}",
                id.name(),
                hits,
                ratios.len(),
                passes[0],
                passes[1],
                passes[2],
            );
        }
    }
    fpsnr_obs::disable();
    let report = fpsnr_obs::snapshot();
    println!();
    let total: usize = grand_passes.iter().sum();
    println!(
        "pass economy: {} requests -> {} one-shot ({:.0}%), {} two-pass, {} three-pass",
        total,
        grand_passes[0],
        100.0 * grand_passes[0] as f64 / total.max(1) as f64,
        grand_passes[1],
        grand_passes[2],
    );
    println!(
        "obs counters: {} compressions + {} pilot walks for {} requests",
        report.counter("fratio.compress_passes").unwrap_or(0),
        report.counter("fratio.pilot_passes").unwrap_or(0),
        total,
    );
    if let (Some(pilot), Some(all)) = (
        report.span("fratio.compress/fratio.pilot"),
        report.span("fratio.compress"),
    ) {
        println!(
            "pilot cost share: {:.1}% of total fixed-ratio wall time",
            100.0 * pilot.total_ns as f64 / (all.total_ns as f64).max(1.0),
        );
    }
}
