//! Regenerates **Figure 1** — the distribution of SZ prediction errors on
//! one ATM field, with the uniform quantization bins overlaid.
//!
//! The paper plots the probability of each prediction-error magnitude and
//! marks the uniform bins `p1, p2, …` of width `δ = 2·eb`. This binary
//! prints the same series: an ASCII rendering for eyeballing plus the raw
//! `(midpoint, fraction)` rows, with the quantization-bin edges marked.
//!
//! ```text
//! cargo run -p fpsnr-bench --bin fig1
//! ```

use datagen::atm;
use fpsnr_bench::{resolution_from_env, seed_from_env};
use fpsnr_metrics::Histogram;
use szlike::{prediction_errors, ErrorBound, SzConfig};

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    // The paper uses "one ATM data field"; CLDHGH is its example variable.
    let nf = atm::field_by_name("CLDHGH", res, seed).expect("CLDHGH exists");
    // Same setting as the paper's illustration: a value-range-relative
    // bound typical of medium quality.
    let ebrel = 1e-3;
    let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));
    let (errors, eb_abs) = prediction_errors(&nf.data, &cfg).expect("probe");
    let delta = 2.0 * eb_abs;

    // Window the histogram on ±8 quantization bins around zero, like the
    // paper's x-axis.
    let span = 8.0 * delta;
    let hist = Histogram::new(errors.iter().copied(), -span, span, 64);

    println!("FIGURE 1: prediction-error distribution with uniform quantization");
    println!("field CLDHGH ({}), eb_rel {ebrel}, eb_abs {eb_abs:.4e}, bin size 2eb = {delta:.4e}", nf.data.shape());
    println!(
        "samples {} | in-window {} | outside window {}",
        errors.len(),
        hist.total(),
        hist.clipped()
    );
    println!();

    let max_frac = (0..hist.bins()).map(|i| hist.fraction(i)).fold(0.0, f64::max);
    println!("{:>12}  {:>9}  distribution (quantization-bin edges marked '|')", "err/delta", "fraction");
    for i in 0..hist.bins() {
        let mid = hist.midpoint(i);
        let frac = hist.fraction(i);
        let bar_len = if max_frac > 0.0 {
            (frac / max_frac * 56.0).round() as usize
        } else {
            0
        };
        // Mark histogram rows that straddle a quantization bin edge.
        let lo = mid - hist.bin_width() / 2.0;
        let hi = mid + hist.bin_width() / 2.0;
        let crosses_edge = ((lo / delta - 0.5).ceil() - (hi / delta - 0.5).ceil()).abs() > 0.0;
        let marker = if crosses_edge { '|' } else { ' ' };
        println!(
            "{:>12.3} {marker} {:>8.4}  {}",
            mid / delta,
            frac,
            "#".repeat(bar_len)
        );
    }

    // The paper's point: the distribution is peaked and symmetric. Report
    // the two summary statistics that justify the Eq. 6 simplification.
    let n = errors.len() as f64;
    let mean = errors.iter().sum::<f64>() / n;
    let in_center = errors.iter().filter(|e| e.abs() <= delta / 2.0).count();
    println!();
    println!("symmetry check: mean prediction error {mean:.3e} (≈0 for symmetric P)");
    println!(
        "peakedness: {:.1}% of errors fall in the central bin p1 (|e| <= delta/2)",
        100.0 * in_center as f64 / n
    );
    println!(
        "Eq. 6 consequence: with uniform bins the PSNR estimate depends only on\n\
         delta and the value range, not on this distribution's exact shape."
    );
}
