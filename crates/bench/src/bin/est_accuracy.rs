//! Supporting analysis for §III–IV: how accurate is the Eq. 7 PSNR
//! estimate across bound magnitudes, and does the error grow with bin size
//! (the paper's explanation for the low-target overshoot)?
//!
//! For each data set and each target, compares:
//! - Eq. 7's *predicted* PSNR for the derived bound, and
//! - the *measured* PSNR after an actual compress/decompress cycle.
//!
//! ```text
//! cargo run -p fpsnr-bench --bin est_accuracy
//! ```

use datagen::DatasetId;
use fpsnr_bench::{dataset_fields, resolution_from_env, seed_from_env, TABLE2_TARGETS};
use fpsnr_core::{ebrel_for_psnr, psnr_sz_estimate};
use fpsnr_metrics::Distortion;
use ndfield::Field;
use szlike::{ErrorBound, SzConfig};

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    println!("ESTIMATION ACCURACY: Eq. 7 predicted vs measured PSNR ({res:?})");
    println!();

    for id in DatasetId::ALL {
        let fields = dataset_fields(id, res, seed);
        println!("--- {} ({} fields, first 2 shown per target) ---", id.name(), fields.len());
        println!(
            "{:>8} {:<20} {:>10} {:>10} {:>9} {:>12}",
            "target", "field", "predicted", "measured", "dev dB", "bins used"
        );
        for &target in &TABLE2_TARGETS {
            let ebrel = ebrel_for_psnr(target);
            for (name, field) in fields.iter().take(2) {
                let vr = field.value_range();
                let predicted = psnr_sz_estimate(vr, ebrel * vr);
                let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));
                let Ok(bytes) = szlike::compress(field, &cfg) else {
                    continue;
                };
                let back: Field<f32> = szlike::decompress(&bytes).expect("decompress");
                let measured = Distortion::between(field, &back).psnr();
                // Bins the value range spans at this bound: vr / (2 eb).
                let spanned = (1.0 / (2.0 * ebrel)).round() as u64;
                println!(
                    "{:>8.0} {:<20} {:>10.2} {:>10.2} {:>9.2} {:>12}",
                    target,
                    name,
                    predicted,
                    measured,
                    measured - predicted,
                    spanned
                );
            }
        }
        println!();
    }
    println!(
        "Expected shape (paper §V): deviation positive (measured >= predicted) and\n\
         shrinking as the target grows — the midpoint-uniform model is pessimistic\n\
         when bins are wide because real prediction errors peak inside the central\n\
         bin, and becomes exact as bins shrink."
    );
}
