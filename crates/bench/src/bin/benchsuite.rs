//! One-shot perf suite: runs every machine-readable bench binary and
//! merges their JSON outputs into a single `BENCH_summary.json`
//! (override with `FPSNR_OUT`), so the perf trajectory is comparable
//! across PRs from one artifact.
//!
//! Each member bench runs as a subprocess (the sibling binary next to
//! this one) with `FPSNR_OUT` pointed at a scratch file; its JSON is
//! embedded verbatim under `benches.<name>`. Member env knobs
//! (`FPSNR_REPS`, `FPSNR_GRF_DIM`, …) pass through unchanged. A member
//! that fails records an `"error"` object instead of aborting the suite
//! — a perf artifact with one hole beats no artifact.
//!
//! The active SIMD dispatch level is recorded at the top level: perf
//! numbers are meaningless across PRs without knowing which kernel tier
//! produced them.

use losslesskit::simd;
use std::fmt::Write as _;
use std::path::Path;
use std::process::Command;

/// Member benches: `(key, binary, default FPSNR_REPS if unset)`.
const MEMBERS: [(&str, &str, &str); 5] = [
    ("hotloop", "hotloop", "5"),
    ("bakeoff", "bakeoff", "3"),
    ("regionread", "regionread", "3"),
    ("predictors", "predictors", "3"),
    ("alloc", "snapshot_alloc", "3"),
];

fn run_member(bin_dir: &Path, key: &str, bin: &str, default_reps: &str) -> String {
    let exe = bin_dir.join(bin);
    if !exe.exists() {
        return format!("{{\"error\": \"missing binary {bin}\"}}");
    }
    let scratch = std::env::temp_dir().join(format!("fpsnr_benchsuite_{key}.json"));
    let _ = std::fs::remove_file(&scratch);
    let mut cmd = Command::new(&exe);
    cmd.env("FPSNR_OUT", &scratch);
    if std::env::var("FPSNR_REPS").is_err() {
        cmd.env("FPSNR_REPS", default_reps);
    }
    let status = match cmd.status() {
        Ok(s) => s,
        Err(e) => return format!("{{\"error\": \"spawn {bin}: {e}\"}}"),
    };
    if !status.success() {
        return format!("{{\"error\": \"{bin} exited with {status}\"}}");
    }
    match std::fs::read_to_string(&scratch) {
        Ok(json) => json.trim_end().to_string(),
        Err(e) => format!("{{\"error\": \"read {bin} output: {e}\"}}"),
    }
}

fn main() {
    let out_path =
        std::env::var("FPSNR_OUT").unwrap_or_else(|_| "BENCH_summary.json".to_string());
    let bin_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("binary has a parent dir")
        .to_path_buf();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"suite\",").unwrap();
    writeln!(json, "  \"simd_detected\": \"{}\",", simd::detect().name()).unwrap();
    writeln!(json, "  \"simd_active\": \"{}\",", simd::active().name()).unwrap();
    writeln!(json, "  \"benches\": {{").unwrap();
    for (i, (key, bin, reps)) in MEMBERS.iter().enumerate() {
        eprintln!("benchsuite: running {bin} …");
        let body = run_member(&bin_dir, key, bin, reps);
        let comma = if i + 1 < MEMBERS.len() { "," } else { "" };
        writeln!(json, "  \"{key}\": {body}{comma}").unwrap();
    }
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write summary");
    println!("wrote {out_path}");
}
