//! Per-stage pipeline profile: compresses one field from each synthetic
//! data set with `fpsnr-obs` armed and prints where the time went —
//! prediction, quantization, entropy coding, lossless, plus the fixed-PSNR
//! bookkeeping around them.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin stage_profile
//! FPSNR_PROFILE=json cargo run --release -p fpsnr-bench --bin stage_profile > BENCH_stage_profile.json
//! ```
//!
//! Output is the `fpsnr-obs` report: pretty table by default, the flat
//! JSON document when `FPSNR_PROFILE=json` (machine-readable; the same
//! shape the CLI's `--profile json` emits).

use datagen::DatasetId;
use fpsnr_bench::{dataset_fields, resolution_from_env, seed_from_env};
use fpsnr_core::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    let target = std::env::var("FPSNR_PSNR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(80.0);
    let json = std::env::var("FPSNR_PROFILE").as_deref() == Ok("json");

    fpsnr_obs::enable();
    for id in DatasetId::ALL {
        let fields = dataset_fields(id, res, seed);
        for (name, field) in fields.iter().take(1) {
            compress_fixed_psnr(field, target, &FixedPsnrOptions::default())
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", id.name()));
        }
    }
    fpsnr_obs::disable();

    let report = fpsnr_obs::snapshot();
    if json {
        println!("{}", report.to_json());
    } else {
        println!(
            "STAGE PROFILE ({res:?}, target {target} dB, 1 field per data set)"
        );
        println!();
        print!("{}", report.render_pretty());
    }
}
