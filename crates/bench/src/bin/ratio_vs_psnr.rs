//! Rate–distortion context: compression ratio and bit rate as functions of
//! the user-set PSNR, per data set — the trade-off a user of the
//! fixed-PSNR mode is navigating.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin ratio_vs_psnr
//! ```

use datagen::DatasetId;
use fpsnr_bench::{
    dataset_fields, resolution_from_env, seed_from_env, threads_from_env, TABLE2_TARGETS,
};
use fpsnr_core::batch::run_batch;
use fpsnr_core::fixed_psnr::FixedPsnrOptions;

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    let threads = threads_from_env();
    println!("RATE vs TARGET PSNR ({res:?}, seed {seed})");
    println!();
    println!(
        "{:>8} | {:>10} {:>9} | {:>10} {:>9} | {:>10} {:>9}",
        "target", "NYX ratio", "bits/val", "ATM ratio", "bits/val", "Hur ratio", "bits/val"
    );
    println!("{}", "-".repeat(72));

    let datasets: Vec<_> = DatasetId::ALL
        .iter()
        .map(|&id| (id, dataset_fields(id, res, seed)))
        .collect();
    let mut prev: Option<Vec<f64>> = None;
    let mut monotone = true;
    for &target in &TABLE2_TARGETS {
        let mut row = Vec::new();
        print!("{target:>8.0}");
        for (_, fields) in &datasets {
            let outcomes = run_batch(fields, target, &FixedPsnrOptions::default(), threads);
            // Aggregate ratio over the snapshot: harmonic-style combine via
            // total bytes would need sizes; mean of per-field ratios is the
            // headline number papers quote.
            let mean_ratio: f64 = outcomes.iter().map(|o| o.ratio).sum::<f64>()
                / outcomes.len().max(1) as f64;
            let bits = 32.0 / mean_ratio;
            row.push(mean_ratio);
            print!(" | {mean_ratio:>10.2} {bits:>9.3}");
        }
        println!();
        if let Some(p) = &prev {
            if row.iter().zip(p).any(|(now, before)| now > before) {
                monotone = false;
            }
        }
        prev = Some(row);
    }
    println!();
    println!(
        "shape check: ratio decreases monotonically as the PSNR demand grows -> {}",
        if monotone { "HOLDS" } else { "VIOLATED" }
    );
}
