//! Ablation study over the design choices DESIGN.md calls out: for a fixed
//! distortion target, how do quantization-bin policy, entropy coder,
//! predictor order, lossless backend, transform basis and block size move
//! the compression ratio (and the achieved PSNR, which must stay pinned —
//! all of these knobs are distortion-neutral except the quantizer itself)?
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin ablation
//! ```

use datagen::{DatasetId, Resolution};
use fpsnr_bench::{dataset_fields, seed_from_env};
use fpsnr_metrics::Distortion;
use fpsnr_transform::{transform_compress, transform_decompress, BasisKind, TransformConfig};
use ndfield::Field;
use szlike::{EntropyCoder, ErrorBound, EscapeCoding, LosslessBackend, PredictorKind, SzConfig};

struct Row {
    name: &'static str,
    bytes: usize,
    psnr: f64,
}

fn run_sz(field: &Field<f32>, name: &'static str, cfg: &SzConfig) -> Row {
    let bytes = szlike::compress(field, cfg).expect("compress");
    let back: Field<f32> = szlike::decompress(&bytes).expect("decompress");
    Row {
        name,
        bytes: bytes.len(),
        psnr: Distortion::between(field, &back).psnr(),
    }
}

fn run_xfm(field: &Field<f32>, name: &'static str, cfg: &TransformConfig) -> Row {
    let bytes = transform_compress(field, cfg).expect("compress");
    let back: Field<f32> = transform_decompress(&bytes).expect("decompress");
    Row {
        name,
        bytes: bytes.len(),
        psnr: Distortion::between(field, &back).psnr(),
    }
}

fn print_rows(field: &Field<f32>, rows: &[Row]) {
    let raw = field.len() * 4;
    for r in rows {
        println!(
            "  {:<34} {:>9} B  ratio {:>6.2}  PSNR {:>7.2} dB",
            r.name,
            r.bytes,
            raw as f64 / r.bytes as f64,
            r.psnr
        );
    }
}

fn main() {
    let seed = seed_from_env();
    // One representative smooth and one spiky field.
    let atm = dataset_fields(DatasetId::Atm, Resolution::Default, seed);
    let cases: Vec<(&str, &Field<f32>)> = vec![
        ("TS (smooth 2-D)", &atm.iter().find(|f| f.0 == "TS").unwrap().1),
        ("PRECT (sparse 2-D)", &atm.iter().find(|f| f.0 == "PRECT").unwrap().1),
    ];
    let ebrel = 1e-3;

    for (label, field) in cases {
        println!("=== {label}, eb_rel {ebrel} ===");
        let base = SzConfig::new(ErrorBound::ValueRangeRel(ebrel));

        println!("quantization-bin policy:");
        print_rows(
            field,
            &[
                run_sz(field, "fixed 65536 bins (cap)", &base),
                run_sz(field, "fixed 256 bins", &base.with_quant_bins(256)),
                run_sz(field, "adaptive (predThreshold 0.97)", &base.with_auto_intervals(true)),
            ],
        );

        println!("entropy coder:");
        print_rows(
            field,
            &[
                run_sz(field, "canonical Huffman", &base.with_auto_intervals(true)),
                run_sz(
                    field,
                    "adaptive range coder",
                    &base.with_auto_intervals(true).with_entropy(EntropyCoder::Range),
                ),
            ],
        );

        println!("predictor:");
        print_rows(
            field,
            &[
                run_sz(field, "Lorenzo order 1 (SZ 1.4)", &base),
                run_sz(field, "Lorenzo order 2", &base.with_predictor(PredictorKind::Lorenzo2)),
                run_sz(field, "auto-selected", &base.with_predictor(PredictorKind::Auto)),
            ],
        );

        println!("escape coding (forced-escape setting: 16 bins):");
        let tiny = base.with_quant_bins(16);
        print_rows(
            field,
            &[
                run_sz(field, "exact IEEE escapes", &tiny),
                run_sz(field, "SZ 1.4 truncated escapes", &tiny.with_escape(EscapeCoding::Truncated)),
            ],
        );

        println!("lossless backend:");
        print_rows(
            field,
            &[
                run_sz(field, "LZ77+Huffman (gzip stand-in)", &base),
                run_sz(field, "none", &base.with_lossless(LosslessBackend::None)),
            ],
        );

        println!("transform codec (same bound):");
        let xbase = TransformConfig::new(ErrorBound::ValueRangeRel(ebrel));
        print_rows(
            field,
            &[
                run_xfm(field, "DCT-II, 4-blocks", &xbase),
                run_xfm(field, "DCT-II, 8-blocks", &xbase.with_block(8)),
                run_xfm(field, "Haar, 4-blocks", &xbase.with_basis(BasisKind::Haar)),
            ],
        );
        println!();
    }
    println!(
        "reading guide: the PSNR column must stay (approximately) pinned across all\n\
         rows of a group except the quantizer's own bin-policy group — every other\n\
         stage is lossless, so it may only move the ratio (Theorem 1 in action)."
    );
}
