//! The error-control design space of §II-B, measured: what each "fixed-X"
//! mode actually pins down and what it lets float.
//!
//! - **fixed-accuracy** (SZ abs / ZFP accuracy): pointwise error exact,
//!   rate and PSNR float;
//! - **fixed-rate** (ZFP, embedded coding): compressed size exact, PSNR
//!   and pointwise error float;
//! - **fixed-precision** (ZFP): kept bit planes exact, everything else
//!   floats;
//! - **fixed-PSNR** (the paper): PSNR exact (±model error), rate floats.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin mode_space
//! ```

use datagen::{DatasetId, Resolution};
use fpsnr_bench::{dataset_fields, seed_from_env};
use fpsnr_core::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
use fpsnr_metrics::{Distortion, PointwiseError};
use fpsnr_transform::{embedded_compress, embedded_decompress, EmbeddedConfig};
use ndfield::Field;
use szlike::{ErrorBound, SzConfig};

fn measure(field: &Field<f32>, back: &Field<f32>, bytes: usize) -> (f64, f64, f64) {
    let d = Distortion::between(field, back);
    let p = PointwiseError::between(field, back);
    (
        field.len() as f64 * 4.0 / bytes as f64,
        d.psnr(),
        p.max_range_rel,
    )
}

fn main() {
    let seed = seed_from_env();
    let atm = dataset_fields(DatasetId::Atm, Resolution::Default, seed);
    let field = &atm.iter().find(|f| f.0 == "TS").unwrap().1;
    println!("MODE SPACE on ATM/TS ({}):", field.shape());
    println!(
        "{:<34} {:>8} {:>9} {:>12}",
        "mode", "ratio", "PSNR dB", "max rel err"
    );
    println!("{}", "-".repeat(68));

    // fixed-accuracy sweep: error bound pinned, rate/PSNR float.
    for ebrel in [1e-2, 1e-3, 1e-4] {
        let cfg = SzConfig::new(ErrorBound::ValueRangeRel(ebrel)).with_auto_intervals(true);
        let bytes = szlike::compress(field, &cfg).expect("compress");
        let back: Field<f32> = szlike::decompress(&bytes).expect("decompress");
        let (ratio, psnr, maxrel) = measure(field, &back, bytes.len());
        println!(
            "{:<34} {ratio:>8.2} {psnr:>9.2} {maxrel:>12.3e}  <- bound pinned",
            format!("fixed-accuracy eb_rel={ebrel:.0e}")
        );
    }

    // fixed-rate sweep: size pinned exactly, PSNR floats.
    for bpv in [2.0f64, 4.0, 8.0] {
        let cfg = EmbeddedConfig::fixed_rate(bpv);
        let bytes = embedded_compress(field, &cfg).expect("compress");
        let back: Field<f32> = embedded_decompress(&bytes).expect("decompress");
        let (ratio, psnr, maxrel) = measure(field, &back, bytes.len());
        println!(
            "{:<34} {ratio:>8.2} {psnr:>9.2} {maxrel:>12.3e}  <- size pinned ({:.2} bits/val)",
            format!("fixed-rate {bpv} bits/value"),
            bytes.len() as f64 * 8.0 / field.len() as f64
        );
    }

    // fixed-precision sweep.
    for planes in [8u32, 16, 24] {
        let cfg = EmbeddedConfig::fixed_precision(planes);
        let bytes = embedded_compress(field, &cfg).expect("compress");
        let back: Field<f32> = embedded_decompress(&bytes).expect("decompress");
        let (ratio, psnr, maxrel) = measure(field, &back, bytes.len());
        println!(
            "{:<34} {ratio:>8.2} {psnr:>9.2} {maxrel:>12.3e}  <- planes pinned",
            format!("fixed-precision {planes} planes")
        );
    }

    // fixed-PSNR sweep: PSNR pinned, rate floats.
    for target in [40.0f64, 60.0, 80.0] {
        let run = compress_fixed_psnr(field, target, &FixedPsnrOptions::default())
            .expect("compress");
        let back: Field<f32> = szlike::decompress(&run.bytes).expect("decompress");
        let (ratio, psnr, maxrel) = measure(field, &back, run.bytes.len());
        println!(
            "{:<34} {ratio:>8.2} {psnr:>9.2} {maxrel:>12.3e}  <- PSNR pinned (target {target})",
            format!("fixed-PSNR {target} dB (paper)")
        );
    }
    println!(
        "\nthe paper's claim in one table: before fixed-PSNR, pinning the column users\n\
         actually care about (PSNR) required iterating the fixed-accuracy rows."
    );
}
