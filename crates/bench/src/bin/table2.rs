//! Regenerates **Table II** — AVG/STDEV of achieved PSNR on the NYX, ATM
//! and Hurricane data sets for user-set PSNRs 20…120 dB — side by side with
//! the paper's reported values.
//!
//! ```text
//! cargo run --release -p fpsnr-bench --bin table2
//! FPSNR_RES=small cargo run -p fpsnr-bench --bin table2   # quick pass
//! ```

use datagen::DatasetId;
use fpsnr_bench::{
    dataset_fields, resolution_from_env, seed_from_env, threads_from_env, PAPER_TABLE2,
    TABLE2_TARGETS,
};
use fpsnr_core::batch::run_batch_summary;
use fpsnr_core::fixed_psnr::FixedPsnrOptions;
use fpsnr_metrics::summary::DatasetSummary;

fn main() {
    let res = resolution_from_env();
    let seed = seed_from_env();
    let threads = threads_from_env();
    let opts = FixedPsnrOptions::default();

    println!(
        "TABLE II: fixed-PSNR accuracy on NYX / ATM / Hurricane ({res:?}, seed {seed})"
    );
    println!();
    let datasets: Vec<(DatasetId, Vec<(String, ndfield::Field<f32>)>)> = DatasetId::ALL
        .iter()
        .map(|&id| (id, dataset_fields(id, res, seed)))
        .collect();

    println!(
        "{:>8} | {:^21} | {:^21} | {:^21}",
        "User-set", "NYX", "ATM", "Hurricane"
    );
    println!(
        "{:>8} | {:>6} {:>6} {:>7} | {:>6} {:>6} {:>7} | {:>6} {:>6} {:>7}",
        "PSNR", "AVG", "STDEV", "meet%", "AVG", "STDEV", "meet%", "AVG", "STDEV", "meet%"
    );
    println!("{}", "-".repeat(84));

    let mut all_rows: Vec<(f64, Vec<DatasetSummary>)> = Vec::new();
    for &target in &TABLE2_TARGETS {
        let mut row: Vec<DatasetSummary> = Vec::new();
        for (id, fields) in &datasets {
            let (_, summary) = run_batch_summary(id.name(), fields, target, &opts, threads);
            row.push(summary);
        }
        print!("{target:>8.0}");
        for s in &row {
            print!(
                " | {:>6.1} {:>6.2} {:>6.1}%",
                s.avg,
                s.stdev,
                s.meet_rate * 100.0
            );
        }
        println!();
        all_rows.push((target, row));
    }

    println!();
    println!("Paper-reported Table II for reference:");
    println!(
        "{:>8} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "PSNR", "NYX", "", "ATM", "", "Hurr", ""
    );
    for (target, cols) in PAPER_TABLE2 {
        print!("{target:>8.0}");
        for (avg, stdev) in cols {
            print!(" | {avg:>6.1} {stdev:>6.2}");
        }
        println!();
    }

    println!();
    println!("Shape checks (paper §V):");
    let dev_at = |rows: &[(f64, Vec<DatasetSummary>)], t: f64| -> f64 {
        rows.iter()
            .find(|(target, _)| *target == t)
            .map(|(_, row)| {
                row.iter().map(|s| (s.avg - t).abs()).sum::<f64>() / row.len() as f64
            })
            .unwrap_or(f64::NAN)
    };
    let low = dev_at(&all_rows, 20.0);
    let high = dev_at(&all_rows, 120.0);
    println!(
        "  1. average |deviation| at 20 dB = {low:.2} dB vs at 120 dB = {high:.2} dB \
         (paper: deviation shrinks as the target grows) -> {}",
        if high < low { "HOLDS" } else { "VIOLATED" }
    );
    let within = all_rows.iter().filter(|(t, _)| *t >= 40.0).all(|(t, row)| {
        row.iter().all(|s| (s.avg - t).abs() <= 6.0)
    });
    println!(
        "  2. every AVG within the paper's 0.1-5.0 dB band at 40+ dB targets \
         (6 dB slack) -> {}",
        if within { "HOLDS" } else { "VIOLATED" }
    );
    if let Some((_, row20)) = all_rows.iter().find(|(t, _)| *t == 20.0) {
        let devs: Vec<String> = row20.iter().map(|s| format!("{:+.1}", s.avg - 20.0)).collect();
        println!(
            "     (20 dB row overshoots by {devs:?} dB — same direction as the paper's \
             +4.3/+1.9/+5.0, amplified by the scaled grids; see EXPERIMENTS.md)"
        );
    }
    // The paper's >90% claim is specifically about the ATM fields at the
    // Fig. 2 targets (40/80/120 dB), not all data sets at all targets.
    let atm_meets = all_rows
        .iter()
        .filter(|(t, _)| [40.0, 80.0, 120.0].contains(t))
        .filter_map(|(_, row)| row.iter().find(|s| s.dataset == "ATM"))
        .map(|s| s.meet_rate)
        .collect::<Vec<_>>();
    let ok = atm_meets.iter().all(|&m| m >= 0.9);
    println!(
        "  3. >=90% of ATM fields meet the demand at 40/80/120 dB (Fig. 2 claim): {:?} -> {}",
        atm_meets
            .iter()
            .map(|m| format!("{:.0}%", m * 100.0))
            .collect::<Vec<_>>(),
        if ok { "HOLDS" } else { "VIOLATED" }
    );
}
