//! `fpsnr serve` — a long-running region-read server over one container.
//!
//! The server opens a blocked container behind an [`szlike::SzStore`] and
//! answers region-read requests over TCP, so many clients can pull
//! sub-volumes out of one compressed file without anyone ever decoding the
//! whole field. All concurrency is std: a non-blocking accept loop hands
//! each connection to its own thread, and the store's sharded single-flight
//! cache makes concurrent overlapping reads share block decodes.
//!
//! ## Wire protocol (length-prefixed frames)
//!
//! Every message — request or response — is one frame: a `u32` little-endian
//! payload length (capped at 1 GiB) followed by the payload. Requests start
//! with an op byte:
//!
//! | op | name     | request payload after the op byte                    |
//! |----|----------|------------------------------------------------------|
//! | 1  | READ     | `rank: u8`, then per axis `varint start, varint end` |
//! | 2  | STATS    | (empty)                                              |
//! | 3  | SHUTDOWN | (empty)                                              |
//!
//! Responses start with a status byte (0 ok, 1 error). An error payload is
//! a UTF-8 message. A READ ok payload is `scalar_bytes: u8` (4 or 8),
//! `rank: u8`, per-axis `varint` extents, then the samples little-endian in
//! row-major region order — bit-identical to slicing a full decompress. A
//! STATS ok payload is a JSON object of the store's counters. SHUTDOWN
//! acknowledges with an empty ok frame, then the server drains and exits.
//!
//! A connection may issue any number of requests; the server answers in
//! order. On exit the server prints a [`ServeReport`]: cache hit rate,
//! bytes decoded per byte served (the random-access win), and request
//! latency percentiles, all sourced from the store's `fpsnr-obs`-mirrored
//! counters.

use losslesskit::varint;
use ndfield::Scalar;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use szlike::{Region, StoreOptions, StoreStats, SzStore};

/// Frame length cap — a region read of a whole 1-GiB field is the largest
/// legitimate response; anything bigger is a protocol error.
const MAX_FRAME: usize = 1 << 30;

/// Request op bytes.
pub const OP_READ: u8 = 1;
/// Snapshot the store counters as JSON.
pub const OP_STATS: u8 = 2;
/// Stop the server after acknowledging.
pub const OP_SHUTDOWN: u8 = 3;

/// A store of either scalar type, dispatching on the container header.
pub enum AnyStore {
    /// 32-bit float container.
    F32(SzStore<f32>),
    /// 64-bit float container.
    F64(SzStore<f64>),
}

impl AnyStore {
    /// Open `bytes` as whichever scalar type its header declares.
    pub fn open(bytes: Vec<u8>, opts: StoreOptions) -> Result<AnyStore, String> {
        let mut pos = 0usize;
        let header = szlike::format::read_header(&bytes, &mut pos).map_err(|e| e.to_string())?;
        match header.scalar_tag {
            "f32" => Ok(AnyStore::F32(
                SzStore::open_with(bytes, opts).map_err(|e| e.to_string())?,
            )),
            "f64" => Ok(AnyStore::F64(
                SzStore::open_with(bytes, opts).map_err(|e| e.to_string())?,
            )),
            other => Err(format!("unsupported scalar type {other}")),
        }
    }

    /// The stored field's extents.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            AnyStore::F32(s) => s.shape().dims(),
            AnyStore::F64(s) => s.shape().dims(),
        }
    }

    /// Counter snapshot (see [`SzStore::stats`]).
    pub fn stats(&self) -> StoreStats {
        match self {
            AnyStore::F32(s) => s.stats(),
            AnyStore::F64(s) => s.stats(),
        }
    }

    /// Serve one READ: decode the intersecting blocks and frame the
    /// samples (scalar width, rank, extents, LE data).
    fn read_region_framed(&self, region: &Region) -> Result<Vec<u8>, String> {
        fn framed<T: Scalar>(store: &SzStore<T>, region: &Region) -> Result<Vec<u8>, String> {
            let field = store.read_region(region).map_err(|e| e.to_string())?;
            let dims = field.shape().dims();
            let mut out = Vec::with_capacity(2 + field.len() * T::BYTES + 4 * dims.len());
            out.push(T::BYTES as u8);
            out.push(dims.len() as u8);
            for d in &dims {
                varint::write_u64(&mut out, *d as u64);
            }
            for v in field.as_slice() {
                v.write_le(&mut out);
            }
            Ok(out)
        }
        match self {
            AnyStore::F32(s) => framed(s, region),
            AnyStore::F64(s) => framed(s, region),
        }
    }
}

/// Render the store counters as a JSON object (STATS payload).
pub fn stats_json(s: &StoreStats) -> String {
    format!(
        concat!(
            "{{\"hits\":{},\"misses\":{},\"waits\":{},\"evictions\":{},",
            "\"blocks_decoded\":{},\"bytes_decoded\":{},\"regions\":{},",
            "\"bytes_served\":{},\"cached_blocks\":{},\"cached_bytes\":{},",
            "\"hit_rate\":{:.4},\"decode_amplification\":{:.4}}}"
        ),
        s.hits,
        s.misses,
        s.waits,
        s.evictions,
        s.blocks_decoded,
        s.bytes_decoded,
        s.regions,
        s.bytes_served,
        s.cached_blocks,
        s.cached_bytes,
        s.hit_rate(),
        s.decode_amplification(),
    )
}

/// What the server measured over its lifetime, printed on shutdown.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Final store counters.
    pub stats: StoreStats,
    /// READ requests answered (ok or error).
    pub requests: u64,
    /// Median READ latency.
    pub p50: Duration,
    /// 99th-percentile READ latency.
    pub p99: Duration,
}

impl ServeReport {
    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let s = &self.stats;
        format!(
            "requests          {}\n\
             regions served    {} ({} bytes)\n\
             blocks decoded    {} ({} bytes)\n\
             cache             {} hits / {} misses / {} waits ({:.1}% hit rate)\n\
             evictions         {}\n\
             decode amplification {:.3} bytes decoded per byte served\n\
             latency           p50 {:?}  p99 {:?}",
            self.requests,
            s.regions,
            s.bytes_served,
            s.blocks_decoded,
            s.bytes_decoded,
            s.hits,
            s.misses,
            s.waits,
            s.hit_rate() * 100.0,
            s.evictions,
            s.decode_amplification(),
            self.p50,
            self.p99,
        )
    }
}

/// Read one length-prefixed frame (`None` on clean EOF at a frame
/// boundary).
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, String> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(format!("reading frame length: {e}")),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds the 1 GiB cap"));
    }
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .map_err(|e| format!("reading frame payload: {e}"))?;
    Ok(Some(payload))
}

/// Frames whose payload fits this are coalesced into one buffer and hit
/// the socket as a single `write` — with `TCP_NODELAY` set that is one
/// packet, so small READ/STATS responses never straddle a length-prefix
/// segment and a payload segment (the straddle is what showed up as
/// Nagle-shaped p99 spikes). Larger frames use vectored I/O instead of
/// paying a memcpy of the payload.
const COALESCE_MAX: usize = 64 * 1024;

/// Write one length-prefixed frame in a single buffered write. The
/// server side sends everything through [`write_response`]; this is the
/// request-side half the in-process test clients use.
#[cfg(test)]
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), String> {
    let len = u32::try_from(payload.len()).map_err(|_| "frame too large".to_string())?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    stream
        .write_all(&frame)
        .map_err(|e| format!("writing frame: {e}"))
}

/// Write one response frame (`status` byte + `body`) without ever
/// materializing `status ‖ body` by insertion: small frames are coalesced
/// into a single write; large ones go out as one vectored write loop over
/// `(header ‖ status, body)`.
fn write_response(stream: &mut TcpStream, status: u8, body: &[u8]) -> Result<(), String> {
    let len =
        u32::try_from(1 + body.len()).map_err(|_| "frame too large".to_string())?;
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&len.to_le_bytes());
    head[4] = status;
    if body.len() <= COALESCE_MAX {
        let mut frame = Vec::with_capacity(5 + body.len());
        frame.extend_from_slice(&head);
        frame.extend_from_slice(body);
        return stream
            .write_all(&frame)
            .map_err(|e| format!("writing frame: {e}"));
    }
    // write_vectored has no write_all guarantee; loop until both slices
    // drain, re-slicing past whatever the kernel accepted.
    let (mut h, mut b) = (0usize, 0usize);
    while h < head.len() || b < body.len() {
        let bufs = [
            std::io::IoSlice::new(&head[h..]),
            std::io::IoSlice::new(&body[b..]),
        ];
        let n = match stream.write_vectored(&bufs) {
            Ok(0) => return Err("connection closed mid-frame".to_string()),
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("writing frame: {e}")),
        };
        let from_head = n.min(head.len() - h);
        h += from_head;
        b += n - from_head;
    }
    Ok(())
}

/// Parse a READ payload (after the op byte) into a region.
fn parse_read(payload: &[u8]) -> Result<Region, String> {
    let mut pos = 0usize;
    let rank = *payload.first().ok_or("READ payload missing rank")? as usize;
    pos += 1;
    if rank == 0 || rank > 3 {
        return Err(format!("bad region rank {rank}"));
    }
    let mut axes: Vec<Range<usize>> = Vec::with_capacity(rank);
    for _ in 0..rank {
        let s = varint::read_u64(payload, &mut pos).map_err(|e| e.to_string())? as usize;
        let e = varint::read_u64(payload, &mut pos).map_err(|e| e.to_string())? as usize;
        axes.push(s..e);
    }
    if pos != payload.len() {
        return Err("trailing bytes after READ region".to_string());
    }
    Region::new(&axes).map_err(|e| e.to_string())
}

/// Answer requests on one connection until EOF or SHUTDOWN.
fn handle_connection(
    mut stream: TcpStream,
    store: &AnyStore,
    shutdown: &AtomicBool,
    latencies: &Mutex<Vec<u64>>,
) -> Result<(), String> {
    while let Some(frame) = read_frame(&mut stream)? {
        let Some((&op, payload)) = frame.split_first() else {
            write_response(&mut stream, 1, b"empty request frame")?;
            continue;
        };
        match op {
            OP_READ => {
                let start = Instant::now();
                let reply = parse_read(payload)
                    .and_then(|region| store.read_region_framed(&region));
                let micros = start.elapsed().as_micros() as u64;
                latencies.lock().expect("latency lock").push(micros);
                match reply {
                    Ok(body) => write_response(&mut stream, 0, &body)?,
                    Err(msg) => write_response(&mut stream, 1, msg.as_bytes())?,
                }
            }
            OP_STATS => {
                write_response(&mut stream, 0, stats_json(&store.stats()).as_bytes())?;
            }
            OP_SHUTDOWN => {
                shutdown.store(true, Ordering::SeqCst);
                write_response(&mut stream, 0, &[])?;
                return Ok(());
            }
            other => {
                write_response(&mut stream, 1, format!("unknown op {other}").as_bytes())?;
            }
        }
    }
    Ok(())
}

/// Run the accept loop until a SHUTDOWN request lands, then drain the
/// connection threads and return the lifetime report.
///
/// # Errors
/// Socket-level failures configuring the listener. Per-connection errors
/// (malformed frames, broken pipes) end that connection only.
pub fn run_server(listener: TcpListener, store: AnyStore) -> Result<ServeReport, String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    let store = Arc::new(store);
    let shutdown = Arc::new(AtomicBool::new(false));
    let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
    let mut workers = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                let store = Arc::clone(&store);
                let shutdown = Arc::clone(&shutdown);
                let latencies = Arc::clone(&latencies);
                workers.push(std::thread::spawn(move || {
                    // A connection error poisons only that connection.
                    let _ = handle_connection(stream, &store, &shutdown, &latencies);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(3));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    let mut lat = latencies.lock().expect("latency lock").clone();
    lat.sort_unstable();
    let pct = |p: f64| -> Duration {
        if lat.is_empty() {
            Duration::ZERO
        } else {
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            Duration::from_micros(lat[idx])
        }
    };
    Ok(ServeReport {
        stats: store.stats(),
        requests: lat.len() as u64,
        p50: pct(0.50),
        p99: pct(0.99),
    })
}

// ---------------------------------------------------------------------------
// Client helpers — exercised by the protocol tests below.
// ---------------------------------------------------------------------------

/// One decoded READ response.
#[cfg(test)]
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReply {
    /// Scalar width in bytes (4 or 8).
    pub scalar_bytes: u8,
    /// Region extents, row-major.
    pub dims: Vec<usize>,
    /// Raw little-endian sample bytes (`dims` product × `scalar_bytes`).
    pub data: Vec<u8>,
}

/// Issue a READ for `axes` and decode the reply.
///
/// # Errors
/// Transport failures, server-reported errors, or a malformed reply.
#[cfg(test)]
pub fn client_read(stream: &mut TcpStream, axes: &[Range<usize>]) -> Result<RegionReply, String> {
    let mut req = vec![OP_READ, axes.len() as u8];
    for r in axes {
        varint::write_u64(&mut req, r.start as u64);
        varint::write_u64(&mut req, r.end as u64);
    }
    write_frame(stream, &req)?;
    let reply = read_frame(stream)?.ok_or("server closed the connection")?;
    let (status, body) = reply.split_first().ok_or("empty reply frame")?;
    if *status != 0 {
        return Err(format!("server error: {}", String::from_utf8_lossy(body)));
    }
    let mut pos = 0usize;
    let scalar_bytes = *body.first().ok_or("reply missing scalar width")?;
    pos += 1;
    let rank = *body.get(pos).ok_or("reply missing rank")? as usize;
    pos += 1;
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(varint::read_u64(body, &mut pos).map_err(|e| e.to_string())? as usize);
    }
    let expect = dims.iter().product::<usize>() * scalar_bytes as usize;
    let data = body[pos..].to_vec();
    if data.len() != expect {
        return Err(format!("reply holds {} sample bytes, want {expect}", data.len()));
    }
    Ok(RegionReply {
        scalar_bytes,
        dims,
        data,
    })
}

/// Issue a STATS request and return the JSON payload.
///
/// # Errors
/// Transport failures or a server-reported error.
#[cfg(test)]
pub fn client_stats(stream: &mut TcpStream) -> Result<String, String> {
    write_frame(stream, &[OP_STATS])?;
    let reply = read_frame(stream)?.ok_or("server closed the connection")?;
    let (status, body) = reply.split_first().ok_or("empty reply frame")?;
    if *status != 0 {
        return Err(format!("server error: {}", String::from_utf8_lossy(body)));
    }
    Ok(String::from_utf8_lossy(body).into_owned())
}

/// Issue a SHUTDOWN request and wait for the acknowledgement.
///
/// # Errors
/// Transport failures.
#[cfg(test)]
pub fn client_shutdown(stream: &mut TcpStream) -> Result<(), String> {
    write_frame(stream, &[OP_SHUTDOWN])?;
    read_frame(stream)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndfield::Field;
    use szlike::{compress, ErrorBound, SzConfig};

    fn grid_bytes(d: usize, chunk: usize) -> (Field<f32>, Vec<u8>) {
        let field = Field::from_fn_3d(d, d, d, |i, j, k| {
            ((i as f32) * 0.11).sin() + ((j as f32) * 0.07 + (k as f32) * 0.05).cos()
        });
        let cfg = SzConfig::new(ErrorBound::Abs(1e-3)).with_chunk_dims([chunk; 3]);
        let bytes = compress(&field, &cfg).unwrap();
        (field, bytes)
    }

    fn spawn_server(bytes: Vec<u8>) -> (std::net::SocketAddr, std::thread::JoinHandle<ServeReport>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let store = AnyStore::open(bytes, StoreOptions::default()).unwrap();
        let handle =
            std::thread::spawn(move || run_server(listener, store).expect("server run"));
        (addr, handle)
    }

    #[test]
    fn serves_concurrent_region_reads_and_reconciles_counters() {
        let (field, bytes) = grid_bytes(24, 8);
        let full: Vec<f32> = szlike::decompress::<f32>(&bytes).unwrap().as_slice().to_vec();
        let (addr, handle) = spawn_server(bytes);
        let field_dims = field.shape().dims();
        assert_eq!(field_dims, vec![24, 24, 24]);

        let mut clients = Vec::new();
        for t in 0..3usize {
            let full = full.clone();
            clients.push(std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                for r in 0..5usize {
                    let lo = (3 * t + r) % 12;
                    let axes = [lo..lo + 10, 2..20, lo..lo + 7];
                    let reply = client_read(&mut stream, &axes).unwrap();
                    assert_eq!(reply.scalar_bytes, 4);
                    assert_eq!(reply.dims, vec![10, 18, 7]);
                    let mut k = 0;
                    for i in axes[0].clone() {
                        for j in axes[1].clone() {
                            for l in axes[2].clone() {
                                let got = f32::from_le_bytes(
                                    reply.data[4 * k..4 * k + 4].try_into().unwrap(),
                                );
                                let want = full[(i * 24 + j) * 24 + l];
                                assert_eq!(got.to_bits(), want.to_bits());
                                k += 1;
                            }
                        }
                    }
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }

        let mut ctl = TcpStream::connect(addr).unwrap();
        let stats = client_stats(&mut ctl).unwrap();
        assert!(stats.contains("\"regions\":15"), "{stats}");
        client_shutdown(&mut ctl).unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.requests, 15);
        let s = report.stats;
        assert_eq!(s.block_requests(), s.hits + s.misses + s.waits);
        assert_eq!(s.blocks_decoded, s.misses);
        assert!(s.blocks_decoded <= 27, "{} decodes", s.blocks_decoded);
        assert!(report.p99 >= report.p50);
    }

    #[test]
    fn bad_requests_get_error_frames_not_disconnects() {
        let (_, bytes) = grid_bytes(16, 8);
        let (addr, handle) = spawn_server(bytes);
        let mut stream = TcpStream::connect(addr).unwrap();
        // Region outside the field.
        let err = client_read(&mut stream, &[0..99, 0..16, 0..16]).unwrap_err();
        assert!(err.contains("server error"), "{err}");
        // Unknown op.
        write_frame(&mut stream, &[99]).unwrap();
        let reply = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(reply[0], 1);
        // The connection still works afterwards.
        let ok = client_read(&mut stream, &[0..4, 0..4, 0..4]).unwrap();
        assert_eq!(ok.dims, vec![4, 4, 4]);
        client_shutdown(&mut stream).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn f64_containers_serve_wide_samples() {
        let field = Field::from_fn_2d(32, 32, |i, j| ((i * 32 + j) as f64).sqrt());
        let cfg = SzConfig::new(ErrorBound::Abs(1e-6)).with_chunk_dims([8, 8, 0]);
        let bytes = compress(&field, &cfg).unwrap();
        let full: Vec<f64> = szlike::decompress::<f64>(&bytes).unwrap().as_slice().to_vec();
        let (addr, handle) = spawn_server(bytes);
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = client_read(&mut stream, &[5..9, 20..32]).unwrap();
        assert_eq!(reply.scalar_bytes, 8);
        assert_eq!(reply.dims, vec![4, 12]);
        let mut k = 0;
        for i in 5..9 {
            for j in 20..32 {
                let got =
                    f64::from_le_bytes(reply.data[8 * k..8 * k + 8].try_into().unwrap());
                assert_eq!(got.to_bits(), full[i * 32 + j].to_bits());
                k += 1;
            }
        }
        client_shutdown(&mut stream).unwrap();
        handle.join().unwrap();
    }
}
