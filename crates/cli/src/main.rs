//! `fpsnr` — command-line fixed-PSNR lossy compression.
//!
//! Mirrors what the SZ distribution ships as an executable, extended with
//! the paper's fixed-PSNR mode and the synthetic data generators:
//!
//! ```text
//! fpsnr compress   -i in.raw -o out.szr --type f32 --dims 100x500x500 --mode psnr:80
//! fpsnr decompress -i out.szr -o back.raw
//! fpsnr analyze    -i in.raw -r back.raw --type f32 --dims 1800x3600
//! fpsnr gen        --dataset atm --res small --out-dir /tmp/atm
//! fpsnr eval       --dataset hurricane --psnr 80 --res small
//! ```

mod args;
mod manifest;
mod serve;

use args::Args;
use datagen::{DatasetId, DatasetSpec, Resolution};
use fpsnr_core::batch::run_batch_summary;
use fpsnr_core::fixed_psnr::FixedPsnrOptions;
use fpsnr_core::{
    allocate_snapshot, ebrel_for_psnr, psnr_sz_estimate, AllocObjective, AllocOptions,
    FixedRatioOptions, SnapshotField,
};
use fpsnr_metrics::{Distortion, PointwiseError, RateStats};
use ndfield::{io as fio, Field, Scalar, Shape};
use fpsnr_transform::{transform_compress, transform_decompress, TransformConfig};
use szlike::{format, ErrorBound, LosslessBackend, PredictorKind, SzConfig};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = run(&argv) {
        eprintln!("fpsnr: {msg}");
        std::process::exit(1);
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{}", HELP);
        return Ok(());
    }
    let args = Args::parse(argv)?;
    let profile = parse_profile(&args)?;
    if profile.is_some() {
        fpsnr_obs::enable();
    }
    let result = match args.command.as_str() {
        "compress" => cmd_compress(&args),
        "decompress" => cmd_decompress(&args),
        "analyze" => cmd_analyze(&args),
        "inspect" => cmd_inspect(&args),
        "verify" => cmd_verify(&args),
        "gen" => cmd_gen(&args),
        "eval" => cmd_eval(&args),
        "snapshot" => cmd_snapshot(&args),
        "serve" => cmd_serve(&args),
        "read" => cmd_read(&args),
        other => Err(format!("unknown command {other} (try `fpsnr help`)")),
    };
    if result.is_ok() {
        if let Some(kind) = profile {
            fpsnr_obs::disable();
            let report = fpsnr_obs::snapshot();
            match kind {
                ProfileKind::Json => println!("{}", report.to_json()),
                ProfileKind::Pretty => print!("{}", report.render_pretty()),
            }
        }
    }
    result
}

/// `--profile json|pretty`: arm the `fpsnr-obs` registry for the whole
/// command and report per-stage timings and counters on success.
#[derive(Clone, Copy)]
enum ProfileKind {
    Json,
    Pretty,
}

fn parse_profile(args: &Args) -> Result<Option<ProfileKind>, String> {
    match args.get("--profile") {
        None => Ok(None),
        Some("json") => Ok(Some(ProfileKind::Json)),
        Some("pretty") => Ok(Some(ProfileKind::Pretty)),
        Some(other) => Err(format!("bad --profile {other} (want json or pretty)")),
    }
}

const HELP: &str = "\
fpsnr — fixed-PSNR lossy compression for scientific data

COMMANDS
  compress    -i RAW -o OUT --type f32|f64 --dims DxDxD --mode MODE
              MODE: psnr:<dB> | abs:<eb> | rel:<eb> | pwrel:<eb> | budget:<bytes>
              [--ratio N]       target compression ratio instead of --mode
                                (ratio-quality model + <=2 refinements)
              [--ratio-tol T]   relative tolerance band (default 0.1)
              [--bins N] [--no-lz] [--verify] [--transform]
              [--predictor auto|lorenzo|lorenzo2|regression|spline]
                                prediction stage (default lorenzo); auto
                                runs the per-block cost bake-off (v5)
              [--threads N]     block-parallel pipeline (0 = auto, 1 = off)
              [--block-size R]  rows per block (0 = derive from shape)
              [--chunks AxBxC]  multi-dimensional chunk grid (v4 layout) for
                                random-access region reads; 0 = full axis
  decompress  -i OUT -o RAW [--threads N]
  read        -i OUT -o RAW --region S:ExS:ExS:E
                             decode one region (only intersecting blocks)
  serve       -i OUT [--addr HOST:PORT] [--cache-mb N]
                             region-read server (length-prefixed TCP);
                             prints cache/latency report on shutdown
  analyze     -i RAW -r RAW --type f32|f64 --dims DxDxD
  inspect     -i OUT         print container layout and a damage report
                             (always exits 0 if the header parses)
  verify      -i OUT [--threads N]
                             integrity check; damaged blocks are listed and
                             the exit status is nonzero on any damage
  gen         --dataset nyx|atm|hurricane --res small|default|paper
              --out-dir DIR [--seed N]
  eval        --dataset nyx|atm|hurricane --psnr dB
              [--res small|default] [--seed N] [--threads N]
  snapshot    --budget BYTES (accepts KiB/MiB/GiB/KB/MB/GB suffixes)
              (--manifest fields.json | --dataset nyx|atm|hurricane
               [--res small|default] [--seed N])
              [--objective min-psnr|weighted] [--threads N]
              [--out-dir DIR]   write one .szr container per field
                                allocate one byte budget across all fields
                                of a snapshot (max-min PSNR water-filling
                                or weighted-MSE, <=2 passes per field)

GLOBAL
  --profile json|pretty   arm fpsnr-obs instrumentation and print
                          per-stage timings/counters after the command
";

enum CliMode {
    Psnr(f64),
    Bound(ErrorBound),
    Budget(usize),
    /// `--ratio N [--ratio-tol T]`: target compression ratio ± tolerance.
    Ratio(f64, f64),
}

fn parse_mode(raw: &str) -> Result<CliMode, String> {
    let (kind, val) = raw
        .split_once(':')
        .ok_or_else(|| format!("bad --mode {raw} (want kind:value)"))?;
    if kind == "budget" {
        let bytes: usize = val.parse().map_err(|e| format!("bad --mode budget: {e}"))?;
        return Ok(CliMode::Budget(bytes));
    }
    let v: f64 = val.parse().map_err(|e| format!("bad --mode value: {e}"))?;
    match kind {
        "psnr" => Ok(CliMode::Psnr(v)),
        "abs" => Ok(CliMode::Bound(ErrorBound::Abs(v))),
        "rel" => Ok(CliMode::Bound(ErrorBound::ValueRangeRel(v))),
        "pwrel" => Ok(CliMode::Bound(ErrorBound::PointwiseRel(v))),
        other => Err(format!("unknown mode kind {other}")),
    }
}

fn read_field_arg<T: Scalar>(args: &Args, flag: &str) -> Result<(Field<T>, Shape), String> {
    let dims = args.dims()?;
    let shape = Shape::from_dims(&dims);
    let path = args.require(flag)?;
    let field = fio::read_raw::<T>(shape, path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok((field, shape))
}

/// Dispatch a command body over the `--type` flag (`f32` default).
fn cmd_compress(args: &Args) -> Result<(), String> {
    match args.get("--type").unwrap_or("f32") {
        "f32" => compress_typed::<f32>(args),
        "f64" => compress_typed::<f64>(args),
        other => Err(format!("unknown --type {other} (want f32 or f64)")),
    }
}

fn compress_typed<T: Scalar>(args: &Args) -> Result<(), String> {
    let (field, shape) = read_field_arg::<T>(args, "--input")?;
    let mode = match args.get("--ratio") {
        Some(raw) => {
            if args.get("--mode").is_some() {
                return Err("--ratio replaces --mode; give one or the other".into());
            }
            let target: f64 = raw.parse().map_err(|e| format!("bad --ratio: {e}"))?;
            let tol: f64 = args
                .get("--ratio-tol")
                .map(|s| s.parse().map_err(|e| format!("bad --ratio-tol: {e}")))
                .transpose()?
                .unwrap_or(0.1);
            CliMode::Ratio(target, tol)
        }
        None => {
            if args.get("--ratio-tol").is_some() {
                return Err("--ratio-tol needs --ratio".into());
            }
            parse_mode(args.require("--mode")?)?
        }
    };
    let bins: usize = args
        .get("--bins")
        .map(|s| s.parse().map_err(|e| format!("bad --bins: {e}")))
        .transpose()?
        .unwrap_or(65536);
    let lossless = if args.has("--no-lz") {
        LosslessBackend::None
    } else {
        LosslessBackend::Lz
    };
    let threads = parse_threads(args)?.unwrap_or(1);
    let block_rows: usize = args
        .get("--block-size")
        .map(|s| s.parse().map_err(|e| format!("bad --block-size: {e}")))
        .transpose()?
        .unwrap_or(0);
    let chunk_dims = parse_chunks(args)?;
    if chunk_dims != [0; 3] && block_rows != 0 {
        return Err("--chunks and --block-size are mutually exclusive".into());
    }
    let predictor = parse_predictor(args)?;
    let use_transform = args.has("--transform");
    if use_transform && (threads != 1 || block_rows != 0 || chunk_dims != [0; 3]) {
        return Err("--transform does not support --threads/--block-size/--chunks".into());
    }
    if use_transform && predictor != PredictorKind::Lorenzo1 {
        return Err("--transform does not support --predictor".into());
    }
    let bytes = match mode {
        CliMode::Budget(budget) => {
            if use_transform {
                return Err("--transform does not support budget mode".into());
            }
            if chunk_dims != [0; 3] {
                return Err("budget mode does not support --chunks".into());
            }
            let base = SzConfig::new(ErrorBound::Abs(1.0))
                .with_quant_bins(bins)
                .with_lossless(lossless)
                .with_auto_intervals(true)
                .with_threads(threads)
                .with_block_rows(block_rows)
                .with_predictor(predictor);
            let (bytes, report) = fpsnr_core::mode::compress_with_mode(
                &field,
                fpsnr_core::mode::CompressionMode::ByteBudget(budget),
                &base,
            )
            .map_err(|e| e.to_string())?;
            if !args.has("--quiet") {
                println!(
                    "byte budget {budget}: settled on eb_rel {:.4e} after {} probes",
                    report.effective_ebrel, report.invocations
                );
            }
            bytes
        }
        CliMode::Ratio(target, tol) => {
            if use_transform {
                return Err("--transform does not support fixed-ratio mode".into());
            }
            if chunk_dims != [0; 3] {
                return Err("fixed-ratio mode does not support --chunks".into());
            }
            let opts = FixedRatioOptions {
                tolerance: tol,
                quant_bins: bins,
                lossless,
                threads,
                block_rows,
                predictor,
                ..FixedRatioOptions::new(target)
            };
            let run =
                fpsnr_core::compress_fixed_ratio(&field, &opts).map_err(|e| e.to_string())?;
            if !args.has("--quiet") {
                println!(
                    "fixed-ratio: target {target}x -> eb_rel {:.4e}, achieved {:.2}x in {} pass(es){}",
                    run.eb_rel,
                    run.achieved_ratio,
                    run.passes,
                    if run.within_tolerance { "" } else { " (outside tolerance)" }
                );
            }
            run.bytes
        }
        CliMode::Psnr(target) => {
            let derived = ebrel_for_psnr(target);
            if !args.has("--quiet") {
                println!("fixed-PSNR: target {target} dB -> eb_rel {derived:.6e} (Eq. 8)");
            }
            if use_transform {
                let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(derived));
                transform_compress(&field, &cfg).map_err(|e| e.to_string())?
            } else {
                let opts = FixedPsnrOptions {
                    quant_bins: bins,
                    lossless,
                    threads,
                    block_rows,
                    chunk_dims,
                    predictor,
                    ..FixedPsnrOptions::default()
                };
                fpsnr_core::fixed_psnr::compress_fixed_psnr_only(&field, target, &opts)
                    .map_err(|e| e.to_string())?
            }
        }
        CliMode::Bound(b) => {
            if use_transform {
                let cfg = TransformConfig::new(b);
                transform_compress(&field, &cfg).map_err(|e| e.to_string())?
            } else {
                let cfg = SzConfig::new(b)
                    .with_quant_bins(bins)
                    .with_lossless(lossless)
                    .with_threads(threads)
                    .with_block_rows(block_rows)
                    .with_chunk_dims(chunk_dims)
                    .with_predictor(predictor);
                szlike::compress(&field, &cfg).map_err(|e| e.to_string())?
            }
        }
    };
    let out = args.require("--output")?;
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    let rate = RateStats::new(field.len(), T::BYTES, bytes.len());
    println!(
        "compressed {} ({} samples) -> {} bytes, ratio {:.2}, {:.3} bits/sample",
        shape,
        field.len(),
        bytes.len(),
        rate.ratio(),
        rate.bit_rate()
    );
    if args.has("--verify") {
        let back: Field<T> = decode_any(&bytes, threads)?;
        let d = Distortion::between(&field, &back);
        println!("verified: PSNR {:.2} dB, NRMSE {:.3e}", d.psnr(), d.nrmse());
    }
    Ok(())
}

/// Parse `--predictor` (default Lorenzo — the legacy container layout).
fn parse_predictor(args: &Args) -> Result<PredictorKind, String> {
    match args.get("--predictor") {
        None => Ok(PredictorKind::Lorenzo1),
        Some(raw) => PredictorKind::parse(raw).ok_or_else(|| {
            format!("bad --predictor {raw} (want auto, lorenzo, lorenzo2, regression, or spline)")
        }),
    }
}

/// Parse `--threads` (None when absent).
fn parse_threads(args: &Args) -> Result<Option<usize>, String> {
    args.get("--threads")
        .map(|s| s.parse().map_err(|e| format!("bad --threads: {e}")))
        .transpose()
}

/// Parse `--chunks 64x64x64` into chunk extents ([0; 3] when absent — the
/// slab layout). A 0 extent means "full axis".
fn parse_chunks(args: &Args) -> Result<[usize; 3], String> {
    let Some(raw) = args.get("--chunks") else {
        return Ok([0; 3]);
    };
    let parts: Result<Vec<usize>, _> = raw.split('x').map(|p| p.parse::<usize>()).collect();
    let parts = parts.map_err(|e| format!("bad --chunks {raw}: {e}"))?;
    if parts.is_empty() || parts.len() > 3 {
        return Err(format!("--chunks wants 1-3 extents, got {raw}"));
    }
    let mut dims = [0usize; 3];
    dims[..parts.len()].copy_from_slice(&parts);
    if dims == [0; 3] {
        return Err("--chunks of all zeros selects no grid; omit the flag instead".into());
    }
    Ok(dims)
}

/// Parse `--region 5:14x0:24x7:9` into per-axis half-open ranges.
fn parse_region(raw: &str) -> Result<szlike::Region, String> {
    let mut axes = Vec::new();
    for part in raw.split('x') {
        let (s, e) = part
            .split_once(':')
            .ok_or_else(|| format!("bad --region axis {part} (want start:end)"))?;
        let s: usize = s.parse().map_err(|e| format!("bad --region start: {e}"))?;
        let e: usize = e.parse().map_err(|e| format!("bad --region end: {e}"))?;
        axes.push(s..e);
    }
    szlike::Region::new(&axes).map_err(|e| e.to_string())
}

/// Decode any container this toolchain produces, dispatching on the magic.
/// `threads` feeds the block-parallel decoders (0 = auto).
fn decode_any<T: ndfield::Scalar>(bytes: &[u8], threads: usize) -> Result<Field<T>, String> {
    match bytes.get(..4) {
        Some(b"SZR1") => {
            szlike::decompress_with_threads(bytes, threads).map_err(|e| e.to_string())
        }
        Some(b"XFM1") => transform_decompress(bytes).map_err(|e| e.to_string()),
        Some(b"XEC1") => {
            fpsnr_transform::embedded_decompress(bytes).map_err(|e| e.to_string())
        }
        Some(b"SLB1") => fpsnr_core::slab::decompress_slabs(
            bytes,
            if threads == 0 {
                fpsnr_parallel::default_threads()
            } else {
                threads
            },
        )
        .map_err(|e| e.to_string()),
        _ => Err("unrecognised container magic".to_string()),
    }
}

fn cmd_decompress(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let out = args.require("--output")?;
    let threads = parse_threads(args)?.unwrap_or(0);
    // SZ containers carry the scalar tag in the header; for the other
    // container kinds, try f32 first (the dominant type in HPC dumps).
    let is_f64 = if bytes.get(..4) == Some(b"SZR1".as_slice()) {
        let mut pos = 0usize;
        let header = format::read_header(&bytes, &mut pos).map_err(|e| e.to_string())?;
        header.scalar_tag == "f64"
    } else {
        decode_any::<f32>(&bytes, threads).is_err()
    };
    if is_f64 {
        let field: Field<f64> = decode_any(&bytes, threads)?;
        fio::write_raw(&field, out).map_err(|e| format!("writing {out}: {e}"))?;
        println!("decompressed {} f64 samples ({})", field.len(), field.shape());
    } else {
        let field: Field<f32> = decode_any(&bytes, threads)?;
        fio::write_raw(&field, out).map_err(|e| format!("writing {out}: {e}"))?;
        println!("decompressed {} f32 samples ({})", field.len(), field.shape());
    }
    Ok(())
}

/// Run the forgiving decoder on an SZ container, dispatching on the scalar
/// tag stored in its header, and return the damage report.
fn partial_report(bytes: &[u8], threads: usize) -> Result<szlike::DamageReport, String> {
    let mut pos = 0usize;
    let header = format::read_header(bytes, &mut pos).map_err(|e| e.to_string())?;
    let report = if header.scalar_tag == "f64" {
        szlike::decompress_partial_with_threads::<f64>(bytes, threads)
            .map(|(_, r)| r)
            .map_err(|e| e.to_string())?
    } else {
        szlike::decompress_partial_with_threads::<f32>(bytes, threads)
            .map(|(_, r)| r)
            .map_err(|e| e.to_string())?
    };
    Ok(report)
}

fn print_report(report: &szlike::DamageReport) {
    println!(
        "container CRC     {}",
        if report.container_crc_ok { "ok" } else { "MISMATCH" }
    );
    println!("blocks            {}", report.n_blocks);
    println!("recovered samples {}", report.recovered_samples);
    if report.damaged.is_empty() {
        println!("damaged blocks    none");
    } else {
        println!("damaged blocks    {}", report.damaged.len());
        for d in &report.damaged {
            println!(
                "  block {:>4}  samples {}..{}  {}",
                d.index, d.sample_range.start, d.sample_range.end, d.reason
            );
        }
    }
}

/// Print the structural section report: one line per lossless section with
/// its flag and compressed/raw byte counts, then one line per bake-off
/// chunk with the backend the per-chunk bake-off chose.
fn print_sections(info: &szlike::ContainerInfo) {
    if let Some(v) = info.blocked_version {
        println!("blocked version   {v}");
    }
    let fmt_dims = |d: &[usize]| {
        d.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("x")
    };
    if let Some(chunk) = &info.chunk_dims {
        println!("chunk dims        {}", fmt_dims(chunk));
    }
    if let Some(grid) = &info.grid_dims {
        println!(
            "chunk grid        {} ({} blocks)",
            fmt_dims(grid),
            grid.iter().product::<usize>()
        );
    }
    if let Some(pred) = &info.predictor {
        println!("predictor         {pred}");
    }
    if let Some(stage) = info.entropy_stage {
        let name = match stage {
            0 => "huffman (single-stream, legacy)",
            1 => "range",
            2 => "huffman (interleaved)",
            _ => "unknown",
        };
        println!("entropy stage     {stage} = {name}");
    }
    println!("sections          {}", info.sections.len());
    for s in &info.sections {
        let flag_name = match s.flag {
            0 => "stored",
            1 => "deflate (legacy)",
            2 => "bakeoff",
            _ => "unknown",
        };
        let raw = s
            .raw_len
            .map(|r| format!("{r}"))
            .unwrap_or_else(|| "?".into());
        println!(
            "  {:<14} flag {} ({flag_name})  comp {:>9}  raw {:>9}",
            s.name, s.flag, s.comp_len, raw
        );
        for (i, c) in s.chunks.iter().enumerate() {
            println!(
                "    chunk {:<4} {:<8} raw {:>9} -> comp {:>9}",
                i,
                c.backend.name(),
                c.raw_len,
                c.comp_len
            );
        }
    }
}

/// Print the per-block predictor map of a v5 container: one line per
/// block plus a histogram so mixed selections are visible at a glance.
fn print_block_predictors(names: &[String]) {
    let mut counts: Vec<(&str, usize)> = Vec::new();
    for n in names {
        match counts.iter_mut().find(|(k, _)| k == n) {
            Some((_, c)) => *c += 1,
            None => counts.push((n.as_str(), 1)),
        }
    }
    let summary = counts
        .iter()
        .map(|(k, c)| format!("{k} x{c}"))
        .collect::<Vec<_>>()
        .join(", ");
    println!("block predictors  {summary}");
    for (i, n) in names.iter().enumerate() {
        println!("  block {i:>4}  {n}");
    }
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let magic = bytes.get(..4).map(String::from_utf8_lossy);
    println!("file              {input}");
    println!("container bytes   {}", bytes.len());
    match bytes.get(..4) {
        Some(b"SZR1") => {
            let mut pos = 0usize;
            let header = format::read_header(&bytes, &mut pos).map_err(|e| e.to_string())?;
            println!("magic             SZR1");
            println!("scalar type       {}", header.scalar_tag);
            println!("mode              {:?}", header.mode);
            println!("shape             {}", header.shape);
            println!("samples           {}", header.shape.len());
            // Structural walk: per-section lossless flags, compressed vs
            // raw byte counts, and per-chunk bake-off backend choices.
            match szlike::inspect_sections(&bytes) {
                Ok(info) => print_sections(&info),
                Err(e) => println!("sections          unreadable: {e}"),
            }
            // v5 mixed-predictor containers: show which predictor the
            // cost bake-off picked for every block, in directory order.
            match szlike::inspect_block_predictors(&bytes) {
                Ok(Some(names)) => print_block_predictors(&names),
                Ok(None) => {}
                Err(e) => println!("block predictors  unreadable: {e}"),
            }
            // Damage is informational for inspect: report it, exit 0.
            match partial_report(&bytes, 0) {
                Ok(report) => print_report(&report),
                Err(e) => println!("unrecoverable     {e}"),
            }
            Ok(())
        }
        Some(_) => {
            println!("magic             {}", magic.unwrap_or_default());
            println!("(only SZR1 containers carry a block directory to inspect)");
            Ok(())
        }
        None => Err("file shorter than a container magic".to_string()),
    }
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let threads = parse_threads(args)?.unwrap_or(0);
    match bytes.get(..4) {
        Some(b"SZR1") => {
            let report = partial_report(&bytes, threads)?;
            print_report(&report);
            if report.is_clean() {
                println!("verify: OK");
                Ok(())
            } else if report.damaged.is_empty() {
                Err("container CRC mismatch (all blocks individually intact)".to_string())
            } else {
                Err(format!(
                    "container is damaged: {} of {} blocks lost",
                    report.damaged.len(),
                    report.n_blocks
                ))
            }
        }
        Some(_) => {
            // Other container kinds have no partial-recovery framing: a
            // strict decode is the integrity check.
            decode_any::<f32>(&bytes, threads)
                .map(|_| ())
                .or_else(|_| decode_any::<f64>(&bytes, threads).map(|_| ()))
                .map_err(|e| format!("strict decode failed: {e}"))?;
            println!("verify: OK (strict decode)");
            Ok(())
        }
        None => Err("file shorter than a container magic".to_string()),
    }
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    match args.get("--type").unwrap_or("f32") {
        "f32" => analyze_typed::<f32>(args),
        "f64" => analyze_typed::<f64>(args),
        other => Err(format!("unknown --type {other} (want f32 or f64)")),
    }
}

fn analyze_typed<T: Scalar>(args: &Args) -> Result<(), String> {
    let (orig, shape) = read_field_arg::<T>(args, "--input")?;
    let recon_path = args.require("--recon")?;
    let recon = fio::read_raw::<T>(shape, recon_path)
        .map_err(|e| format!("reading {recon_path}: {e}"))?;
    let d = Distortion::between(&orig, &recon);
    let p = PointwiseError::between(&orig, &recon);
    println!("shape            {shape}");
    println!("value range      {:.6e}", d.value_range);
    println!("MSE              {:.6e}", d.mse);
    println!("NRMSE            {:.6e}", d.nrmse());
    println!("PSNR             {:.3} dB", d.psnr());
    println!("max abs error    {:.6e}", p.max_abs);
    println!("max rel error    {:.6e}", p.max_rel);
    println!("max range-rel    {:.6e}", p.max_range_rel);
    Ok(())
}

fn parse_dataset(args: &Args) -> Result<DatasetId, String> {
    let name = args.require("--dataset")?;
    DatasetId::parse(name).ok_or_else(|| format!("unknown dataset {name}"))
}

fn parse_res(args: &Args) -> Result<Resolution, String> {
    match args.get("--res").unwrap_or("default") {
        "small" => Ok(Resolution::Small),
        "default" => Ok(Resolution::Default),
        "paper" => Ok(Resolution::Paper),
        other => Err(format!("unknown resolution {other}")),
    }
}

fn parse_seed(args: &Args) -> Result<u64, String> {
    args.get("--seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()
        .map(|o| o.unwrap_or(20180713)) // paper's arXiv v3 date
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let id = parse_dataset(args)?;
    let res = parse_res(args)?;
    let seed = parse_seed(args)?;
    let dir = args.require("--out-dir")?;
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let fields = datagen::generate(id, res, seed);
    let spec = DatasetSpec::of(id);
    let shape = spec.shape(res);
    let mut manifest = format!("# dataset {} shape {} seed {}\n", id.name(), shape, seed);
    for nf in &fields {
        let path = std::path::Path::new(dir).join(format!("{}.f32", nf.name));
        fio::write_raw(&nf.data, &path).map_err(|e| format!("writing {}: {e}", path.display()))?;
        manifest.push_str(&format!("{}.f32 {}\n", nf.name, shape));
    }
    std::fs::write(std::path::Path::new(dir).join("MANIFEST"), manifest)
        .map_err(|e| format!("writing manifest: {e}"))?;
    println!(
        "wrote {} fields of {} ({}) to {dir}",
        fields.len(),
        id.name(),
        shape
    );
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let id = parse_dataset(args)?;
    let res = parse_res(args)?;
    let seed = parse_seed(args)?;
    let target: f64 = args
        .require("--psnr")?
        .parse()
        .map_err(|e| format!("bad --psnr: {e}"))?;
    let threads: usize = args
        .get("--threads")
        .map(|s| s.parse().map_err(|e| format!("bad --threads: {e}")))
        .transpose()?
        .unwrap_or_else(fpsnr_parallel::default_threads);
    let fields: Vec<(String, Field<f32>)> = datagen::generate(id, res, seed)
        .into_iter()
        .map(|nf| (nf.name, nf.data))
        .collect();
    let (outcomes, summary) = run_batch_summary(
        id.name(),
        &fields,
        target,
        &FixedPsnrOptions::default(),
        threads,
    );
    println!("# {} @ {target} dB (Eq. 7 predicts PSNR = target by construction)", id.name());
    println!("# estimate check: eb_rel {:.4e} -> predicted {:.2} dB",
        ebrel_for_psnr(target),
        psnr_sz_estimate(1.0, ebrel_for_psnr(target)));
    if !args.has("--quiet") {
        println!("{}", fpsnr_core::report::outcomes_csv(&outcomes));
    }
    println!(
        "AVG {:.2} dB | STDEV {:.3} | meet-rate {:.1}% | fields {}",
        summary.avg,
        summary.stdev,
        summary.meet_rate * 100.0,
        summary.n_fields
    );
    Ok(())
}

/// Parse a byte-budget string: a plain count, optionally scaled by a
/// KiB/MiB/GiB (binary) or KB/MB/GB (decimal) suffix; fractional counts
/// like `1.5GiB` are fine.
fn parse_budget(raw: &str) -> Result<u64, String> {
    let trimmed = raw.trim();
    let (num, scale) = match trimmed.len().checked_sub(3).map(|i| trimmed.split_at(i)) {
        Some((head, tail)) if tail.eq_ignore_ascii_case("kib") => (head, 1u64 << 10),
        Some((head, tail)) if tail.eq_ignore_ascii_case("mib") => (head, 1u64 << 20),
        Some((head, tail)) if tail.eq_ignore_ascii_case("gib") => (head, 1u64 << 30),
        _ => match trimmed.len().checked_sub(2).map(|i| trimmed.split_at(i)) {
            Some((head, tail)) if tail.eq_ignore_ascii_case("kb") => (head, 1000u64),
            Some((head, tail)) if tail.eq_ignore_ascii_case("mb") => (head, 1_000_000),
            Some((head, tail)) if tail.eq_ignore_ascii_case("gb") => (head, 1_000_000_000),
            _ => (trimmed.strip_suffix(['b', 'B']).unwrap_or(trimmed), 1),
        },
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|e| format!("bad --budget {raw}: {e}"))?;
    if !(v.is_finite() && v > 0.0) {
        return Err(format!("--budget must be positive, got {raw}"));
    }
    Ok((v * scale as f64).round() as u64)
}

/// `fpsnr snapshot`: allocate one byte budget across every field of a
/// snapshot (from a manifest of raw files or a generated dataset) and
/// compress each at its assigned PSNR.
fn cmd_snapshot(args: &Args) -> Result<(), String> {
    let budget = parse_budget(args.require("--budget")?)?;
    let objective = match args.get("--objective").unwrap_or("min-psnr") {
        "min-psnr" => AllocObjective::MinPsnr,
        "weighted" => AllocObjective::WeightedMse,
        other => {
            return Err(format!(
                "bad --objective {other} (want min-psnr or weighted)"
            ))
        }
    };
    let threads = parse_threads(args)?.unwrap_or(0);
    let fields: Vec<SnapshotField> = match args.get("--manifest") {
        Some(path) => {
            if args.get("--dataset").is_some() {
                return Err("--manifest replaces --dataset; give one or the other".into());
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let base = std::path::Path::new(path)
                .parent()
                .map(|p| p.to_path_buf())
                .unwrap_or_default();
            manifest::parse_manifest(&text)?
                .into_iter()
                .map(|mf| {
                    let shape = Shape::from_dims(&mf.dims);
                    let data_path = base.join(&mf.path);
                    let field = if mf.dtype == "f64" {
                        let f = fio::read_raw::<f64>(shape, &data_path)
                            .map_err(|e| format!("reading {}: {e}", data_path.display()))?;
                        SnapshotField::f64(mf.name, f)
                    } else {
                        let f = fio::read_raw::<f32>(shape, &data_path)
                            .map_err(|e| format!("reading {}: {e}", data_path.display()))?;
                        SnapshotField::f32(mf.name, f)
                    };
                    Ok(field.with_weight(mf.weight))
                })
                .collect::<Result<_, String>>()?
        }
        None => {
            let id = parse_dataset(args)?;
            let res = parse_res(args)?;
            let seed = parse_seed(args)?;
            datagen::generate(id, res, seed)
                .into_iter()
                .map(|nf| SnapshotField::f32(nf.name, nf.data))
                .collect()
        }
    };
    let opts = AllocOptions {
        objective,
        threads,
        ..AllocOptions::new(budget)
    };
    let run = allocate_snapshot(&fields, &opts).map_err(|e| e.to_string())?;
    if !args.has("--quiet") {
        println!("field,assigned_psnr,achieved_psnr,bytes,ratio,passes,status");
        for r in &run.fields {
            let s = &r.stat;
            let status = match (&r.failure, s.quarantined) {
                (Some(f), _) => f.to_string().replace(',', ";"),
                (None, true) => "quarantined".to_string(),
                (None, false) => "ok".to_string(),
            };
            println!(
                "{},{:.2},{:.2},{},{:.2},{},{status}",
                s.field,
                s.assigned_psnr,
                s.achieved_psnr,
                s.achieved_bytes,
                s.raw_bytes as f64 / s.achieved_bytes.max(1) as f64,
                s.passes
            );
        }
    }
    if let Some(dir) = args.get("--out-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        let mut written = 0usize;
        for r in &run.fields {
            if let Some(bytes) = &r.bytes {
                let path = std::path::Path::new(dir).join(format!("{}.szr", r.stat.field));
                std::fs::write(&path, bytes)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                written += 1;
            }
        }
        println!("wrote {written} containers to {dir}");
    }
    let s = &run.summary;
    println!(
        "allocated {} fields ({} quarantined): {} / {} bytes (utilization {:.1}%), \
         min PSNR assigned {:.2} achieved {:.2} dB, aggregate ratio {:.2}, \
         passes max {} total {}, re-solves {}",
        s.n_fields,
        s.n_quarantined,
        s.total_bytes,
        s.budget_bytes,
        s.utilization * 100.0,
        s.min_assigned_psnr,
        s.min_achieved_psnr,
        s.aggregate_ratio,
        s.max_passes,
        s.total_passes,
        run.resolves
    );
    let failed = run.fields.iter().filter(|r| r.failure.is_some()).count();
    if failed > 0 {
        return Err(format!("{failed} field(s) failed (see table)"));
    }
    Ok(())
}

/// Parse `--cache-mb` into store options (default 64 MiB).
fn parse_store_options(args: &Args) -> Result<szlike::StoreOptions, String> {
    let cache_mb: usize = args
        .get("--cache-mb")
        .map(|s| s.parse().map_err(|e| format!("bad --cache-mb: {e}")))
        .transpose()?
        .unwrap_or(64);
    Ok(szlike::StoreOptions {
        cache_budget: cache_mb << 20,
        ..szlike::StoreOptions::default()
    })
}

/// `fpsnr serve`: answer region reads over TCP until a SHUTDOWN request,
/// then print the cache / latency report.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let store = serve::AnyStore::open(bytes, parse_store_options(args)?)?;
    let dims = store.dims();
    let addr = args.get("--addr").unwrap_or("127.0.0.1:0");
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!(
        "serving {input} ({}) on {local}",
        dims.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x")
    );
    let report = serve::run_server(listener, store)?;
    println!("{}", report.render());
    Ok(())
}

/// `fpsnr read`: decode one region of a blocked container to a raw file,
/// touching only the blocks that intersect it.
fn cmd_read(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let region = parse_region(args.require("--region")?)?;
    let out = args.require("--output")?;
    let mut pos = 0usize;
    let header = format::read_header(&bytes, &mut pos).map_err(|e| e.to_string())?;
    let opts = parse_store_options(args)?;
    let (n_samples, n_blocks, stats) = if header.scalar_tag == "f64" {
        let store = szlike::SzStore::<f64>::open_with(bytes, opts).map_err(|e| e.to_string())?;
        let field = store.read_region(&region).map_err(|e| e.to_string())?;
        fio::write_raw(&field, out).map_err(|e| format!("writing {out}: {e}"))?;
        (field.len(), store.grid().n_blocks(), store.stats())
    } else {
        let store = szlike::SzStore::<f32>::open_with(bytes, opts).map_err(|e| e.to_string())?;
        let field = store.read_region(&region).map_err(|e| e.to_string())?;
        fio::write_raw(&field, out).map_err(|e| format!("writing {out}: {e}"))?;
        (field.len(), store.grid().n_blocks(), store.stats())
    };
    println!(
        "read {n_samples} samples by decoding {} of {n_blocks} blocks ({} bytes decoded for {} served)",
        stats.blocks_decoded, stats.bytes_decoded, stats.bytes_served,
    );
    Ok(())
}
