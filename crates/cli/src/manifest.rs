//! Snapshot manifest parsing for `fpsnr snapshot --manifest`.
//!
//! A manifest names the fields of one snapshot: raw file path, scalar
//! type, dimensions, and (for the weighted objective) a weight. The
//! format is a strict JSON subset, parsed by the hand-rolled reader
//! below — the toolchain builds fully offline with no serde, and a
//! manifest needs objects, arrays, strings and numbers only:
//!
//! ```json
//! {
//!   "fields": [
//!     {"name": "T",  "path": "T.f32",  "dims": [90, 180]},
//!     {"name": "PS", "path": "PS.f64", "type": "f64",
//!      "dims": [90, 180], "weight": 4.0}
//!   ]
//! }
//! ```
//!
//! A bare top-level array of field objects is accepted too. Paths are
//! resolved relative to the manifest file's directory by the caller.

/// One field entry of a snapshot manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestField {
    /// Field name (container label, output file stem).
    pub name: String,
    /// Raw data file path as written in the manifest.
    pub path: String,
    /// Scalar type: `"f32"` (default) or `"f64"`.
    pub dtype: String,
    /// Dimension extents, 1–3 axes.
    pub dims: Vec<usize>,
    /// Weighted-MSE weight (default 1).
    pub weight: f64,
}

/// Parse a manifest document into its field list.
///
/// # Errors
/// A human-readable message naming the malformed construct.
pub fn parse_manifest(text: &str) -> Result<Vec<ManifestField>, String> {
    let value = Parser::new(text).document()?;
    let list = match &value {
        Value::Arr(items) => items.as_slice(),
        Value::Obj(pairs) => match pairs.iter().find(|(k, _)| k == "fields") {
            Some((_, Value::Arr(items))) => items.as_slice(),
            Some(_) => return Err("manifest key \"fields\" must be an array".into()),
            None => return Err("manifest object needs a \"fields\" array".into()),
        },
        _ => return Err("manifest must be an object or an array".into()),
    };
    let mut out = Vec::with_capacity(list.len());
    for (i, item) in list.iter().enumerate() {
        let Value::Obj(pairs) = item else {
            return Err(format!("manifest field {i} is not an object"));
        };
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let str_of = |key: &str| -> Result<Option<String>, String> {
            match get(key) {
                None => Ok(None),
                Some(Value::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(format!("field {i}: \"{key}\" must be a string")),
            }
        };
        let name = str_of("name")?.ok_or_else(|| format!("field {i}: missing \"name\""))?;
        let path = str_of("path")?.ok_or_else(|| format!("field {i} ({name}): missing \"path\""))?;
        let dtype = str_of("type")?.unwrap_or_else(|| "f32".to_string());
        if dtype != "f32" && dtype != "f64" {
            return Err(format!(
                "field {i} ({name}): type must be f32 or f64, got {dtype}"
            ));
        }
        let dims = match get("dims") {
            Some(Value::Arr(items)) => {
                let mut dims = Vec::with_capacity(items.len());
                for d in items {
                    match d {
                        Value::Num(n) if *n >= 1.0 && n.fract() == 0.0 => {
                            dims.push(*n as usize);
                        }
                        _ => {
                            return Err(format!(
                                "field {i} ({name}): dims must be positive integers"
                            ))
                        }
                    }
                }
                dims
            }
            _ => return Err(format!("field {i} ({name}): missing \"dims\" array")),
        };
        if dims.is_empty() || dims.len() > 3 {
            return Err(format!("field {i} ({name}): dims must have 1-3 axes"));
        }
        let weight = match get("weight") {
            None => 1.0,
            Some(Value::Num(w)) if w.is_finite() && *w > 0.0 => *w,
            Some(_) => {
                return Err(format!(
                    "field {i} ({name}): weight must be a positive number"
                ))
            }
        };
        out.push(ManifestField {
            name,
            path,
            dtype,
            dims,
            weight,
        });
    }
    if out.is_empty() {
        return Err("manifest lists no fields".into());
    }
    Ok(out)
}

/// The JSON-subset value tree.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

/// Recursive-descent reader over the raw bytes. Covers the JSON grammar
/// a manifest can use: objects, arrays, double-quoted strings with the
/// standard escapes, numbers, `true`/`false`/`null`. Nesting depth is
/// capped so a malicious document cannot blow the stack.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn document(&mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing content at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of manifest".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err("manifest nests too deeply".into());
        }
        match self.peek()? {
            b'{' => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            b'[' => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            b'"' => self.string().map(Value::Str),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        raw.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {raw:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-UTF-8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-borrow the byte as part of a UTF-8 sequence: back
                    // up and take the full char from the source.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "manifest is not valid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty rest");
                    if c == '\n' {
                        return Err("raw newline inside string".into());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_manifest_parses() {
        let doc = r#"{
            "fields": [
                {"name": "T", "path": "T.f32", "dims": [90, 180]},
                {"name": "PS", "path": "ps.f64", "type": "f64",
                 "dims": [10, 50, 50], "weight": 4.0}
            ]
        }"#;
        let fields = parse_manifest(doc).unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "T");
        assert_eq!(fields[0].dtype, "f32");
        assert_eq!(fields[0].dims, vec![90, 180]);
        assert_eq!(fields[0].weight, 1.0);
        assert_eq!(fields[1].dtype, "f64");
        assert_eq!(fields[1].dims, vec![10, 50, 50]);
        assert_eq!(fields[1].weight, 4.0);
    }

    #[test]
    fn bare_array_accepted() {
        let doc = r#"[{"name": "a", "path": "a.raw", "dims": [16]}]"#;
        let fields = parse_manifest(doc).unwrap();
        assert_eq!(fields[0].dims, vec![16]);
    }

    #[test]
    fn string_escapes_decode() {
        let doc = r#"[{"name": "aA\n\"b\"", "path": "p", "dims": [4]}]"#;
        let fields = parse_manifest(doc).unwrap();
        assert_eq!(fields[0].name, "aA\n\"b\"");
    }

    #[test]
    fn malformed_documents_rejected() {
        for bad in [
            "",
            "{",
            "[1, 2",
            r#"{"fields": 3}"#,
            r#"{"fields": [{"path": "p", "dims": [4]}]}"#,      // no name
            r#"{"fields": [{"name": "a", "dims": [4]}]}"#,      // no path
            r#"{"fields": [{"name": "a", "path": "p"}]}"#,      // no dims
            r#"{"fields": [{"name": "a", "path": "p", "dims": []}]}"#,
            r#"{"fields": [{"name": "a", "path": "p", "dims": [1,2,3,4]}]}"#,
            r#"{"fields": [{"name": "a", "path": "p", "dims": [0]}]}"#,
            r#"{"fields": [{"name": "a", "path": "p", "dims": [2.5]}]}"#,
            r#"{"fields": [{"name": "a", "path": "p", "dims": [4], "weight": -1}]}"#,
            r#"{"fields": [{"name": "a", "path": "p", "dims": [4], "type": "i8"}]}"#,
            r#"{"fields": []}"#,
            r#"[{"name": "a", "path": "p", "dims": [4]}] extra"#,
        ] {
            assert!(parse_manifest(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn deep_nesting_rejected() {
        let doc = format!("{}{}", "[".repeat(200), "]".repeat(200));
        assert!(parse_manifest(&doc).is_err());
    }
}
