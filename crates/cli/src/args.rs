//! Tiny dependency-free argument parser.
//!
//! Grammar: `fpsnr <command> [--flag value]... [--switch]...`. Flags may be
//! given in any order; unknown flags are errors so typos fail loudly.

use std::collections::HashMap;

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: String,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take a value, per command.
const VALUE_FLAGS: &[&str] = &[
    "--input", "-i", "--output", "-o", "--recon", "-r", "--type", "--dims", "--mode", "--bins",
    "--dataset", "--res", "--psnr", "--seed", "--threads", "--block-size", "--out-dir",
    "--profile", "--ratio", "--ratio-tol", "--chunks", "--region", "--addr", "--cache-mb",
    "--predictor", "--budget", "--objective", "--manifest",
];
/// Boolean switches.
const SWITCHES: &[&str] = &["--no-lz", "--verify", "--quiet", "--transform"];

impl Args {
    /// Parse a raw argument vector (without the program name).
    ///
    /// # Errors
    /// Returns a human-readable message on unknown flags, missing values,
    /// or a missing command.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut it = argv.iter();
        let command = it
            .next()
            .ok_or_else(|| "missing command (try `fpsnr help`)".to_string())?
            .clone();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        while let Some(tok) = it.next() {
            if SWITCHES.contains(&tok.as_str()) {
                switches.push(tok.clone());
            } else if VALUE_FLAGS.contains(&tok.as_str()) {
                let val = it
                    .next()
                    .ok_or_else(|| format!("flag {tok} needs a value"))?;
                let canonical = match tok.as_str() {
                    "-i" => "--input",
                    "-o" => "--output",
                    "-r" => "--recon",
                    other => other,
                };
                flags.insert(canonical.to_string(), val.clone());
            } else {
                return Err(format!("unknown argument: {tok}"));
            }
        }
        Ok(Args {
            command,
            flags,
            switches,
        })
    }

    /// Value of a flag, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(|s| s.as_str())
    }

    /// Value of a required flag.
    ///
    /// # Errors
    /// Message naming the missing flag.
    pub fn require(&self, flag: &str) -> Result<&str, String> {
        self.get(flag)
            .ok_or_else(|| format!("missing required flag {flag}"))
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// Parse `--dims 100x500x500` into extents.
    ///
    /// # Errors
    /// Message on malformed dimension strings.
    pub fn dims(&self) -> Result<Vec<usize>, String> {
        let raw = self.require("--dims")?;
        let dims: Result<Vec<usize>, _> = raw.split('x').map(|p| p.parse::<usize>()).collect();
        let dims = dims.map_err(|e| format!("bad --dims {raw}: {e}"))?;
        if dims.is_empty() || dims.len() > 3 || dims.contains(&0) {
            return Err(format!("--dims must be 1-3 nonzero extents, got {raw}"));
        }
        Ok(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Result<Args, String> {
        let v: Vec<String> = toks.iter().map(|s| s.to_string()).collect();
        Args::parse(&v)
    }

    #[test]
    fn basic_parse() {
        let a = parse(&["compress", "-i", "in.raw", "--mode", "psnr:80", "--no-lz"]).unwrap();
        assert_eq!(a.command, "compress");
        assert_eq!(a.get("--input"), Some("in.raw"));
        assert_eq!(a.get("--mode"), Some("psnr:80"));
        assert!(a.has("--no-lz"));
        assert!(!a.has("--verify"));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["compress", "--bogus", "1"]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["compress", "--input"]).is_err());
    }

    #[test]
    fn missing_command_rejected() {
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn dims_parse() {
        let a = parse(&["compress", "--dims", "100x500x500"]).unwrap();
        assert_eq!(a.dims().unwrap(), vec![100, 500, 500]);
        let a = parse(&["compress", "--dims", "1800x3600"]).unwrap();
        assert_eq!(a.dims().unwrap(), vec![1800, 3600]);
    }

    #[test]
    fn bad_dims_rejected() {
        for bad in ["0x5", "axb", "1x2x3x4", ""] {
            let a = parse(&["c", "--dims", bad]).unwrap();
            assert!(a.dims().is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&["compress"]).unwrap();
        let err = a.require("--input").unwrap_err();
        assert!(err.contains("--input"));
    }
}
