//! End-to-end tests driving the `fpsnr` binary.

use std::path::PathBuf;
use std::process::Command;

fn fpsnr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpsnr"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpsnr_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tmpdir");
    dir
}

fn write_test_field(path: &std::path::Path, rows: usize, cols: usize) {
    let mut bytes = Vec::with_capacity(rows * cols * 4);
    for i in 0..rows {
        for j in 0..cols {
            let v = ((i as f32 * 0.1).sin() + (j as f32 * 0.07).cos()) * 8.0;
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    std::fs::write(path, bytes).expect("write raw");
}

/// Non-separable texture: a pure `f(i)+g(j)` field is predicted exactly
/// by Lorenzo-2D, leaving a degenerate rate curve no ratio target can
/// invert — the product term keeps the fixed-ratio tests meaningful.
fn write_textured_field(path: &std::path::Path, rows: usize, cols: usize) {
    let mut bytes = Vec::with_capacity(rows * cols * 4);
    for i in 0..rows {
        for j in 0..cols {
            let x = i as f32 * 0.11;
            let y = j as f32 * 0.13;
            let v = 20.0 * (x.sin() + (y * 0.7).cos()) + 3.0 * ((x * 3.7).sin() * (y * 2.9).cos());
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    std::fs::write(path, bytes).expect("write raw");
}

#[test]
fn help_lists_commands() {
    let out = fpsnr().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["compress", "decompress", "analyze", "gen", "eval"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn compress_decompress_analyze_cycle() {
    let dir = tmpdir("cycle");
    let raw = dir.join("in.raw");
    let szr = dir.join("out.szr");
    let back = dir.join("back.raw");
    write_test_field(&raw, 40, 50);

    let out = fpsnr()
        .args([
            "compress", "-i", raw.to_str().unwrap(), "-o", szr.to_str().unwrap(),
            "--type", "f32", "--dims", "40x50", "--mode", "psnr:80", "--verify",
        ])
        .output()
        .expect("run compress");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("eb_rel"), "no Eq. 8 trace: {text}");
    assert!(text.contains("PSNR"), "no verify output: {text}");

    let out = fpsnr()
        .args([
            "decompress", "-i", szr.to_str().unwrap(), "-o", back.to_str().unwrap(),
        ])
        .output()
        .expect("run decompress");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::metadata(&back).unwrap().len(),
        40 * 50 * 4,
        "decompressed size mismatch"
    );

    let out = fpsnr()
        .args([
            "analyze", "-i", raw.to_str().unwrap(), "-r", back.to_str().unwrap(),
            "--type", "f32", "--dims", "40x50",
        ])
        .output()
        .expect("run analyze");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PSNR"), "analyze output: {text}");

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn abs_mode_round_trip() {
    let dir = tmpdir("abs");
    let raw = dir.join("in.raw");
    let szr = dir.join("out.szr");
    write_test_field(&raw, 16, 16);
    let out = fpsnr()
        .args([
            "compress", "-i", raw.to_str().unwrap(), "-o", szr.to_str().unwrap(),
            "--type", "f32", "--dims", "16x16", "--mode", "abs:0.01",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn gen_writes_manifest_and_fields() {
    let dir = tmpdir("gen");
    let out = fpsnr()
        .args([
            "gen", "--dataset", "nyx", "--res", "small",
            "--out-dir", dir.to_str().unwrap(), "--seed", "7",
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).expect("manifest");
    assert!(manifest.contains("baryon_density.f32"));
    let meta = std::fs::metadata(dir.join("baryon_density.f32")).expect("field file");
    assert_eq!(meta.len(), 16 * 16 * 16 * 4);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn eval_reports_summary() {
    let out = fpsnr()
        .args([
            "eval", "--dataset", "nyx", "--psnr", "60", "--res", "small",
            "--seed", "3", "--quiet",
        ])
        .output()
        .expect("run eval");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("AVG"), "no summary: {text}");
    assert!(text.contains("meet-rate"));
}

#[test]
fn budget_mode_fits_requested_size() {
    let dir = tmpdir("budget");
    let raw = dir.join("in.raw");
    let szr = dir.join("out.szr");
    write_test_field(&raw, 64, 64);
    let budget = 4096usize; // 1/4 of raw
    let out = fpsnr()
        .args([
            "compress", "-i", raw.to_str().unwrap(), "-o", szr.to_str().unwrap(),
            "--type", "f32", "--dims", "64x64",
            "--mode", &format!("budget:{budget}"),
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let size = std::fs::metadata(&szr).unwrap().len() as usize;
    assert!(size <= budget, "container {size} > budget {budget}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn transform_codec_cycle() {
    let dir = tmpdir("xfm");
    let raw = dir.join("in.raw");
    let szr = dir.join("out.xfm");
    let back = dir.join("back.raw");
    write_test_field(&raw, 32, 32);
    let out = fpsnr()
        .args([
            "compress", "-i", raw.to_str().unwrap(), "-o", szr.to_str().unwrap(),
            "--type", "f32", "--dims", "32x32", "--mode", "psnr:70",
            "--transform", "--verify",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = fpsnr()
        .args(["decompress", "-i", szr.to_str().unwrap(), "-o", back.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::metadata(&back).unwrap().len(), 32 * 32 * 4);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn f64_compress_decompress_cycle() {
    let dir = tmpdir("f64");
    let raw = dir.join("in.raw");
    let szr = dir.join("out.szr");
    let back = dir.join("back.raw");
    let mut bytes = Vec::new();
    for i in 0..400usize {
        let v = (i as f64 * 0.01).sin() * 3.0;
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(&raw, bytes).expect("write raw");

    let out = fpsnr()
        .args([
            "compress", "-i", raw.to_str().unwrap(), "-o", szr.to_str().unwrap(),
            "--type", "f64", "--dims", "20x20", "--mode", "psnr:90", "--verify",
        ])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = fpsnr()
        .args(["decompress", "-i", szr.to_str().unwrap(), "-o", back.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::metadata(&back).unwrap().len(), 400 * 8);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn ratio_mode_round_trip_lands_in_band() {
    let dir = tmpdir("ratio");
    let raw = dir.join("in.raw");
    let szr = dir.join("out.szr");
    let back = dir.join("back.raw");
    write_textured_field(&raw, 128, 160);

    let out = fpsnr()
        .args([
            "compress", "-i", raw.to_str().unwrap(), "-o", szr.to_str().unwrap(),
            "--type", "f32", "--dims", "128x160", "--ratio", "10", "--ratio-tol", "0.1",
        ])
        .output()
        .expect("run compress");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fixed-ratio: target 10x"), "no ratio trace: {text}");
    assert!(
        !text.contains("outside tolerance"),
        "driver missed the band: {text}"
    );
    let raw_len = std::fs::metadata(&raw).unwrap().len() as f64;
    let szr_len = std::fs::metadata(&szr).unwrap().len() as f64;
    let achieved = raw_len / szr_len;
    assert!(
        (achieved / 10.0 - 1.0).abs() <= 0.1,
        "file sizes say {achieved:.2}x, wanted 10x +/-10%"
    );

    let out = fpsnr()
        .args(["decompress", "-i", szr.to_str().unwrap(), "-o", back.to_str().unwrap()])
        .output()
        .expect("run decompress");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::metadata(&back).unwrap().len(), 128 * 160 * 4);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn ratio_flag_conflicts_are_rejected() {
    let dir = tmpdir("ratio_conflict");
    let raw = dir.join("in.raw");
    write_textured_field(&raw, 16, 16);
    let base = [
        "compress", "-i", raw.to_str().unwrap(), "-o", "/dev/null",
        "--type", "f32", "--dims", "16x16",
    ];

    // --ratio and --mode are two answers to the same question.
    let out = fpsnr()
        .args(base)
        .args(["--ratio", "10", "--mode", "psnr:80"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--ratio replaces --mode"));

    // --ratio-tol without --ratio is meaningless.
    let out = fpsnr()
        .args(base)
        .args(["--ratio-tol", "0.2"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs --ratio"));

    // The transform codec has no rate model.
    let out = fpsnr()
        .args(base)
        .args(["--ratio", "10", "--transform"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--transform"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn inspect_and_verify_exit_codes_distinguish_damage() {
    let dir = tmpdir("verify_exit");
    let raw = dir.join("in.raw");
    let szr = dir.join("out.szr");
    write_textured_field(&raw, 48, 64);
    let out = fpsnr()
        .args([
            "compress", "-i", raw.to_str().unwrap(), "-o", szr.to_str().unwrap(),
            "--type", "f32", "--dims", "48x64", "--mode", "psnr:80",
        ])
        .output()
        .expect("run compress");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Clean container: both report success.
    for cmd in ["inspect", "verify"] {
        let out = fpsnr()
            .args([cmd, "-i", szr.to_str().unwrap()])
            .output()
            .expect("run");
        assert!(out.status.success(), "{cmd} failed on a clean container");
    }
    let out = fpsnr()
        .args(["verify", "-i", szr.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(String::from_utf8_lossy(&out.stdout).contains("verify: OK"));

    // Flip one payload byte: inspect stays informational (exit 0),
    // verify becomes the machine-checkable gate (exit 1).
    let mut bytes = std::fs::read(&szr).expect("read container");
    let n = bytes.len();
    bytes[n - 10] ^= 0xFF;
    std::fs::write(&szr, bytes).expect("write damaged");

    let out = fpsnr()
        .args(["inspect", "-i", szr.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(out.status.success(), "inspect must not fail on damage");

    let out = fpsnr()
        .args(["verify", "-i", szr.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(!out.status.success(), "verify accepted a damaged container");
    assert!(!out.stderr.is_empty());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn bad_arguments_exit_nonzero_with_message() {
    let out = fpsnr().args(["compress", "--bogus"]).output().expect("run");
    assert!(!out.status.success());
    assert!(!out.stderr.is_empty());

    let out = fpsnr()
        .args(["eval", "--dataset", "marsclimate", "--psnr", "60"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn snapshot_allocates_generated_dataset_within_budget() {
    let out = fpsnr()
        .args([
            "snapshot", "--dataset", "nyx", "--res", "small", "--budget", "8KiB",
            "--threads", "2",
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("field,assigned_psnr"), "missing table header");
    assert!(text.contains("allocated 6 fields"), "missing summary: {text}");
    // The budget line reports total/budget; parse and check compliance.
    let summary = text
        .lines()
        .find(|l| l.starts_with("allocated"))
        .expect("summary line");
    let total: u64 = summary
        .split(": ")
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("total bytes");
    assert!(total as f64 <= 8192.0 * 1.02, "budget busted: {total}");
}

#[test]
fn snapshot_manifest_mixes_types_and_writes_containers() {
    let dir = tmpdir("snapshot_manifest");
    write_textured_field(&dir.join("a.f32"), 40, 50);
    write_textured_field(&dir.join("b.f32"), 32, 32);
    // An f64 field: doubled samples of the same texture.
    let mut bytes = Vec::new();
    for i in 0..24usize {
        for j in 0..24usize {
            let v = ((i as f64 * 0.11).sin() + (j as f64 * 0.13).cos()) * 5.0
                + (i as f64 * 0.37).sin() * (j as f64 * 0.29).cos();
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    std::fs::write(dir.join("c.f64"), bytes).expect("write f64 raw");
    let manifest = r#"{
        "fields": [
            {"name": "a", "path": "a.f32", "dims": [40, 50]},
            {"name": "b", "path": "b.f32", "dims": [32, 32], "weight": 2.0},
            {"name": "c", "path": "c.f64", "type": "f64", "dims": [24, 24]}
        ]
    }"#;
    let mpath = dir.join("fields.json");
    std::fs::write(&mpath, manifest).expect("write manifest");
    let outdir = dir.join("out");
    let out = fpsnr()
        .args([
            "snapshot", "--manifest", mpath.to_str().unwrap(), "--budget", "4096",
            "--objective", "weighted", "--out-dir", outdir.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("allocated 3 fields"), "{text}");
    for name in ["a.szr", "b.szr", "c.szr"] {
        assert!(outdir.join(name).exists(), "missing container {name}");
    }
    // The containers decode: run them through decompress.
    let back = dir.join("back.raw");
    let out = fpsnr()
        .args([
            "decompress", "-i", outdir.join("c.szr").to_str().unwrap(),
            "-o", back.to_str().unwrap(),
        ])
        .output()
        .expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("f64"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn snapshot_rejects_bad_budgets_and_objectives() {
    for bad in [
        vec!["snapshot", "--dataset", "nyx", "--res", "small"], // no budget
        vec!["snapshot", "--dataset", "nyx", "--budget", "0"],
        vec!["snapshot", "--dataset", "nyx", "--budget", "12parsecs"],
        vec![
            "snapshot", "--dataset", "nyx", "--budget", "1MiB", "--objective", "fastest",
        ],
        vec!["snapshot", "--budget", "1MiB"], // no source
    ] {
        let out = fpsnr().args(&bad).output().expect("run");
        assert!(!out.status.success(), "{bad:?} accepted");
        assert!(!out.stderr.is_empty());
    }
}
