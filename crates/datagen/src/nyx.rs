//! NYX-like 3-D cosmology fields (6 per snapshot).
//!
//! NYX dumps baryon/dark-matter density, temperature and the three velocity
//! components on a uniform grid. Densities in ΛCDM simulations are well
//! approximated by log-normal transforms of Gaussian random fields with
//! power-law spectra — enormous dynamic range concentrated in filaments —
//! while velocities stay near-Gaussian and smooth. That mix is what gives
//! NYX its Table II behaviour (tight at high PSNR targets, a couple of dB
//! of overshoot at 20 dB).

use crate::grf::grf_3d;
use crate::registry::{DatasetId, DatasetSpec, Resolution};
use crate::{field_seed, NamedField};
use ndfield::{Field, Shape};

/// The six NYX field names.
pub const NAMES: [&str; 6] = [
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
];

/// Generate the 6 NYX-like fields at a resolution.
///
/// # Panics
/// Panics at `Resolution::Paper` on machines without ~200 GB of RAM — the
/// 2048³ grid is provided for fidelity, the harness uses `Default`.
pub fn fields(res: Resolution, master_seed: u64) -> Vec<NamedField> {
    let Shape::D3(d0, d1, d2) = DatasetSpec::of(DatasetId::Nyx).shape(res) else {
        unreachable!("NYX is 3-D")
    };
    // One matter GRF drives both densities and (loosely) the temperature,
    // mirroring the physical correlation between the real fields.
    let delta = grf_3d(d0, d1, d2, 3.2, field_seed(master_seed, "matter"));
    let delta2 = grf_3d(d0, d1, d2, 3.2, field_seed(master_seed, "matter2"));
    let make = |f: &dyn Fn(usize) -> f64| -> Field<f32> {
        Field::from_fn_linear(Shape::D3(d0, d1, d2), |lin| f(lin) as f32)
    };
    let mean_density = 2.0e-31; // g/cm³-scale like NYX's baryon density
    NAMES
        .iter()
        .map(|&name| {
            let data = match name {
                // Log-normal densities: exp(b·δ), filamentary, huge range.
                "baryon_density" => make(&|lin| mean_density * (1.4 * delta[lin]).exp()),
                "dark_matter_density" => make(&|lin| {
                    5.0 * mean_density * (1.6 * (0.8 * delta[lin] + 0.6 * delta2[lin])).exp()
                }),
                // Temperature: adiabatic coupling T ∝ ρ^{2/3} around 1e4 K.
                "temperature" => make(&|lin| {
                    1.0e4 * ((2.0 / 3.0) * 1.4 * delta[lin]).exp()
                        * (0.3 * delta2[lin]).exp()
                }),
                // Peculiar velocities: smooth GRFs, ~100 km/s in cm/s units.
                "velocity_x" | "velocity_y" | "velocity_z" => {
                    let v = grf_3d(d0, d1, d2, 5.0, field_seed(master_seed, name));
                    Field::from_fn_linear(Shape::D3(d0, d1, d2), |lin| {
                        (1.0e7 * v[lin]) as f32
                    })
                }
                other => unreachable!("unknown NYX field {other}"),
            };
            NamedField {
                name: name.to_string(),
                data,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> NamedField {
        fields(Resolution::Small, 17)
            .into_iter()
            .find(|f| f.name == name)
            .unwrap()
    }

    #[test]
    fn six_fields_with_nyx_names() {
        let fs = fields(Resolution::Small, 1);
        assert_eq!(fs.len(), 6);
        for (f, n) in fs.iter().zip(NAMES) {
            assert_eq!(f.name, n);
        }
    }

    #[test]
    fn densities_positive_with_large_dynamic_range() {
        for name in ["baryon_density", "dark_matter_density"] {
            let f = by_name(name);
            let stats = f.data.stats();
            assert!(stats.min > 0.0, "{name} has non-positive density");
            assert!(
                stats.max / stats.min > 20.0,
                "{name} dynamic range too small: {}",
                stats.max / stats.min
            );
        }
    }

    #[test]
    fn temperature_positive_and_correlated_with_density() {
        let t = by_name("temperature");
        let d = by_name("baryon_density");
        assert!(t.data.as_slice().iter().all(|&v| v > 0.0));
        // Pearson correlation of log-values should be clearly positive.
        let lt: Vec<f64> = t.data.as_slice().iter().map(|&v| (v as f64).ln()).collect();
        let ld: Vec<f64> = d.data.as_slice().iter().map(|&v| (v as f64).ln()).collect();
        let n = lt.len() as f64;
        let (mt, md) = (
            lt.iter().sum::<f64>() / n,
            ld.iter().sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut vt = 0.0;
        let mut vd = 0.0;
        for (a, b) in lt.iter().zip(&ld) {
            cov += (a - mt) * (b - md);
            vt += (a - mt) * (a - mt);
            vd += (b - md) * (b - md);
        }
        let corr = cov / (vt.sqrt() * vd.sqrt());
        assert!(corr > 0.5, "log T / log rho correlation {corr}");
    }

    #[test]
    fn velocities_are_signed_and_distinct() {
        let vx = by_name("velocity_x");
        let vy = by_name("velocity_y");
        let sx = vx.data.stats();
        assert!(sx.min < 0.0 && sx.max > 0.0);
        assert_ne!(vx.data.as_slice(), vy.data.as_slice());
    }

    #[test]
    fn velocity_magnitudes_are_nyx_scale() {
        let v = by_name("velocity_x");
        let stats = v.data.stats();
        // cm/s units: typical |v| between 1e5 and 1e9.
        assert!(stats.max.abs() > 1e5 && stats.max.abs() < 1e9, "{stats:?}");
    }

    #[test]
    fn all_samples_finite() {
        for f in fields(Resolution::Small, 4) {
            assert!(
                f.data.as_slice().iter().all(|v| v.is_finite()),
                "{} non-finite",
                f.name
            );
        }
    }
}
