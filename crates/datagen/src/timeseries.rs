//! Time-evolving snapshot sequences.
//!
//! The paper's introduction motivates lossy compression with HACC's
//! *temporal decimation*: storage pressure forces dumping only every k-th
//! snapshot, "degrading the consecutiveness of simulation in time". To
//! reproduce that trade-off study we need a field that evolves smoothly in
//! time: value-noise sampled on a space–time lattice with slow advection,
//! so consecutive snapshots are strongly correlated (like real simulation
//! output) while distant ones decorrelate.

use crate::noise::{fbm_3d, max_octaves};
use ndfield::Field;

/// Parameters of a drifting 2-D scalar field.
#[derive(Debug, Clone, Copy)]
pub struct DriftField {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Large-scale features across the domain.
    pub features: f64,
    /// Advection speed in feature-lengths per unit time.
    pub drift: f64,
    /// Rate of intrinsic evolution (decorrelation) per unit time.
    pub churn: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for DriftField {
    fn default() -> Self {
        DriftField {
            rows: 64,
            cols: 96,
            features: 6.0,
            drift: 0.35,
            churn: 0.2,
            seed: 42,
        }
    }
}

impl DriftField {
    /// Evaluate the snapshot at time `t` (any real value; snapshots vary
    /// smoothly and deterministically with `t`).
    pub fn at(&self, t: f64) -> Field<f32> {
        let su = self.features / self.rows as f64;
        let sv = self.features / self.cols as f64;
        let du = su.max(sv);
        let oct = 4u32.min(max_octaves(du, 4.0));
        Field::from_fn_2d(self.rows, self.cols, |i, j| {
            let u = i as f64 * su;
            let v = j as f64 * sv + t * self.drift;
            let w = t * self.churn;
            let base = fbm_3d(u, v, w, self.seed, oct, 0.55);
            let detail = 0.3 * fbm_3d(u * 2.0, v * 2.0, w, self.seed ^ 0x5bd1, oct, 0.5);
            ((base + detail) * 10.0) as f32
        })
    }

    /// A sequence of `n` snapshots at spacing `dt`.
    pub fn series(&self, n: usize, dt: f64) -> Vec<Field<f32>> {
        (0..n).map(|k| self.at(k as f64 * dt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlation(a: &Field<f32>, b: &Field<f32>) -> f64 {
        let n = a.len() as f64;
        let (ma, mb) = (
            a.as_slice().iter().map(|&v| v as f64).sum::<f64>() / n,
            b.as_slice().iter().map(|&v| v as f64).sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
            cov += (x as f64 - ma) * (y as f64 - mb);
            va += (x as f64 - ma).powi(2);
            vb += (y as f64 - mb).powi(2);
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn series_is_deterministic() {
        let df = DriftField::default();
        let a = df.series(3, 0.5);
        let b = df.series(3, 0.5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn consecutive_snapshots_strongly_correlated() {
        let df = DriftField::default();
        let s = df.series(2, 0.1);
        let r = correlation(&s[0], &s[1]);
        assert!(r > 0.9, "dt=0.1 correlation {r}");
    }

    #[test]
    fn distant_snapshots_decorrelate() {
        let df = DriftField::default();
        let near = correlation(&df.at(0.0), &df.at(0.2));
        let far = correlation(&df.at(0.0), &df.at(20.0));
        assert!(
            far < near,
            "temporal structure missing: near {near}, far {far}"
        );
        assert!(far < 0.6, "far snapshots still correlated: {far}");
    }

    #[test]
    fn snapshots_are_finite_and_nonconstant() {
        let df = DriftField::default();
        for f in df.series(4, 1.0) {
            assert!(f.as_slice().iter().all(|v| v.is_finite()));
            assert!(f.value_range() > 0.0);
        }
    }
}
