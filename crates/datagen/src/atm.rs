//! CESM-ATM-like 2-D climate fields (79 per snapshot).
//!
//! The real ATM dumps hold 79 single-precision 2-D lat×lon fields with very
//! different characters — bounded cloud fractions, smooth temperature and
//! pressure fields, signed winds, spiky precipitation, trace-gas fields
//! with tiny magnitudes. Two properties of production climate fields matter
//! for fixed-PSNR fidelity, and both are reproduced deliberately:
//!
//! 1. **Smoothness at the sample scale** — octave counts are capped so the
//!    finest texture wavelength spans several grid cells
//!    ([`crate::noise::max_octaves`]); production 1800×3600 fields are far
//!    smoother per sample than naive noise.
//! 2. **Exactly-constant regions** — land/ocean masks, fill values,
//!    saturated cloud fractions and dry zones make a large share of samples
//!    *exactly* predictable (zero prediction error). Those samples
//!    contribute zero distortion instead of the uniform model's `δ²/12`,
//!    which is precisely why real SZ lands slightly *above* the Eq. 7
//!    estimate (the paper's "meet the demand" behaviour in Fig. 2).
//!
//! All 79 fields share one planet: a common land mask and polar geometry
//! derived from the master seed, with per-field texture seeds on top.

use crate::noise::{fbm_2d, max_octaves};
use crate::registry::{DatasetId, DatasetSpec, Resolution};
use crate::{field_seed, NamedField};
use ndfield::{Field, Shape};

/// Generator archetypes for the 79 ATM-like fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Cloud fraction in `[0, 1]` with saturated (exact 0/1) regions.
    CloudFraction,
    /// Temperature-like: ~200–310 K with a strong meridional gradient.
    Temperature,
    /// Sea-surface temperature: ocean only, constant fill over land.
    SeaSurface,
    /// Pressure-like: ~5e4–1.05e5 Pa, very smooth.
    Pressure,
    /// Surface geopotential: exactly 0 over ocean, terrain over land.
    Terrain,
    /// Radiative-flux-like: non-negative, up to ~500 W/m².
    Flux,
    /// Top-of-atmosphere insolation: purely zonal (function of latitude
    /// only) — exactly Lorenzo-predictable away from the first column.
    Zonal,
    /// Wind-like: signed, ±40 m/s.
    Wind,
    /// Humidity-like: non-negative, decaying away from the "equator".
    Humidity,
    /// Precipitation-like: sparse, heavy-tailed, mostly exactly zero.
    Precip,
    /// Snow/ice depth: exactly zero outside high latitudes.
    Snow,
    /// Land fraction: saturated mask (mostly exact 0/1).
    LandMask,
    /// Ocean fraction: complement of the land mask.
    OceanMask,
    /// Sea-ice fraction: polar caps, exact zero elsewhere.
    IceMask,
    /// Trace-species-like: tiny magnitudes around 1e-9..1e-6.
    Trace,
}

/// The 79 field descriptors. Names follow CESM-ATM conventions; kinds give
/// each a distinct, plausible statistical character.
const FIELDS: [(&str, Kind); 79] = [
    ("CLDHGH", Kind::CloudFraction),
    ("CLDLOW", Kind::CloudFraction),
    ("CLDMED", Kind::CloudFraction),
    ("CLDTOT", Kind::CloudFraction),
    ("CLOUD", Kind::CloudFraction),
    ("CONCLD", Kind::CloudFraction),
    ("FREQZM", Kind::CloudFraction),
    ("FICE", Kind::CloudFraction),
    ("TS", Kind::Temperature),
    ("TSMN", Kind::Temperature),
    ("TSMX", Kind::Temperature),
    ("TREFHT", Kind::Temperature),
    ("TREFHTMN", Kind::Temperature),
    ("TREFHTMX", Kind::Temperature),
    ("T850", Kind::Temperature),
    ("T500", Kind::Temperature),
    ("T200", Kind::Temperature),
    ("SST", Kind::SeaSurface),
    ("PS", Kind::Pressure),
    ("PSL", Kind::Pressure),
    ("PHIS", Kind::Terrain),
    ("P850", Kind::Pressure),
    ("P500", Kind::Pressure),
    ("FLDS", Kind::Flux),
    ("FLNS", Kind::Flux),
    ("FLNSC", Kind::Flux),
    ("FLNT", Kind::Flux),
    ("FLNTC", Kind::Flux),
    ("FLUT", Kind::Flux),
    ("FLUTC", Kind::Flux),
    ("FSDS", Kind::Flux),
    ("FSDSC", Kind::Flux),
    ("FSNS", Kind::Flux),
    ("FSNSC", Kind::Flux),
    ("FSNT", Kind::Flux),
    ("FSNTC", Kind::Flux),
    ("FSNTOA", Kind::Flux),
    ("FSNTOAC", Kind::Flux),
    ("LHFLX", Kind::Flux),
    ("SHFLX", Kind::Flux),
    ("QRL", Kind::Flux),
    ("QRS", Kind::Flux),
    ("SOLIN", Kind::Zonal),
    ("SRFRAD", Kind::Flux),
    ("U10", Kind::Wind),
    ("UBOT", Kind::Wind),
    ("VBOT", Kind::Wind),
    ("U850", Kind::Wind),
    ("V850", Kind::Wind),
    ("U500", Kind::Wind),
    ("V500", Kind::Wind),
    ("U200", Kind::Wind),
    ("V200", Kind::Wind),
    ("TAUX", Kind::Wind),
    ("TAUY", Kind::Wind),
    ("USTAR", Kind::Wind),
    ("QREFHT", Kind::Humidity),
    ("QBOT", Kind::Humidity),
    ("Q850", Kind::Humidity),
    ("Q500", Kind::Humidity),
    ("Q200", Kind::Humidity),
    ("RELHUM", Kind::Humidity),
    ("RHREFHT", Kind::Humidity),
    ("TMQ", Kind::Humidity),
    ("PRECC", Kind::Precip),
    ("PRECL", Kind::Precip),
    ("PRECSC", Kind::Precip),
    ("PRECSL", Kind::Precip),
    ("PRECT", Kind::Precip),
    ("PRECTMX", Kind::Precip),
    ("SNOWHLND", Kind::Snow),
    ("SNOWHICE", Kind::Snow),
    ("ICEFRAC", Kind::IceMask),
    ("LANDFRAC", Kind::LandMask),
    ("OCNFRAC", Kind::OceanMask),
    ("AEROD_v", Kind::Trace),
    ("BURDEN1", Kind::Trace),
    ("BURDEN2", Kind::Trace),
    ("BURDEN3", Kind::Trace),
];

/// Per-sample evaluation context shared by all kinds.
struct Ctx {
    /// Latitude coordinate in `[-1, 1]` (pole to pole).
    lat: f64,
    /// Noise-space coordinates (resolution-independent feature size).
    u: f64,
    v: f64,
    /// Noise units advanced per grid sample (for octave capping).
    du: f64,
    /// Per-field texture seed.
    seed: u64,
    /// Shared-planet land value in `[0, 1]`: saturated mask, mostly exact
    /// 0 (ocean) or exact 1 (land).
    land: f64,
}

impl Ctx {
    /// Octave-capped fBm texture at a frequency multiple of the base scale.
    fn tex(&self, scale: f64, want_octaves: u32, gain: f64) -> f64 {
        let oct = want_octaves.min(max_octaves(self.du * scale, 6.0));
        fbm_2d(self.u * scale, self.v * scale, self.seed, oct, gain)
    }
}

/// Saturating ramp: exact 0 below `lo`, exact 1 above `hi`, smoothstep
/// between — the shape of fraction/mask fields in production dumps.
#[inline]
fn saturate(x: f64, lo: f64, hi: f64) -> f64 {
    if x <= lo {
        0.0
    } else if x >= hi {
        1.0
    } else {
        let t = (x - lo) / (hi - lo);
        t * t * (3.0 - 2.0 * t)
    }
}

/// Shared-planet land value (same continents in every field of a snapshot).
fn land_value(u: f64, v: f64, du: f64, lat: f64, master: u64) -> f64 {
    let seed = field_seed(master, "__planet_land__");
    let oct = 4u32.min(max_octaves(du * 1.3, 6.0));
    let continents = fbm_2d(u * 1.3, v * 1.3, seed, oct, 0.5);
    // Slight poleward land bias; saturate into a nearly binary mask.
    saturate(continents + 0.15 * lat * lat, 0.02, 0.14)
}

fn sample(kind: Kind, ctx: &Ctx) -> f64 {
    let lat = ctx.lat;
    match kind {
        Kind::CloudFraction => {
            let bands = (lat * std::f64::consts::PI * 3.0).cos() * 0.35;
            let tex = ctx.tex(2.0, 4, 0.55);
            // Saturated: clear-sky holes are exact 0, overcast decks exact 1.
            saturate(0.5 + bands + 1.1 * tex, 0.18, 0.82)
        }
        Kind::Temperature => {
            let meridional = 302.0 - 74.0 * lat * lat;
            meridional + 6.0 * ctx.tex(1.0, 3, 0.5) - 12.0 * ctx.land * (0.3 + lat * lat)
        }
        Kind::SeaSurface => {
            if ctx.land >= 1.0 {
                // Fill value over land, bit-exact across the region.
                271.35
            } else {
                let open = 300.0 - 28.0 * lat * lat + 2.5 * ctx.tex(1.5, 3, 0.5);
                // Blend only in the narrow coastal transition band.
                271.35 * ctx.land + open * (1.0 - ctx.land)
            }
        }
        Kind::Pressure => {
            101_325.0 - 3_000.0 * lat * lat + 700.0 * ctx.tex(0.7, 3, 0.5)
        }
        Kind::Terrain => {
            if ctx.land <= 0.0 {
                0.0 // geopotential is exactly zero over ocean
            } else {
                let relief = (ctx.tex(2.5, 4, 0.6) + 0.6).max(0.0);
                ctx.land * 9.8 * 1200.0 * relief * relief
            }
        }
        Kind::Flux => {
            let insolation = (1.0 - 0.72 * lat * lat).max(0.05);
            let tex = 0.7 + 0.3 * ctx.tex(1.0, 3, 0.45);
            430.0 * insolation * tex
        }
        Kind::Zonal => {
            // Purely meridional: every row is constant, so the 2-D Lorenzo
            // stencil predicts it exactly (zero error away from column 0).
            1361.0 * (1.0 - 0.75 * lat * lat).max(0.0)
        }
        Kind::Wind => {
            let jet = 26.0 * (lat * std::f64::consts::PI * 2.0).sin();
            jet + 5.0 * ctx.tex(1.5, 3, 0.5)
        }
        Kind::Humidity => {
            let column = (-3.0 * lat * lat).exp();
            let tex = (0.9 * ctx.tex(1.2, 3, 0.5)).exp();
            0.02 * column * tex
        }
        Kind::Precip => {
            // Mostly exactly dry; convective cells where fBm exceeds a
            // threshold (heavy right tail).
            let cell = ctx.tex(3.0, 4, 0.6);
            let band = (-8.0 * lat * lat).exp() + 0.15;
            let active = (cell - 0.32).max(0.0);
            2.0e-7 * band * active * active * 40.0
        }
        Kind::Snow => {
            // Snow depth only on cold high-latitude land; elsewhere exact 0.
            let cold = (lat.abs() - 0.45).max(0.0) / 0.55;
            let pack = (ctx.tex(2.0, 3, 0.5) + 0.7).max(0.0);
            ctx.land * cold * cold * 1.2 * pack
        }
        Kind::LandMask => ctx.land,
        Kind::OceanMask => 1.0 - ctx.land,
        Kind::IceMask => {
            let polar = (lat.abs() - 0.62).max(0.0) / 0.38;
            if polar <= 0.0 {
                0.0
            } else {
                saturate(polar * 1.4 + 0.25 * ctx.tex(2.0, 3, 0.5), 0.15, 0.75)
            }
        }
        Kind::Trace => {
            let plume = ctx.tex(1.8, 4, 0.5);
            1.0e-7 * (2.5 * plume).exp()
        }
    }
}

/// Generate the 79 ATM-like fields at a resolution.
pub fn fields(res: Resolution, master_seed: u64) -> Vec<NamedField> {
    let Shape::D2(rows, cols) = DatasetSpec::of(DatasetId::Atm).shape(res) else {
        unreachable!("ATM is 2-D")
    };
    FIELDS
        .iter()
        .map(|&(name, kind)| NamedField {
            name: name.to_string(),
            data: generate_one(name, kind, rows, cols, master_seed),
        })
        .collect()
}

/// Generate one named ATM field (used by the Fig. 1 harness, which needs a
/// single field rather than the snapshot).
pub fn field_by_name(name: &str, res: Resolution, master_seed: u64) -> Option<NamedField> {
    let Shape::D2(rows, cols) = DatasetSpec::of(DatasetId::Atm).shape(res) else {
        unreachable!("ATM is 2-D")
    };
    FIELDS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(name, kind)| NamedField {
            name: name.to_string(),
            data: generate_one(name, kind, rows, cols, master_seed),
        })
}

/// Names of all 79 fields, in snapshot order.
pub fn field_names() -> Vec<&'static str> {
    FIELDS.iter().map(|(n, _)| *n).collect()
}

fn generate_one(name: &str, kind: Kind, rows: usize, cols: usize, master: u64) -> Field<f32> {
    let seed = field_seed(master, name);
    // ~6 large-scale features across the globe, resolution-independent.
    let su = 6.0 / rows as f64;
    let sv = 6.0 / cols as f64;
    let du = su.max(sv);
    Field::from_fn_2d(rows, cols, |i, j| {
        let lat = 2.0 * (i as f64 + 0.5) / rows as f64 - 1.0;
        let (u, v) = (i as f64 * su, j as f64 * sv);
        let ctx = Ctx {
            lat,
            u,
            v,
            du,
            seed,
            land: land_value(u, v, du, lat, master),
        };
        sample(kind, &ctx) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_79_fields_with_unique_names() {
        let fs = fields(Resolution::Small, 1);
        assert_eq!(fs.len(), 79);
        let mut names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 79, "duplicate field names");
    }

    #[test]
    fn cloud_fractions_are_bounded_with_saturation() {
        let f = field_by_name("CLDHGH", Resolution::Small, 3).unwrap();
        let mut saturated = 0usize;
        for &v in f.data.as_slice() {
            assert!((0.0..=1.0).contains(&v), "cloud fraction {v}");
            if v == 0.0 || v == 1.0 {
                saturated += 1;
            }
        }
        assert!(
            saturated * 10 > f.data.len(),
            "expected saturated regions, got {saturated}/{}",
            f.data.len()
        );
    }

    #[test]
    fn temperature_is_plausible_kelvin() {
        let f = field_by_name("TS", Resolution::Small, 3).unwrap();
        let stats = f.data.stats();
        assert!(stats.min > 150.0 && stats.max < 340.0, "{stats:?}");
        assert!(stats.range() > 30.0);
    }

    #[test]
    fn sst_has_constant_land_fill() {
        let f = field_by_name("SST", Resolution::Small, 3).unwrap();
        let fill = f
            .data
            .as_slice()
            .iter()
            .filter(|&&v| v == 271.35)
            .count();
        assert!(
            fill * 10 > f.data.len(),
            "land fill region too small: {fill}/{}",
            f.data.len()
        );
    }

    #[test]
    fn phis_is_zero_over_ocean() {
        let f = field_by_name("PHIS", Resolution::Small, 3).unwrap();
        let zeros = f.data.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros * 4 > f.data.len(), "ocean zeros {zeros}/{}", f.data.len());
        assert!(f.data.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn solin_is_purely_zonal() {
        let f = field_by_name("SOLIN", Resolution::Small, 3).unwrap();
        let Shape::D2(rows, cols) = f.data.shape() else { panic!() };
        for i in 0..rows {
            let first = f.data.get(&[i, 0]);
            for j in 1..cols {
                assert_eq!(f.data.get(&[i, j]), first, "row {i} not constant");
            }
        }
    }

    #[test]
    fn masks_are_mostly_binary_and_complementary() {
        let land = field_by_name("LANDFRAC", Resolution::Small, 3).unwrap();
        let ocean = field_by_name("OCNFRAC", Resolution::Small, 3).unwrap();
        let binary = land
            .data
            .as_slice()
            .iter()
            .filter(|&&v| v == 0.0 || v == 1.0)
            .count();
        assert!(binary * 2 > land.data.len(), "mask not saturated: {binary}");
        for (&l, &o) in land.data.as_slice().iter().zip(ocean.data.as_slice()) {
            assert!((l + o - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn icefrac_zero_outside_polar_caps() {
        let f = field_by_name("ICEFRAC", Resolution::Small, 3).unwrap();
        let Shape::D2(rows, cols) = f.data.shape() else { panic!() };
        // Equatorial band must be exactly zero.
        for i in rows * 2 / 5..rows * 3 / 5 {
            for j in 0..cols {
                assert_eq!(f.data.get(&[i, j]), 0.0, "ice at equator ({i},{j})");
            }
        }
    }

    #[test]
    fn precip_is_sparse_and_nonnegative() {
        let f = field_by_name("PRECT", Resolution::Small, 3).unwrap();
        let zeros = f.data.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros * 3 > f.data.len(), "precip not sparse: {zeros} zeros");
        assert!(f.data.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn winds_are_signed() {
        let f = field_by_name("U850", Resolution::Small, 3).unwrap();
        let stats = f.data.stats();
        assert!(stats.min < -1.0 && stats.max > 1.0, "{stats:?}");
    }

    #[test]
    fn trace_fields_have_tiny_magnitudes() {
        let f = field_by_name("BURDEN1", Resolution::Small, 3).unwrap();
        let stats = f.data.stats();
        assert!(stats.max < 1e-4, "{stats:?}");
        assert!(stats.min > 0.0);
    }

    #[test]
    fn fields_differ_from_each_other() {
        let a = field_by_name("CLDHGH", Resolution::Small, 3).unwrap();
        let b = field_by_name("CLDLOW", Resolution::Small, 3).unwrap();
        assert_ne!(a.data.as_slice(), b.data.as_slice());
    }

    #[test]
    fn unknown_field_name_is_none() {
        assert!(field_by_name("NOPE", Resolution::Small, 3).is_none());
    }

    #[test]
    fn resolution_scales_shape() {
        let small = field_by_name("TS", Resolution::Small, 3).unwrap();
        let default = field_by_name("TS", Resolution::Default, 3).unwrap();
        assert!(default.data.len() > small.data.len());
    }

    #[test]
    fn all_samples_finite() {
        for f in fields(Resolution::Small, 5) {
            for &v in f.data.as_slice() {
                assert!(v.is_finite(), "{} has non-finite sample", f.name);
            }
        }
    }
}
