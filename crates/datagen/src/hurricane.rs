//! Hurricane-Isabel-like 3-D storm fields (13 per snapshot).
//!
//! Field names follow the real Isabel dump (QCLOUD … W). The synthetic
//! storm is a Rankine-style vortex: tangential winds peak on an eyewall
//! radius and decay outward and with altitude; a warm-core temperature
//! anomaly and a central pressure depression sit on top of smooth ambient
//! profiles; hydrometeor fields (QICE, QRAIN, …) are sparse, non-negative
//! and concentrated in the eyewall annulus — the heavy-tailed structure
//! that makes Hurricane the noisiest column of the paper's Table II.

use crate::noise::{fbm_3d, max_octaves};
use crate::registry::{DatasetId, DatasetSpec, Resolution};
use crate::{field_seed, NamedField};
use ndfield::{Field, Shape};

/// The 13 Isabel field names.
pub const NAMES: [&str; 13] = [
    "QCLOUD", "QGRAUP", "QICE", "QRAIN", "QSNOW", "QVAPOR", "CLOUD", "PRECIP", "P", "TC", "U",
    "V", "W",
];

/// Normalised storm geometry at a grid point.
struct Geometry {
    /// Radial distance from the storm centre in eyewall-radius units.
    r: f64,
    /// Azimuthal unit vector (x component).
    tx: f64,
    /// Azimuthal unit vector (y component).
    ty: f64,
    /// Normalised altitude in `[0, 1]`.
    h: f64,
}

fn geometry(i: usize, j: usize, k: usize, d0: usize, d1: usize, d2: usize) -> Geometry {
    // Storm centre offset from the domain centre so edge effects differ by
    // quadrant, like a real track snapshot.
    let cy = 0.55 * d1 as f64;
    let cx = 0.45 * d2 as f64;
    let dy = j as f64 - cy;
    let dx = k as f64 - cx;
    let dist = (dx * dx + dy * dy).sqrt();
    let eyewall = 0.12 * d1.min(d2) as f64;
    let r = dist / eyewall;
    let (tx, ty) = if dist > 1e-9 {
        (-dy / dist, dx / dist) // cyclonic rotation
    } else {
        (0.0, 0.0)
    };
    Geometry {
        r,
        tx,
        ty,
        h: i as f64 / (d0 - 1).max(1) as f64,
    }
}

/// Rankine-like tangential wind profile, peaking at `r = 1`.
#[inline]
fn vortex_speed(r: f64) -> f64 {
    if r <= 0.0 {
        0.0
    } else {
        r * (1.0 - r).exp()
    }
}

fn sample(name: &str, g: &Geometry, u: f64, v: f64, w: f64, du: f64, seed: u64) -> f64 {
    // Octave-capped turbulence: production storm fields are smooth at the
    // sample scale, so the finest texture wavelength spans >= 4 cells.
    let turb = |scale: f64, oct: u32| {
        let oct = oct.min(max_octaves(du * scale, 4.0));
        fbm_3d(u * scale, v * scale, w * scale, seed, oct, 0.55)
    };
    // Eyewall annulus mask for hydrometeors (peaks near r=1, zero far out).
    let annulus = (-((g.r - 1.0) * (g.r - 1.0)) / 0.35).exp();
    let hydrometeor = |altitude_band: f64, width: f64, magnitude: f64| {
        let band = (-(g.h - altitude_band) * (g.h - altitude_band) / width).exp();
        let cells = (turb(3.0, 5) - 0.15).max(0.0);
        magnitude * annulus * band * cells * cells
    };
    match name {
        // Winds: tangential vortex + shear + turbulence, decaying aloft.
        "U" => {
            60.0 * vortex_speed(g.r) * g.tx * (1.0 - 0.6 * g.h) + 8.0 * turb(2.0, 5)
                + 10.0 * (g.h - 0.3)
        }
        "V" => 60.0 * vortex_speed(g.r) * g.ty * (1.0 - 0.6 * g.h) + 8.0 * turb(2.1, 5),
        "W" => {
            // Updraft in the eyewall, weak subsidence in the eye.
            8.0 * annulus * (1.0 - g.h) - 1.5 * (-g.r * g.r).exp() + 1.2 * turb(2.5, 5)
        }
        // Pressure: hydrostatic decrease with altitude + central depression.
        "P" => {
            let ambient = 100_000.0 * (-1.1 * g.h).exp();
            let depression = 6_000.0 * (-g.r * g.r / 2.0).exp() * (1.0 - 0.7 * g.h);
            ambient - depression + 120.0 * turb(1.5, 4)
        }
        // Temperature (°C like Isabel's TC): lapse rate + warm core.
        "TC" => {
            let lapse = 28.0 - 75.0 * g.h;
            let warm_core = 9.0 * (-g.r * g.r / 1.5).exp() * (-(g.h - 0.45) * (g.h - 0.45) / 0.1).exp();
            lapse + warm_core + 1.5 * turb(2.0, 5)
        }
        // Vapour: moist boundary layer, drying aloft, moister in the storm.
        "QVAPOR" => {
            let column = 0.022 * (-2.6 * g.h).exp();
            column * (1.0 + 0.5 * (-g.r * g.r / 4.0).exp()) * (0.9 * turb(2.0, 4)).exp()
        }
        // Cloud fraction in [0, 1].
        "CLOUD" => {
            let base = 2.2 * annulus + 1.4 * turb(2.5, 5) - 0.8;
            1.0 / (1.0 + (-3.0 * base).exp())
        }
        // Surface-accumulated precipitation: sparse, strongest low down.
        "PRECIP" => hydrometeor(0.05, 0.08, 0.015),
        // Hydrometeor species segregated by altitude band.
        "QCLOUD" => hydrometeor(0.25, 0.05, 0.0021),
        "QRAIN" => hydrometeor(0.12, 0.05, 0.0033),
        "QICE" => hydrometeor(0.75, 0.06, 0.0009),
        "QSNOW" => hydrometeor(0.6, 0.06, 0.0013),
        "QGRAUP" => hydrometeor(0.45, 0.07, 0.0017),
        other => unreachable!("unknown Hurricane field {other}"),
    }
}

/// Generate the 13 Hurricane-like fields at a resolution.
pub fn fields(res: Resolution, master_seed: u64) -> Vec<NamedField> {
    let Shape::D3(d0, d1, d2) = DatasetSpec::of(DatasetId::Hurricane).shape(res) else {
        unreachable!("Hurricane is 3-D")
    };
    NAMES
        .iter()
        .map(|&name| {
            let seed = field_seed(master_seed, name);
            // Resolution-independent texture wavelength (~8 features/axis).
            let s0 = 4.0 / d0 as f64;
            let s1 = 8.0 / d1 as f64;
            let s2 = 8.0 / d2 as f64;
            let du = s0.max(s1).max(s2);
            let data = Field::from_fn_3d(d0, d1, d2, |i, j, k| {
                let g = geometry(i, j, k, d0, d1, d2);
                sample(
                    name,
                    &g,
                    i as f64 * s0,
                    j as f64 * s1,
                    k as f64 * s2,
                    du,
                    seed,
                ) as f32
            });
            NamedField {
                name: name.to_string(),
                data,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> NamedField {
        fields(Resolution::Small, 11)
            .into_iter()
            .find(|f| f.name == name)
            .unwrap()
    }

    #[test]
    fn thirteen_fields_match_isabel_names() {
        let fs = fields(Resolution::Small, 1);
        assert_eq!(fs.len(), 13);
        for (f, n) in fs.iter().zip(NAMES) {
            assert_eq!(f.name, n);
        }
    }

    #[test]
    fn winds_rotate_cyclonically() {
        // Sum of tangential momentum around the eyewall must be strongly
        // positive (the vortex dominates turbulence).
        let u = by_name("U");
        let v = by_name("V");
        let Shape::D3(d0, d1, d2) = u.data.shape() else {
            panic!()
        };
        let mut tangential = 0.0f64;
        let i = 0usize; // strongest at the surface
        for j in 0..d1 {
            for k in 0..d2 {
                let g = geometry(i, j, k, d0, d1, d2);
                if (0.5..2.0).contains(&g.r) {
                    tangential += u.data.get(&[i, j, k]) as f64 * g.tx
                        + v.data.get(&[i, j, k]) as f64 * g.ty;
                }
            }
        }
        assert!(tangential > 0.0, "no cyclonic rotation: {tangential}");
    }

    #[test]
    fn pressure_decreases_with_altitude() {
        let p = by_name("P");
        let Shape::D3(d0, d1, d2) = p.data.shape() else {
            panic!()
        };
        let mean_level = |i: usize| {
            let mut s = 0.0f64;
            for j in 0..d1 {
                for k in 0..d2 {
                    s += p.data.get(&[i, j, k]) as f64;
                }
            }
            s / (d1 * d2) as f64
        };
        assert!(mean_level(0) > mean_level(d0 - 1) + 10_000.0);
    }

    #[test]
    fn pressure_has_central_depression() {
        let p = by_name("P");
        let Shape::D3(d0, d1, d2) = p.data.shape() else {
            panic!()
        };
        // Minimum surface pressure should sit near the storm centre (r < 1).
        let mut min_v = f64::INFINITY;
        let mut min_r = 0.0;
        for j in 0..d1 {
            for k in 0..d2 {
                let v = p.data.get(&[0, j, k]) as f64;
                if v < min_v {
                    min_v = v;
                    min_r = geometry(0, j, k, d0, d1, d2).r;
                }
            }
        }
        assert!(min_r < 1.0, "pressure minimum at r={min_r}");
    }

    #[test]
    fn hydrometeors_sparse_nonnegative() {
        for name in ["QICE", "QRAIN", "QSNOW", "QGRAUP", "QCLOUD", "PRECIP"] {
            let f = by_name(name);
            assert!(
                f.data.as_slice().iter().all(|&v| v >= 0.0),
                "{name} negative"
            );
            let zeros = f.data.as_slice().iter().filter(|&&v| v == 0.0).count();
            assert!(
                zeros * 3 > f.data.len(),
                "{name} not sparse: {zeros}/{}",
                f.data.len()
            );
        }
    }

    #[test]
    fn cloud_fraction_bounded() {
        let f = by_name("CLOUD");
        assert!(f
            .data
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn all_samples_finite() {
        for f in fields(Resolution::Small, 2) {
            assert!(
                f.data.as_slice().iter().all(|v| v.is_finite()),
                "{} non-finite",
                f.name
            );
        }
    }
}
