//! # datagen — synthetic scientific data sets
//!
//! The paper evaluates on three production data sets — CESM-ATM (2-D
//! climate, 79 fields), Hurricane-Isabel (3-D storm, 13 fields) and NYX
//! (3-D cosmology, 6 fields) — none of which are redistributable here.
//! This crate synthesizes statistically analogous stand-ins (the
//! substitution is documented in `DESIGN.md` §5):
//!
//! - fixed-PSNR accuracy depends on the predictor producing a peaked,
//!   roughly symmetric prediction-error distribution and on the field's
//!   value range — properties of *smooth-with-texture* scientific fields
//!   generally, not of the specific data sets;
//! - per-field diversity (very smooth through very noisy) reproduces the
//!   per-field scatter of the paper's Fig. 2 and the STDEV columns of
//!   Table II.
//!
//! Everything is deterministic in a master seed, so experiments are
//! reproducible run to run.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atm;
pub mod grf;
pub mod hurricane;
pub mod noise;
pub mod nyx;
pub mod registry;
pub mod timeseries;

pub use registry::{DatasetId, DatasetSpec, Resolution};

use ndfield::Field;

/// One generated field of a synthetic data set.
#[derive(Debug, Clone)]
pub struct NamedField {
    /// Field name, styled after the source data set's variables.
    pub name: String,
    /// The samples (single precision, like all three paper data sets).
    pub data: Field<f32>,
}

/// Generate every field of a data set at the given resolution.
///
/// The per-field seeds derive from `seed` and the field name, so any field
/// can also be generated in isolation (used by Fig. 1, which needs one ATM
/// field).
///
/// ```
/// use datagen::{generate, DatasetId, Resolution};
/// let snapshot = generate(DatasetId::Hurricane, Resolution::Small, 7);
/// assert_eq!(snapshot.len(), 13);
/// assert_eq!(snapshot[0].name, "QCLOUD");
/// ```
pub fn generate(id: DatasetId, res: Resolution, seed: u64) -> Vec<NamedField> {
    match id {
        DatasetId::Atm => atm::fields(res, seed),
        DatasetId::Hurricane => hurricane::fields(res, seed),
        DatasetId::Nyx => nyx::fields(res, seed),
    }
}

/// Stable per-field seed derived from the master seed and the field name
/// (FNV-1a over the name, mixed with the master seed).
pub(crate) fn field_seed(master: u64, name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ master.rotate_left(17)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_seed_is_stable_and_name_sensitive() {
        assert_eq!(field_seed(1, "CLDHGH"), field_seed(1, "CLDHGH"));
        assert_ne!(field_seed(1, "CLDHGH"), field_seed(1, "CLDLOW"));
        assert_ne!(field_seed(1, "CLDHGH"), field_seed(2, "CLDHGH"));
    }

    #[test]
    fn generate_dispatches_all_datasets() {
        let atm = generate(DatasetId::Atm, Resolution::Small, 7);
        let hur = generate(DatasetId::Hurricane, Resolution::Small, 7);
        let nyx = generate(DatasetId::Nyx, Resolution::Small, 7);
        assert_eq!(atm.len(), 79);
        assert_eq!(hur.len(), 13);
        assert_eq!(nyx.len(), 6);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetId::Hurricane, Resolution::Small, 123);
        let b = generate(DatasetId::Hurricane, Resolution::Small, 123);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
    }
}
