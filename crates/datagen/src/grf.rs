//! Gaussian random fields with power-law spectra (spectral synthesis).
//!
//! Cosmological fields (the NYX data set) are, to good approximation,
//! transforms of Gaussian random fields whose power spectrum follows a
//! power law `P(k) ∝ k^{−α}`. Synthesis: draw independent complex Gaussian
//! amplitudes per Fourier mode, weight by `√P(k)`, inverse-transform, and
//! keep the real part. Hermitian symmetry is not enforced explicitly — the
//! real part of the inverse transform of an *independent* complex Gaussian
//! spectrum is itself a Gaussian field with the target spectrum (at half
//! the variance), which is all the generator needs.

use fftkit::{nd, Complex};

/// Deterministic 64-bit generator (SplitMix64). The repository builds
/// offline with no external crates, so the former `rand::StdRng` is
/// replaced by this self-contained PRNG — statistically ample for spectral
/// synthesis, and seed-stable across platforms.
struct SplitMix64(u64);

impl SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1) with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Standard normal sample via Box–Muller (avoids a distributions crate).
fn normal(rng: &mut SplitMix64) -> f64 {
    loop {
        let u1 = rng.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2 = rng.next_f64();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Wavenumber magnitude of FFT bin `i` out of `n` (symmetric: bins above
/// `n/2` alias to negative frequencies).
#[inline]
fn wavenumber(i: usize, n: usize) -> f64 {
    let k = if i <= n / 2 { i } else { n - i };
    k as f64
}

/// Synthesize a 2-D Gaussian random field with spectrum `P(k) ∝ k^{−alpha}`,
/// normalised to zero mean and unit variance.
///
/// # Panics
/// Panics unless both extents are powers of two.
pub fn grf_2d(rows: usize, cols: usize, alpha: f64, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut spec = vec![Complex::ZERO; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let k = (wavenumber(r, rows).powi(2) + wavenumber(c, cols).powi(2)).sqrt();
            if k == 0.0 {
                continue; // zero the DC mode: zero-mean field
            }
            let amp = k.powf(-alpha / 2.0);
            spec[r * cols + c] = Complex::new(normal(&mut rng) * amp, normal(&mut rng) * amp);
        }
    }
    nd::ifft2(&mut spec, rows, cols);
    normalise(spec.iter().map(|z| z.re).collect())
}

/// Synthesize a 3-D Gaussian random field with spectrum `P(k) ∝ k^{−alpha}`,
/// normalised to zero mean and unit variance.
///
/// # Panics
/// Panics unless all extents are powers of two.
pub fn grf_3d(d0: usize, d1: usize, d2: usize, alpha: f64, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut spec = vec![Complex::ZERO; d0 * d1 * d2];
    for i in 0..d0 {
        for j in 0..d1 {
            for k in 0..d2 {
                let km = (wavenumber(i, d0).powi(2)
                    + wavenumber(j, d1).powi(2)
                    + wavenumber(k, d2).powi(2))
                .sqrt();
                if km == 0.0 {
                    continue;
                }
                let amp = km.powf(-alpha / 2.0);
                spec[(i * d1 + j) * d2 + k] =
                    Complex::new(normal(&mut rng) * amp, normal(&mut rng) * amp);
            }
        }
    }
    nd::ifft3(&mut spec, d0, d1, d2);
    normalise(spec.iter().map(|z| z.re).collect())
}

/// Shift to zero mean, scale to unit variance (no-op for degenerate input).
fn normalise(mut data: Vec<f64>) -> Vec<f64> {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let inv_sd = if var > 0.0 { 1.0 / var.sqrt() } else { 1.0 };
    for v in &mut data {
        *v = (*v - mean) * inv_sd;
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grf_2d_is_normalised() {
        let f = grf_2d(32, 32, 2.0, 1);
        let n = f.len() as f64;
        let mean = f.iter().sum::<f64>() / n;
        let var = f.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grf_3d_is_normalised_and_deterministic() {
        let a = grf_3d(8, 8, 8, 3.0, 5);
        let b = grf_3d(8, 8, 8, 3.0, 5);
        assert_eq!(a, b);
        let n = a.len() as f64;
        let mean = a.iter().sum::<f64>() / n;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn higher_alpha_is_smoother() {
        // Steeper spectrum ⇒ less power at high k ⇒ smaller first
        // differences relative to the (unit) variance.
        let rough = |f: &[f64]| {
            f.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (f.len() - 1) as f64
        };
        let shallow = grf_2d(64, 64, 1.0, 9);
        let steep = grf_2d(64, 64, 4.0, 9);
        assert!(
            rough(&steep) < rough(&shallow),
            "steep {} !< shallow {}",
            rough(&steep),
            rough(&shallow)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(grf_2d(16, 16, 2.0, 1), grf_2d(16, 16, 2.0, 2));
    }
}
