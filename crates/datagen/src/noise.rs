//! Seeded lattice value noise and fractional-Brownian-motion stacks.
//!
//! The 2-D/3-D texture primitive behind the ATM- and Hurricane-like
//! generators: smooth multi-scale structure is what makes the Lorenzo
//! predictor's error distribution peaked and symmetric, the property the
//! paper's Fig. 1 shows for real climate data.

/// Deterministic 64-bit hash of lattice coordinates and a seed
/// (SplitMix64-style finalizer — high avalanche, no allocation).
#[inline]
fn hash_lattice(x: i64, y: i64, z: i64, seed: u64) -> u64 {
    let mut h = seed
        ^ (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F)
        ^ (z as u64).wrapping_mul(0x165667B19E3779F9);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 31;
    h
}

/// Lattice value in `[-1, 1)`.
#[inline]
fn lattice(x: i64, y: i64, z: i64, seed: u64) -> f64 {
    (hash_lattice(x, y, z, seed) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// Quintic smoothstep `6t⁵ − 15t⁴ + 10t³` (C² continuous interpolation).
#[inline]
fn smooth(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Smooth 2-D value noise at continuous coordinates, in roughly `[-1, 1]`.
pub fn value_noise_2d(x: f64, y: f64, seed: u64) -> f64 {
    let xi = x.floor() as i64;
    let yi = y.floor() as i64;
    let tx = smooth(x - xi as f64);
    let ty = smooth(y - yi as f64);
    let v00 = lattice(xi, yi, 0, seed);
    let v10 = lattice(xi + 1, yi, 0, seed);
    let v01 = lattice(xi, yi + 1, 0, seed);
    let v11 = lattice(xi + 1, yi + 1, 0, seed);
    lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty)
}

/// Smooth 3-D value noise at continuous coordinates, in roughly `[-1, 1]`.
pub fn value_noise_3d(x: f64, y: f64, z: f64, seed: u64) -> f64 {
    let xi = x.floor() as i64;
    let yi = y.floor() as i64;
    let zi = z.floor() as i64;
    let tx = smooth(x - xi as f64);
    let ty = smooth(y - yi as f64);
    let tz = smooth(z - zi as f64);
    let mut corners = [0.0f64; 8];
    for (n, c) in corners.iter_mut().enumerate() {
        let dx = (n & 1) as i64;
        let dy = ((n >> 1) & 1) as i64;
        let dz = ((n >> 2) & 1) as i64;
        *c = lattice(xi + dx, yi + dy, zi + dz, seed);
    }
    let x00 = lerp(corners[0], corners[1], tx);
    let x10 = lerp(corners[2], corners[3], tx);
    let x01 = lerp(corners[4], corners[5], tx);
    let x11 = lerp(corners[6], corners[7], tx);
    lerp(lerp(x00, x10, ty), lerp(x01, x11, ty), tz)
}

/// Fractional Brownian motion: `octaves` layers of value noise, each octave
/// doubling frequency (`lacunarity` 2) and scaling amplitude by `gain`.
/// Output stays in roughly `[-1, 1]` (amplitudes are normalised).
pub fn fbm_2d(x: f64, y: f64, seed: u64, octaves: u32, gain: f64) -> f64 {
    let mut sum = 0.0;
    let mut amp = 1.0;
    let mut norm = 0.0;
    let mut fx = x;
    let mut fy = y;
    for o in 0..octaves {
        sum += amp * value_noise_2d(fx, fy, seed.wrapping_add(o as u64 * 0x9E37));
        norm += amp;
        amp *= gain;
        fx *= 2.0;
        fy *= 2.0;
    }
    sum / norm
}

/// Largest octave count whose finest wavelength still spans at least
/// `min_wavelength_samples` grid samples, given the base octave's noise-space
/// step per sample. Production scientific fields are smooth at the sample
/// scale (that is why Lorenzo prediction works on them); capping octaves
/// keeps the synthetics from degenerating into per-sample noise on coarse
/// test grids.
pub fn max_octaves(noise_units_per_sample: f64, min_wavelength_samples: f64) -> u32 {
    if noise_units_per_sample <= 0.0 {
        return 1;
    }
    // Octave o (0-indexed) has wavelength 1/(step·2^o) samples; require it
    // to stay >= min_wavelength_samples.
    let base_wavelength = 1.0 / noise_units_per_sample;
    let ratio = base_wavelength / min_wavelength_samples;
    if ratio < 1.0 {
        1
    } else {
        ratio.log2().floor() as u32 + 1
    }
}

/// 3-D counterpart of [`fbm_2d`].
pub fn fbm_3d(x: f64, y: f64, z: f64, seed: u64, octaves: u32, gain: f64) -> f64 {
    let mut sum = 0.0;
    let mut amp = 1.0;
    let mut norm = 0.0;
    let (mut fx, mut fy, mut fz) = (x, y, z);
    for o in 0..octaves {
        sum += amp * value_noise_3d(fx, fy, fz, seed.wrapping_add(o as u64 * 0x9E37));
        norm += amp;
        amp *= gain;
        fx *= 2.0;
        fy *= 2.0;
        fz *= 2.0;
    }
    sum / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(
            value_noise_2d(3.7, -2.2, 42),
            value_noise_2d(3.7, -2.2, 42)
        );
        assert_ne!(
            value_noise_2d(3.7, -2.2, 42),
            value_noise_2d(3.7, -2.2, 43)
        );
    }

    #[test]
    fn noise_interpolates_lattice_values() {
        // At integer coordinates the noise equals the lattice value.
        let v = value_noise_2d(5.0, 7.0, 9);
        assert_eq!(v, lattice(5, 7, 0, 9));
    }

    #[test]
    fn noise_is_bounded() {
        for i in 0..500 {
            let x = i as f64 * 0.173 - 40.0;
            let y = i as f64 * 0.091 + 3.0;
            let v2 = value_noise_2d(x, y, 7);
            let v3 = value_noise_3d(x, y, x * 0.5, 7);
            assert!((-1.01..=1.01).contains(&v2), "2d out of range: {v2}");
            assert!((-1.01..=1.01).contains(&v3), "3d out of range: {v3}");
        }
    }

    #[test]
    fn noise_is_continuous() {
        // Tiny coordinate steps produce tiny value steps.
        let mut prev = value_noise_2d(0.0, 0.0, 5);
        for i in 1..1000 {
            let v = value_noise_2d(i as f64 * 0.001, 0.0, 5);
            assert!((v - prev).abs() < 0.02, "jump at step {i}");
            prev = v;
        }
    }

    #[test]
    fn fbm_is_bounded_and_rougher_with_octaves() {
        let mut vals1 = Vec::new();
        let mut vals6 = Vec::new();
        for i in 0..2000 {
            let x = i as f64 * 0.05;
            vals1.push(fbm_2d(x, 1.3, 11, 1, 0.5));
            vals6.push(fbm_2d(x, 1.3, 11, 6, 0.5));
        }
        for v in vals1.iter().chain(&vals6) {
            assert!((-1.01..=1.01).contains(v));
        }
        // Roughness proxy: mean |first difference| is larger with octaves.
        let rough = |v: &[f64]| {
            v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (v.len() - 1) as f64
        };
        assert!(rough(&vals6) > rough(&vals1));
    }

    #[test]
    fn max_octaves_caps_fine_scales() {
        // Base wavelength 32 samples, min 4 ⇒ octaves 0..3 allowed (32,16,8,4).
        assert_eq!(max_octaves(1.0 / 32.0, 4.0), 4);
        // Base wavelength already below the minimum ⇒ a single octave.
        assert_eq!(max_octaves(1.0, 4.0), 1);
        // Degenerate step.
        assert_eq!(max_octaves(0.0, 4.0), 1);
    }

    #[test]
    fn fbm_3d_deterministic() {
        assert_eq!(
            fbm_3d(1.0, 2.0, 3.0, 99, 4, 0.5),
            fbm_3d(1.0, 2.0, 3.0, 99, 4, 0.5)
        );
    }
}
