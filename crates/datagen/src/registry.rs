//! Data-set descriptors — the inventory behind the paper's Table I.

use ndfield::Shape;

/// The three evaluation data sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// NYX cosmology simulation (3-D, 6 fields).
    Nyx,
    /// CESM-ATM climate simulation (2-D, 79 fields).
    Atm,
    /// Hurricane-Isabel simulation (3-D, 13 fields).
    Hurricane,
}

impl DatasetId {
    /// All data sets in the paper's Table I order.
    pub const ALL: [DatasetId; 3] = [DatasetId::Nyx, DatasetId::Atm, DatasetId::Hurricane];

    /// Canonical short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Nyx => "NYX",
            DatasetId::Atm => "ATM",
            DatasetId::Hurricane => "Hurricane",
        }
    }

    /// Parse a (case-insensitive) name.
    pub fn parse(s: &str) -> Option<DatasetId> {
        match s.to_ascii_lowercase().as_str() {
            "nyx" => Some(DatasetId::Nyx),
            "atm" | "cesm" | "cesm-atm" => Some(DatasetId::Atm),
            "hurricane" | "isabel" => Some(DatasetId::Hurricane),
            _ => None,
        }
    }
}

/// Grid-size tier. Paper dimensions are kept for fidelity; scaled tiers
/// make the full evaluation tractable on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Tiny grids for unit/integration tests.
    Small,
    /// Grids the experiment harness uses by default (minutes, not hours).
    Default,
    /// The paper's actual dimensions (NYX at 2048³ needs ≫100 GB RAM —
    /// provided for completeness, not used by the harness).
    Paper,
}

/// Static description of one data set (the row of Table I).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which data set.
    pub id: DatasetId,
    /// Number of fields per snapshot.
    pub n_fields: usize,
    /// Example field names the paper lists.
    pub example_fields: &'static [&'static str],
    /// Total size of the real data set as reported by the paper.
    pub paper_data_size: &'static str,
}

impl DatasetSpec {
    /// Descriptor for a data set.
    pub fn of(id: DatasetId) -> DatasetSpec {
        match id {
            DatasetId::Nyx => DatasetSpec {
                id,
                n_fields: 6,
                example_fields: &["baryon_density", "temperature"],
                paper_data_size: "206 GB",
            },
            DatasetId::Atm => DatasetSpec {
                id,
                n_fields: 79,
                example_fields: &["CLDHGH", "CLDLOW"],
                paper_data_size: "1.5 TB",
            },
            DatasetId::Hurricane => DatasetSpec {
                id,
                n_fields: 13,
                example_fields: &["QICE", "PRECIP", "U", "V", "W"],
                paper_data_size: "62.4 GB",
            },
        }
    }

    /// Grid shape at a resolution tier.
    pub fn shape(&self, res: Resolution) -> Shape {
        match (self.id, res) {
            (DatasetId::Nyx, Resolution::Small) => Shape::D3(16, 16, 16),
            (DatasetId::Nyx, Resolution::Default) => Shape::D3(64, 64, 64),
            (DatasetId::Nyx, Resolution::Paper) => Shape::D3(2048, 2048, 2048),
            (DatasetId::Atm, Resolution::Small) => Shape::D2(90, 180),
            (DatasetId::Atm, Resolution::Default) => Shape::D2(225, 450),
            (DatasetId::Atm, Resolution::Paper) => Shape::D2(1800, 3600),
            (DatasetId::Hurricane, Resolution::Small) => Shape::D3(10, 50, 50),
            (DatasetId::Hurricane, Resolution::Default) => Shape::D3(25, 125, 125),
            (DatasetId::Hurricane, Resolution::Paper) => Shape::D3(100, 500, 500),
        }
    }

    /// In-memory bytes per snapshot (all fields, f32) at a resolution.
    pub fn snapshot_bytes(&self, res: Resolution) -> usize {
        self.shape(res).len() * 4 * self.n_fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dims_match_table_one() {
        assert_eq!(
            DatasetSpec::of(DatasetId::Nyx).shape(Resolution::Paper),
            Shape::D3(2048, 2048, 2048)
        );
        assert_eq!(
            DatasetSpec::of(DatasetId::Atm).shape(Resolution::Paper),
            Shape::D2(1800, 3600)
        );
        assert_eq!(
            DatasetSpec::of(DatasetId::Hurricane).shape(Resolution::Paper),
            Shape::D3(100, 500, 500)
        );
    }

    #[test]
    fn field_counts_match_table_one() {
        assert_eq!(DatasetSpec::of(DatasetId::Nyx).n_fields, 6);
        assert_eq!(DatasetSpec::of(DatasetId::Atm).n_fields, 79);
        assert_eq!(DatasetSpec::of(DatasetId::Hurricane).n_fields, 13);
    }

    #[test]
    fn parse_names() {
        assert_eq!(DatasetId::parse("nyx"), Some(DatasetId::Nyx));
        assert_eq!(DatasetId::parse("CESM-ATM"), Some(DatasetId::Atm));
        assert_eq!(DatasetId::parse("Isabel"), Some(DatasetId::Hurricane));
        assert_eq!(DatasetId::parse("unknown"), None);
    }

    #[test]
    fn nyx_grids_are_fft_compatible() {
        for res in [Resolution::Small, Resolution::Default, Resolution::Paper] {
            let dims = DatasetSpec::of(DatasetId::Nyx).shape(res).dims();
            for d in dims {
                assert!(d.is_power_of_two(), "NYX dim {d} not a power of two");
            }
        }
    }

    #[test]
    fn snapshot_bytes_scale() {
        let spec = DatasetSpec::of(DatasetId::Atm);
        assert_eq!(
            spec.snapshot_bytes(Resolution::Paper),
            1800 * 3600 * 4 * 79
        );
    }
}
