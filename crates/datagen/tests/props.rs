//! Property-based tests over the data generators: the invariants the
//! fixed-PSNR evaluation relies on must hold for *every* seed, not just the
//! default one.

use datagen::{atm, generate, hurricane, nyx, DatasetId, Resolution};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn atm_invariants_hold_for_any_seed(seed in any::<u64>()) {
        let fields = atm::fields(Resolution::Small, seed);
        prop_assert_eq!(fields.len(), 79);
        for nf in &fields {
            // All finite, and every fraction-like field stays in [0, 1].
            prop_assert!(
                nf.data.as_slice().iter().all(|v| v.is_finite()),
                "{} non-finite (seed {})", nf.name, seed
            );
        }
        for name in ["CLDHGH", "CLDTOT", "LANDFRAC", "OCNFRAC", "ICEFRAC"] {
            let f = fields.iter().find(|nf| nf.name == name).unwrap();
            prop_assert!(
                f.data.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{name} out of [0,1] (seed {seed})"
            );
        }
    }

    #[test]
    fn hurricane_invariants_hold_for_any_seed(seed in any::<u64>()) {
        let fields = hurricane::fields(Resolution::Small, seed);
        prop_assert_eq!(fields.len(), 13);
        for nf in &fields {
            prop_assert!(
                nf.data.as_slice().iter().all(|v| v.is_finite()),
                "{} non-finite", nf.name
            );
        }
        for name in ["QCLOUD", "QRAIN", "QICE", "QSNOW", "QGRAUP", "QVAPOR", "PRECIP"] {
            let f = fields.iter().find(|nf| nf.name == name).unwrap();
            prop_assert!(
                f.data.as_slice().iter().all(|&v| v >= 0.0),
                "{name} negative (seed {seed})"
            );
        }
    }

    #[test]
    fn nyx_invariants_hold_for_any_seed(seed in any::<u64>()) {
        let fields = nyx::fields(Resolution::Small, seed);
        prop_assert_eq!(fields.len(), 6);
        for name in ["baryon_density", "dark_matter_density", "temperature"] {
            let f = fields.iter().find(|nf| nf.name == name).unwrap();
            prop_assert!(
                f.data.as_slice().iter().all(|&v| v > 0.0 && v.is_finite()),
                "{name} non-positive (seed {seed})"
            );
        }
    }

    #[test]
    fn generation_deterministic_for_any_seed(seed in any::<u64>()) {
        for id in [DatasetId::Nyx, DatasetId::Hurricane] {
            let a = generate(id, Resolution::Small, seed);
            let b = generate(id, Resolution::Small, seed);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.data.as_slice(), y.data.as_slice());
            }
        }
    }

    #[test]
    fn different_seeds_give_different_snapshots(
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        prop_assume!(s1 != s2);
        let a = generate(DatasetId::Hurricane, Resolution::Small, s1);
        let b = generate(DatasetId::Hurricane, Resolution::Small, s2);
        // At least the texture-bearing fields must differ.
        let differs = a.iter().zip(&b).any(|(x, y)| x.data.as_slice() != y.data.as_slice());
        prop_assert!(differs);
    }
}
