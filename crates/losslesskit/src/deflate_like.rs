//! DEFLATE-like container: LZ77 tokens entropy-coded with two dynamic
//! canonical Huffman tables.
//!
//! This stands in for the GZIP stage of SZ (step 3). The format follows
//! DEFLATE's *structure* — literal/length alphabet with extra bits, distance
//! alphabet with extra bits, dynamic Huffman tables — but uses this crate's
//! own table serialization instead of RFC 1951 bit layout, since
//! interoperability with zlib is not a goal (the stream is always produced
//! and consumed by this library).
//!
//! Layout:
//!
//! ```text
//! varint  raw_len                  decompressed byte count
//! varint  token_count
//! table   lit/len Huffman lengths  (alphabet 286: 0-255 literals, 256 EOB
//!                                   unused, 257-285 length codes)
//! table   distance Huffman lengths (alphabet 30)
//! bits    token stream             code [+ extra bits] per token
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::HuffmanCodec;
use crate::lz77::{self, Effort, Token};
use crate::varint;
use crate::CodecError;

/// Literal/length alphabet size (DEFLATE's 286).
const LITLEN_ALPHABET: usize = 286;
/// Distance alphabet size (DEFLATE's 30).
const DIST_ALPHABET: usize = 30;

/// DEFLATE length-code table: `(base_len, extra_bits)` for codes 257..=285,
/// indexed by `code - 257`.
const LEN_TABLE: [(u32, u32); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// DEFLATE distance-code table: `(base_dist, extra_bits)` for codes 0..=29.
const DIST_TABLE: [(u32, u32); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Map a match length (3..=258) to `(code, extra_bits, extra_value)`.
#[inline]
fn length_to_code(len: u32) -> (u32, u32, u32) {
    debug_assert!((3..=258).contains(&len));
    // Code 285 (len 258) has no extra bits and must win over 284's range.
    if len == 258 {
        return (285, 0, 0);
    }
    // Binary-search-free scan: the table is tiny and cache-hot.
    for (i, &(base, extra)) in LEN_TABLE.iter().enumerate() {
        let hi = base + (1 << extra) - 1;
        if len >= base && len <= hi {
            return (257 + i as u32, extra, len - base);
        }
    }
    unreachable!("length {len} not covered by LEN_TABLE")
}

/// Map a distance (1..=32768) to `(code, extra_bits, extra_value)`.
#[inline]
fn dist_to_code(dist: u32) -> (u32, u32, u32) {
    debug_assert!((1..=32768).contains(&dist));
    for (i, &(base, extra)) in DIST_TABLE.iter().enumerate() {
        let hi = base + (1 << extra) - 1;
        if dist >= base && dist <= hi {
            return (i as u32, extra, dist - base);
        }
    }
    unreachable!("distance {dist} not covered by DIST_TABLE")
}

/// Compress `data` with default effort.
///
/// ```
/// let data = b"scientific data compresses scientific data".repeat(10);
/// let packed = losslesskit::lz_compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(losslesskit::lz_decompress(&packed).unwrap(), data);
/// ```
pub fn lz_compress(data: &[u8]) -> Vec<u8> {
    lz_compress_with(data, Effort::Default)
}

/// Compress `data` with an explicit effort level.
///
/// Match-search work is hard-capped per position (see
/// [`crate::lz77::MatchStats`] and the probe budget in `lz77`), so total
/// matcher effort is linear in `data.len()` with a constant set by
/// `effort` — even on adversarial inputs like long constant runs.
pub fn lz_compress_with(data: &[u8], effort: Effort) -> Vec<u8> {
    let tokens = lz77::tokenize(data, effort);

    // Pass 1: frequencies for the two alphabets.
    let mut lit_counts = vec![0u64; LITLEN_ALPHABET];
    let mut dist_counts = vec![0u64; DIST_ALPHABET];
    for &t in &tokens {
        match t {
            Token::Literal(b) => lit_counts[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_counts[length_to_code(len).0 as usize] += 1;
                dist_counts[dist_to_code(dist).0 as usize] += 1;
            }
        }
    }
    let lit_codec = HuffmanCodec::from_counts(&lit_counts);
    let dist_codec = HuffmanCodec::from_counts(&dist_counts);

    // Header + tables.
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    varint::write_u64(&mut out, data.len() as u64);
    varint::write_u64(&mut out, tokens.len() as u64);
    lit_codec.write_table(&mut out);
    dist_codec.write_table(&mut out);

    // Pass 2: the bit stream.
    let mut w = BitWriter::with_capacity(data.len() / 2);
    for &t in &tokens {
        match t {
            Token::Literal(b) => lit_codec.encode_one(b as u32, &mut w),
            Token::Match { len, dist } => {
                let (lc, le, lv) = length_to_code(len);
                lit_codec.encode_one(lc, &mut w);
                if le > 0 {
                    w.write_bits(lv as u64, le);
                }
                let (dc, de, dv) = dist_to_code(dist);
                dist_codec.encode_one(dc, &mut w);
                if de > 0 {
                    w.write_bits(dv as u64, de);
                }
            }
        }
    }
    out.extend_from_slice(&w.finish());
    out
}

/// Decompress a buffer produced by [`lz_compress`].
///
/// # Errors
/// [`CodecError`] on truncation or any container violation (bad tables,
/// out-of-range codes, back-reference before start of output).
pub fn lz_decompress(src: &[u8]) -> Result<Vec<u8>, CodecError> {
    lz_decompress_bounded(src, usize::MAX)
}

/// Initial-allocation clamp: hostile headers can declare any `raw_len`, so
/// the output vector pre-allocates at most this much and then grows
/// amortized as real bytes actually materialise.
const MAX_PREALLOC: usize = 1 << 20;

/// [`lz_decompress`] with a hard cap on the declared output size.
///
/// The declared `raw_len` is checked against `max_raw` before anything is
/// allocated, and the decode loop never grows the output past `raw_len` —
/// so arbitrary input can neither over-allocate nor over-produce.
///
/// # Errors
/// [`CodecError::LimitExceeded`] when the stream declares more than
/// `max_raw` output bytes; otherwise as [`lz_decompress`].
pub fn lz_decompress_bounded(src: &[u8], max_raw: usize) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let raw_len = varint::read_u64(src, &mut pos)? as usize;
    if raw_len > max_raw {
        return Err(CodecError::LimitExceeded {
            what: "raw length",
            requested: raw_len as u64,
            limit: max_raw as u64,
        });
    }
    let token_count = varint::read_u64(src, &mut pos)? as usize;
    // Every token emits at least one output byte.
    if token_count > raw_len {
        return Err(CodecError::Corrupt("more tokens than declared bytes"));
    }
    let lit_codec = HuffmanCodec::read_table(src, &mut pos)?;
    let dist_codec = HuffmanCodec::read_table(src, &mut pos)?;
    if lit_codec.alphabet() != LITLEN_ALPHABET || dist_codec.alphabet() != DIST_ALPHABET {
        return Err(CodecError::Corrupt("wrong alphabet size in tables"));
    }
    let mut r = BitReader::new(&src[pos..]);
    let mut out: Vec<u8> = Vec::with_capacity(raw_len.min(MAX_PREALLOC));
    for _ in 0..token_count {
        let sym = lit_codec.decode_one(&mut r)?;
        if sym < 256 {
            if out.len() >= raw_len {
                return Err(CodecError::Corrupt("output exceeds declared length"));
            }
            out.push(sym as u8);
            continue;
        }
        if sym == 256 || sym as usize >= LITLEN_ALPHABET {
            return Err(CodecError::Corrupt("invalid lit/len symbol"));
        }
        let (base, extra) = LEN_TABLE[(sym - 257) as usize];
        let len = base + r.read_bits(extra)? as u32;
        let dsym = dist_codec.decode_one(&mut r)?;
        if dsym as usize >= DIST_ALPHABET {
            return Err(CodecError::Corrupt("invalid distance symbol"));
        }
        let (dbase, dextra) = DIST_TABLE[dsym as usize];
        let dist = (dbase + r.read_bits(dextra)? as u32) as usize;
        if dist == 0 || dist > out.len() {
            return Err(CodecError::Corrupt("back-reference before stream start"));
        }
        if len as usize > raw_len - out.len() {
            return Err(CodecError::Corrupt("output exceeds declared length"));
        }
        let start = out.len() - dist;
        for k in 0..len as usize {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(CodecError::Corrupt("decompressed length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let comp = lz_compress(data);
        let back = lz_decompress(&comp).unwrap();
        assert_eq!(back, data);
        comp.len()
    }

    #[test]
    fn empty_input() {
        assert!(roundtrip(b"") < 32);
    }

    #[test]
    fn short_inputs() {
        for data in [&b"a"[..], b"ab", b"abc", b"hello world"] {
            roundtrip(data);
        }
    }

    #[test]
    fn text_compresses() {
        let data = "To be, or not to be, that is the question. ".repeat(100);
        let size = roundtrip(data.as_bytes());
        assert!(
            size < data.len() / 5,
            "repeated text should compress >5x, got {size} of {}",
            data.len()
        );
    }

    #[test]
    fn constant_buffer_compresses_heavily() {
        let data = vec![0u8; 100_000];
        let size = roundtrip(&data);
        assert!(size < 600, "constant buffer compressed to {size} bytes");
    }

    #[test]
    fn random_bytes_roundtrip_without_blowup() {
        let mut x = 987654321u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let comp = lz_compress(&data);
        assert_eq!(lz_decompress(&comp).unwrap(), data);
        // Incompressible data: minor expansion allowed (Huffman ≈ 8 bit/lit).
        assert!(comp.len() < data.len() + data.len() / 8 + 1024);
    }

    #[test]
    fn all_length_codes_exercised() {
        // Runs of every length between 3 and 300 hit each length bucket.
        let mut data = Vec::new();
        for len in 3..300usize {
            data.extend(std::iter::repeat((len % 251) as u8).take(len));
            data.push(255); // separator to break runs apart
        }
        roundtrip(&data);
    }

    #[test]
    fn long_distance_codes_exercised() {
        let phrase: Vec<u8> = (0..64u8).collect();
        let mut data = phrase.clone();
        data.extend(std::iter::repeat(0xAA).take(30_000));
        data.extend_from_slice(&phrase);
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let data = "compressible compressible compressible".repeat(20);
        let comp = lz_compress(data.as_bytes());
        for cut in [comp.len() / 4, comp.len() / 2, comp.len() - 1] {
            assert!(
                lz_decompress(&comp[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn corrupt_header_fails_cleanly() {
        let comp = lz_compress(b"some data some data some data");
        let mut bad = comp.clone();
        bad[0] ^= 0x55; // raw_len now wrong
        assert!(lz_decompress(&bad).is_err());
    }

    #[test]
    fn length_code_table_is_consistent() {
        for len in 3..=258u32 {
            let (code, extra, val) = length_to_code(len);
            assert!((257..=285).contains(&code));
            let (base, e) = LEN_TABLE[(code - 257) as usize];
            assert_eq!(e, extra);
            assert_eq!(base + val, len, "len {len} decodes wrong");
        }
    }

    #[test]
    fn dist_code_table_is_consistent() {
        for dist in 1..=32768u32 {
            let (code, extra, val) = dist_to_code(dist);
            assert!(code < 30);
            let (base, e) = DIST_TABLE[code as usize];
            assert_eq!(e, extra);
            assert_eq!(base + val, dist, "dist {dist} decodes wrong");
        }
    }

    #[test]
    fn effort_levels_all_roundtrip() {
        let data = "abcdefgh".repeat(500);
        for effort in [Effort::Fast, Effort::Default, Effort::Best] {
            let comp = lz_compress_with(data.as_bytes(), effort);
            assert_eq!(lz_decompress(&comp).unwrap(), data.as_bytes());
        }
    }
}
