//! LSB-first bit-level I/O.
//!
//! Both the Huffman coder and the DEFLATE-like container pack variable-width
//! codes; this module provides the shared writer/reader. Bits are packed
//! least-significant-bit first within each byte (DEFLATE's convention), so a
//! code written as `write_bits(0b101, 3)` occupies bit 0..3 of the current
//! byte with bit 0 first.
//!
//! Both sides work **word-at-a-time**: the writer drains its 64-bit
//! accumulator in one little-endian multi-byte copy per call, and the
//! reader refills by loading 8 input bytes at once. The per-call width cap
//! of 57 bits is what makes this sound — after any `write_bits`/`read_bits`
//! the accumulator holds at most 7 residual bits, so a whole byte-aligned
//! word always fits.
//!
//! ```
//! use losslesskit::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bits(0b101, 3);
//! w.write_bits(0x3FF, 10);
//! let bytes = w.finish(); // final partial byte zero-padded
//! assert_eq!(bytes.len(), 2); // 13 bits -> 2 bytes
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bits(3).unwrap(), 0b101);
//! assert_eq!(r.peek_bits(10), 0x3FF); // peek never consumes
//! r.consume(10);
//! assert_eq!(r.bits_remaining(), 3); // the zero padding
//! assert!(r.read_bits(4).is_err()); // reading past it is EOF, not a panic
//! ```

use crate::simd::{self, SimdLevel};
use crate::CodecError;

/// Accumulates bits into a byte buffer, LSB-first.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u64,
    nbits: u32,
    /// Dispatch-level sample (≥ SSE2) taken at construction: drain with a
    /// fixed-width 8-byte store instead of a variable-length copy. The
    /// bytes appended are identical either way — the wide store's excess
    /// bytes are truncated off before they are ever observable.
    wide_drain: bool,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A fresh writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(cap),
            acc: 0,
            nbits: 0,
            wide_drain: simd::active() >= SimdLevel::Sse2,
        }
    }

    /// Append the low `n` bits of `bits` (`n ≤ 57` per call so the 64-bit
    /// accumulator never overflows before draining).
    #[inline]
    pub fn write_bits(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits called with n={n} > 57");
        debug_assert!(n == 64 || bits < (1u64 << n), "value wider than bit count");
        self.acc |= bits << self.nbits;
        self.nbits += n;
        // Drain every whole byte in one word-level copy instead of a
        // byte-at-a-time push loop (the accumulator is little-endian by
        // construction, so its LE byte image is exactly the wire form).
        let nbytes = (self.nbits / 8) as usize;
        if nbytes > 0 {
            if self.wide_drain {
                // Store the full accumulator word unconditionally, then
                // chop the `8 − nbytes` over-stored bytes: one fixed-size
                // copy and a length adjustment instead of a 1–8 byte
                // variable-length copy per drain.
                self.buf.extend_from_slice(&self.acc.to_le_bytes());
                self.buf.truncate(self.buf.len() - (8 - nbytes));
            } else {
                self.buf.extend_from_slice(&self.acc.to_le_bytes()[..nbytes]);
            }
            self.acc = if nbytes == 8 { 0 } else { self.acc >> (nbytes * 8) };
            self.nbits -= (nbytes * 8) as u32;
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Number of whole bytes flushed so far (excludes the partial byte).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Pad the final partial byte with zero bits and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push((self.acc & 0xff) as u8);
        }
        self.buf
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Start reading from the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    pub(crate) fn refill(&mut self) {
        // Word-level fast path: load 8 bytes at once and splice in as many
        // as fit. Falls back to byte-at-a-time only within the final 7
        // bytes of the stream.
        if self.nbits <= 56 && self.data.len() - self.pos >= 8 {
            let word = u64::from_le_bytes(
                self.data[self.pos..self.pos + 8]
                    .try_into()
                    .expect("slice is 8 bytes"),
            );
            let take = ((64 - self.nbits) / 8) as usize;
            let mask = if take == 8 {
                u64::MAX
            } else {
                (1u64 << (take * 8)) - 1
            };
            self.acc |= (word & mask) << self.nbits;
            self.pos += take;
            self.nbits += (take * 8) as u32;
            return;
        }
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n ≤ 57` bits; fails with [`CodecError::UnexpectedEof`] when the
    /// stream has fewer bits left (padding bits at the very end count as
    /// available zeros, matching [`BitWriter::finish`]).
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(CodecError::UnexpectedEof);
            }
        }
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let out = self.acc & mask;
        self.acc >>= n;
        self.nbits -= n;
        Ok(out)
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Peek up to `n ≤ 57` bits without consuming them. Bits beyond the end
    /// of the stream read as zero (needed by table-driven Huffman decoders
    /// that peek a fixed width near the end of input).
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
        }
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        self.acc & mask
    }

    /// Consume `n` bits previously examined via [`BitReader::peek_bits`].
    ///
    /// # Panics
    /// Debug-panics if fewer than `n` bits are buffered.
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(self.nbits >= n, "consume past peek window");
        self.acc >>= n;
        self.nbits -= n;
    }

    /// Bits still available (buffered plus unread bytes).
    pub fn bits_remaining(&self) -> usize {
        self.nbits as usize + (self.data.len() - self.pos) * 8
    }

    /// The underlying input slice (for [`crate::mshuf`]'s SoA fast path,
    /// which mirrors four readers' state into flat arrays).
    pub(crate) fn data(&self) -> &'a [u8] {
        self.data
    }

    /// Raw `(pos, acc, nbits)` decode state, paired with
    /// [`BitReader::set_raw_state`].
    pub(crate) fn raw_state(&self) -> (usize, u64, u32) {
        (self.pos, self.acc, self.nbits)
    }

    /// Restore state captured (and possibly advanced) externally. The SoA
    /// fast path performs exactly the [`BitReader::refill`] /
    /// [`BitReader::consume`] transitions on its mirror, so any state
    /// written back here is one this reader could have reached itself.
    pub(crate) fn set_raw_state(&mut self, pos: usize, acc: u64, nbits: u32) {
        debug_assert!(pos <= self.data.len());
        debug_assert!(nbits <= 64);
        self.pos = pos;
        self.acc = acc;
        self.nbits = nbits;
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_width_roundtrip() {
        let mut w = BitWriter::new();
        let items: &[(u64, u32)] = &[
            (0b1, 1),
            (0b1011, 4),
            (0x3fff, 14),
            (0, 3),
            (0x1f_ffff_ffff, 37),
            (0b10, 2),
        ];
        for &(v, n) in items {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in items {
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
    }

    #[test]
    fn lsb_first_layout_matches_deflate_convention() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1); // bit 0 of byte 0
        w.write_bits(0b11, 2); // bits 1-2
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0111]);
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0xff]);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b1010_1100, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(4), 0b1100);
        assert_eq!(r.peek_bits(4), 0b1100);
        r.consume(4);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
    }

    #[test]
    fn peek_past_end_reads_zeros() {
        let mut r = BitReader::new(&[0b1]);
        assert_eq!(r.peek_bits(16), 1);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
        assert_eq!(w.byte_len(), 1);
        assert_eq!(w.finish().len(), 2);
    }

    #[test]
    fn bits_remaining_counts_down() {
        let mut r = BitReader::new(&[0, 0, 0]);
        assert_eq!(r.bits_remaining(), 24);
        r.read_bits(5).unwrap();
        assert_eq!(r.bits_remaining(), 19);
    }
}
