//! Symbol histograms and entropy estimates.
//!
//! The Huffman coder consumes frequency tables built here; the experiment
//! harness also uses the Shannon entropy as a lower bound when reporting
//! how close the entropy stage gets to optimal.

/// Count occurrences of each `u32` symbol in `symbols`, returning a dense
/// table of length `alphabet` (symbols ≥ `alphabet` panic — the caller fixed
/// the alphabet when it configured the quantizer).
pub fn count_dense(symbols: &[u32], alphabet: usize) -> Vec<u64> {
    let mut counts = vec![0u64; alphabet];
    for &s in symbols {
        counts[s as usize] += 1;
    }
    counts
}

/// Count occurrences of each byte value.
pub fn count_bytes(bytes: &[u8]) -> [u64; 256] {
    let mut counts = [0u64; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    counts
}

/// Shannon entropy in bits/symbol of a frequency table.
///
/// Returns 0.0 for empty input or a single distinct symbol.
pub fn shannon_entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut h = 0.0f64;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total_f;
            h -= p * p.log2();
        }
    }
    h
}

/// Theoretical minimum size in bytes of entropy-coding `n` symbols with the
/// given frequency table (entropy × n / 8, rounded up).
pub fn entropy_bound_bytes(counts: &[u64]) -> usize {
    let n: u64 = counts.iter().sum();
    let bits = shannon_entropy(counts) * n as f64;
    (bits / 8.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_counts() {
        let counts = count_dense(&[0, 1, 1, 3, 3, 3], 4);
        assert_eq!(counts, vec![1, 2, 0, 3]);
    }

    #[test]
    #[should_panic]
    fn dense_counts_panics_out_of_alphabet() {
        count_dense(&[5], 4);
    }

    #[test]
    fn byte_counts() {
        let counts = count_bytes(&[0, 255, 255, 7]);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[255], 2);
        assert_eq!(counts[7], 1);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn entropy_uniform_two_symbols_is_one_bit() {
        assert!((shannon_entropy(&[10, 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_single_symbol_is_zero() {
        assert_eq!(shannon_entropy(&[42]), 0.0);
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_uniform_256_is_eight_bits() {
        let counts = [1u64; 256];
        assert!((shannon_entropy(&counts) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_bound_scales_with_n() {
        // 1 bit/symbol over 80 symbols = 10 bytes.
        assert_eq!(entropy_bound_bytes(&[40, 40]), 10);
    }
}
