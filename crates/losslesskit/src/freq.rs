//! Symbol histograms and entropy estimates.
//!
//! The Huffman coder consumes frequency tables built here; the experiment
//! harness also uses the Shannon entropy as a lower bound when reporting
//! how close the entropy stage gets to optimal.
//!
//! The multi-table counting paths are part of the dispatch-gated hot-loop
//! layer: at `FPSNR_SIMD=off` ([`crate::simd::active`] <
//! [`crate::simd::SimdLevel::Sse2`]) the single-table reference loops run
//! instead. Counts are exact on either path, so the choice is invisible
//! downstream.

use crate::simd::{self, SimdLevel};

/// Alphabets up to this size take the 4-table counting path. The split
/// tables cost `4 × alphabet × 4` bytes of scratch; past the quantizer's
/// largest real alphabet (2^16 bins + escape ⇒ 1 MiB scratch) the cache
/// pressure outweighs the dependency-breaking win, so bigger alphabets
/// fall back to the single-table loop.
const MULTI_TABLE_MAX_ALPHABET: usize = (1 << 16) + 1;

/// Inputs shorter than this skip the multi-table setup (its `4 × alphabet`
/// zero-fill dominates on tiny slices).
const MULTI_TABLE_MIN_LEN: usize = 4096;

/// Count occurrences of each `u32` symbol in `symbols`, returning a dense
/// table of length `alphabet` (symbols ≥ `alphabet` panic — the caller fixed
/// the alphabet when it configured the quantizer).
///
/// Long inputs over quantizer-sized alphabets are counted into four
/// interleaved sub-tables merged at the end. Repeated symbols (the common
/// case: quantization codes cluster hard around the zero-error bin) then
/// hit four independent counter slots instead of one, breaking the
/// store-to-load dependency chain that serializes the naive loop. Counts
/// are exact either way — addition is associative over a partition of the
/// input — so the result is identical to the single-table loop.
pub fn count_dense(symbols: &[u32], alphabet: usize) -> Vec<u64> {
    if simd::active() >= SimdLevel::Sse2
        && symbols.len() >= MULTI_TABLE_MIN_LEN
        && alphabet <= MULTI_TABLE_MAX_ALPHABET
        && symbols.len() <= u32::MAX as usize
    {
        // u32 sub-counters: the length gate above makes overflow impossible.
        let mut t = vec![0u32; alphabet * 4];
        let (t0, rest) = t.split_at_mut(alphabet);
        let (t1, rest) = rest.split_at_mut(alphabet);
        let (t2, t3) = rest.split_at_mut(alphabet);
        let mut quads = symbols.chunks_exact(4);
        for q in &mut quads {
            t0[q[0] as usize] += 1;
            t1[q[1] as usize] += 1;
            t2[q[2] as usize] += 1;
            t3[q[3] as usize] += 1;
        }
        for &s in quads.remainder() {
            t0[s as usize] += 1;
        }
        return (0..alphabet)
            .map(|i| t0[i] as u64 + t1[i] as u64 + t2[i] as u64 + t3[i] as u64)
            .collect();
    }
    let mut counts = vec![0u64; alphabet];
    for &s in symbols {
        counts[s as usize] += 1;
    }
    counts
}

/// Count occurrences of each byte value.
///
/// Uses four split tables (the scratch is 8 KiB, always cache-resident)
/// for the same dependency-breaking reason as [`count_dense`]; the
/// single-table loop is the `FPSNR_SIMD=off` reference path.
pub fn count_bytes(bytes: &[u8]) -> [u64; 256] {
    if simd::active() < SimdLevel::Sse2 {
        let mut counts = [0u64; 256];
        for &b in bytes {
            counts[b as usize] += 1;
        }
        return counts;
    }
    let mut t = [[0u64; 256]; 4];
    let mut quads = bytes.chunks_exact(4);
    for q in &mut quads {
        t[0][q[0] as usize] += 1;
        t[1][q[1] as usize] += 1;
        t[2][q[2] as usize] += 1;
        t[3][q[3] as usize] += 1;
    }
    for &b in quads.remainder() {
        t[0][b as usize] += 1;
    }
    let mut counts = [0u64; 256];
    for i in 0..256 {
        counts[i] = t[0][i] + t[1][i] + t[2][i] + t[3][i];
    }
    counts
}

/// Shannon entropy in bits/symbol of a frequency table.
///
/// Returns 0.0 for empty input or a single distinct symbol.
pub fn shannon_entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut h = 0.0f64;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total_f;
            h -= p * p.log2();
        }
    }
    h
}

/// Theoretical minimum size in bytes of entropy-coding `n` symbols with the
/// given frequency table (entropy × n / 8, rounded up).
pub fn entropy_bound_bytes(counts: &[u64]) -> usize {
    let n: u64 = counts.iter().sum();
    let bits = shannon_entropy(counts) * n as f64;
    (bits / 8.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_counts() {
        let counts = count_dense(&[0, 1, 1, 3, 3, 3], 4);
        assert_eq!(counts, vec![1, 2, 0, 3]);
    }

    #[test]
    #[should_panic]
    fn dense_counts_panics_out_of_alphabet() {
        count_dense(&[5], 4);
    }

    #[test]
    fn multi_table_matches_single_table() {
        // Long enough to take the 4-table path; compare against a local
        // single-counter loop over the same pseudo-random symbols.
        let mut state = 0x9e3779b97f4a7c15u64;
        let symbols: Vec<u32> = (0..MULTI_TABLE_MIN_LEN + 37)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 97) as u32
            })
            .collect();
        let alphabet = 97;
        let mut naive = vec![0u64; alphabet];
        for &s in &symbols {
            naive[s as usize] += 1;
        }
        assert_eq!(count_dense(&symbols, alphabet), naive);
    }

    #[test]
    #[should_panic]
    fn multi_table_still_panics_out_of_alphabet() {
        let mut symbols = vec![1u32; MULTI_TABLE_MIN_LEN];
        symbols.push(4);
        count_dense(&symbols, 4);
    }

    #[test]
    fn byte_counts() {
        let counts = count_bytes(&[0, 255, 255, 7]);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[255], 2);
        assert_eq!(counts[7], 1);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn entropy_uniform_two_symbols_is_one_bit() {
        assert!((shannon_entropy(&[10, 10]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_single_symbol_is_zero() {
        assert_eq!(shannon_entropy(&[42]), 0.0);
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_uniform_256_is_eight_bits() {
        let counts = [1u64; 256];
        assert!((shannon_entropy(&counts) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_bound_scales_with_n() {
        // 1 bit/symbol over 80 symbols = 10 bytes.
        assert_eq!(entropy_bound_bytes(&[40, 40]), 10);
    }
}
