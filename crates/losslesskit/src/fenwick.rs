//! Fenwick (binary indexed) tree over symbol frequencies.
//!
//! The adaptive range coder needs three operations fast over alphabets as
//! large as SZ's quantization-code space (2^16): point update, prefix sum,
//! and *inverse* prefix sum (find the symbol owning a cumulative count).
//! All three are `O(log n)` here.

/// A Fenwick tree of `u32` frequencies.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u32>,
    len: usize,
}

impl Fenwick {
    /// A tree of `len` zero frequencies.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "empty Fenwick tree");
        Fenwick {
            tree: vec![0u32; len + 1],
            len,
        }
    }

    /// A tree with every frequency set to `init` (the classic "all symbols
    /// start plausible" adaptive-model initialisation).
    pub fn with_uniform(len: usize, init: u32) -> Self {
        let mut f = Fenwick::new(len);
        for i in 0..len {
            f.add(i, init);
        }
        f
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree tracks no symbols (never for valid trees).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add `delta` to symbol `i`'s frequency.
    pub fn add(&mut self, i: usize, delta: u32) {
        let mut i = i + 1;
        while i <= self.len {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of frequencies of symbols `0..i` (exclusive prefix sum).
    pub fn prefix(&self, i: usize) -> u32 {
        let mut i = i.min(self.len);
        let mut s = 0u32;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Total frequency mass.
    pub fn total(&self) -> u32 {
        self.prefix(self.len)
    }

    /// Frequency of symbol `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.prefix(i + 1) - self.prefix(i)
    }

    /// Find the symbol whose cumulative interval contains `target`, i.e.
    /// the largest `s` with `prefix(s) <= target`. `target` must be below
    /// [`Fenwick::total`].
    pub fn find(&self, mut target: u32) -> usize {
        debug_assert!(target < self.total());
        let mut pos = 0usize;
        let mut mask = self.len.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= self.len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        pos
    }

    /// Halve every frequency, keeping each at least 1 — the periodic aging
    /// step that lets the adaptive model track non-stationary sources.
    pub fn halve(&mut self) {
        let freqs: Vec<u32> = (0..self.len).map(|i| self.get(i)).collect();
        self.tree.iter_mut().for_each(|v| *v = 0);
        for (i, f) in freqs.into_iter().enumerate() {
            self.add(i, (f / 2).max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_match_naive() {
        let freqs = [3u32, 0, 7, 1, 4, 4, 0, 2, 9];
        let mut f = Fenwick::new(freqs.len());
        for (i, &v) in freqs.iter().enumerate() {
            f.add(i, v);
        }
        let mut acc = 0u32;
        for i in 0..=freqs.len() {
            assert_eq!(f.prefix(i), acc, "prefix({i})");
            if i < freqs.len() {
                acc += freqs[i];
            }
        }
        assert_eq!(f.total(), 30);
    }

    #[test]
    fn get_recovers_frequencies() {
        let mut f = Fenwick::new(5);
        f.add(0, 2);
        f.add(3, 9);
        assert_eq!(f.get(0), 2);
        assert_eq!(f.get(1), 0);
        assert_eq!(f.get(3), 9);
    }

    #[test]
    fn find_inverts_prefix() {
        let freqs = [2u32, 5, 1, 0, 3];
        let mut f = Fenwick::new(freqs.len());
        for (i, &v) in freqs.iter().enumerate() {
            f.add(i, v);
        }
        // Targets 0,1 → sym 0; 2..6 → sym 1; 7 → sym 2; 8..10 → sym 4.
        let expect = [0, 0, 1, 1, 1, 1, 1, 2, 4, 4, 4];
        for (t, &e) in expect.iter().enumerate() {
            assert_eq!(f.find(t as u32), e, "target {t}");
        }
    }

    #[test]
    fn find_works_on_non_power_of_two_lengths() {
        for len in [1usize, 3, 5, 6, 7, 100, 1000] {
            let mut f = Fenwick::with_uniform(len, 1);
            for t in 0..len as u32 {
                assert_eq!(f.find(t), t as usize, "len {len}");
            }
            // After a skewed update the mapping shifts consistently.
            f.add(0, 10);
            assert_eq!(f.find(0), 0);
            assert_eq!(f.find(10), 0);
            if len > 1 {
                assert_eq!(f.find(11), 1);
            }
        }
    }

    #[test]
    fn halve_ages_but_keeps_support() {
        let mut f = Fenwick::new(4);
        f.add(0, 100);
        f.add(1, 1);
        f.halve();
        assert_eq!(f.get(0), 50);
        assert_eq!(f.get(1), 1, "aged frequency must stay >= 1");
        assert_eq!(f.get(2), 1, "zero frequencies become 1 to keep coding possible");
    }

    #[test]
    fn uniform_initialisation() {
        let f = Fenwick::with_uniform(10, 3);
        assert_eq!(f.total(), 30);
        assert_eq!(f.get(7), 3);
    }
}
