//! Adaptive range coding over `u32` alphabets.
//!
//! An alternative entropy stage to the canonical Huffman coder: a
//! Subbotin-style byte-oriented range coder with an adaptive order-0
//! frequency model kept in a [`crate::fenwick::Fenwick`] tree. Compared
//! with Huffman it needs no serialized table (the model adapts identically
//! on both sides) and codes fractional bits, which pays off on the heavily
//! peaked quantization-code distributions SZ produces; it is slower, which
//! is exactly the trade-off the `ablation` bench quantifies.
//!
//! The stream is self-framing (symbol count and alphabet are in its
//! header); decoding is total on arbitrary bytes — use the `_bounded`
//! variant to cap the declared symbol count before allocation:
//!
//! ```
//! use losslesskit::range::{range_encode, range_decode_bounded};
//!
//! let symbols: Vec<u32> = (0..500).map(|i| i % 3).collect();
//! let packed = range_encode(&symbols, 3);
//! let back = range_decode_bounded(&packed, symbols.len()).unwrap();
//! assert_eq!(back, symbols);
//! // A hostile header declaring more symbols than expected fails before
//! // any proportional allocation.
//! assert!(range_decode_bounded(&packed, 10).is_err());
//! ```

use crate::fenwick::Fenwick;
use crate::varint;
use crate::CodecError;

const TOP: u64 = 1 << 48;
const BOTTOM: u64 = 1 << 40;
/// Frequency increment per coded symbol.
const INCREMENT: u32 = 32;

struct Model {
    freq: Fenwick,
    /// Rescale when total mass reaches this. Must sit well above the
    /// alphabet's initial mass (1 per symbol) or aging would fire on every
    /// update — quadratic in alphabet size — while staying small enough
    /// that the coder's `range / total` division keeps precision.
    max_total: u32,
}

impl Model {
    fn new(alphabet: usize) -> Self {
        Model {
            freq: Fenwick::with_uniform(alphabet, 1),
            max_total: ((alphabet as u32).saturating_mul(4)).max(1 << 16),
        }
    }

    fn update(&mut self, sym: usize) {
        self.freq.add(sym, INCREMENT);
        if self.freq.total() >= self.max_total {
            self.freq.halve();
        }
    }
}

/// Encode `symbols` (all `< alphabet`) into a self-contained buffer.
///
/// # Panics
/// Panics when a symbol is outside the alphabet or `alphabet == 0`.
pub fn range_encode(symbols: &[u32], alphabet: usize) -> Vec<u8> {
    assert!(alphabet > 0, "empty alphabet");
    let mut out = Vec::with_capacity(symbols.len() / 2 + 16);
    varint::write_u64(&mut out, symbols.len() as u64);
    varint::write_u64(&mut out, alphabet as u64);
    if symbols.is_empty() {
        return out; // header only; the decoder returns early on n = 0
    }

    let mut model = Model::new(alphabet);
    let mut low = 0u64;
    let mut range = u64::MAX >> 8; // 56-bit working range
    for &s in symbols {
        let s = s as usize;
        assert!(s < alphabet, "symbol {s} outside alphabet {alphabet}");
        let total = model.freq.total() as u64;
        let cum = model.freq.prefix(s) as u64;
        let f = model.freq.get(s) as u64;
        range /= total;
        low = low.wrapping_add(cum * range);
        range *= f;
        // Renormalise: flush top bytes when settled or range underflows.
        loop {
            if low ^ low.wrapping_add(range) < TOP {
                // top byte settled
            } else if range < BOTTOM {
                range = low.wrapping_neg() & (BOTTOM - 1);
            } else {
                break;
            }
            out.push((low >> 48) as u8);
            low <<= 8;
            range <<= 8;
        }
        model.update(s);
    }
    // Flush enough bytes to disambiguate the final interval.
    for _ in 0..7 {
        out.push((low >> 48) as u8);
        low <<= 8;
    }
    out
}

/// Decode a buffer produced by [`range_encode`].
///
/// # Errors
/// [`CodecError`] on truncation or malformed headers.
pub fn range_decode(src: &[u8]) -> Result<Vec<u32>, CodecError> {
    range_decode_bounded(src, usize::MAX)
}

/// [`range_decode`] with a hard cap on the declared symbol count, checked
/// before any symbol-proportional allocation. Callers that know how many
/// symbols they expect should pass that as `max_symbols` so hostile
/// headers cannot force huge decode loops.
///
/// # Errors
/// [`CodecError::LimitExceeded`] when the stream declares more than
/// `max_symbols` symbols; otherwise as [`range_decode`].
pub fn range_decode_bounded(src: &[u8], max_symbols: usize) -> Result<Vec<u32>, CodecError> {
    let mut pos = 0usize;
    let n = varint::read_u64(src, &mut pos)? as usize;
    if n > max_symbols {
        return Err(CodecError::LimitExceeded {
            what: "symbol count",
            requested: n as u64,
            limit: max_symbols as u64,
        });
    }
    let alphabet = varint::read_u64(src, &mut pos)? as usize;
    if alphabet == 0 || alphabet > (1 << 24) {
        return Err(CodecError::Corrupt("bad range-coder alphabet"));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut model = Model::new(alphabet);
    let mut low = 0u64;
    let mut range = u64::MAX >> 8;
    let mut code = 0u64;
    let next_byte = |pos: &mut usize| -> u8 {
        // Bytes past the end decode as zero (mirrors encoder flush).
        let b = src.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        b
    };
    // Need at least one real payload byte for a non-empty stream.
    if pos >= src.len() {
        return Err(CodecError::UnexpectedEof);
    }
    for _ in 0..7 {
        code = (code << 8) | next_byte(&mut pos) as u64;
    }
    // Pre-allocation clamp: `n` is untrusted on the unbounded path.
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let total = model.freq.total() as u64;
        range /= total;
        let target = ((code.wrapping_sub(low)) / range).min(total - 1);
        let sym = model.freq.find(target as u32);
        let cum = model.freq.prefix(sym) as u64;
        let f = model.freq.get(sym) as u64;
        low = low.wrapping_add(cum * range);
        range *= f;
        loop {
            if low ^ low.wrapping_add(range) < TOP {
            } else if range < BOTTOM {
                range = low.wrapping_neg() & (BOTTOM - 1);
            } else {
                break;
            }
            code = (code << 8) | next_byte(&mut pos) as u64;
            low <<= 8;
            range <<= 8;
        }
        model.update(sym);
        out.push(sym as u32);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq;

    fn roundtrip(symbols: &[u32], alphabet: usize) -> usize {
        let enc = range_encode(symbols, alphabet);
        let dec = range_decode(&enc).unwrap();
        assert_eq!(dec, symbols);
        enc.len()
    }

    #[test]
    fn empty_stream() {
        assert!(roundtrip(&[], 10) < 8);
    }

    #[test]
    fn single_symbol() {
        roundtrip(&[3], 8);
    }

    #[test]
    fn constant_stream_compresses_hard() {
        let symbols = vec![5u32; 10_000];
        let size = roundtrip(&symbols, 16);
        assert!(size < 200, "constant stream coded to {size} bytes");
    }

    #[test]
    fn uniform_stream_near_log2_alphabet() {
        let alphabet = 64usize;
        let symbols: Vec<u32> =
            (0..20_000u32).map(|i| (i.wrapping_mul(2654435761)) % 64).collect();
        let size = roundtrip(&symbols, alphabet);
        // Ideal is 6 bits/symbol; the adaptive model pays a learning and
        // fluctuation overhead of a few percent on uniform data.
        let ideal = 20_000.0 * 6.0 / 8.0;
        assert!(
            (size as f64) < ideal * 1.15 + 128.0,
            "uniform stream {size} vs ideal {ideal}"
        );
    }

    #[test]
    fn peaked_stream_beats_huffman_granularity() {
        // A 99%-single-symbol stream: Huffman pays >= 1 bit/symbol, range
        // coding pays the entropy (~0.08 bits).
        let mut symbols = vec![100u32; 50_000];
        for i in 0..500 {
            symbols[i * 100] = (i % 7) as u32;
        }
        let alphabet = 128;
        let size = roundtrip(&symbols, alphabet);
        let counts = freq::count_dense(&symbols, alphabet);
        let entropy_bytes = freq::entropy_bound_bytes(&counts);
        // Within 40% of the entropy bound (the adaptive model must learn
        // the distribution first), far below 1 bit/symbol.
        assert!(
            size < 50_000 / 8 + 200,
            "range coder not sub-bit on peaked data: {size}"
        );
        assert!(
            (size as f64) < entropy_bytes as f64 * 1.6 + 64.0,
            "size {size} vs entropy bound {entropy_bytes}"
        );
    }

    #[test]
    fn large_alphabet_quantization_codes() {
        let alphabet = 65536usize;
        let center = 32768i64;
        let symbols: Vec<u32> = (0..30_000)
            .map(|i: i64| (center + (i * 37 % 41) - 20) as u32)
            .collect();
        roundtrip(&symbols, alphabet);
    }

    #[test]
    fn adversarial_alternation_roundtrips() {
        let symbols: Vec<u32> = (0..10_000u32).map(|i| i % 2).collect();
        roundtrip(&symbols, 2);
    }

    #[test]
    fn truncated_header_fails() {
        let enc = range_encode(&[1, 2, 3], 8);
        assert!(range_decode(&enc[..1]).is_err());
    }

    #[test]
    fn model_rescaling_path_is_exercised() {
        // Enough symbols to trigger several halve() rescales (total grows
        // by 32 per symbol, cap 65536 ⇒ rescale every ~2k symbols).
        let symbols: Vec<u32> = (0..50_000u32).map(|i| (i / 1000) % 50).collect();
        roundtrip(&symbols, 50);
    }
}
