//! Greedy hash-chain LZ77 matching.
//!
//! Produces the token stream consumed by [`crate::deflate_like`]. The
//! matcher mirrors zlib's design: a rolling 3-byte hash indexes chains of
//! previous positions inside a 32 KiB window; match length is capped at 258
//! so the container can reuse DEFLATE's length alphabet.
//!
//! Match extension (`common_prefix`) dispatches on
//! [`crate::simd::active`]: SSE2/AVX2 variants compare 16/32 bytes per
//! step via `pcmpeqb` + `movemask`. Equality comparison is exact at any
//! width, so every level returns the same prefix length and the token
//! stream — and therefore the compressed bytes — are identical across
//! levels. [`MatchStats::probe_bytes`] counts *matched bytes*, not loads,
//! so the work counters are level-independent too.

use crate::simd::{self, SimdLevel};

/// Maximum look-back distance (DEFLATE window).
pub const MAX_DIST: usize = 32 * 1024;
/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (DEFLATE cap).
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single uncompressed byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `dist` bytes back.
    Match {
        /// Copy length, `MIN_MATCH..=MAX_MATCH`.
        len: u32,
        /// Back-reference distance, `1..=MAX_DIST`.
        dist: u32,
    },
}

/// Effort knob: how many hash-chain candidates to examine per position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Examine few candidates — fastest, slightly worse ratio.
    Fast,
    /// zlib-default-like chain depth.
    Default,
    /// Deep chains — best ratio, slowest.
    Best,
}

impl Effort {
    fn max_chain(self) -> usize {
        match self {
            Effort::Fast => 8,
            Effort::Default => 32,
            Effort::Best => 256,
        }
    }
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Matches shorter than this trigger the lazy one-step probe (zlib's
/// `max_lazy` idea): short greedy matches are the ones a one-position
/// deferral most often beats, while long matches are kept immediately.
const LAZY_MAX: usize = 32;

/// Byte-probe budget per match search: `max_chain` candidates, each
/// costing at most four fast-reject bytes (the wide `u32` reject) plus a
/// `common_prefix` walk of at most `MAX_MATCH` bytes and one mismatch
/// byte. The cap therefore never alters the token stream — it exists as a
/// hard worst-case guarantee (and a regression tripwire) against the
/// matcher degenerating to quadratic work on adversarial input, e.g. long
/// constant runs feeding one hash chain.
#[inline]
fn probe_budget(max_chain: usize) -> u64 {
    (max_chain * (MAX_MATCH + 5)) as u64
}

/// Work counters for one [`tokenize_with_stats`] call. Counts are exact and
/// deterministic (no timers), so tests can bound matcher effort without
/// timing flakiness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Positions at which a match search ran (tokens emitted ≤ this).
    pub positions: u64,
    /// Hash-chain candidates examined across all positions.
    pub chain_steps: u64,
    /// Bytes compared across all probes (fast-reject byte + prefix walk).
    pub probe_bytes: u64,
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    // Multiplicative hash of 3 bytes; constants from FxHash.
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Tokenize `data` greedily.
///
/// Every byte of `data` is covered exactly once by the token stream
/// (the invariant the property tests assert).
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    tokenize_with_stats(data, effort).0
}

/// One chain walk at position `i` (caller guarantees `i + MIN_MATCH <=
/// data.len()`). Returns `(best_len, best_dist, hash_of_i)`; `best_len`
/// is 0 when nothing in the window matches.
///
/// Both reject paths are *necessary* conditions for a candidate to beat
/// `best_len` — a candidate differing anywhere in the bytes they compare
/// has a common prefix no longer than the current best — so rejects never
/// change the outcome, only skip doomed `common_prefix` walks.
#[inline]
fn chain_search(
    data: &[u8],
    head: &[u32],
    prev: &[u32],
    i: usize,
    max_chain: usize,
    budget: u64,
    level: SimdLevel,
    stats: &mut MatchStats,
) -> (usize, usize, usize) {
    let n = data.len();
    stats.positions += 1;
    let h = hash3(data, i);
    let mut best_len = 0usize;
    let mut best_dist = 0usize;
    let mut cand = head[h];
    let mut chain = 0usize;
    let mut pos_probes = 0u64;
    let limit = i.saturating_sub(MAX_DIST);
    while cand != u32::MAX && cand as usize >= limit && chain < max_chain {
        let c = cand as usize;
        stats.chain_steps += 1;
        let viable = if best_len >= 4 && i + best_len < n {
            // Wide fast reject: to beat `best_len`, the candidate must
            // agree on the four bytes ending at offset `best_len`
            // (`c < i` keeps `c + best_len` in bounds).
            pos_probes += 4;
            let a: [u8; 4] = data[c + best_len - 3..=c + best_len].try_into().expect("4 bytes");
            let b: [u8; 4] = data[i + best_len - 3..=i + best_len].try_into().expect("4 bytes");
            u32::from_le_bytes(a) == u32::from_le_bytes(b)
        } else {
            pos_probes += 1; // fast-reject byte
            best_len == 0 || data.get(c + best_len) == data.get(i + best_len)
        };
        if viable {
            let len = common_prefix_at(data, c, i, level);
            pos_probes += len as u64 + 1; // matched bytes + mismatch
            if len > best_len {
                best_len = len;
                best_dist = i - c;
                if len >= MAX_MATCH {
                    break;
                }
            }
        }
        if pos_probes >= budget {
            break;
        }
        cand = prev[c];
        chain += 1;
    }
    stats.probe_bytes += pos_probes;
    (best_len, best_dist, h)
}

/// Push position `j` onto its hash chain (caller guarantees
/// `j + MIN_MATCH <= data.len()` and that `j` is not already inserted —
/// a double insert would make the chain self-referential).
#[inline]
fn chain_insert(data: &[u8], head: &mut [u32], prev: &mut [u32], j: usize) {
    let hj = hash3(data, j);
    prev[j] = head[hj];
    head[hj] = j as u32;
}

/// Tokenize `data`, returning exact work counters alongside the token
/// stream. The tokens are identical to [`tokenize`]'s.
///
/// [`Effort::Fast`] matches greedily; the other efforts add zlib-style
/// lazy one-step deferral — when the greedy match at `i` is shorter than
/// `LAZY_MAX`, the matcher also searches `i + 1` and, if that match is
/// strictly longer, emits `data[i]` as a literal and takes the later
/// match instead. Each deferral runs at most one extra bounded chain
/// search, so total work stays linear (the property the adversarial test
/// asserts via [`MatchStats`]).
pub fn tokenize_with_stats(data: &[u8], effort: Effort) -> (Vec<Token>, MatchStats) {
    let n = data.len();
    let mut stats = MatchStats::default();
    let mut tokens = Vec::with_capacity(n / 4 + 16);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return (tokens, stats);
    }
    let max_chain = effort.max_chain();
    let budget = probe_budget(max_chain);
    // Dispatch level sampled once per call: the variants are equivalent,
    // so a concurrent override mid-call could only mix equally-correct
    // compare widths.
    let level = simd::active();
    let lazy = !matches!(effort, Effort::Fast);
    // u32 chain tables: half the memory traffic of `usize` tables, and the
    // chains are where the matcher spends its cache budget. `u32::MAX` is
    // the chain terminator; on inputs of 4 GiB or more, stored positions
    // wrap, but every candidate still passes the 32 KiB window check on the
    // value actually used to form the distance and every match is verified
    // byte-for-byte by `common_prefix`, so the failure mode is a missed
    // match, never a corrupt token.
    let mut head = vec![u32::MAX; HASH_SIZE];
    let mut prev = vec![u32::MAX; n];
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        // Hash of the 3 bytes at `i`; valid whenever a search ran, and
        // reused by the literal path's chain insert below.
        let mut h = 0usize;
        if i + MIN_MATCH <= n {
            (best_len, best_dist, h) =
                chain_search(data, &head, &prev, i, max_chain, budget, level, &mut stats);
        }
        if best_len >= MIN_MATCH {
            // First covered position not yet on its hash chain.
            let mut insert_from = i;
            if lazy && best_len < LAZY_MAX && i + 1 + MIN_MATCH <= n {
                chain_insert(data, &mut head, &mut prev, i);
                insert_from = i + 1;
                let (len1, dist1, _) =
                    chain_search(data, &head, &prev, i + 1, max_chain, budget, level, &mut stats);
                if len1 > best_len {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                    best_len = len1;
                    best_dist = dist1;
                }
            }
            tokens.push(Token::Match {
                len: best_len as u32,
                dist: best_dist as u32,
            });
            // Insert every covered position into the hash chains so later
            // matches can reference inside this span.
            let end = (i + best_len).min(n - MIN_MATCH + 1);
            let mut j = insert_from.max(i);
            while j < end {
                chain_insert(data, &mut head, &mut prev, j);
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            if i + MIN_MATCH <= n {
                prev[i] = head[h];
                head[h] = i as u32;
            }
            i += 1;
        }
    }
    (tokens, stats)
}

/// Length of the common prefix of `data[a..]` and `data[b..]` (`a < b`),
/// capped at [`MAX_MATCH`] and at the end of the buffer.
#[inline]
fn common_prefix(data: &[u8], a: usize, b: usize) -> usize {
    let max = MAX_MATCH.min(data.len() - b);
    prefix_scalar_from(data, a, b, 0, max)
}

/// [`common_prefix`] continued from offset `l`: the shared scalar tail
/// every wide variant finishes with, and the whole walk at level `Off`.
#[inline]
fn prefix_scalar_from(data: &[u8], a: usize, b: usize, mut l: usize, max: usize) -> usize {
    // 8-byte-at-a-time comparison (perf-book: avoid per-byte loops).
    while l + 8 <= max {
        let x = u64::from_le_bytes(data[a + l..a + l + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(data[b + l..b + l + 8].try_into().expect("8 bytes"));
        let diff = x ^ y;
        if diff != 0 {
            return l + (diff.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

/// [`common_prefix`] at the given dispatch level. Every variant returns
/// the exact prefix length — equality compares are width-agnostic — so
/// the choice never changes the token stream.
#[inline]
fn common_prefix_at(data: &[u8], a: usize, b: usize, level: SimdLevel) -> usize {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 presence was established by `simd::active()`'s
        // clamp to `simd::detect()`.
        SimdLevel::Avx2 => unsafe { common_prefix_avx2(data, a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => common_prefix_sse2(data, a, b),
        _ => common_prefix(data, a, b),
    }
}

/// 16-byte match extension via SSE2 `pcmpeqb` + `movemask`. SSE2 is part
/// of the x86_64 baseline, so no runtime gate is needed.
#[cfg(target_arch = "x86_64")]
#[inline]
fn common_prefix_sse2(data: &[u8], a: usize, b: usize) -> usize {
    use std::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8};
    let max = MAX_MATCH.min(data.len() - b);
    let mut l = 0usize;
    while l + 16 <= max {
        // SAFETY: `a < b` and `b + l + 16 <= data.len()` (loop guard), so
        // both 16-byte unaligned loads are in bounds.
        let mask = unsafe {
            let x = _mm_loadu_si128(data.as_ptr().add(a + l).cast());
            let y = _mm_loadu_si128(data.as_ptr().add(b + l).cast());
            _mm_movemask_epi8(_mm_cmpeq_epi8(x, y)) as u32
        };
        if mask != 0xFFFF {
            // First zero bit = first differing byte; < 16, so within max.
            return l + (!mask).trailing_zeros() as usize;
        }
        l += 16;
    }
    prefix_scalar_from(data, a, b, l, max)
}

/// 32-byte match extension via AVX2 `vpcmpeqb` + `vpmovmskb`.
///
/// # Safety
/// Caller must have verified AVX2 support (the dispatch in
/// [`common_prefix_at`] only reaches this arm after detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn common_prefix_avx2(data: &[u8], a: usize, b: usize) -> usize {
    use std::arch::x86_64::{_mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8};
    let max = MAX_MATCH.min(data.len() - b);
    let mut l = 0usize;
    while l + 32 <= max {
        // SAFETY: `a < b` and `b + l + 32 <= data.len()` (loop guard), so
        // both 32-byte unaligned loads are in bounds.
        let mask = unsafe {
            let x = _mm256_loadu_si256(data.as_ptr().add(a + l).cast());
            let y = _mm256_loadu_si256(data.as_ptr().add(b + l).cast());
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, y)) as u32
        };
        if mask != u32::MAX {
            // First zero bit = first differing byte; < 32, so within max.
            return l + (!mask).trailing_zeros() as usize;
        }
        l += 32;
    }
    prefix_scalar_from(data, a, b, l, max)
}

/// Expand a token stream back into bytes. `expected_len` preallocates and is
/// validated by the caller.
pub fn detokenize(tokens: &[Token], expected_len: usize) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let start = out.len() - dist;
                // Overlapping copies are the point (dist < len repeats).
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], effort: Effort) {
        let tokens = tokenize(data, effort);
        let back = detokenize(&tokens, data.len());
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            roundtrip(data, Effort::Default);
        }
    }

    #[test]
    fn repetitive_input_compresses_to_matches() {
        let data = b"abcabcabcabcabcabcabcabc".to_vec();
        let tokens = tokenize(&data, Effort::Default);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "repetitive data produced no matches: {tokens:?}"
        );
        roundtrip(&data, Effort::Default);
    }

    #[test]
    fn overlapping_match_run() {
        // "aaaa..." forces dist=1 len>1 overlapping copies.
        let data = vec![b'a'; 500];
        let tokens = tokenize(&data, Effort::Default);
        assert!(tokens.len() < 10, "run should collapse: {}", tokens.len());
        roundtrip(&data, Effort::Default);
    }

    #[test]
    fn incompressible_input_roundtrips() {
        // Linear-congruential noise: few matches, all literals.
        let mut x = 12345u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        for effort in [Effort::Fast, Effort::Default, Effort::Best] {
            roundtrip(&data, effort);
        }
    }

    #[test]
    fn long_range_match_within_window() {
        let mut data = vec![0u8; 0];
        let phrase = b"the quick brown fox jumps over the lazy dog";
        data.extend_from_slice(phrase);
        data.extend(std::iter::repeat(b'.').take(10_000));
        data.extend_from_slice(phrase);
        let tokens = tokenize(&data, Effort::Best);
        roundtrip(&data, Effort::Best);
        let has_long_dist = tokens.iter().any(
            |t| matches!(t, Token::Match { dist, .. } if *dist as usize > 9_000),
        );
        assert!(has_long_dist, "expected a long-distance match");
    }

    #[test]
    fn match_len_capped_at_max() {
        let data = vec![7u8; 4096];
        for t in tokenize(&data, Effort::Default) {
            if let Token::Match { len, dist } = t {
                assert!(len as usize <= MAX_MATCH);
                assert!(dist as usize <= MAX_DIST);
                assert!(len as usize >= MIN_MATCH);
            }
        }
    }

    #[test]
    fn stats_variant_emits_identical_tokens() {
        let data: Vec<u8> = (0..6000u32).map(|i| (i * 7 % 253) as u8).collect();
        for effort in [Effort::Fast, Effort::Default, Effort::Best] {
            let plain = tokenize(&data, effort);
            let (with_stats, stats) = tokenize_with_stats(&data, effort);
            assert_eq!(plain, with_stats);
            assert!(stats.positions > 0 && stats.probe_bytes > 0);
        }
    }

    #[test]
    fn adversarial_input_probe_work_is_linear() {
        // Worst cases for a hash-chain matcher: a constant run (every
        // position lands in one chain) and a short period (dense chains,
        // long matches). The per-position probe budget bounds total byte
        // comparisons to budget × positions — linear in input size — and,
        // because the budget provably exceeds what an unbounded search can
        // spend per position, the token stream is unchanged.
        let constant = vec![0xABu8; 64 * 1024];
        let periodic: Vec<u8> = (0..64 * 1024usize).map(|i| (i % 5) as u8).collect();
        for data in [&constant, &periodic] {
            for effort in [Effort::Fast, Effort::Default, Effort::Best] {
                let budget = probe_budget(effort.max_chain());
                let (tokens, stats) = tokenize_with_stats(data, effort);
                assert!(
                    stats.probe_bytes <= stats.positions * budget,
                    "probe bytes {} exceed budget {} × {} positions",
                    stats.probe_bytes,
                    budget,
                    stats.positions
                );
                assert!(stats.chain_steps <= stats.positions * effort.max_chain() as u64);
                assert_eq!(tokens, tokenize(data, effort));
                assert_eq!(&detokenize(&tokens, data.len()), data);
            }
        }
    }

    #[test]
    fn tokens_identical_across_simd_levels() {
        // Mixed structure: long runs (deep prefixes), a periodic region
        // (mid-length matches hitting the wide-compare tails at every
        // width), and noise (rejects). Tokens and stats must be identical
        // at every dispatch level; levels above the CPU clamp to the best
        // supported one, which keeps this portable.
        let mut data = vec![0x5Au8; 700];
        data.extend((0..4096usize).map(|i| (i % 23) as u8));
        let mut x = 99991u32;
        data.extend((0..2048).map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 24) as u8
        }));
        data.extend_from_slice(&data.clone()[100..400]);
        let _g = simd::test_guard();
        let baseline = {
            simd::force(Some(SimdLevel::Off));
            tokenize_with_stats(&data, Effort::Default)
        };
        for level in SimdLevel::ALL {
            simd::force(Some(level));
            for effort in [Effort::Fast, Effort::Default, Effort::Best] {
                let (tokens, stats) = tokenize_with_stats(&data, effort);
                assert_eq!(&detokenize(&tokens, data.len()), &data, "{level:?}");
                if matches!(effort, Effort::Default) {
                    assert_eq!(tokens, baseline.0, "tokens diverged at {level:?}");
                    assert_eq!(stats, baseline.1, "stats diverged at {level:?}");
                }
            }
        }
        simd::force(None);
    }

    #[test]
    fn wide_prefix_variants_match_scalar_exactly() {
        // Every mismatch offset 0..=40 across both 16- and 32-byte step
        // boundaries, plus the no-mismatch cap case.
        for mism in 0..=40usize {
            let mut data = vec![7u8; 600];
            let b = 300usize;
            if mism < 300 {
                data[b + mism] = 8; // diverge copies at offset `mism`
            }
            let want = common_prefix(&data, 0, b);
            for level in SimdLevel::ALL {
                assert_eq!(
                    common_prefix_at(&data, 0, b, level.min(simd::detect())),
                    want,
                    "mism={mism} level={level:?}"
                );
            }
        }
    }

    #[test]
    fn tokens_cover_input_exactly() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let tokens = tokenize(&data, Effort::Default);
        let covered: usize = tokens
            .iter()
            .map(|t| match t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => *len as usize,
            })
            .sum();
        assert_eq!(covered, data.len());
    }
}
