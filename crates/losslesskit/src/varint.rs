//! LEB128 varints and ZigZag signed mapping.
//!
//! Container headers store grid dimensions, symbol counts and table sizes as
//! varints; quantizer residuals and predictor deltas use ZigZag so small
//! magnitudes of either sign stay small.

use crate::CodecError;

/// Append `v` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an unsigned LEB128 varint from `src[*pos..]`, advancing `*pos`.
///
/// # Errors
/// [`CodecError::UnexpectedEof`] when the buffer ends mid-varint;
/// [`CodecError::Corrupt`] when the encoding exceeds 10 bytes (u64 overflow).
pub fn read_u64(src: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *src.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("varint overflows u64"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// ZigZag-map a signed value so small magnitudes get small codes
/// (`0 → 0, −1 → 1, 1 → 2, −2 → 3, …`).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed value as ZigZag+LEB128.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Decode a signed ZigZag+LEB128 value.
///
/// # Errors
/// Same failure modes as [`read_u64`].
pub fn read_i64(src: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    Ok(unzigzag(read_u64(src, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_boundaries_roundtrip() {
        let vals = [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &vals {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf, vec![127]);
    }

    #[test]
    fn eof_mid_varint() {
        let mut pos = 0;
        assert_eq!(read_u64(&[0x80], &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn overlong_rejected() {
        let buf = [0xff; 11];
        let mut pos = 0;
        assert!(matches!(
            read_u64(&buf, &mut pos),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn zigzag_small_magnitudes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(2), 4);
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn signed_varint_roundtrip() {
        let vals = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        for &v in &vals {
            write_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }
}
