//! CRC-32 (IEEE 802.3) integrity checksums.
//!
//! Lossy-compressed archives live for years on parallel file systems and
//! tape; silent bit rot in a Huffman stream decodes into plausible-looking
//! garbage rather than an error. GZIP guards against this with a CRC-32
//! trailer; our containers do the same (the SZ-like container appends one,
//! verified on decompression).

/// Precomputed table for the reflected IEEE polynomial 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of a byte slice (IEEE, reflected, init/xorout `0xFFFFFFFF` — the
/// same parameterisation as gzip/zlib/PNG).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Streaming CRC-32 accumulator (same parameters as [`crc32`]).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // The classic check value for this CRC parameterisation.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut acc = Crc32::new();
        for chunk in data.chunks(997) {
            acc.update(chunk);
        }
        assert_eq!(acc.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 256];
        let base = crc32(&data);
        for byte in 0..256 {
            data[byte] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {byte} undetected");
            data[byte] ^= 1;
        }
    }
}
