//! CRC-32 (IEEE 802.3) integrity checksums.
//!
//! Lossy-compressed archives live for years on parallel file systems and
//! tape; silent bit rot in a Huffman stream decodes into plausible-looking
//! garbage rather than an error. GZIP guards against this with a CRC-32
//! trailer; our containers do the same (the SZ-like container appends one,
//! verified on decompression).

/// Precomputed slice-by-8 tables for the reflected IEEE polynomial
/// 0xEDB88320: `tables[0]` is the classic byte-at-a-time table, and
/// `tables[k][b]` is the CRC of byte `b` followed by `k` zero bytes, which
/// lets the update loop fold eight input bytes per iteration.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256usize {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t[0][i] = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xff) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

#[inline]
fn update_state(t: &[[u32; 256]; 8], mut c: u32, data: &[u8]) -> u32 {
    // Slice-by-8: XOR the CRC into the first word's low half, then look up
    // all eight bytes in independent tables — no serial 8-bit steps.
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        let lo = u32::from_le_bytes(w[..4].try_into().expect("4 bytes")) ^ c;
        let hi = u32::from_le_bytes(w[4..].try_into().expect("4 bytes"));
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 of a byte slice (IEEE, reflected, init/xorout `0xFFFFFFFF` — the
/// same parameterisation as gzip/zlib/PNG).
pub fn crc32(data: &[u8]) -> u32 {
    update_state(tables(), 0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming CRC-32 accumulator (same parameters as [`crc32`]).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update_state(tables(), self.state, data);
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // The classic check value for this CRC parameterisation.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut acc = Crc32::new();
        for chunk in data.chunks(997) {
            acc.update(chunk);
        }
        assert_eq!(acc.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 256];
        let base = crc32(&data);
        for byte in 0..256 {
            data[byte] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {byte} undetected");
            data[byte] ^= 1;
        }
    }
}
