//! Byte run-length coding.
//!
//! Quantization-code planes from very smooth fields are dominated by a
//! single code; a cheap RLE pass ahead of (or instead of) the LZ stage is
//! then both faster and smaller. The format is
//! `(byte, varint run_length)*` prefixed by the raw length.

use crate::varint;
use crate::CodecError;

/// Run-length encode `data`.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 8 + 16);
    varint::write_u64(&mut out, data.len() as u64);
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        out.push(b);
        varint::write_u64(&mut out, run as u64);
        i += run;
    }
    out
}

/// Decode a buffer produced by [`rle_encode`].
///
/// # Errors
/// [`CodecError`] on truncation or when runs overshoot the declared length.
pub fn rle_decode(src: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let raw_len = varint::read_u64(src, &mut pos)? as usize;
    let mut out = Vec::with_capacity(raw_len);
    while out.len() < raw_len {
        let b = *src.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        let run = varint::read_u64(src, &mut pos)? as usize;
        if run == 0 || out.len() + run > raw_len {
            return Err(CodecError::Corrupt("RLE run overruns declared length"));
        }
        out.resize(out.len() + run, b);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        assert_eq!(rle_decode(&rle_encode(b"")).unwrap(), b"");
    }

    #[test]
    fn constant_run_collapses() {
        let data = vec![9u8; 10_000];
        let enc = rle_encode(&data);
        assert!(enc.len() < 8);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn alternating_worst_case_roundtrips() {
        let data: Vec<u8> = (0..1000).map(|i| (i & 1) as u8).collect();
        assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    #[test]
    fn mixed_runs_roundtrip() {
        let mut data = Vec::new();
        for (b, n) in [(0u8, 300usize), (7, 1), (7, 1), (255, 129), (0, 2)] {
            data.extend(std::iter::repeat(b).take(n));
        }
        assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    #[test]
    fn truncation_detected() {
        let enc = rle_encode(&[1u8; 100]);
        assert!(rle_decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn overrun_detected() {
        // Declared length 1, run of 200.
        let mut bad = Vec::new();
        varint::write_u64(&mut bad, 1);
        bad.push(5u8);
        varint::write_u64(&mut bad, 200);
        assert!(matches!(rle_decode(&bad), Err(CodecError::Corrupt(_))));
    }
}
