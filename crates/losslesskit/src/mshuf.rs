//! Multi-stream interleaved Huffman coding.
//!
//! A single Huffman bitstream decodes serially: every symbol's bit length
//! must be resolved before the next symbol's position in the stream is
//! known, so the decoder is one long dependency chain of table lookups.
//! This module breaks that chain the way csz/fpzip-style coders do: the
//! symbol sequence is split round-robin across `n` **independent** bit
//! streams (symbol `i` goes to stream `i mod n`), and the decoder drains
//! all `n` streams together — `n` table lookups per loop iteration with no
//! dependency between them, which the CPU can overlap.
//!
//! All streams share one [`HuffmanCodec`] (one table on the wire); only
//! the bit positions are interleaved, so the total payload is within
//! `n − 1` padding bytes plus stream-length varints of the single-stream
//! encoding.
//!
//! # Wire format
//!
//! ```text
//! u8       n_streams        1..=MAX_STREAMS
//! varint   byte_len[n]      per-stream bitstream length in bytes
//! bytes    stream[0] ‖ stream[1] ‖ … ‖ stream[n−1]
//! ```
//!
//! Each stream is an independent LSB-first bitstream padded to a byte
//! boundary ([`crate::bitio::BitWriter::finish`] semantics). The symbol
//! count is *not* stored — the caller knows it from its own framing, as
//! everywhere else in this crate.
//!
//! ```
//! use losslesskit::huffman::HuffmanCodec;
//! use losslesskit::mshuf;
//!
//! let symbols: Vec<u32> = (0..1000u32).map(|i| i % 7).collect();
//! let codec = HuffmanCodec::from_counts(&losslesskit::freq::count_dense(&symbols, 7));
//! let blob = mshuf::encode(&symbols, &codec, 4);
//! let back = mshuf::decode_all(&blob, &codec, symbols.len()).unwrap();
//! assert_eq!(back, symbols);
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::HuffmanCodec;
use crate::simd::{self, SimdLevel};
use crate::varint;
use crate::CodecError;

/// Largest stream count the wire format accepts. Four streams saturate the
/// lookup-port parallelism of current cores; the cap leaves headroom
/// without letting hostile headers demand absurd reader state.
pub const MAX_STREAMS: usize = 8;

/// Encode `symbols` round-robin into `n_streams` interleaved bitstreams
/// sharing `codec`. The codec's table is *not* serialized here — callers
/// frame it separately (see [`HuffmanCodec::write_table`]).
///
/// # Panics
/// Panics if `n_streams` is 0 or exceeds [`MAX_STREAMS`], or if a symbol
/// has no code (absent from the frequency table the codec was built from).
pub fn encode(symbols: &[u32], codec: &HuffmanCodec, n_streams: usize) -> Vec<u8> {
    assert!(
        (1..=MAX_STREAMS).contains(&n_streams),
        "n_streams {n_streams} out of 1..={MAX_STREAMS}"
    );
    let mut writers: Vec<BitWriter> = (0..n_streams)
        .map(|_| BitWriter::with_capacity(symbols.len() / (2 * n_streams) + 8))
        .collect();
    // Two "rows" of the round-robin at a time: symbols i and i + n go to
    // the same stream, so each writer takes a two-code packed write per
    // iteration (2 × 28 bits max fits one `write_bits` call) — the same
    // bookkeeping-halving trick as `HuffmanCodec::encode`.
    let mut chunks = symbols.chunks_exact(2 * n_streams);
    for chunk in &mut chunks {
        for (k, w) in writers.iter_mut().enumerate() {
            codec.encode_pair(chunk[k], chunk[k + n_streams], w);
        }
    }
    for (i, &s) in chunks.remainder().iter().enumerate() {
        codec.encode_one(s, &mut writers[i % n_streams]);
    }
    let streams: Vec<Vec<u8>> = writers.into_iter().map(BitWriter::finish).collect();
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total + n_streams * 5 + 1);
    out.push(n_streams as u8);
    for s in &streams {
        varint::write_u64(&mut out, s.len() as u64);
    }
    for s in &streams {
        out.extend_from_slice(s);
    }
    out
}

/// Streaming decoder over an interleaved blob: construct once, then pull
/// symbols in any chunk sizes — the round-robin position carries over
/// between calls, so chunked callers (e.g. a fused decode loop) see the
/// exact symbol sequence the encoder consumed.
#[derive(Debug)]
pub struct InterleavedReader<'a> {
    readers: Vec<BitReader<'a>>,
    /// Stream index the next symbol comes from.
    next: usize,
}

impl<'a> InterleavedReader<'a> {
    /// Parse the blob header and split `src` into per-stream readers.
    ///
    /// # Errors
    /// [`CodecError::Corrupt`] on a bad stream count or stream lengths
    /// that disagree with the blob length; [`CodecError::UnexpectedEof`]
    /// on truncation.
    pub fn new(src: &'a [u8]) -> Result<Self, CodecError> {
        let &n_streams = src.first().ok_or(CodecError::UnexpectedEof)?;
        let n_streams = n_streams as usize;
        if !(1..=MAX_STREAMS).contains(&n_streams) {
            return Err(CodecError::Corrupt("bad interleaved stream count"));
        }
        let mut pos = 1usize;
        let mut lens = [0usize; MAX_STREAMS];
        let mut total = 0usize;
        for len in lens.iter_mut().take(n_streams) {
            let l = varint::read_u64(src, &mut pos)? as usize;
            *len = l;
            total = total
                .checked_add(l)
                .ok_or(CodecError::Corrupt("interleaved stream lengths overflow"))?;
        }
        if total != src.len() - pos {
            return Err(if total > src.len() - pos {
                CodecError::UnexpectedEof
            } else {
                CodecError::Corrupt("interleaved blob has trailing bytes")
            });
        }
        let mut readers = Vec::with_capacity(n_streams);
        for &l in lens.iter().take(n_streams) {
            readers.push(BitReader::new(&src[pos..pos + l]));
            pos += l;
        }
        Ok(InterleavedReader { readers, next: 0 })
    }

    /// Number of interleaved streams in the blob.
    pub fn n_streams(&self) -> usize {
        self.readers.len()
    }

    /// Decode the next `n` symbols into `out`.
    ///
    /// # Errors
    /// Propagates [`HuffmanCodec::decode_one`] failures
    /// ([`CodecError::UnexpectedEof`] on a stream running dry,
    /// [`CodecError::Corrupt`] on bits matching no code).
    pub fn decode(
        &mut self,
        codec: &HuffmanCodec,
        n: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), CodecError> {
        out.reserve(n);
        let ns = self.readers.len();
        let mut remaining = n;
        // Realign to stream 0 so the unrolled loops below start clean.
        while remaining > 0 && self.next != 0 {
            let sym = codec.decode_one(&mut self.readers[self.next])?;
            out.push(sym);
            self.next = (self.next + 1) % ns;
            remaining -= 1;
        }
        // Whole rounds: the per-stream decodes inside one round are
        // independent dependency chains — this is the entire point.
        match &mut self.readers[..] {
            [r0] => {
                for _ in 0..remaining {
                    out.push(codec.decode_one(r0)?);
                }
                remaining = 0;
            }
            [r0, r1] => {
                while remaining >= 2 {
                    let s0 = codec.decode_one(r0);
                    let s1 = codec.decode_one(r1);
                    out.push(s0?);
                    out.push(s1?);
                    remaining -= 2;
                }
            }
            [r0, r1, r2, r3] => {
                // Fast rounds: while every stream still has ≥ 8 unread
                // bytes, one refill per stream buffers ≥ 56 bits — two
                // max-length codes — so the eight decodes below skip all
                // per-symbol EOF accounting and refill branches. Stream
                // tails fall through to the careful loop.
                //
                // The four readers' hot state lives in a SoA mirror for
                // the duration of the fast rounds. Every transition on
                // the mirror is exactly a reader refill/consume, so the
                // bytes consumed and symbols produced are identical to
                // driving the readers directly. `FPSNR_SIMD=off` keeps
                // the per-symbol reference loop below as the only path.
                if simd::active() >= SimdLevel::Sse2 {
                    let mut q = QuadState::capture(r0, r1, r2, r3);
                    let mut buf = [0u32; 8];
                    while remaining >= 8 && q.fast_ready() {
                        q.refill();
                        if let Err(e) = q.decode_round(codec, &mut buf) {
                            q.restore(r0, r1, r2, r3);
                            return Err(e);
                        }
                        out.extend_from_slice(&buf);
                        remaining -= 8;
                    }
                    q.restore(r0, r1, r2, r3);
                }
                while remaining >= 4 {
                    let s0 = codec.decode_one(r0);
                    let s1 = codec.decode_one(r1);
                    let s2 = codec.decode_one(r2);
                    let s3 = codec.decode_one(r3);
                    out.push(s0?);
                    out.push(s1?);
                    out.push(s2?);
                    out.push(s3?);
                    remaining -= 4;
                }
            }
            readers => {
                while remaining >= ns {
                    for r in readers.iter_mut() {
                        out.push(codec.decode_one(r)?);
                    }
                    remaining -= ns;
                }
            }
        }
        // Tail shorter than one round.
        while remaining > 0 {
            let sym = codec.decode_one(&mut self.readers[self.next])?;
            out.push(sym);
            self.next = (self.next + 1) % ns;
            remaining -= 1;
        }
        Ok(())
    }
}

/// Structure-of-arrays mirror of four [`BitReader`]s' hot state, alive
/// only for the duration of the no-EOF-check decode rounds.
///
/// The per-lane transitions are *exactly* [`BitReader::refill`]'s
/// word-level fast path — same `take`, same mask, same splice — so
/// consumed byte positions and decoded symbols are identical to driving
/// the readers directly. The refill is deliberately scalar: an AVX2
/// variant (vpsllvq mask/splice over the `acc`/`nbits` arrays) was
/// measured consistently *slower* — the loadu/storeu round-trip through
/// the arrays sits between decode rounds that are already serial per
/// lane, so the vector step adds latency without adding parallelism
/// (see DESIGN.md §17).
struct QuadState<'b> {
    data: [&'b [u8]; 4],
    pos: [usize; 4],
    acc: [u64; 4],
    nbits: [u32; 4],
}

impl<'b> QuadState<'b> {
    fn capture(
        r0: &BitReader<'b>,
        r1: &BitReader<'b>,
        r2: &BitReader<'b>,
        r3: &BitReader<'b>,
    ) -> Self {
        let mut q = QuadState {
            data: [r0.data(), r1.data(), r2.data(), r3.data()],
            pos: [0; 4],
            acc: [0; 4],
            nbits: [0; 4],
        };
        for (k, r) in [r0, r1, r2, r3].into_iter().enumerate() {
            let (pos, acc, nbits) = r.raw_state();
            q.pos[k] = pos;
            q.acc[k] = acc;
            q.nbits[k] = nbits;
        }
        q
    }

    /// Write the mirrored state back into the readers.
    fn restore(
        &self,
        r0: &mut BitReader<'b>,
        r1: &mut BitReader<'b>,
        r2: &mut BitReader<'b>,
        r3: &mut BitReader<'b>,
    ) {
        r0.set_raw_state(self.pos[0], self.acc[0], self.nbits[0]);
        r1.set_raw_state(self.pos[1], self.acc[1], self.nbits[1]);
        r2.set_raw_state(self.pos[2], self.acc[2], self.nbits[2]);
        r3.set_raw_state(self.pos[3], self.acc[3], self.nbits[3]);
    }

    /// All four lanes have ≥ 8 unread bytes, so a refill leaves every
    /// lane with ≥ 56 buffered bits.
    #[inline]
    fn fast_ready(&self) -> bool {
        (0..4).all(|k| self.data[k].len() - self.pos[k] >= 8)
    }

    /// Top every lane up to ≥ 56 buffered bits: per lane,
    /// [`BitReader::refill`]'s word-level path verbatim (the
    /// `fast_ready` gate guarantees 8 loadable bytes, so the
    /// byte-at-a-time fallback is unreachable). Caller checked
    /// [`QuadState::fast_ready`].
    #[inline]
    fn refill(&mut self) {
        for k in 0..4 {
            let word = u64::from_le_bytes(
                self.data[k][self.pos[k]..self.pos[k] + 8]
                    .try_into()
                    .expect("slice is 8 bytes"),
            );
            let take = ((64 - self.nbits[k]) / 8) as usize;
            let mask = if take == 8 {
                u64::MAX
            } else {
                (1u64 << (take * 8)) - 1
            };
            self.acc[k] |= (word & mask) << self.nbits[k];
            self.pos[k] += take;
            self.nbits[k] += (take * 8) as u32;
        }
    }

    /// Decode two symbols per lane in stream order (the eight decodes of
    /// one fast round). On error the lanes keep their partial progress so
    /// [`QuadState::restore`] reflects exactly what was consumed.
    #[inline]
    fn decode_round(&mut self, codec: &HuffmanCodec, buf: &mut [u32; 8]) -> Result<(), CodecError> {
        buf[0] = codec.decode_one_raw(&mut self.acc[0], &mut self.nbits[0])?;
        buf[1] = codec.decode_one_raw(&mut self.acc[1], &mut self.nbits[1])?;
        buf[2] = codec.decode_one_raw(&mut self.acc[2], &mut self.nbits[2])?;
        buf[3] = codec.decode_one_raw(&mut self.acc[3], &mut self.nbits[3])?;
        buf[4] = codec.decode_one_raw(&mut self.acc[0], &mut self.nbits[0])?;
        buf[5] = codec.decode_one_raw(&mut self.acc[1], &mut self.nbits[1])?;
        buf[6] = codec.decode_one_raw(&mut self.acc[2], &mut self.nbits[2])?;
        buf[7] = codec.decode_one_raw(&mut self.acc[3], &mut self.nbits[3])?;
        Ok(())
    }
}

/// One-shot convenience: decode exactly `n` symbols from an interleaved
/// blob produced by [`encode`].
///
/// # Errors
/// Propagates [`InterleavedReader::new`] and [`InterleavedReader::decode`]
/// failures.
pub fn decode_all(src: &[u8], codec: &HuffmanCodec, n: usize) -> Result<Vec<u32>, CodecError> {
    let mut reader = InterleavedReader::new(src)?;
    let mut out = Vec::with_capacity(n);
    reader.decode(codec, n, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq;

    fn codec_for(symbols: &[u32], alphabet: usize) -> HuffmanCodec {
        HuffmanCodec::from_counts(&freq::count_dense(symbols, alphabet))
    }

    fn mixed_symbols(n: usize) -> Vec<u32> {
        // Skewed distribution with a long tail, like quantization codes.
        (0..n as u32)
            .map(|i| {
                let x = i.wrapping_mul(2654435761) >> 16;
                if x % 10 < 7 {
                    x % 3
                } else {
                    x % 500
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_all_stream_counts() {
        let symbols = mixed_symbols(4093); // deliberately not a round multiple
        let codec = codec_for(&symbols, 500);
        for ns in 1..=MAX_STREAMS {
            let blob = encode(&symbols, &codec, ns);
            let back = decode_all(&blob, &codec, symbols.len()).unwrap();
            assert_eq!(back, symbols, "{ns} streams");
        }
    }

    #[test]
    fn chunked_decode_matches_one_shot() {
        let symbols = mixed_symbols(10_000);
        let codec = codec_for(&symbols, 500);
        let blob = encode(&symbols, &codec, 4);
        let mut reader = InterleavedReader::new(&blob).unwrap();
        let mut out = Vec::new();
        // Chunk sizes deliberately misaligned with the stream count.
        for chunk in [1usize, 3, 7, 100, 1000, 8889] {
            reader.decode(&codec, chunk, &mut out).unwrap();
        }
        assert_eq!(out, symbols);
    }

    #[test]
    fn empty_input_roundtrips() {
        let symbols: Vec<u32> = vec![];
        let codec = codec_for(&[0], 1);
        let blob = encode(&symbols, &codec, 4);
        assert_eq!(decode_all(&blob, &codec, 0).unwrap(), symbols);
    }

    #[test]
    fn single_symbol_alphabet_roundtrips() {
        let symbols = vec![0u32; 999];
        let codec = codec_for(&symbols, 1);
        for ns in [1, 2, 4] {
            let blob = encode(&symbols, &codec, ns);
            assert_eq!(decode_all(&blob, &codec, 999).unwrap(), symbols);
        }
    }

    #[test]
    fn overhead_vs_single_stream_is_bounded() {
        let symbols = mixed_symbols(100_000);
        let codec = codec_for(&symbols, 500);
        let one = encode(&symbols, &codec, 1);
        let four = encode(&symbols, &codec, 4);
        // 3 extra padded stream tails + 3 extra length varints, bounded.
        assert!(four.len() <= one.len() + 3 * 4 + 3);
    }

    #[test]
    fn decode_identical_across_simd_levels() {
        // Covers the SoA quad fast path: enough symbols for many fast
        // rounds, long-tail codes, a non-round count for the careful
        // tail. The output must be identical at every dispatch level
        // (levels above the CPU clamp down, so this is portable).
        let symbols = mixed_symbols(40_003);
        let codec = codec_for(&symbols, 500);
        let blob = encode(&symbols, &codec, 4);
        for level in SimdLevel::ALL {
            simd::force(Some(level));
            let back = decode_all(&blob, &codec, symbols.len()).unwrap();
            assert_eq!(back, symbols, "decode diverged at {level:?}");
        }
        simd::force(None);
    }

    #[test]
    fn truncated_blob_fails_cleanly() {
        let symbols = mixed_symbols(2000);
        let codec = codec_for(&symbols, 500);
        let blob = encode(&symbols, &codec, 4);
        for cut in 0..blob.len() {
            let res = match InterleavedReader::new(&blob[..cut]) {
                Ok(mut r) => {
                    let mut out = Vec::new();
                    r.decode(&codec, symbols.len(), &mut out)
                }
                Err(e) => Err(e),
            };
            assert!(res.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn bad_stream_count_rejected() {
        assert_eq!(
            InterleavedReader::new(&[0u8]).unwrap_err(),
            CodecError::Corrupt("bad interleaved stream count")
        );
        assert_eq!(
            InterleavedReader::new(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err(),
            CodecError::Corrupt("bad interleaved stream count")
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let symbols = mixed_symbols(100);
        let codec = codec_for(&symbols, 500);
        let mut blob = encode(&symbols, &codec, 2);
        blob.push(0xAA);
        assert_eq!(
            InterleavedReader::new(&blob).unwrap_err(),
            CodecError::Corrupt("interleaved blob has trailing bytes")
        );
    }

    #[test]
    fn decode_past_stream_end_is_eof() {
        let symbols = mixed_symbols(64);
        let codec = codec_for(&symbols, 500);
        let blob = encode(&symbols, &codec, 4);
        let err = decode_all(&blob, &codec, symbols.len() + 64).unwrap_err();
        assert_eq!(err, CodecError::UnexpectedEof);
    }
}

