//! # losslesskit — lossless coding toolkit
//!
//! SZ's pipeline (the substrate of the paper's fixed-PSNR mode) ends with
//! two lossless stages: (2) a customized Huffman coder over the quantization
//! codes and (3) GZIP over the encoded bytes. Neither stage affects
//! distortion — they are bit-exact — but both are required for the
//! compression *ratios* the evaluation reports.
//!
//! This crate implements the full lossless layer from scratch:
//!
//! - [`bitio`] — LSB-first bit readers/writers,
//! - [`varint`] — LEB128 varints and ZigZag signed mapping,
//! - [`freq`] — symbol histograms and Shannon entropy,
//! - [`huffman`] — canonical Huffman coding over arbitrary `u32` alphabets
//!   (SZ quantization codes routinely use 2^16 bins),
//! - [`mshuf`] — multi-stream interleaved Huffman: round-robin independent
//!   bitstreams that break the decoder's serial dependency chain,
//! - [`lz77`] — hash-chain LZ77 matcher with lazy one-step deferral,
//! - [`deflate_like`] — an LZ77 + dual-Huffman container standing in for
//!   GZIP/DEFLATE (documented substitution: GZIP is not in the allowed
//!   dependency set, and any LZ+entropy backend preserves all distortion
//!   behaviour because the stage is lossless),
//! - [`bakeoff`] — per-chunk lossless backend selection (stored / DEFLATE
//!   / multi-stream Huffman / range) from measured chunk statistics,
//! - [`rle`] — byte run-length coding used for sparse code planes,
//! - [`range`]/[`fenwick`] — an adaptive range coder (fractional-bit
//!   entropy stage) used by the entropy-coder ablation,
//! - [`crc32`] — IEEE CRC-32 integrity trailers (bit rot in archived lossy
//!   streams must fail loudly, not decode into plausible garbage),
//! - [`simd`] — the runtime SIMD dispatch level (`off`/`sse2`/`avx2`)
//!   shared by every vectorized hot loop in the workspace; all levels
//!   produce byte-identical output, so the level is purely a speed knob.
//!
//! # The never-panic decode guarantee
//!
//! Every decoder in this crate is **total** on arbitrary input bytes: any
//! byte slice — truncated, bit-flipped, adversarially constructed —
//! produces either a successful decode or a [`CodecError`], never a panic
//! and never an allocation proportional to a declared-but-unchecked size.
//! The `*_bounded` entry points take explicit caller limits that are
//! enforced *before* any size-proportional allocation. Integration tests
//! exercise this with exhaustive truncation scans and fuzz-style corpora.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bakeoff;
pub mod bitio;
pub mod crc32;
pub mod deflate_like;
pub mod fenwick;
pub mod freq;
pub mod huffman;
pub mod lz77;
pub mod mshuf;
pub mod range;
pub mod rle;
pub mod simd;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use deflate_like::{lz_compress, lz_decompress};
pub use huffman::HuffmanCodec;

/// Errors shared by the decoders in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the decoder finished.
    UnexpectedEof,
    /// The input violates the container format.
    Corrupt(&'static str),
    /// A declared size exceeds the caller-supplied decoding limit. Raised
    /// before any allocation of that size happens, so hostile headers can
    /// declare arbitrary lengths without exhausting memory.
    LimitExceeded {
        /// Which declared quantity hit the cap.
        what: &'static str,
        /// The size the stream asked for.
        requested: u64,
        /// The enforced cap.
        limit: u64,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed input"),
            CodecError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
            CodecError::LimitExceeded {
                what,
                requested,
                limit,
            } => write!(f, "declared {what} {requested} exceeds cap {limit}"),
        }
    }
}

impl std::error::Error for CodecError {}
