//! Per-chunk lossless backend bake-off.
//!
//! The DEFLATE-like stage is a poor fit for much of what a lossy
//! scientific compressor hands it: already-entropy-coded Huffman payloads are close
//! to incompressible (LZ walks its hash chains for nothing), while escape
//! payloads and sparse tables compress well under cheaper coders. Instead
//! of one backend for the whole body, this module splits the input into
//! fixed-size chunks and, per chunk, *measures* which backend to use with
//! cheap order-0 statistics plus a bounded LZ match probe — the
//! ratio-quality-modeling insight (cheap statistics predict coding
//! outcomes well) applied to the lossless tail.
//!
//! Backends (the per-chunk wire tag):
//!
//! | tag | backend   | decode cost | wins when |
//! |-----|-----------|-------------|-----------|
//! | 0   | Stored    | memcpy      | chunk is incompressible |
//! | 1   | Deflate   | LZ + Huffman| repeated byte strings exist |
//! | 2   | Huffman   | 4-stream interleaved table lookups | skewed bytes, no repeats |
//! | 3   | Range     | adaptive arithmetic | heavily peaked bytes |
//!
//! # Wire format
//!
//! ```text
//! varint  raw_len
//! varint  chunk_size          1 ..= 2^30
//! varint  n_chunks            must equal ceil(raw_len / chunk_size)
//! repeat n_chunks times:
//!   u8      tag               0..=3, see table above
//!   varint  comp_len
//!   bytes   payload[comp_len]
//! ```
//!
//! Chunk `i` covers raw bytes `[i*chunk_size, min((i+1)*chunk_size, raw_len))`
//! and every chunk must decode to exactly that length. Per-backend payloads:
//! tag 0 is the raw bytes verbatim; tag 1 is a [`crate::deflate_like`]
//! stream; tag 2 is a Huffman code-length table
//! ([`HuffmanCodec::write_table`]) followed by a [`crate::mshuf`] blob of
//! the chunk's bytes as symbols; tag 3 is a [`crate::range`] stream of the
//! chunk's bytes as symbols.
//!
//! ```
//! use losslesskit::bakeoff;
//! use losslesskit::lz77::Effort;
//!
//! let data: Vec<u8> = (0..10_000u32).map(|i| (i % 7) as u8).collect();
//! let packed = bakeoff::compress(&data, Effort::Default);
//! assert!(packed.len() < data.len());
//! let back = bakeoff::decompress_bounded(&packed, data.len()).unwrap();
//! assert_eq!(back.as_ref(), &data[..]);
//! ```

use std::borrow::Cow;

use crate::deflate_like::{lz_compress_with, lz_decompress_bounded};
use crate::freq;
use crate::huffman::HuffmanCodec;
use crate::lz77::{self, Effort};
use crate::mshuf;
use crate::range;
use crate::varint;
use crate::CodecError;

/// Default chunk granularity: large enough that per-chunk overhead
/// (tag + length + possible table) is noise, small enough that mixed
/// bodies (entropy-coded stream followed by escape floats) split cleanly.
pub const CHUNK_SIZE: usize = 256 * 1024;

/// Hard cap on the wire `chunk_size` field.
pub const MAX_CHUNK_SIZE: usize = 1 << 30;

/// Streams used by the Huffman backend's interleaved blob.
const HUFF_STREAMS: usize = 4;

/// Bytes of the chunk head fed to the LZ match probe.
const PROBE_LEN: usize = 16 * 1024;

/// Order-0 entropy (bits/byte) above which neither Huffman nor DEFLATE's
/// literal coding can gain 1%: at h ≥ 7.93 the entropy bound caps the
/// order-0 gain below (8 − 7.93)/8 ≈ 0.9%, under the bake-off's
/// regression gate, before table overhead.
const ENTROPY_SKIP: f64 = 7.93;

/// Entropy below which the adaptive range coder is worth its decode cost.
const ENTROPY_RANGE: f64 = 2.5;

/// Predicted fractional saving from LZ matches above which DEFLATE is
/// worth encoding. Matches are DEFLATE's only edge over the interleaved
/// Huffman backend (both entropy-code literals to the same order-0
/// bound), so the probe estimates the match gain alone: each match of
/// length `L` replaces `L` literals (≈ `L·h/8` coded bytes) with one
/// token (≈ [`MATCH_TOKEN_COST`] bytes). Random data's accidental
/// 3..5-byte matches net out near zero under this model, while bulk
/// short matches (e.g. f64 streams sharing leading bytes) and long
/// repeats both clear the bar.
const DEFLATE_MIN_GAIN: f64 = 0.02;

/// Estimated wire cost of one DEFLATE match token (length code +
/// distance code + extra bits ≈ 15..20 bits).
const MATCH_TOKEN_COST: f64 = 2.3;

/// On chunks above [`SMALL_CHUNK`], a coded backend must undercut stored
/// by more than `chunk_len >> MARGIN_SHIFT` (≈1.6%) to displace it:
/// decoding a quarter-megabyte chunk is never free, and sub-percent wins
/// there are noise against the decode cost they buy. Small chunks keep
/// the strict-min rule — their decode cost is microseconds, so every
/// byte saved is worth keeping.
const MARGIN_SHIFT: u32 = 6;

/// Chunks at or below this size just try every backend — the statistics
/// are too noisy and the encode cost too small to bother predicting.
const SMALL_CHUNK: usize = 4096;

/// Lossless backend identifier — the per-chunk wire tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Raw bytes, no coding.
    Stored = 0,
    /// DEFLATE-like LZ77 + Huffman ([`crate::deflate_like`]).
    Deflate = 1,
    /// Multi-stream interleaved Huffman over bytes ([`crate::mshuf`]).
    Huffman = 2,
    /// Adaptive range coder over bytes ([`crate::range`]).
    Range = 3,
}

impl Backend {
    /// Parse a wire tag.
    ///
    /// # Errors
    /// [`CodecError::Corrupt`] on an unknown tag.
    pub fn from_u8(v: u8) -> Result<Self, CodecError> {
        match v {
            0 => Ok(Backend::Stored),
            1 => Ok(Backend::Deflate),
            2 => Ok(Backend::Huffman),
            3 => Ok(Backend::Range),
            _ => Err(CodecError::Corrupt("unknown bake-off backend tag")),
        }
    }

    /// Human-readable backend name (CLI `inspect`, bench tables).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Stored => "stored",
            Backend::Deflate => "deflate",
            Backend::Huffman => "huffman",
            Backend::Range => "range",
        }
    }

    /// All backends, in wire-tag order.
    pub const ALL: [Backend; 4] = [
        Backend::Stored,
        Backend::Deflate,
        Backend::Huffman,
        Backend::Range,
    ];
}

/// Per-backend byte accounting from one [`compress_with_stats`] call,
/// indexed by wire tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BakeoffStats {
    /// Chunks that chose each backend.
    pub chunks: [u64; 4],
    /// Raw bytes covered by each backend.
    pub raw_bytes: [u64; 4],
    /// Compressed payload bytes produced by each backend.
    pub comp_bytes: [u64; 4],
}

/// One chunk's directory entry, as reported by [`inspect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Backend the bake-off chose for this chunk.
    pub backend: Backend,
    /// Raw bytes the chunk covers.
    pub raw_len: usize,
    /// Compressed payload bytes.
    pub comp_len: usize,
}

fn encode_chunk_as(chunk: &[u8], backend: Backend, effort: Effort) -> Vec<u8> {
    match backend {
        Backend::Stored => chunk.to_vec(),
        Backend::Deflate => lz_compress_with(chunk, effort),
        Backend::Huffman => {
            let counts = freq::count_bytes(chunk);
            let codec = HuffmanCodec::from_counts(&counts);
            let symbols: Vec<u32> = chunk.iter().map(|&b| b as u32).collect();
            let mut out = Vec::with_capacity(chunk.len() / 2 + 64);
            codec.write_table(&mut out);
            let blob = mshuf::encode(&symbols, &codec, HUFF_STREAMS);
            out.extend_from_slice(&blob);
            out
        }
        Backend::Range => {
            let symbols: Vec<u32> = chunk.iter().map(|&b| b as u32).collect();
            range::range_encode(&symbols, 256)
        }
    }
}

/// Candidate backends worth actually encoding for this chunk, from cheap
/// statistics. `Stored` is always the implicit baseline and not listed.
fn candidates(chunk: &[u8]) -> Vec<Backend> {
    if chunk.len() <= SMALL_CHUNK {
        return vec![Backend::Deflate, Backend::Huffman, Backend::Range];
    }
    let counts = freq::count_bytes(chunk);
    let h = freq::shannon_entropy(&counts);
    let mut out = Vec::with_capacity(3);
    // DEFLATE is tried exactly when the bounded match probe predicts a
    // real match gain: without one it can only tie the Huffman backend's
    // order-0 coding while paying a serial-bitstream decode. The probe
    // window sits mid-chunk: heads carry framing and code tables whose
    // dense self-similarity says nothing about the bulk behind them.
    let probe_at = (chunk.len() - PROBE_LEN.min(chunk.len())) / 2;
    let probe = &chunk[probe_at..probe_at + PROBE_LEN.min(chunk.len())];
    let lit_cost = (h / 8.0).min(1.0);
    let mut gain = 0.0f64;
    for t in lz77::tokenize(probe, Effort::Fast) {
        if let lz77::Token::Match { len, .. } = t {
            gain += (len as f64 * lit_cost - MATCH_TOKEN_COST).max(0.0);
        }
    }
    if gain > DEFLATE_MIN_GAIN * probe.len() as f64 {
        out.push(Backend::Deflate);
    }
    if h < ENTROPY_SKIP {
        out.push(Backend::Huffman);
    }
    if h < ENTROPY_RANGE {
        out.push(Backend::Range);
    }
    out
}

/// Compress `data` with per-chunk backend selection at the default
/// [`CHUNK_SIZE`]. The output always decodes via [`decompress_bounded`]
/// and is never larger than `data.len()` plus the chunk directory
/// (worst case every chunk stores).
pub fn compress(data: &[u8], effort: Effort) -> Vec<u8> {
    compress_with_stats(data, effort).0
}

/// [`compress`] that also reports per-backend byte accounting.
pub fn compress_with_stats(data: &[u8], effort: Effort) -> (Vec<u8>, BakeoffStats) {
    compress_inner(data, effort, CHUNK_SIZE, None)
}

/// Test/bench entry: force every chunk through one backend (no bake-off).
pub fn compress_forced(data: &[u8], effort: Effort, backend: Backend) -> Vec<u8> {
    compress_inner(data, effort, CHUNK_SIZE, Some(backend)).0
}

/// Test entry: [`compress_with_stats`] at a caller-chosen chunk size, so
/// multi-chunk behaviour is exercisable without megabyte inputs.
///
/// # Panics
/// Panics if `chunk_size` is 0 or exceeds [`MAX_CHUNK_SIZE`].
pub fn compress_chunked(
    data: &[u8],
    effort: Effort,
    chunk_size: usize,
) -> (Vec<u8>, BakeoffStats) {
    compress_inner(data, effort, chunk_size, None)
}

fn compress_inner(
    data: &[u8],
    effort: Effort,
    chunk_size: usize,
    forced: Option<Backend>,
) -> (Vec<u8>, BakeoffStats) {
    assert!(
        chunk_size >= 1 && chunk_size <= MAX_CHUNK_SIZE,
        "chunk_size {chunk_size} out of 1..={MAX_CHUNK_SIZE}"
    );
    let n_chunks = data.len().div_ceil(chunk_size);
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    varint::write_u64(&mut out, data.len() as u64);
    varint::write_u64(&mut out, chunk_size as u64);
    varint::write_u64(&mut out, n_chunks as u64);
    let mut stats = BakeoffStats::default();
    for chunk in data.chunks(chunk_size) {
        let (backend, payload) = match forced {
            Some(b) => (b, encode_chunk_as(chunk, b, effort)),
            None => {
                // Candidates tried in decode-speed order: a coded backend
                // must beat stored by the decode-cost margin, and a slower
                // candidate must strictly beat the faster incumbent.
                let margin = if chunk.len() > SMALL_CHUNK {
                    chunk.len() >> MARGIN_SHIFT
                } else {
                    0
                };
                let mut best = (Backend::Stored, chunk.to_vec());
                for cand in candidates(chunk) {
                    let enc = encode_chunk_as(chunk, cand, effort);
                    let bar = if best.0 == Backend::Stored {
                        best.1.len().saturating_sub(margin)
                    } else {
                        best.1.len()
                    };
                    if enc.len() < bar {
                        best = (cand, enc);
                    }
                }
                best
            }
        };
        let idx = backend as usize;
        stats.chunks[idx] += 1;
        stats.raw_bytes[idx] += chunk.len() as u64;
        stats.comp_bytes[idx] += payload.len() as u64;
        out.push(backend as u8);
        varint::write_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }
    (out, stats)
}

/// Shared directory walk for [`decompress_bounded`] and [`inspect`]:
/// parses and validates the header, then yields each chunk's
/// `(backend, expected_raw_len, payload)` to `visit`.
fn walk_chunks<'a>(
    src: &'a [u8],
    max_raw: usize,
    mut visit: impl FnMut(Backend, usize, &'a [u8]) -> Result<(), CodecError>,
) -> Result<usize, CodecError> {
    let mut pos = 0usize;
    let raw_len = varint::read_u64(src, &mut pos)? as usize;
    if raw_len > max_raw {
        return Err(CodecError::LimitExceeded {
            what: "bake-off raw length",
            requested: raw_len as u64,
            limit: max_raw as u64,
        });
    }
    let chunk_size = varint::read_u64(src, &mut pos)? as usize;
    if chunk_size == 0 || chunk_size > MAX_CHUNK_SIZE {
        return Err(CodecError::Corrupt("bad bake-off chunk size"));
    }
    let n_chunks = varint::read_u64(src, &mut pos)? as usize;
    if n_chunks != raw_len.div_ceil(chunk_size) {
        return Err(CodecError::Corrupt("bake-off chunk count mismatch"));
    }
    let mut remaining = raw_len;
    for _ in 0..n_chunks {
        let &tag = src.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        let backend = Backend::from_u8(tag)?;
        let comp_len = varint::read_u64(src, &mut pos)? as usize;
        let payload = src
            .get(pos..pos + comp_len)
            .ok_or(CodecError::UnexpectedEof)?;
        pos += comp_len;
        let expect = remaining.min(chunk_size);
        visit(backend, expect, payload)?;
        remaining -= expect;
    }
    if pos != src.len() {
        return Err(CodecError::Corrupt("bake-off container has trailing bytes"));
    }
    Ok(raw_len)
}

fn decode_chunk_into(
    backend: Backend,
    expect: usize,
    payload: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    match backend {
        Backend::Stored => {
            if payload.len() != expect {
                return Err(CodecError::Corrupt("stored chunk length mismatch"));
            }
            out.extend_from_slice(payload);
        }
        Backend::Deflate => {
            let raw = lz_decompress_bounded(payload, expect)?;
            if raw.len() != expect {
                return Err(CodecError::Corrupt("deflate chunk length mismatch"));
            }
            out.extend_from_slice(&raw);
        }
        Backend::Huffman => {
            let mut pos = 0usize;
            let codec = HuffmanCodec::read_table(payload, &mut pos)?;
            let symbols = mshuf::decode_all(&payload[pos..], &codec, expect)?;
            out.reserve(expect);
            for s in symbols {
                if s > 0xff {
                    return Err(CodecError::Corrupt("huffman chunk symbol out of range"));
                }
                out.push(s as u8);
            }
        }
        Backend::Range => {
            let symbols = range::range_decode_bounded(payload, expect)?;
            if symbols.len() != expect {
                return Err(CodecError::Corrupt("range chunk length mismatch"));
            }
            out.reserve(expect);
            for s in symbols {
                if s > 0xff {
                    return Err(CodecError::Corrupt("range chunk symbol out of range"));
                }
                out.push(s as u8);
            }
        }
    }
    Ok(())
}

/// Decompress a bake-off container, allocating at most `max_raw` bytes of
/// output (checked before any allocation). A container whose chunks are
/// all stored borrows the input when it is a single contiguous run —
/// i.e. one chunk — making the store-everything case zero-copy.
///
/// # Errors
/// [`CodecError::LimitExceeded`] when the declared raw length exceeds
/// `max_raw`; [`CodecError::Corrupt`] / [`CodecError::UnexpectedEof`] on
/// any malformed or truncated structure (never panics).
pub fn decompress_bounded(src: &[u8], max_raw: usize) -> Result<Cow<'_, [u8]>, CodecError> {
    // Zero-copy fast path: exactly one stored chunk.
    if let Some(borrowed) = try_borrow_single_stored(src, max_raw)? {
        return Ok(Cow::Borrowed(borrowed));
    }
    let mut out = Vec::new();
    let raw_len = walk_chunks(src, max_raw, |backend, expect, payload| {
        decode_chunk_into(backend, expect, payload, &mut out)
    })?;
    if out.len() != raw_len {
        return Err(CodecError::Corrupt("bake-off output length mismatch"));
    }
    Ok(Cow::Owned(out))
}

/// `Some(slice)` when the container is exactly one stored chunk (shares
/// full validation with [`walk_chunks`]), `None` when it needs decoding,
/// `Err` only for the header errors `walk_chunks` would also raise.
fn try_borrow_single_stored(
    src: &[u8],
    max_raw: usize,
) -> Result<Option<&[u8]>, CodecError> {
    let mut pos = 0usize;
    let raw_len = varint::read_u64(src, &mut pos)? as usize;
    if raw_len > max_raw {
        return Err(CodecError::LimitExceeded {
            what: "bake-off raw length",
            requested: raw_len as u64,
            limit: max_raw as u64,
        });
    }
    let chunk_size = varint::read_u64(src, &mut pos)? as usize;
    if chunk_size == 0 || chunk_size > MAX_CHUNK_SIZE {
        return Err(CodecError::Corrupt("bad bake-off chunk size"));
    }
    let n_chunks = varint::read_u64(src, &mut pos)? as usize;
    if n_chunks != 1 {
        return Ok(None);
    }
    if n_chunks != raw_len.div_ceil(chunk_size) {
        return Err(CodecError::Corrupt("bake-off chunk count mismatch"));
    }
    let &tag = src.get(pos).ok_or(CodecError::UnexpectedEof)?;
    if Backend::from_u8(tag)? != Backend::Stored {
        return Ok(None);
    }
    pos += 1;
    let comp_len = varint::read_u64(src, &mut pos)? as usize;
    let payload = src
        .get(pos..pos + comp_len)
        .ok_or(CodecError::UnexpectedEof)?;
    if payload.len() != raw_len {
        return Err(CodecError::Corrupt("stored chunk length mismatch"));
    }
    if pos + comp_len != src.len() {
        return Err(CodecError::Corrupt("bake-off container has trailing bytes"));
    }
    Ok(Some(payload))
}

/// Read the chunk directory without decoding payloads: returns the total
/// raw length and one [`ChunkInfo`] per chunk (CLI `inspect`, bench
/// tables, obs counters).
///
/// # Errors
/// Same structural errors as [`decompress_bounded`], except payload
/// contents are not validated.
pub fn inspect(src: &[u8]) -> Result<(usize, Vec<ChunkInfo>), CodecError> {
    let mut infos = Vec::new();
    let raw_len = walk_chunks(src, usize::MAX, |backend, expect, payload| {
        infos.push(ChunkInfo {
            backend,
            raw_len: expect,
            comp_len: payload.len(),
        });
        Ok(())
    })?;
    Ok((raw_len, infos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761) >> 24;
                if x < 200 {
                    (x % 4) as u8
                } else {
                    x as u8
                }
            })
            .collect()
    }

    fn noisy(n: usize) -> Vec<u8> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn roundtrip_each_forced_backend() {
        let data = skewed(50_000);
        for backend in Backend::ALL {
            let packed = compress_forced(&data, Effort::Default, backend);
            let back = decompress_bounded(&packed, data.len()).unwrap();
            assert_eq!(back.as_ref(), &data[..], "{}", backend.name());
            let (_, infos) = inspect(&packed).unwrap();
            assert!(infos.iter().all(|c| c.backend == backend));
        }
    }

    #[test]
    fn bakeoff_roundtrips_mixed_content() {
        // Low-entropy head, noisy middle, repetitive tail — multiple
        // chunks at a small chunk size should pick different backends.
        let mut data = vec![3u8; 40_000];
        data.extend(noisy(40_000));
        data.extend(std::iter::repeat_n(b"abcdefgh".as_slice(), 5_000).flatten());
        let (packed, stats) = compress_chunked(&data, Effort::Default, 8 * 1024);
        let back = decompress_bounded(&packed, data.len()).unwrap();
        assert_eq!(back.as_ref(), &data[..]);
        assert_eq!(stats.raw_bytes.iter().sum::<u64>(), data.len() as u64);
        // The noisy middle must not be entropy-coded.
        assert!(stats.chunks[Backend::Stored as usize] > 0, "{stats:?}");
        // At least one region must actually compress.
        let comp: u64 = stats.comp_bytes.iter().sum();
        assert!(comp < data.len() as u64 / 2, "{stats:?}");
    }

    #[test]
    fn incompressible_data_is_stored_with_bounded_overhead() {
        let data = noisy(600_000);
        let (packed, stats) = compress_with_stats(&data, Effort::Default);
        assert_eq!(stats.chunks[Backend::Stored as usize], 3);
        // Header + 3 chunk headers only.
        assert!(packed.len() <= data.len() + 64);
        let back = decompress_bounded(&packed, data.len()).unwrap();
        assert_eq!(back.as_ref(), &data[..]);
    }

    #[test]
    fn single_stored_chunk_decodes_zero_copy() {
        let data = noisy(10_000);
        let packed = compress_forced(&data, Effort::Default, Backend::Stored);
        let back = decompress_bounded(&packed, data.len()).unwrap();
        assert!(matches!(back, Cow::Borrowed(_)));
        assert_eq!(back.as_ref(), &data[..]);
    }

    #[test]
    fn empty_input_roundtrips() {
        let packed = compress(&[], Effort::Default);
        let back = decompress_bounded(&packed, 0).unwrap();
        assert!(back.is_empty());
        let (raw, infos) = inspect(&packed).unwrap();
        assert_eq!((raw, infos.len()), (0, 0));
    }

    #[test]
    fn max_raw_enforced_before_allocation() {
        let data = skewed(10_000);
        let packed = compress(&data, Effort::Default);
        let err = decompress_bounded(&packed, data.len() - 1).unwrap_err();
        assert!(matches!(err, CodecError::LimitExceeded { .. }), "{err:?}");
    }

    #[test]
    fn every_truncation_point_fails_cleanly() {
        let mut data = skewed(6_000);
        data.extend(noisy(6_000));
        let (packed, _) = compress_chunked(&data, Effort::Default, 2048);
        for cut in 0..packed.len() {
            assert!(
                decompress_bounded(&packed[..cut], data.len()).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let data = skewed(1000);
        let mut packed = compress(&data, Effort::Default);
        packed.push(0);
        assert_eq!(
            decompress_bounded(&packed, data.len()).unwrap_err(),
            CodecError::Corrupt("bake-off container has trailing bytes")
        );
    }

    #[test]
    fn bad_tag_and_bad_counts_rejected() {
        let data = skewed(1000);
        let packed = compress(&data, Effort::Default);
        // Find the first chunk tag: it follows three varints.
        let mut pos = 0;
        varint::read_u64(&packed, &mut pos).unwrap();
        varint::read_u64(&packed, &mut pos).unwrap();
        varint::read_u64(&packed, &mut pos).unwrap();
        let mut bad = packed.clone();
        bad[pos] = 9;
        assert_eq!(
            decompress_bounded(&bad, data.len()).unwrap_err(),
            CodecError::Corrupt("unknown bake-off backend tag")
        );
        // Declared chunk count that disagrees with raw_len/chunk_size.
        let mut forged = Vec::new();
        varint::write_u64(&mut forged, 1000);
        varint::write_u64(&mut forged, CHUNK_SIZE as u64);
        varint::write_u64(&mut forged, 5);
        assert_eq!(
            decompress_bounded(&forged, 1000).unwrap_err(),
            CodecError::Corrupt("bake-off chunk count mismatch")
        );
    }

    #[test]
    fn inspect_reports_directory() {
        let mut data = vec![7u8; 5000];
        data.extend(noisy(5000));
        let (packed, stats) = compress_chunked(&data, Effort::Default, 5000);
        let (raw, infos) = inspect(&packed).unwrap();
        assert_eq!(raw, data.len());
        assert_eq!(infos.len(), 2);
        assert_eq!(infos.iter().map(|c| c.raw_len).sum::<usize>(), raw);
        for (i, info) in infos.iter().enumerate() {
            assert_eq!(
                stats.comp_bytes[info.backend as usize] > 0,
                true,
                "chunk {i} stats missing"
            );
        }
    }
}
