//! Canonical Huffman coding over dense `u32` alphabets.
//!
//! This is the "customized Huffman coding" of SZ step (2): the alphabet is
//! the set of quantization codes (commonly 2^16 bins plus an escape symbol),
//! far larger than a byte, so a byte-oriented entropy coder cannot be used.
//!
//! Codes are *canonical*: only the code lengths are serialized (run-length
//! compressed), and both sides rebuild identical codes from the lengths
//! using the DEFLATE `bl_count`/`next_code` construction. Codes are written
//! LSB-first (bit-reversed) to match [`crate::bitio`]'s DEFLATE-style
//! convention.
//!
//! Degenerate inputs are handled explicitly: an empty stream encodes to
//! nothing, and a single distinct symbol is assigned a 1-bit code so the
//! bitstream stays self-delimiting.
//!
//! ```
//! use losslesskit::{BitReader, BitWriter, HuffmanCodec};
//!
//! // Build from a dense frequency table; skewed counts get short codes.
//! let symbols = [0u32, 0, 0, 0, 1, 1, 2, 0, 0, 1];
//! let codec = HuffmanCodec::from_counts(&losslesskit::freq::count_dense(&symbols, 3));
//!
//! let mut w = BitWriter::new();
//! codec.encode(&symbols, &mut w);
//! let bytes = w.finish();
//!
//! // Only code *lengths* go on the wire; the decoder rebuilds the same
//! // canonical codes from them.
//! let mut table = Vec::new();
//! codec.write_table(&mut table);
//! let mut pos = 0;
//! let decoder = HuffmanCodec::read_table(&table, &mut pos).unwrap();
//!
//! let mut out = Vec::new();
//! decoder.decode(&mut BitReader::new(&bytes), symbols.len(), &mut out).unwrap();
//! assert_eq!(out, symbols);
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::varint;
use crate::CodecError;
use std::collections::BinaryHeap;

/// Longest permitted code. Frequencies are rescaled and the tree rebuilt if
/// the unconstrained Huffman tree exceeds this (only reachable with > 2^24
/// symbols and pathologically skewed counts).
const MAX_CODE_LEN: u32 = 28;

/// Width of the single-level fast decode table: 2^12 entries (32 KiB)
/// fits L1 while covering ≥ 90% of symbols at SZ-typical quantization-code
/// distributions (at 11 bits, ~20% of GRF-corpus symbols fell through to
/// the sub-table's dependent second load).
const FAST_BITS: u32 = 12;

/// Largest alphabet [`HuffmanCodec::read_table`] accepts. The SZ pipeline
/// caps quantization bins at 2^24 (alphabet = bins + escape) and the
/// DEFLATE tables are tiny, so anything bigger is hostile input.
const MAX_TABLE_ALPHABET: usize = (1 << 24) + 1;

/// Cap on total second-level decode-table entries accepted from a
/// serialized table. Kraft-legal but adversarial length sets (thousands of
/// distinct deep prefixes, all at `MAX_CODE_LEN`) can demand up to 2^28
/// entries (~2 GiB); real tables from the encoder stay orders of magnitude
/// below this cap.
const MAX_SUB_TABLE_ENTRIES: usize = 1 << 22;

/// A canonical Huffman encoder/decoder for symbols `0..alphabet`.
///
/// Decoding is fully table-driven (no bit-at-a-time tree walk): a primary
/// table over `FAST_BITS` (12) peeked bits resolves every code of length
/// ≤ `FAST_BITS` in one lookup, and each longer-code prefix points at a
/// second-level subtable indexed by the remaining bits — the classic
/// zlib/zstd two-level layout, bounded at two lookups per symbol.
#[derive(Debug, Clone)]
pub struct HuffmanCodec {
    /// Code length per symbol; 0 = symbol unused.
    lens: Vec<u8>,
    /// Wire form per symbol: the canonical (MSB-first) code pre-reversed to
    /// LSB-first, ready to hand to [`BitWriter::write_bits`] without
    /// per-symbol bit-reversal. The MSB-first code is recoverable as
    /// `reverse_bits(wire[s], lens[s])`.
    wire: Vec<u32>,
    /// max code length actually used (0 for an empty alphabet).
    max_len: u32,
    /// fast_table[peeked FAST_BITS, LSB-first] = (payload, len).
    /// len > 0          ⇒ direct hit: payload is the symbol.
    /// len = 0, payload = `INVALID` ⇒ no code has this prefix (corrupt).
    /// len = 0 otherwise ⇒ payload = (subtable offset << 5) | sub_bits.
    fast_table: Vec<(u32, u8)>,
    /// Second-level entries (symbol, total code length); length 0 ⇒ the
    /// extended bit pattern matches no code.
    sub_table: Vec<(u32, u8)>,
}

/// Primary-table payload marking a prefix no code starts with.
const INVALID: u32 = u32::MAX;

impl HuffmanCodec {
    /// Build a codec from a dense frequency table (`counts[s]` = number of
    /// occurrences of symbol `s`).
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut scaled: Vec<u64> = counts.to_vec();
        loop {
            let lens = build_code_lengths(&scaled);
            let max = lens.iter().copied().max().unwrap_or(0) as u32;
            if max <= MAX_CODE_LEN {
                return Self::from_lens(lens);
            }
            // Halve (floor, keep nonzero alive) and retry — flattens the
            // distribution, which strictly reduces the maximum depth.
            for c in scaled.iter_mut() {
                if *c > 0 {
                    *c = (*c >> 1).max(1);
                }
            }
        }
    }

    /// Rebuild a codec from code lengths (the canonical-code construction —
    /// shared by the builder and the table deserializer).
    fn from_lens(lens: Vec<u8>) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0) as u32;
        let mut bl_count = vec![0u32; max_len as usize + 1];
        for &l in &lens {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        // DEFLATE-style canonical code assignment.
        let mut first_code = vec![0u32; max_len as usize + 1];
        let mut code = 0u32;
        for len in 1..=max_len as usize {
            code = (code + bl_count[len - 1]) << 1;
            first_code[len] = code;
        }
        let mut next_code = first_code.clone();
        let mut codes = vec![0u32; lens.len()];
        let mut wire = vec![0u32; lens.len()];
        for (sym, &l) in lens.iter().enumerate() {
            if l > 0 {
                let l = l as usize;
                codes[sym] = next_code[l];
                wire[sym] = reverse_bits(codes[sym], l as u32);
                next_code[l] += 1;
            }
        }
        // Primary table over the low FAST_BITS peeked bits.
        let fast_len = 1usize << FAST_BITS;
        let mut fast_table = vec![(INVALID, 0u8); fast_len];
        for (sym, &l) in lens.iter().enumerate() {
            let l32 = l as u32;
            if l == 0 || l32 > FAST_BITS {
                continue;
            }
            // The wire form is the bit-reversed code; every extension of it
            // below FAST_BITS maps to this symbol.
            let rev = reverse_bits(codes[sym], l32);
            let step = 1usize << l32;
            let mut idx = rev as usize;
            while idx < fast_len {
                fast_table[idx] = (sym as u32, l);
                idx += step;
            }
        }
        // Second level: group codes longer than FAST_BITS by their low
        // FAST_BITS wire prefix; each group gets a subtable indexed by the
        // next `longest-in-group − FAST_BITS` bits.
        let mut sub_table: Vec<(u32, u8)> = Vec::new();
        if max_len > FAST_BITS {
            let mut group_max = vec![0u32; fast_len];
            for (sym, &l) in lens.iter().enumerate() {
                let l32 = l as u32;
                if l32 > FAST_BITS {
                    let prefix = (reverse_bits(codes[sym], l32) & (fast_len as u32 - 1)) as usize;
                    group_max[prefix] = group_max[prefix].max(l32);
                }
            }
            for (prefix, &gmax) in group_max.iter().enumerate() {
                if gmax == 0 {
                    continue;
                }
                let sub_bits = gmax - FAST_BITS;
                debug_assert!(fast_table[prefix].1 == 0, "short code shadows long prefix");
                fast_table[prefix] = (((sub_table.len() as u32) << 5) | sub_bits, 0);
                sub_table.resize(sub_table.len() + (1usize << sub_bits), (0, 0));
            }
            for (sym, &l) in lens.iter().enumerate() {
                let l32 = l as u32;
                if l32 <= FAST_BITS {
                    continue;
                }
                let wire = reverse_bits(codes[sym], l32);
                let prefix = (wire & (fast_len as u32 - 1)) as usize;
                let (payload, _) = fast_table[prefix];
                let sub_bits = payload & 0x1f;
                let base = (payload >> 5) as usize;
                // Every extension of the remainder bits maps to this symbol.
                let step = 1usize << (l32 - FAST_BITS);
                let mut idx = (wire >> FAST_BITS) as usize;
                while idx < (1usize << sub_bits) {
                    sub_table[base + idx] = (sym as u32, l);
                    idx += step;
                }
            }
        }
        HuffmanCodec {
            lens,
            wire,
            max_len,
            fast_table,
            sub_table,
        }
    }

    /// Alphabet size this codec was built for.
    pub fn alphabet(&self) -> usize {
        self.lens.len()
    }

    /// Code length in bits assigned to `sym` (0 if unused).
    pub fn code_len(&self, sym: u32) -> u8 {
        self.lens[sym as usize]
    }

    /// Exact size in bits of encoding the given frequency-table contents.
    pub fn encoded_bits(&self, counts: &[u64]) -> u64 {
        counts
            .iter()
            .enumerate()
            .map(|(s, &c)| c * self.lens[s] as u64)
            .sum()
    }

    /// Append the code for one symbol.
    ///
    /// # Panics
    /// Panics if `sym` was absent from the frequency table (length 0).
    #[inline]
    pub fn encode_one(&self, sym: u32, w: &mut BitWriter) {
        let len = self.lens[sym as usize] as u32;
        debug_assert!(len > 0, "encoding symbol {sym} with no code");
        w.write_bits(self.wire[sym as usize] as u64, len);
    }

    /// Append the codes for two symbols in one packed `write_bits` call
    /// (2 × `MAX_CODE_LEN` = 56 bits fits the writer's per-call limit),
    /// halving writer bookkeeping on the entropy-stage hot path. The
    /// emitted bitstream is identical to two [`HuffmanCodec::encode_one`]
    /// calls.
    ///
    /// # Panics
    /// Panics if either symbol was absent from the frequency table.
    #[inline]
    pub fn encode_pair(&self, a: u32, b: u32, w: &mut BitWriter) {
        let (s0, s1) = (a as usize, b as usize);
        let (l0, l1) = (self.lens[s0] as u32, self.lens[s1] as u32);
        debug_assert!(l0 > 0 && l1 > 0, "encoding symbol with no code");
        let packed = self.wire[s0] as u64 | ((self.wire[s1] as u64) << l0);
        w.write_bits(packed, l0 + l1);
    }

    /// Encode a slice of symbols (pairs packed via
    /// [`HuffmanCodec::encode_pair`]; bitstream identical to
    /// symbol-at-a-time encoding).
    pub fn encode(&self, symbols: &[u32], w: &mut BitWriter) {
        let mut pairs = symbols.chunks_exact(2);
        for pair in &mut pairs {
            self.encode_pair(pair[0], pair[1], w);
        }
        for &s in pairs.remainder() {
            self.encode_one(s, w);
        }
    }

    /// Decode one symbol.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] when the stream ends mid-code;
    /// [`CodecError::Corrupt`] when the bits match no code.
    #[inline]
    pub fn decode_one(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        if self.max_len == 0 {
            return Err(CodecError::Corrupt("decode from empty codec"));
        }
        let peek = r.peek_bits(FAST_BITS) as usize;
        let (payload, len) = self.fast_table[peek];
        if len > 0 {
            if r.bits_remaining() < len as usize {
                return Err(CodecError::UnexpectedEof);
            }
            r.consume(len as u32);
            return Ok(payload);
        }
        if payload == INVALID {
            // Peeks past the end read as zeros, so a truncated stream can
            // land here; report EOF rather than corruption in that case.
            if r.bits_remaining() < FAST_BITS as usize {
                return Err(CodecError::UnexpectedEof);
            }
            return Err(CodecError::Corrupt("bit pattern matches no Huffman code"));
        }
        // Long code: one more lookup in the prefix's subtable.
        let sub_bits = payload & 0x1f;
        let base = (payload >> 5) as usize;
        let ext = r.peek_bits(FAST_BITS + sub_bits) as usize;
        let (sym, total) = self.sub_table[base + (ext >> FAST_BITS)];
        if total == 0 {
            if r.bits_remaining() < (FAST_BITS + sub_bits) as usize {
                return Err(CodecError::UnexpectedEof);
            }
            return Err(CodecError::Corrupt("bit pattern matches no Huffman code"));
        }
        if r.bits_remaining() < total as usize {
            return Err(CodecError::UnexpectedEof);
        }
        r.consume(total as u32);
        Ok(sym)
    }

    /// [`HuffmanCodec::decode_one`] on a raw `(acc, nbits)` accumulator,
    /// without per-symbol EOF accounting. The SoA quad fast path in
    /// [`crate::mshuf`] mirrors four readers into flat arrays so their
    /// refills can be vectorized; this is the per-lane table walk it runs
    /// between refills. Precondition: ≥ [`MAX_CODE_LEN`] bits buffered
    /// (the caller checked ≥ 8 unread bytes per lane and refilled), so a table
    /// miss is corruption, never truncation.
    #[inline]
    pub(crate) fn decode_one_raw(&self, acc: &mut u64, nbits: &mut u32) -> Result<u32, CodecError> {
        let peek = (*acc & ((1u64 << FAST_BITS) - 1)) as usize;
        let (payload, len) = self.fast_table[peek];
        if len > 0 {
            debug_assert!(*nbits >= len as u32, "decode_one_raw past fill");
            *acc >>= len as u32;
            *nbits -= len as u32;
            return Ok(payload);
        }
        if payload == INVALID {
            return Err(CodecError::Corrupt("bit pattern matches no Huffman code"));
        }
        let sub_bits = payload & 0x1f;
        let base = (payload >> 5) as usize;
        let ext = (*acc & ((1u64 << (FAST_BITS + sub_bits)) - 1)) as usize;
        let (sym, total) = self.sub_table[base + (ext >> FAST_BITS)];
        if total == 0 {
            return Err(CodecError::Corrupt("bit pattern matches no Huffman code"));
        }
        debug_assert!(*nbits >= total as u32, "decode_one_raw past fill");
        *acc >>= total as u32;
        *nbits -= total as u32;
        Ok(sym)
    }

    /// Decode exactly `n` symbols into `out`.
    ///
    /// # Errors
    /// Propagates [`HuffmanCodec::decode_one`] failures.
    pub fn decode(
        &self,
        r: &mut BitReader<'_>,
        n: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), CodecError> {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.decode_one(r)?);
        }
        Ok(())
    }

    /// Serialize the code-length table (alphabet varint, then
    /// `(length, run)` pairs covering the alphabet).
    pub fn write_table(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.lens.len() as u64);
        let mut i = 0usize;
        while i < self.lens.len() {
            let l = self.lens[i];
            let mut run = 1usize;
            while i + run < self.lens.len() && self.lens[i + run] == l {
                run += 1;
            }
            out.push(l);
            varint::write_u64(out, run as u64);
            i += run;
        }
    }

    /// Deserialize a table written by [`HuffmanCodec::write_table`].
    ///
    /// # Errors
    /// [`CodecError::Corrupt`] on malformed runs or lengths exceeding
    /// the maximum; [`CodecError::UnexpectedEof`] on truncation.
    pub fn read_table(src: &[u8], pos: &mut usize) -> Result<Self, CodecError> {
        let alphabet = varint::read_u64(src, pos)? as usize;
        if alphabet > MAX_TABLE_ALPHABET {
            return Err(CodecError::LimitExceeded {
                what: "Huffman alphabet",
                requested: alphabet as u64,
                limit: MAX_TABLE_ALPHABET as u64,
            });
        }
        let mut lens = Vec::with_capacity(alphabet);
        while lens.len() < alphabet {
            let l = *src.get(*pos).ok_or(CodecError::UnexpectedEof)?;
            *pos += 1;
            if l as u32 > MAX_CODE_LEN {
                return Err(CodecError::Corrupt("code length exceeds maximum"));
            }
            let run = varint::read_u64(src, pos)? as usize;
            if run == 0 || run > alphabet - lens.len() {
                return Err(CodecError::Corrupt("bad code-length run"));
            }
            lens.resize(lens.len() + run, l);
        }
        // Kraft inequality check: rejects tables no prefix code satisfies.
        let mut kraft = 0u64;
        let mut used = 0u64;
        for &l in &lens {
            if l > 0 {
                kraft += 1u64 << (MAX_CODE_LEN - l as u32);
                used += 1;
            }
        }
        let full = 1u64 << MAX_CODE_LEN;
        if used > 1 && kraft > full {
            return Err(CodecError::Corrupt("code lengths violate Kraft inequality"));
        }
        // Size the two-level decode table BEFORE building it: Kraft-legal
        // adversarial length sets can demand gigabytes of subtables.
        let sub_entries = Self::sub_table_entries(&lens);
        if sub_entries > MAX_SUB_TABLE_ENTRIES {
            return Err(CodecError::LimitExceeded {
                what: "Huffman decode-table entries",
                requested: sub_entries as u64,
                limit: MAX_SUB_TABLE_ENTRIES as u64,
            });
        }
        Ok(Self::from_lens(lens))
    }

    /// Second-level entry count [`Self::from_lens`] would allocate for
    /// these code lengths (mirrors its grouping: one subtable per deep
    /// low-`FAST_BITS` wire prefix, sized by the group's longest code).
    fn sub_table_entries(lens: &[u8]) -> usize {
        let max_len = lens.iter().copied().max().unwrap_or(0) as u32;
        if max_len <= FAST_BITS {
            return 0;
        }
        let fast_len = 1usize << FAST_BITS;
        let mut group_max = vec![0u32; fast_len];
        let mut bl_count = vec![0u32; max_len as usize + 1];
        for &l in lens {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut first_code = vec![0u32; max_len as usize + 1];
        let mut code = 0u32;
        for len in 1..=max_len as usize {
            code = (code + bl_count[len - 1]) << 1;
            first_code[len] = code;
        }
        let mut next_code = first_code;
        for &l in lens {
            if l == 0 {
                continue;
            }
            let l32 = l as u32;
            let c = next_code[l as usize];
            next_code[l as usize] += 1;
            if l32 > FAST_BITS {
                let prefix = (reverse_bits(c, l32) & (fast_len as u32 - 1)) as usize;
                group_max[prefix] = group_max[prefix].max(l32);
            }
        }
        group_max
            .iter()
            .filter(|&&g| g > 0)
            .map(|&g| 1usize << (g - FAST_BITS))
            .sum()
    }
}

/// Reverse the low `n` bits of `v` (MSB-first canonical code → LSB-first
/// wire form).
#[inline]
fn reverse_bits(v: u32, n: u32) -> u32 {
    v.reverse_bits() >> (32 - n)
}

/// Compute Huffman code lengths from frequencies using a binary heap with
/// deterministic tie-breaking (lower symbol index wins) so compressor and
/// tests are reproducible across runs.
fn build_code_lengths(counts: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct Item {
        weight: u64,
        tiebreak: u32,
        node: u32,
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other
                .weight
                .cmp(&self.weight)
                .then(other.tiebreak.cmp(&self.tiebreak))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let used: Vec<u32> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(s, _)| s as u32)
        .collect();
    let mut lens = vec![0u8; counts.len()];
    match used.len() {
        0 => return lens,
        1 => {
            // A lone symbol still needs one bit so the stream is decodable.
            lens[used[0] as usize] = 1;
            return lens;
        }
        _ => {}
    }

    // Internal tree: nodes 0..used.len() are leaves; parents appended after.
    let n_leaves = used.len();
    let mut parent = vec![u32::MAX; n_leaves];
    let mut heap = BinaryHeap::with_capacity(n_leaves);
    for (i, &sym) in used.iter().enumerate() {
        heap.push(Item {
            weight: counts[sym as usize],
            tiebreak: sym,
            node: i as u32,
        });
    }
    let mut next_tiebreak = counts.len() as u32;
    while heap.len() > 1 {
        let a = heap.pop().expect("heap len checked");
        let b = heap.pop().expect("heap len checked");
        let p = parent.len() as u32;
        parent.push(u32::MAX);
        parent[a.node as usize] = p;
        parent[b.node as usize] = p;
        heap.push(Item {
            weight: a.weight + b.weight,
            tiebreak: next_tiebreak,
            node: p,
        });
        next_tiebreak += 1;
    }
    // Depth of each leaf = number of parent hops to the root.
    let mut depth = vec![0u8; parent.len()];
    // Parents were appended in increasing order, so children always have
    // larger parent indices... actually parents have *larger* indices than
    // children; walk from the last node (root) downward.
    for node in (0..parent.len()).rev() {
        let p = parent[node];
        if p != u32::MAX {
            depth[node] = depth[p as usize] + 1;
        }
    }
    for (i, &sym) in used.iter().enumerate() {
        lens[sym as usize] = depth[i];
    }
    lens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::count_dense;

    fn roundtrip(symbols: &[u32], alphabet: usize) {
        let counts = count_dense(symbols, alphabet);
        let codec = HuffmanCodec::from_counts(&counts);
        let mut w = BitWriter::new();
        codec.encode(symbols, &mut w);
        let bytes = w.finish();
        // Serialize + rebuild the table, decode with the rebuilt codec.
        let mut table = Vec::new();
        codec.write_table(&mut table);
        let mut pos = 0;
        let codec2 = HuffmanCodec::read_table(&table, &mut pos).unwrap();
        assert_eq!(pos, table.len());
        let mut r = BitReader::new(&bytes);
        let mut out = Vec::new();
        codec2.decode(&mut r, symbols.len(), &mut out).unwrap();
        assert_eq!(out, symbols);
    }

    #[test]
    fn two_symbol_roundtrip() {
        roundtrip(&[0, 1, 0, 0, 1, 0, 0, 0], 2);
    }

    #[test]
    fn skewed_roundtrip() {
        let mut syms = vec![5u32; 1000];
        syms.extend([0, 1, 2, 3, 4, 6, 7].repeat(3));
        roundtrip(&syms, 8);
    }

    #[test]
    fn single_symbol_stream() {
        roundtrip(&[3; 257], 10);
    }

    #[test]
    fn empty_stream() {
        let counts = vec![0u64; 16];
        let codec = HuffmanCodec::from_counts(&counts);
        let mut w = BitWriter::new();
        codec.encode(&[], &mut w);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn large_alphabet_quantization_codes() {
        // Emulates SZ: 65536 bins, codes clustered around the center.
        let alphabet = 65536usize;
        let center = 32768u32;
        let mut syms = Vec::new();
        for i in 0..20000u32 {
            let spread = (i % 37) as i32 - 18;
            syms.push((center as i32 + spread) as u32);
        }
        roundtrip(&syms, alphabet);
    }

    #[test]
    fn optimality_against_entropy() {
        // Huffman is within 1 bit/symbol of the entropy bound.
        let mut syms = Vec::new();
        for (sym, reps) in [(0u32, 50usize), (1, 25), (2, 13), (3, 12)] {
            syms.extend(std::iter::repeat(sym).take(reps));
        }
        let counts = count_dense(&syms, 4);
        let codec = HuffmanCodec::from_counts(&counts);
        let bits = codec.encoded_bits(&counts) as f64 / syms.len() as f64;
        let h = crate::freq::shannon_entropy(&counts);
        assert!(bits >= h - 1e-9, "below entropy: {bits} < {h}");
        assert!(bits < h + 1.0, "more than 1 bit over entropy");
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let counts = vec![5u64, 9, 12, 13, 16, 45];
        let codec = HuffmanCodec::from_counts(&counts);
        for a in 0..counts.len() as u32 {
            for b in 0..counts.len() as u32 {
                if a == b {
                    continue;
                }
                let (la, lb) = (codec.lens[a as usize], codec.lens[b as usize]);
                let ca = reverse_bits(codec.wire[a as usize], la as u32);
                let cb = reverse_bits(codec.wire[b as usize], lb as u32);
                if la <= lb {
                    assert_ne!(
                        ca,
                        cb >> (lb - la),
                        "code of {a} is a prefix of code of {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn classic_frequency_set_gets_optimal_lengths() {
        // Textbook example: frequencies 45,13,12,16,9,5 → code lengths
        // 1,3,3,3,4,4 (up to permutation within equal frequencies).
        let counts = vec![45u64, 13, 12, 16, 9, 5];
        let codec = HuffmanCodec::from_counts(&counts);
        assert_eq!(codec.code_len(0), 1);
        let mut rest: Vec<u8> = (1..6).map(|s| codec.code_len(s)).collect();
        rest.sort_unstable();
        assert_eq!(rest, vec![3, 3, 3, 4, 4]);
    }

    #[test]
    fn two_level_table_handles_deep_codes() {
        // Fibonacci-ish weights force a maximally skewed tree, driving code
        // lengths well past FAST_BITS into the second-level subtables.
        let mut counts = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for c in counts.iter_mut() {
            *c = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let codec = HuffmanCodec::from_counts(&counts);
        assert!(codec.max_len > FAST_BITS + 5, "want deep subtables");
        let syms: Vec<u32> = (0..40u32).chain((0..40u32).rev()).collect();
        let mut w = BitWriter::new();
        codec.encode(&syms, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = Vec::new();
        codec.decode(&mut r, syms.len(), &mut out).unwrap();
        assert_eq!(out, syms);
        // Truncating mid-deep-code must error, not mis-decode.
        let mut r = BitReader::new(&bytes[..2]);
        let mut out = Vec::new();
        assert!(codec.decode(&mut r, syms.len(), &mut out).is_err());
    }

    #[test]
    fn paired_encode_matches_symbol_at_a_time() {
        // Deep codes (near MAX_CODE_LEN) plus odd/even stream lengths
        // exercise the packed pair path and its remainder handling.
        let mut counts = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for c in counts.iter_mut() {
            *c = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let codec = HuffmanCodec::from_counts(&counts);
        for n in [0usize, 1, 2, 3, 80, 81] {
            let syms: Vec<u32> = (0..n as u32).map(|i| i % 40).collect();
            let mut batched = BitWriter::new();
            codec.encode(&syms, &mut batched);
            let mut single = BitWriter::new();
            for &s in &syms {
                codec.encode_one(s, &mut single);
            }
            assert_eq!(batched.finish(), single.finish(), "n={n}");
        }
    }

    #[test]
    fn truncated_stream_is_eof() {
        let counts = vec![1u64, 1, 1, 1];
        let codec = HuffmanCodec::from_counts(&counts);
        let mut w = BitWriter::new();
        codec.encode(&[0, 1, 2, 3, 0, 1, 2, 3], &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..bytes.len() - 1]);
        let mut out = Vec::new();
        assert!(codec.decode(&mut r, 8, &mut out).is_err());
    }

    #[test]
    fn corrupt_table_rejected() {
        // Kraft violation: three symbols all with length 1.
        let mut table = Vec::new();
        varint::write_u64(&mut table, 3);
        table.push(1u8);
        varint::write_u64(&mut table, 3);
        let mut pos = 0;
        assert!(matches!(
            HuffmanCodec::read_table(&table, &mut pos),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn table_roundtrip_preserves_lengths() {
        let counts: Vec<u64> = (0..300).map(|i| (i % 17) as u64).collect();
        let codec = HuffmanCodec::from_counts(&counts);
        let mut table = Vec::new();
        codec.write_table(&mut table);
        let mut pos = 0;
        let codec2 = HuffmanCodec::read_table(&table, &mut pos).unwrap();
        assert_eq!(codec.lens, codec2.lens);
        assert_eq!(codec.wire, codec2.wire);
    }

    #[test]
    fn fast_and_slow_paths_agree() {
        // Force some codes past FAST_BITS by using a geometric distribution
        // over a moderately large alphabet.
        let alphabet = 4000usize;
        let counts: Vec<u64> = (0..alphabet)
            .map(|i| 1u64 << (20usize.saturating_sub(i / 200)))
            .collect();
        let codec = HuffmanCodec::from_counts(&counts);
        assert!(
            codec.max_len > FAST_BITS,
            "test needs codes longer than the fast table"
        );
        let syms: Vec<u32> = (0..alphabet as u32).collect();
        let mut w = BitWriter::new();
        codec.encode(&syms, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut out = Vec::new();
        codec.decode(&mut r, syms.len(), &mut out).unwrap();
        assert_eq!(out, syms);
    }
}
