//! Runtime SIMD dispatch shared by every vectorized hot loop in the tree.
//!
//! The contract every dispatch-level consumer must uphold: **output bytes
//! are identical at every level**. SIMD variants here are restricted to
//! transformations that provably preserve the scalar result bit-for-bit
//! (integer-domain loops, lane-per-row wavefronts that execute the exact
//! scalar FP operation sequence per lane, wide equality compares). A level
//! is therefore only ever a *speed* choice, never a *format* choice; the
//! scalar path remains the normative definition of every codec.
//!
//! Level selection, in priority order:
//!
//! 1. a programmatic override installed via [`force`] (tests and benches
//!    sweep levels in-process this way),
//! 2. the `FPSNR_SIMD` environment variable (`off`|`sse2`|`avx2`, read
//!    once), and
//! 3. runtime CPU detection (`is_x86_feature_detected!`).
//!
//! Requests are clamped to what the CPU supports, so forcing `avx2` on a
//! non-AVX2 machine degrades to the best supported level rather than
//! executing illegal instructions. On non-x86_64 targets every query
//! returns [`SimdLevel::Off`] and no `unsafe` intrinsic block is reachable.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A dispatch level, ordered from scalar to widest.
///
/// `Off` is the mandatory scalar fallback: no intrinsics, no `unsafe`.
/// `Sse2` is the x86_64 baseline (always available there); `Avx2` is
/// runtime-detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Scalar only — the normative reference path.
    Off = 0,
    /// 128-bit SSE2 lanes (x86_64 baseline, statically available).
    Sse2 = 1,
    /// 256-bit AVX2 lanes (runtime-detected).
    Avx2 = 2,
}

impl SimdLevel {
    /// Stable lowercase name, matching the `FPSNR_SIMD` spelling.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Off => "off",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// All levels, narrowest first — the sweep order tests use.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Off, SimdLevel::Sse2, SimdLevel::Avx2];

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            1 => SimdLevel::Sse2,
            2 => SimdLevel::Avx2,
            _ => SimdLevel::Off,
        }
    }
}

/// Sentinel in [`FORCED`] meaning "no programmatic override installed".
const UNFORCED: u8 = 0xFF;

/// Programmatic override slot. A plain relaxed atomic: concurrent tests
/// racing on it can only change which *speed* path runs, never the bytes
/// produced, so the race is benign by the module contract.
static FORCED: AtomicU8 = AtomicU8::new(UNFORCED);

/// Best level the executing CPU supports.
pub fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        // SSE2 is part of the x86_64 baseline; no runtime check needed.
        SimdLevel::Sse2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Off
    }
}

/// The level selected by `FPSNR_SIMD` (or detection when unset/unknown),
/// clamped to [`detect`]. Read once and cached.
fn env_default() -> SimdLevel {
    static ENV: OnceLock<SimdLevel> = OnceLock::new();
    *ENV.get_or_init(|| {
        let requested = match std::env::var("FPSNR_SIMD").ok().as_deref() {
            Some("off") | Some("scalar") | Some("0") => Some(SimdLevel::Off),
            Some("sse2") => Some(SimdLevel::Sse2),
            Some("avx2") | Some("auto") => Some(SimdLevel::Avx2),
            _ => None,
        };
        match requested {
            Some(l) => l.min(detect()),
            None => detect(),
        }
    })
}

/// The dispatch level hot loops should use right now.
///
/// Override precedence: [`force`] > `FPSNR_SIMD` > [`detect`], always
/// clamped to what the CPU supports.
#[inline]
pub fn active() -> SimdLevel {
    let forced = FORCED.load(Ordering::Relaxed);
    if forced == UNFORCED {
        env_default()
    } else {
        SimdLevel::from_u8(forced).min(detect())
    }
}

/// Install (`Some(level)`) or clear (`None`) the programmatic override.
///
/// Intended for tests and benches that sweep every level in one process;
/// requests above the CPU's capability are clamped by [`active`], which
/// keeps sweeps portable (the clamped levels still pass because every
/// level produces identical bytes).
pub fn force(level: Option<SimdLevel>) {
    let v = match level {
        None => UNFORCED,
        Some(l) => l as u8,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// Serializes tests that install a [`force`] override (the slot is
/// process-global and the test harness is threaded). Tests that only
/// assert *output equality* across levels don't need it — that race is
/// benign — but tests asserting what [`active`] returns do.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_overrides_and_clears() {
        let _g = test_guard();
        force(Some(SimdLevel::Off));
        assert_eq!(active(), SimdLevel::Off);
        force(Some(SimdLevel::Sse2));
        assert!(active() <= SimdLevel::Sse2);
        force(None);
        assert_eq!(active(), env_default());
    }

    #[test]
    fn requests_clamp_to_cpu() {
        let _g = test_guard();
        force(Some(SimdLevel::Avx2));
        assert!(active() <= detect());
        force(None);
    }

    #[test]
    fn names_match_env_spellings() {
        assert_eq!(SimdLevel::Off.name(), "off");
        assert_eq!(SimdLevel::Sse2.name(), "sse2");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
    }

    #[test]
    fn levels_are_ordered() {
        assert!(SimdLevel::Off < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
    }
}
