//! Orthonormal DCT-II bases.
//!
//! The DCT-II with orthonormal scaling,
//! `M[k][n] = s(k) · √(2/N) · cos(π(2n+1)k / 2N)` with
//! `s(0) = 1/√2, s(k>0) = 1`, satisfies `M·Mᵀ = I` — the property Theorem 2
//! requires. Matrices are built once per block size and applied as dense
//! mat-vecs (blocks are 4 or 8 wide; dense is faster than fancy here).

/// Which orthonormal basis a block codec uses. Theorem 2 holds for *any*
/// orthonormal transform; offering two makes that concrete (and the
/// `ablation` bench compares their rate–distortion behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisKind {
    /// Orthonormal DCT-II (energy-compacting; ZFP-like choice).
    Dct2,
    /// Orthonormal Haar wavelet matrix.
    Haar,
}

impl BasisKind {
    /// Stable container tag.
    pub fn tag(self) -> u8 {
        match self {
            BasisKind::Dct2 => 0,
            BasisKind::Haar => 1,
        }
    }

    /// Inverse of [`BasisKind::tag`].
    pub fn from_tag(tag: u8) -> Option<BasisKind> {
        match tag {
            0 => Some(BasisKind::Dct2),
            1 => Some(BasisKind::Haar),
            _ => None,
        }
    }

    /// Materialize the basis at block size `n`.
    pub fn build(self, n: usize) -> Basis {
        match self {
            BasisKind::Dct2 => Basis::dct2(n),
            BasisKind::Haar => Basis::haar(n),
        }
    }
}

/// An `N × N` orthonormal transform matrix.
#[derive(Debug, Clone)]
pub struct Basis {
    n: usize,
    /// Row-major forward matrix.
    fwd: Vec<f64>,
}

impl Basis {
    /// The orthonormal Haar matrix of size `n` (power of two), built by the
    /// recursion `H_{2m} = [H_m ⊗ (1,1)/√2 ; I_m ⊗ (1,−1)/√2]`.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two ≥ 1.
    pub fn haar(n: usize) -> Self {
        assert!(n.is_power_of_two() && n > 0, "Haar needs a power of two, got {n}");
        let mut fwd = vec![1.0f64];
        let mut m = 1usize;
        let s = 1.0 / 2.0f64.sqrt();
        while m < n {
            let next = 2 * m;
            let mut out = vec![0.0f64; next * next];
            // Top half: each existing row spread over pairs, averaged.
            for r in 0..m {
                for c in 0..m {
                    let v = fwd[r * m + c] * s;
                    out[r * next + 2 * c] = v;
                    out[r * next + 2 * c + 1] = v;
                }
            }
            // Bottom half: localized differences.
            for r in 0..m {
                out[(m + r) * next + 2 * r] = s;
                out[(m + r) * next + 2 * r + 1] = -s;
            }
            fwd = out;
            m = next;
        }
        Basis { n, fwd }
    }

    /// The orthonormal DCT-II of size `n`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn dct2(n: usize) -> Self {
        assert!(n > 0, "empty basis");
        let mut fwd = vec![0.0f64; n * n];
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let s = if k == 0 { 1.0 / 2.0f64.sqrt() } else { 1.0 };
            for j in 0..n {
                fwd[k * n + j] = s
                    * norm
                    * ((std::f64::consts::PI * (2.0 * j as f64 + 1.0) * k as f64)
                        / (2.0 * n as f64))
                        .cos();
            }
        }
        Basis { n, fwd }
    }

    /// Block size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Forward transform: `out[k] = Σⱼ M[k][j]·input[j]`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn forward(&self, input: &[f64], out: &mut [f64]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(out.len(), self.n);
        for k in 0..self.n {
            let row = &self.fwd[k * self.n..(k + 1) * self.n];
            out[k] = row.iter().zip(input).map(|(m, x)| m * x).sum();
        }
    }

    /// Inverse transform (the transpose, because the basis is orthonormal).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn inverse(&self, input: &[f64], out: &mut [f64]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(out.len(), self.n);
        for j in 0..self.n {
            let mut acc = 0.0;
            for k in 0..self.n {
                acc += self.fwd[k * self.n + j] * input[k];
            }
            out[j] = acc;
        }
    }

    /// Apply the forward transform along a strided line in place.
    pub fn forward_strided(&self, data: &mut [f64], start: usize, stride: usize) {
        let mut line = vec![0.0; self.n];
        let mut out = vec![0.0; self.n];
        for (i, l) in line.iter_mut().enumerate() {
            *l = data[start + i * stride];
        }
        self.forward(&line, &mut out);
        for (i, o) in out.iter().enumerate() {
            data[start + i * stride] = *o;
        }
    }

    /// Apply the inverse transform along a strided line in place.
    pub fn inverse_strided(&self, data: &mut [f64], start: usize, stride: usize) {
        let mut line = vec![0.0; self.n];
        let mut out = vec![0.0; self.n];
        for (i, l) in line.iter_mut().enumerate() {
            *l = data[start + i * stride];
        }
        self.inverse(&line, &mut out);
        for (i, o) in out.iter().enumerate() {
            data[start + i * stride] = *o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orthonormality(n: usize) {
        let b = Basis::dct2(n);
        for r1 in 0..n {
            for r2 in 0..n {
                let dot: f64 = (0..n).map(|j| b.fwd[r1 * n + j] * b.fwd[r2 * n + j]).sum();
                let expect = if r1 == r2 { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < 1e-12,
                    "rows {r1},{r2} of DCT-{n}: {dot}"
                );
            }
        }
    }

    #[test]
    fn dct4_and_dct8_are_orthonormal() {
        orthonormality(4);
        orthonormality(8);
    }

    fn haar_orthonormality(n: usize) {
        let b = Basis::haar(n);
        for r1 in 0..n {
            for r2 in 0..n {
                let dot: f64 = (0..n).map(|j| b.fwd[r1 * n + j] * b.fwd[r2 * n + j]).sum();
                let expect = if r1 == r2 { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < 1e-12,
                    "rows {r1},{r2} of Haar-{n}: {dot}"
                );
            }
        }
    }

    #[test]
    fn haar_matrices_are_orthonormal() {
        for n in [1usize, 2, 4, 8, 16] {
            haar_orthonormality(n);
        }
    }

    #[test]
    fn haar4_matches_hand_construction() {
        let b = Basis::haar(4);
        let expect = [
            [0.5, 0.5, 0.5, 0.5],
            [0.5, 0.5, -0.5, -0.5],
            [std::f64::consts::FRAC_1_SQRT_2, -std::f64::consts::FRAC_1_SQRT_2, 0.0, 0.0],
            [0.0, 0.0, std::f64::consts::FRAC_1_SQRT_2, -std::f64::consts::FRAC_1_SQRT_2],
        ];
        for r in 0..4 {
            for c in 0..4 {
                assert!(
                    (b.fwd[r * 4 + c] - expect[r][c]).abs() < 1e-12,
                    "H[{r}][{c}] = {}",
                    b.fwd[r * 4 + c]
                );
            }
        }
    }

    #[test]
    fn haar_roundtrip_and_l2_preservation() {
        let b = Basis::haar(8);
        let input: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let mut coeff = vec![0.0; 8];
        let mut back = vec![0.0; 8];
        b.forward(&input, &mut coeff);
        b.inverse(&coeff, &mut back);
        for (x, y) in input.iter().zip(&back) {
            assert!((x - y).abs() < 1e-12);
        }
        let e_in: f64 = input.iter().map(|v| v * v).sum();
        let e_out: f64 = coeff.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-12);
    }

    #[test]
    fn basis_kind_tags_roundtrip() {
        for kind in [BasisKind::Dct2, BasisKind::Haar] {
            assert_eq!(BasisKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(BasisKind::from_tag(9), None);
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let b = Basis::dct2(8);
        let input: Vec<f64> = (0..8).map(|i| (i as f64 * 1.3).sin() * 5.0).collect();
        let mut coeff = vec![0.0; 8];
        let mut back = vec![0.0; 8];
        b.forward(&input, &mut coeff);
        b.inverse(&coeff, &mut back);
        for (x, y) in input.iter().zip(&back) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_block_energy_lands_in_dc() {
        let b = Basis::dct2(4);
        let input = [3.0; 4];
        let mut coeff = [0.0; 4];
        b.forward(&input, &mut coeff);
        // DC = 3 * sqrt(4) = 6; all AC zero.
        assert!((coeff[0] - 6.0).abs() < 1e-12);
        for c in &coeff[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn l2_norm_preserved() {
        let b = Basis::dct2(8);
        let input: Vec<f64> = (0..8).map(|i| (i * i) as f64 - 20.0).collect();
        let mut coeff = vec![0.0; 8];
        b.forward(&input, &mut coeff);
        let e_in: f64 = input.iter().map(|v| v * v).sum();
        let e_out: f64 = coeff.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-12);
    }

    #[test]
    fn strided_application_matches_dense() {
        let b = Basis::dct2(4);
        // 4x4 grid: transform column 1 (stride 4).
        let mut grid: Vec<f64> = (0..16).map(|v| v as f64).collect();
        let col: Vec<f64> = (0..4).map(|r| grid[r * 4 + 1]).collect();
        let mut expect = vec![0.0; 4];
        b.forward(&col, &mut expect);
        b.forward_strided(&mut grid, 1, 4);
        for r in 0..4 {
            assert!((grid[r * 4 + 1] - expect[r]).abs() < 1e-12);
        }
    }
}
