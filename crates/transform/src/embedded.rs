//! Embedded (bit-plane) coding of transform coefficients — the "EC"
//! alternative to quantization the paper's §III covers, and the mechanism
//! behind ZFP's *fixed-rate* and *fixed-precision* modes (§II-B).
//!
//! Each transformed block is coded most-significant-bit-plane first with
//! significance-ordered sign coding, so the stream can be cut at *any* bit
//! and still decode to the best available approximation:
//!
//! - **fixed-rate** — every block gets exactly `bits_per_value · block_len`
//!   bits (padded), so the compressed size is exact and blocks are
//!   independently addressable (ZFP's headline property);
//! - **fixed-precision** — every block keeps its top `planes` bit planes,
//!   bounding the *relative-to-block-maximum* error.
//!
//! The contrast with the paper's contribution is the point: embedded coding
//! fixes the *rate* and lets PSNR float; uniform quantization (Eq. 6) fixes
//! the *PSNR* and lets the rate float. The `mode_space` experiment binary
//! shows both sides.

use crate::basis::{Basis, BasisKind};
use losslesskit::bitio::{BitReader, BitWriter};
use losslesskit::varint;
use ndfield::{Field, Scalar, Shape};
use szlike::SzError;

/// Container magic for embedded-coded fields.
const MAGIC: [u8; 4] = *b"XEC1";
/// Magnitude bits per coefficient before plane truncation.
const MAG_BITS: u32 = 48;
/// Biased-exponent width for the per-block maximum exponent.
const EMAX_BITS: u32 = 12;
const EMAX_BIAS: i64 = 2047;

/// Rate/precision policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EcMode {
    /// Exactly `bits_per_value` bits per sample (ZFP fixed-rate).
    FixedRate {
        /// Bit budget per sample (0.5 .. 50 are sensible).
        bits_per_value: f64,
    },
    /// Keep the top `planes` bit planes of every block (ZFP
    /// fixed-precision).
    FixedPrecision {
        /// Number of bit planes, `1..=MAG_BITS`.
        planes: u32,
    },
}

/// Configuration for the embedded codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbeddedConfig {
    /// Block edge (4 or 8).
    pub block: usize,
    /// Orthonormal basis.
    pub basis: BasisKind,
    /// Rate/precision policy.
    pub mode: EcMode,
}

impl EmbeddedConfig {
    /// Fixed-rate configuration with 4-wide DCT blocks.
    pub fn fixed_rate(bits_per_value: f64) -> Self {
        EmbeddedConfig {
            block: 4,
            basis: BasisKind::Dct2,
            mode: EcMode::FixedRate { bits_per_value },
        }
    }

    /// Fixed-precision configuration with 4-wide DCT blocks.
    pub fn fixed_precision(planes: u32) -> Self {
        EmbeddedConfig {
            block: 4,
            basis: BasisKind::Dct2,
            mode: EcMode::FixedPrecision { planes },
        }
    }

    fn validate(&self) -> Result<(), SzError> {
        if self.block != 4 && self.block != 8 {
            return Err(SzError::BadConfig(format!("block {} not 4/8", self.block)));
        }
        match self.mode {
            EcMode::FixedRate { bits_per_value } => {
                if !(bits_per_value.is_finite() && bits_per_value > 0.0 && bits_per_value <= 64.0)
                {
                    return Err(SzError::BadConfig(format!(
                        "bits_per_value {bits_per_value} out of (0, 64]"
                    )));
                }
            }
            EcMode::FixedPrecision { planes } => {
                if planes == 0 || planes > MAG_BITS {
                    return Err(SzError::BadConfig(format!(
                        "planes {planes} out of 1..={MAG_BITS}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Per-block bit budget under a mode (`u32::MAX` = unbounded planes cap).
fn block_budget(mode: EcMode, block_len: usize) -> (usize, u32) {
    match mode {
        EcMode::FixedRate { bits_per_value } => (
            (bits_per_value * block_len as f64).ceil() as usize,
            MAG_BITS,
        ),
        EcMode::FixedPrecision { planes } => (usize::MAX, planes),
    }
}

/// Encode one block of coefficients into exactly-budgeted bits.
///
/// Layout: `EMAX_BITS` biased max-exponent (0 ⇒ all-zero block, nothing
/// follows unless fixed-rate padding), then bit planes MSB→LSB; within a
/// plane, one magnitude bit per coefficient, with the sign bit emitted
/// immediately after a coefficient's first set bit. The writer counts bits
/// and stops exactly at the budget; the decoder replays the same count.
fn encode_block(coeffs: &[f64], mode: EcMode, w: &mut BitWriter) {
    let n = coeffs.len();
    let (budget, max_planes) = block_budget(mode, n);
    let mut used = 0usize;
    let emit = |w: &mut BitWriter, bit: bool, used: &mut usize| -> bool {
        if *used >= budget {
            return false;
        }
        w.write_bit(bit);
        *used += 1;
        true
    };

    let amax = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
    let emax = if amax == 0.0 || !amax.is_finite() {
        None
    } else {
        Some(amax.log2().floor() as i64)
    };
    // Header (always fits: budgets below EMAX_BITS are rejected upstream).
    match emax {
        None => {
            for _ in 0..EMAX_BITS {
                emit(w, false, &mut used);
            }
        }
        Some(e) => {
            let field = (e + EMAX_BIAS).clamp(1, (1 << EMAX_BITS) - 1) as u64;
            for b in 0..EMAX_BITS {
                emit(w, (field >> (EMAX_BITS - 1 - b)) & 1 == 1, &mut used);
            }
            // Scale to MAG_BITS-bit integers: |c| < 2^(e+1) ⇒ m < 2^MAG_BITS.
            let scale = 2.0f64.powi((MAG_BITS as i64 - 1 - e) as i32);
            let mags: Vec<u64> = coeffs
                .iter()
                .map(|&c| ((c.abs() * scale) as u64).min((1 << MAG_BITS) - 1))
                .collect();
            let mut significant = vec![false; n];
            'outer: for plane in (0..max_planes.min(MAG_BITS)).rev() {
                let shift = plane + MAG_BITS - max_planes.min(MAG_BITS);
                for (i, &m) in mags.iter().enumerate() {
                    let bit = (m >> shift) & 1 == 1;
                    if !emit(w, bit, &mut used) {
                        break 'outer;
                    }
                    if bit && !significant[i] {
                        significant[i] = true;
                        if !emit(w, coeffs[i] < 0.0, &mut used) {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    // Fixed-rate: pad to the exact budget so every block is addressable.
    if budget != usize::MAX {
        while used < budget {
            emit(w, false, &mut used);
        }
    }
}

/// Decode one block (mirror of [`encode_block`]).
fn decode_block(
    n: usize,
    mode: EcMode,
    r: &mut BitReader<'_>,
) -> Result<Vec<f64>, SzError> {
    let (budget, max_planes) = block_budget(mode, n);
    let mut used = 0usize;
    let take = |r: &mut BitReader<'_>, used: &mut usize| -> Result<Option<bool>, SzError> {
        if *used >= budget {
            return Ok(None);
        }
        let b = r.read_bit().map_err(SzError::from)?;
        *used += 1;
        Ok(Some(b))
    };

    let mut field = 0u64;
    for _ in 0..EMAX_BITS {
        let b = take(r, &mut used)?.ok_or(SzError::Format("EC header truncated"))?;
        field = (field << 1) | b as u64;
    }
    let mut out = vec![0.0f64; n];
    if field != 0 {
        let e = field as i64 - EMAX_BIAS;
        let planes = max_planes.min(MAG_BITS);
        let mut mags = vec![0u64; n];
        let mut signs = vec![false; n];
        let mut significant = vec![false; n];
        let mut last_shift = MAG_BITS; // lowest plane fully/partially seen
        'outer: for plane in (0..planes).rev() {
            let shift = plane + MAG_BITS - planes;
            for i in 0..n {
                match take(r, &mut used)? {
                    None => break 'outer,
                    Some(bit) => {
                        last_shift = shift;
                        if bit {
                            mags[i] |= 1u64 << shift;
                            if !significant[i] {
                                significant[i] = true;
                                match take(r, &mut used)? {
                                    None => break 'outer,
                                    Some(sgn) => signs[i] = sgn,
                                }
                            }
                        }
                    }
                }
            }
        }
        let descale = 2.0f64.powi((e - (MAG_BITS as i64 - 1)) as i32);
        for i in 0..n {
            if significant[i] {
                // Midpoint correction: half of the last decoded plane.
                let mid = if last_shift > 0 { 1u64 << (last_shift - 1) } else { 0 };
                let mag = (mags[i] + mid) as f64 * descale;
                out[i] = if signs[i] { -mag } else { mag };
            }
        }
    }
    // Fixed-rate: consume the padding so the next block aligns.
    if budget != usize::MAX {
        while used < budget {
            take(r, &mut used)?.ok_or(SzError::Format("EC padding truncated"))?;
        }
    }
    Ok(out)
}

/// Compress a field with the embedded codec.
///
/// # Errors
/// [`SzError::BadConfig`] on invalid parameters.
pub fn embedded_compress<T: Scalar>(
    field: &Field<T>,
    cfg: &EmbeddedConfig,
) -> Result<Vec<u8>, SzError> {
    cfg.validate()?;
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(if T::TAG == "f32" { 0 } else { 1 });
    let dims = field.shape().dims();
    out.push(dims.len() as u8);
    for &d in &dims {
        varint::write_u64(&mut out, d as u64);
    }
    out.push(cfg.block as u8);
    out.push(cfg.basis.tag());
    match cfg.mode {
        EcMode::FixedRate { bits_per_value } => {
            out.push(0u8);
            out.extend_from_slice(&bits_per_value.to_le_bytes());
        }
        EcMode::FixedPrecision { planes } => {
            out.push(1u8);
            out.push(planes as u8);
        }
    }

    let rank = field.shape().rank();
    let basis = cfg.basis.build(cfg.block);
    let block_len = cfg.block.pow(rank as u32);
    if let EcMode::FixedRate { bits_per_value } = cfg.mode {
        let budget = (bits_per_value * block_len as f64).ceil() as usize;
        if budget <= EMAX_BITS as usize {
            return Err(SzError::BadConfig(format!(
                "rate {bits_per_value} bits/value gives a {budget}-bit block budget,                  below the {EMAX_BITS}-bit block header"
            )));
        }
    }
    let grid: Vec<usize> = dims.iter().map(|&d| d.div_ceil(cfg.block)).collect();
    let mut buf = vec![0.0f64; block_len];
    let mut w = BitWriter::new();
    crate::codec::for_each_block_pub(&grid, |origin| {
        crate::codec::gather_block_pub(field, origin, cfg.block, &mut buf);
        forward(&basis, &mut buf, rank);
        encode_block(&buf, cfg.mode, &mut w);
    });
    let bits = w.finish();
    varint::write_u64(&mut out, bits.len() as u64);
    out.extend_from_slice(&bits);
    Ok(out)
}

/// Decompress an embedded-coded container.
///
/// # Errors
/// [`SzError`] on malformed input or type mismatch.
pub fn embedded_decompress<T: Scalar>(src: &[u8]) -> Result<Field<T>, SzError> {
    if src.len() < 8 || src[..4] != MAGIC {
        return Err(SzError::Format("bad EC magic"));
    }
    let mut pos = 4usize;
    let tag = if src[pos] == 0 { "f32" } else { "f64" };
    if tag != T::TAG {
        return Err(SzError::TypeMismatch {
            found: tag.to_string(),
            expected: T::TAG,
        });
    }
    let rank = src[pos + 1] as usize;
    pos += 2;
    if !(1..=3).contains(&rank) {
        return Err(SzError::Format("bad rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let d = varint::read_u64(src, &mut pos)? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(SzError::Format("bad dim"));
        }
        dims.push(d);
    }
    if src.len() < pos + 3 {
        return Err(SzError::Format("EC header truncated"));
    }
    let block = src[pos] as usize;
    let basis_kind =
        BasisKind::from_tag(src[pos + 1]).ok_or(SzError::Format("unknown basis tag"))?;
    let mode_tag = src[pos + 2];
    pos += 3;
    let mode = match mode_tag {
        0 => {
            if src.len() < pos + 8 {
                return Err(SzError::Format("EC rate truncated"));
            }
            let bits = f64::from_le_bytes(src[pos..pos + 8].try_into().expect("8 bytes"));
            pos += 8;
            if !(bits.is_finite() && bits > 0.0 && bits <= 64.0) {
                return Err(SzError::Format("bad stored rate"));
            }
            EcMode::FixedRate { bits_per_value: bits }
        }
        1 => {
            let planes = *src.get(pos).ok_or(SzError::Format("EC planes truncated"))? as u32;
            pos += 1;
            if planes == 0 || planes > MAG_BITS {
                return Err(SzError::Format("bad stored planes"));
            }
            EcMode::FixedPrecision { planes }
        }
        _ => return Err(SzError::Format("unknown EC mode")),
    };
    if block != 4 && block != 8 {
        return Err(SzError::Format("bad block"));
    }
    let bits_len = varint::read_u64(src, &mut pos)? as usize;
    if src.len() < pos + bits_len {
        return Err(SzError::Format("EC payload truncated"));
    }
    let shape = Shape::from_dims(&dims);
    let basis = basis_kind.build(block);
    let block_len = block.pow(rank as u32);
    let grid: Vec<usize> = dims.iter().map(|&d| d.div_ceil(block)).collect();
    let mut r = BitReader::new(&src[pos..pos + bits_len]);
    let mut out = Field::<T>::zeros(shape);
    let mut failure: Option<SzError> = None;
    crate::codec::for_each_block_pub(&grid, |origin| {
        if failure.is_some() {
            return;
        }
        match decode_block(block_len, mode, &mut r) {
            Ok(mut coeffs) => {
                inverse(&basis, &mut coeffs, rank);
                crate::codec::scatter_block_pub(&mut out, origin, block, &coeffs);
            }
            Err(e) => failure = Some(e),
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(out)
}

fn forward(basis: &Basis, buf: &mut [f64], rank: usize) {
    crate::codec::forward_block_pub(basis, buf, rank);
}

fn inverse(basis: &Basis, buf: &mut [f64], rank: usize) {
    crate::codec::inverse_block_pub(basis, buf, rank);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            ((i as f32 * 0.19).sin() + (j as f32 * 0.23).cos()) * 6.0
        })
    }

    #[test]
    fn fixed_rate_sizes_are_exact() {
        let field = textured(64, 64);
        for bpv in [1.0f64, 2.0, 4.0, 8.0] {
            let cfg = EmbeddedConfig::fixed_rate(bpv);
            let bytes = embedded_compress(&field, &cfg).unwrap();
            // 256 blocks × ceil(bpv·16) bits, plus ~40 B header.
            let blocks = (64usize / 4) * (64 / 4);
            let payload_bits = blocks * (bpv * 16.0).ceil() as usize;
            let expect = payload_bits.div_ceil(8);
            let header = bytes.len() - expect;
            assert!(
                (0..64).contains(&header),
                "bpv {bpv}: total {} vs payload {expect}",
                bytes.len()
            );
        }
    }

    #[test]
    fn higher_rate_means_higher_quality() {
        let field = textured(64, 64);
        let mut last_mse = f64::INFINITY;
        for bpv in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
            let cfg = EmbeddedConfig::fixed_rate(bpv);
            let back: Field<f32> =
                embedded_decompress(&embedded_compress(&field, &cfg).unwrap()).unwrap();
            let mse: f64 = field
                .as_slice()
                .iter()
                .zip(back.as_slice())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / field.len() as f64;
            assert!(
                mse < last_mse || mse == 0.0,
                "rate {bpv}: mse {mse} not below {last_mse}"
            );
            last_mse = mse;
        }
        // 16 bits/value on a smooth field must be quite accurate.
        assert!(last_mse.sqrt() < 1e-2, "rmse {}", last_mse.sqrt());
    }

    #[test]
    fn fixed_precision_bounds_block_relative_error() {
        let field = textured(32, 32);
        let cfg = EmbeddedConfig::fixed_precision(20);
        let back: Field<f32> =
            embedded_decompress(&embedded_compress(&field, &cfg).unwrap()).unwrap();
        let amax = field
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs())) as f64;
        for (&x, &y) in field.as_slice().iter().zip(back.as_slice()) {
            // 20 planes of a 48-bit magnitude: error ≤ 2^(emax-20+1); with
            // block emax ≤ global max exponent, bound via amax.
            let tol = amax * 2.0f64.powi(-17);
            assert!(
                ((x - y).abs() as f64) <= tol,
                "x={x} y={y} tol={tol}"
            );
        }
    }

    #[test]
    fn constant_zero_field_codes_compactly_and_exactly() {
        let field = Field::from_vec(Shape::D2(16, 16), vec![0.0f32; 256]);
        let cfg = EmbeddedConfig::fixed_precision(10);
        let bytes = embedded_compress(&field, &cfg).unwrap();
        let back: Field<f32> = embedded_decompress(&bytes).unwrap();
        assert_eq!(back.as_slice(), field.as_slice());
        assert!(bytes.len() < 96, "all-zero field coded to {}", bytes.len());
    }

    #[test]
    fn roundtrip_1d_and_3d() {
        let f1 = Field::from_fn_linear(Shape::D1(100), |i| (i as f32 * 0.2).sin());
        let f3 = Field::from_fn_3d(8, 9, 10, |i, j, k| ((i + j + k) as f32 * 0.3).cos());
        for (field, name) in [(f1, "1d"), (f3, "3d")] {
            let cfg = EmbeddedConfig::fixed_rate(12.0);
            let back: Field<f32> =
                embedded_decompress(&embedded_compress(&field, &cfg).unwrap()).unwrap();
            assert_eq!(back.shape(), field.shape(), "{name}");
            let rmse: f64 = (field
                .as_slice()
                .iter()
                .zip(back.as_slice())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / field.len() as f64)
                .sqrt();
            assert!(rmse < 1e-2, "{name}: rmse {rmse}");
        }
    }

    #[test]
    fn haar_basis_works_with_ec() {
        let field = textured(32, 32);
        let cfg = EmbeddedConfig {
            basis: BasisKind::Haar,
            ..EmbeddedConfig::fixed_rate(8.0)
        };
        let back: Field<f32> =
            embedded_decompress(&embedded_compress(&field, &cfg).unwrap()).unwrap();
        assert_eq!(back.shape(), field.shape());
    }

    #[test]
    fn type_mismatch_and_truncation_fail_cleanly() {
        let field = textured(16, 16);
        let bytes = embedded_compress(&field, &EmbeddedConfig::fixed_rate(4.0)).unwrap();
        assert!(embedded_decompress::<f64>(&bytes).is_err());
        for cut in [4usize, 10, bytes.len() - 1] {
            assert!(embedded_decompress::<f32>(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let field = textured(8, 8);
        assert!(embedded_compress(&field, &EmbeddedConfig::fixed_rate(0.0)).is_err());
        assert!(embedded_compress(&field, &EmbeddedConfig::fixed_rate(100.0)).is_err());
        assert!(embedded_compress(&field, &EmbeddedConfig::fixed_precision(0)).is_err());
        let bad_block = EmbeddedConfig {
            block: 5,
            ..EmbeddedConfig::fixed_rate(4.0)
        };
        assert!(embedded_compress(&field, &bad_block).is_err());
    }
}
