//! Blockwise transform codec: partition → orthonormal DCT → uniform
//! quantization → entropy coding.

use crate::basis::{Basis, BasisKind};
use losslesskit::bitio::{BitReader, BitWriter};
use losslesskit::huffman::HuffmanCodec;
use losslesskit::{deflate_like, freq, varint};
use ndfield::{Field, Scalar, Shape};
use szlike::quantizer::{LinearQuantizer, ESCAPE};
use szlike::{DecodeError, ErrorBound, LosslessBackend, SzError};

/// Container magic for transform-coded fields.
const MAGIC: [u8; 4] = *b"XFM1";

/// Hard cap on decoded output size: arbitrary header bytes must never be
/// able to demand an unbounded allocation.
const MAX_OUTPUT_BYTES: u64 = 1 << 30;

/// Cap on the inflated entropy-coded body (codes + escapes for a field
/// within [`MAX_OUTPUT_BYTES`] stay far below this).
const MAX_BODY_BYTES: usize = 1 << 30;

/// Configuration for the transform codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformConfig {
    /// Error-bound mode resolving to the coefficient quantizer's `eb`
    /// (bin width `δ = 2·eb`). [`ErrorBound::PointwiseRel`] is rejected —
    /// a transform codec cannot bound pointwise relative error.
    pub bound: ErrorBound,
    /// Block edge length (4 or 8).
    pub block: usize,
    /// Quantization bins `2n`.
    pub quant_bins: usize,
    /// Orthonormal basis for the block transform.
    pub basis: BasisKind,
    /// Lossless backend over the entropy-coded body.
    pub lossless: LosslessBackend,
}

impl TransformConfig {
    /// Defaults matching the szlike pipeline: 4-wide blocks (ZFP's choice),
    /// 65536 bins, LZ backend.
    pub fn new(bound: ErrorBound) -> Self {
        TransformConfig {
            bound,
            block: 4,
            quant_bins: 65536,
            basis: BasisKind::Dct2,
            lossless: LosslessBackend::Lz,
        }
    }

    /// Override the block size.
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }

    /// Override the orthonormal basis.
    pub fn with_basis(mut self, basis: BasisKind) -> Self {
        self.basis = basis;
        self
    }

    fn validate(&self) -> Result<(), SzError> {
        if self.block != 4 && self.block != 8 {
            return Err(SzError::BadConfig(format!(
                "block must be 4 or 8, got {}",
                self.block
            )));
        }
        if self.quant_bins < 4 || self.quant_bins % 2 != 0 || self.quant_bins > (1 << 24) {
            return Err(SzError::BadConfig(format!(
                "bad quant_bins {}",
                self.quant_bins
            )));
        }
        if matches!(self.bound, ErrorBound::PointwiseRel(_)) {
            return Err(SzError::BadConfig(
                "transform codec does not support pointwise-relative bounds".to_string(),
            ));
        }
        Ok(())
    }
}

/// Crate-internal re-exports for the embedded codec (same block plumbing).
pub(crate) use block_helpers::*;
mod block_helpers {
    use super::*;

    pub(crate) fn for_each_block_pub(grid: &[usize], f: impl FnMut(&[usize])) {
        for_each_block(grid, f)
    }
    pub(crate) fn gather_block_pub<T: Scalar>(
        field: &Field<T>,
        origin: &[usize],
        b: usize,
        buf: &mut [f64],
    ) {
        gather_block(field, origin, b, buf)
    }
    pub(crate) fn scatter_block_pub<T: Scalar>(
        field: &mut Field<T>,
        origin: &[usize],
        b: usize,
        buf: &[f64],
    ) {
        scatter_block(field, origin, b, buf)
    }
    pub(crate) fn forward_block_pub(basis: &Basis, buf: &mut [f64], rank: usize) {
        forward_block(basis, buf, rank)
    }
    pub(crate) fn inverse_block_pub(basis: &Basis, buf: &mut [f64], rank: usize) {
        inverse_block(basis, buf, rank)
    }
}

/// Per-axis block counts (ceil division).
fn block_grid(shape: Shape, b: usize) -> Vec<usize> {
    shape.dims().iter().map(|&d| d.div_ceil(b)).collect()
}

/// Gather one (edge-replicated) block into `buf` as f64.
fn gather_block<T: Scalar>(field: &Field<T>, origin: &[usize], b: usize, buf: &mut [f64]) {
    match field.shape() {
        Shape::D1(n) => {
            for x in 0..b {
                let i = (origin[0] * b + x).min(n - 1);
                buf[x] = field.as_slice()[i].to_f64();
            }
        }
        Shape::D2(..) => {
            let mut tmp = vec![T::default(); b * b];
            field.copy_block_2d(origin[0] * b, origin[1] * b, b, b, &mut tmp);
            for (o, v) in buf.iter_mut().zip(&tmp) {
                *o = v.to_f64();
            }
        }
        Shape::D3(..) => {
            let mut tmp = vec![T::default(); b * b * b];
            field.copy_block_3d(
                origin[0] * b,
                origin[1] * b,
                origin[2] * b,
                b,
                b,
                b,
                &mut tmp,
            );
            for (o, v) in buf.iter_mut().zip(&tmp) {
                *o = v.to_f64();
            }
        }
    }
}

/// Scatter a decoded block back into the field, clipping the padding.
fn scatter_block<T: Scalar>(field: &mut Field<T>, origin: &[usize], b: usize, buf: &[f64]) {
    match field.shape() {
        Shape::D1(n) => {
            for x in 0..b {
                let i = origin[0] * b + x;
                if i < n {
                    field.as_mut_slice()[i] = T::from_f64(buf[x]);
                }
            }
        }
        Shape::D2(rows, cols) => {
            for x in 0..b {
                let i = origin[0] * b + x;
                if i >= rows {
                    break;
                }
                for y in 0..b {
                    let j = origin[1] * b + y;
                    if j < cols {
                        field.as_mut_slice()[i * cols + j] = T::from_f64(buf[x * b + y]);
                    }
                }
            }
        }
        Shape::D3(d0, d1, d2) => {
            for x in 0..b {
                let i = origin[0] * b + x;
                if i >= d0 {
                    break;
                }
                for y in 0..b {
                    let j = origin[1] * b + y;
                    if j >= d1 {
                        continue;
                    }
                    for z in 0..b {
                        let k = origin[2] * b + z;
                        if k < d2 {
                            field.as_mut_slice()[(i * d1 + j) * d2 + k] =
                                T::from_f64(buf[(x * b + y) * b + z]);
                        }
                    }
                }
            }
        }
    }
}

/// Separable forward transform of a `b^rank` block in place.
fn forward_block(basis: &Basis, buf: &mut [f64], rank: usize) {
    let b = basis.size();
    match rank {
        1 => basis.forward_strided(buf, 0, 1),
        2 => {
            for r in 0..b {
                basis.forward_strided(buf, r * b, 1);
            }
            for c in 0..b {
                basis.forward_strided(buf, c, b);
            }
        }
        3 => {
            for i in 0..b {
                for j in 0..b {
                    basis.forward_strided(buf, (i * b + j) * b, 1);
                }
            }
            for i in 0..b {
                for k in 0..b {
                    basis.forward_strided(buf, i * b * b + k, b);
                }
            }
            for j in 0..b {
                for k in 0..b {
                    basis.forward_strided(buf, j * b + k, b * b);
                }
            }
        }
        _ => unreachable!(),
    }
}

/// Separable inverse transform of a `b^rank` block in place.
fn inverse_block(basis: &Basis, buf: &mut [f64], rank: usize) {
    let b = basis.size();
    match rank {
        1 => basis.inverse_strided(buf, 0, 1),
        2 => {
            for c in 0..b {
                basis.inverse_strided(buf, c, b);
            }
            for r in 0..b {
                basis.inverse_strided(buf, r * b, 1);
            }
        }
        3 => {
            for j in 0..b {
                for k in 0..b {
                    basis.inverse_strided(buf, j * b + k, b * b);
                }
            }
            for i in 0..b {
                for k in 0..b {
                    basis.inverse_strided(buf, i * b * b + k, b);
                }
            }
            for i in 0..b {
                for j in 0..b {
                    basis.inverse_strided(buf, (i * b + j) * b, 1);
                }
            }
        }
        _ => unreachable!(),
    }
}

/// Iterate block origins in row-major order.
fn for_each_block(grid: &[usize], mut f: impl FnMut(&[usize])) {
    match grid.len() {
        1 => {
            for i in 0..grid[0] {
                f(&[i]);
            }
        }
        2 => {
            for i in 0..grid[0] {
                for j in 0..grid[1] {
                    f(&[i, j]);
                }
            }
        }
        3 => {
            for i in 0..grid[0] {
                for j in 0..grid[1] {
                    for k in 0..grid[2] {
                        f(&[i, j, k]);
                    }
                }
            }
        }
        _ => unreachable!(),
    }
}

/// Compress a field with the transform codec.
///
/// # Errors
/// [`SzError`] on invalid configuration, unresolvable bounds, or constant
/// fields compressed with a relative bound (resolves to `eb = 0`).
pub fn transform_compress<T: Scalar>(
    field: &Field<T>,
    cfg: &TransformConfig,
) -> Result<Vec<u8>, SzError> {
    let _total = fpsnr_obs::span("xfm.compress");
    cfg.validate()?;
    let vr = field.value_range();
    let eb = cfg.bound.absolute(vr)?;

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(match T::TAG {
        "f32" => 0u8,
        _ => 1u8,
    });
    let dims = field.shape().dims();

    if vr == 0.0 && field.as_slice().iter().all(|v| v.is_finite_val()) {
        // Constant mode.
        out.push(1u8);
        out.push(dims.len() as u8);
        for d in dims {
            varint::write_u64(&mut out, d as u64);
        }
        field.as_slice()[0].write_le(&mut out);
        return Ok(out);
    }
    if eb <= 0.0 {
        return Err(SzError::BadBound("transform codec needs eb > 0".into()));
    }
    out.push(0u8);
    out.push(dims.len() as u8);
    for &d in &dims {
        varint::write_u64(&mut out, d as u64);
    }
    out.push(cfg.block as u8);
    out.push(cfg.basis.tag());
    out.extend_from_slice(&eb.to_le_bytes());
    varint::write_u64(&mut out, cfg.quant_bins as u64);

    let rank = field.shape().rank();
    let basis = cfg.basis.build(cfg.block);
    let quant = LinearQuantizer::new(eb, cfg.quant_bins);
    let grid = block_grid(field.shape(), cfg.block);
    let block_len = cfg.block.pow(rank as u32);
    let n_blocks: usize = grid.iter().product();
    let mut codes = Vec::with_capacity(n_blocks * block_len);
    let mut escapes: Vec<f64> = Vec::new();
    let mut buf = vec![0.0f64; block_len];
    // Stage 1 (xfm.transform): blockwise forward transform + coefficient
    // quantization (the transform codec's analogue of predict+quantize).
    let transform_span = fpsnr_obs::span("xfm.transform");
    for_each_block(&grid, |origin| {
        gather_block(field, origin, cfg.block, &mut buf);
        forward_block(&basis, &mut buf, rank);
        for &c in buf.iter() {
            match quant.quantize(c) {
                Some((code, _)) => codes.push(code),
                None => {
                    codes.push(ESCAPE);
                    escapes.push(c);
                }
            }
        }
    });
    drop(transform_span);

    // Stage 2 (xfm.encode): Huffman over the coefficient codes.
    let encode_span = fpsnr_obs::span("xfm.encode");
    let counts = freq::count_dense(&codes, cfg.quant_bins);
    let codec = HuffmanCodec::from_counts(&counts);
    let mut body = Vec::new();
    let mut table = Vec::new();
    codec.write_table(&mut table);
    varint::write_u64(&mut body, table.len() as u64);
    body.extend_from_slice(&table);
    let mut bw = BitWriter::with_capacity(codes.len() / 2);
    codec.encode(&codes, &mut bw);
    let stream = bw.finish();
    varint::write_u64(&mut body, stream.len() as u64);
    body.extend_from_slice(&stream);
    varint::write_u64(&mut body, escapes.len() as u64);
    for &e in &escapes {
        body.extend_from_slice(&e.to_le_bytes());
    }
    drop(encode_span);

    // Stage 3 (xfm.lossless): LZ pass over the serialized body.
    let _lossless_span = fpsnr_obs::span("xfm.lossless");
    let (flag, payload) = match cfg.lossless {
        LosslessBackend::None => (0u8, body),
        LosslessBackend::Lz => {
            let lz = deflate_like::lz_compress(&body);
            if lz.len() < body.len() {
                (1, lz)
            } else {
                (0, body)
            }
        }
    };
    out.push(flag);
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decompress a container produced by [`transform_compress`].
///
/// # Errors
/// [`SzError`] on malformed input or scalar-type mismatch.
pub fn transform_decompress<T: Scalar>(src: &[u8]) -> Result<Field<T>, SzError> {
    let _total = fpsnr_obs::span("xfm.decompress");
    let mut pos = 0usize;
    if src.len() < 7 || src[..4] != MAGIC {
        return Err(SzError::Format("bad transform magic"));
    }
    pos += 4;
    let tag = match src[pos] {
        0 => "f32",
        1 => "f64",
        _ => return Err(SzError::Format("unknown scalar tag")),
    };
    if tag != T::TAG {
        return Err(SzError::TypeMismatch {
            found: tag.to_string(),
            expected: T::TAG,
        });
    }
    let mode = src[pos + 1];
    let rank = src[pos + 2] as usize;
    pos += 3;
    if !(1..=3).contains(&rank) {
        return Err(SzError::Format("bad rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let d = varint::read_u64(src, &mut pos)? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(SzError::Format("implausible dimension"));
        }
        dims.push(d);
    }
    // Guard the total output size before ANY sample-proportional
    // allocation: each dim alone is plausible, the product may not be.
    let total: u128 = dims.iter().map(|&d| d as u128).product();
    if total.saturating_mul(T::BYTES as u128) > MAX_OUTPUT_BYTES as u128 {
        return Err(SzError::Decode(DecodeError::LimitExceeded {
            stage: "transform header",
            what: "output bytes",
            requested: total.saturating_mul(T::BYTES as u128).min(u64::MAX as u128) as u64,
            limit: MAX_OUTPUT_BYTES,
        }));
    }
    let shape = Shape::from_dims(&dims);

    if mode == 1 {
        if src.len().saturating_sub(pos) < T::BYTES {
            return Err(SzError::Format("constant payload truncated"));
        }
        let v = T::read_le(&src[pos..]);
        return Ok(Field::from_vec(shape, vec![v; shape.len()]));
    }
    if mode != 0 {
        return Err(SzError::Format("unknown transform mode"));
    }
    if src.len() < pos + 2 + 8 {
        return Err(SzError::Format("transform header truncated"));
    }
    let block = src[pos] as usize;
    pos += 1;
    if block != 4 && block != 8 {
        return Err(SzError::Format("bad block size"));
    }
    let basis_kind =
        BasisKind::from_tag(src[pos]).ok_or(SzError::Format("unknown basis tag"))?;
    pos += 1;
    let eb = f64::from_le_bytes(src[pos..pos + 8].try_into().expect("8 bytes"));
    pos += 8;
    if !(eb.is_finite() && eb > 0.0) {
        return Err(SzError::Format("bad stored bound"));
    }
    let bins = varint::read_u64(src, &mut pos)? as usize;
    if bins < 4 || bins % 2 != 0 || bins > (1 << 24) {
        return Err(SzError::Format("bad stored bin count"));
    }
    if src.len() < pos + 1 {
        return Err(SzError::Format("missing lossless flag"));
    }
    let flag = src[pos];
    pos += 1;
    let len = varint::read_u64(src, &mut pos)? as usize;
    if len > src.len().saturating_sub(pos) {
        return Err(SzError::Format("payload truncated"));
    }
    let body = match flag {
        0 => src[pos..pos + len].to_vec(),
        1 => deflate_like::lz_decompress_bounded(&src[pos..pos + len], MAX_BODY_BYTES)?,
        _ => return Err(SzError::Format("unknown lossless flag")),
    };

    let mut bpos = 0usize;
    let table_len = varint::read_u64(&body, &mut bpos)? as usize;
    let table_end = bpos
        .checked_add(table_len)
        .filter(|&e| e <= body.len())
        .ok_or(SzError::Format("table overruns body"))?;
    let codec = HuffmanCodec::read_table(&body[..table_end], &mut bpos)?;
    if bpos != table_end {
        return Err(SzError::Format("table length mismatch"));
    }
    let stream_len = varint::read_u64(&body, &mut bpos)? as usize;
    if stream_len > body.len().saturating_sub(bpos) {
        return Err(SzError::Format("stream overruns body"));
    }
    let stream = &body[bpos..bpos + stream_len];
    bpos += stream_len;

    let grid = block_grid(shape, block);
    let block_len = block.pow(rank as u32);
    // Padded code count: bounded via u128 (the per-axis round-up can
    // multiply the already-guarded element count by up to block^rank).
    let n_codes128 = grid
        .iter()
        .fold(block_len as u128, |acc, &g| acc.saturating_mul(g as u128));
    if n_codes128.saturating_mul(4) > MAX_BODY_BYTES as u128 {
        return Err(SzError::Decode(DecodeError::LimitExceeded {
            stage: "transform body",
            what: "padded code count",
            requested: n_codes128.min(u64::MAX as u128) as u64,
            limit: (MAX_BODY_BYTES / 4) as u64,
        }));
    }
    let n_codes = n_codes128 as usize;
    let mut codes = Vec::with_capacity(n_codes);
    let mut br = BitReader::new(stream);
    codec.decode(&mut br, n_codes, &mut codes)?;
    let n_escapes = varint::read_u64(&body, &mut bpos)? as usize;
    if n_escapes > n_codes {
        return Err(SzError::Format("more escapes than codes"));
    }
    if n_escapes
        .checked_mul(8)
        .map_or(true, |b| b > body.len().saturating_sub(bpos))
    {
        return Err(SzError::Format("escape payload overruns body"));
    }
    let escapes: Vec<f64> = (0..n_escapes)
        .map(|i| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&body[bpos + i * 8..bpos + i * 8 + 8]);
            f64::from_le_bytes(b)
        })
        .collect();

    let quant = LinearQuantizer::new(eb, bins);
    let alphabet = quant.alphabet() as u32;
    let basis = basis_kind.build(block);
    let mut out = Field::<T>::zeros(shape);
    let mut buf = vec![0.0f64; block_len];
    let mut code_idx = 0usize;
    let mut esc_idx = 0usize;
    let mut failure: Option<&'static str> = None;
    for_each_block(&grid, |origin| {
        if failure.is_some() {
            return;
        }
        for slot in buf.iter_mut() {
            let code = codes[code_idx];
            code_idx += 1;
            *slot = if code == ESCAPE {
                if esc_idx >= escapes.len() {
                    failure = Some("more escapes than stored");
                    return;
                }
                let v = escapes[esc_idx];
                esc_idx += 1;
                v
            } else {
                if code >= alphabet {
                    failure = Some("code out of range");
                    return;
                }
                quant.reconstruct(code)
            };
        }
        inverse_block(&basis, &mut buf, rank);
        scatter_block(&mut out, origin, block, &buf);
    });
    if let Some(what) = failure {
        return Err(SzError::Format(what));
    }
    if esc_idx != escapes.len() {
        return Err(SzError::Format("unused escape values"));
    }
    Ok(out)
}

/// Theorem-2 probe: returns `(coefficient_mse, data_mse, n_padded)` for one
/// compression — the MSE the quantizer introduced in the transformed
/// domain, and the MSE measured on the (edge-padded) reconstructed domain.
/// For block-aligned fields the two agree to floating-point precision.
///
/// # Errors
/// Same failure modes as [`transform_compress`].
pub fn theorem2_probe<T: Scalar>(
    field: &Field<T>,
    cfg: &TransformConfig,
) -> Result<(f64, f64, usize), SzError> {
    cfg.validate()?;
    let vr = field.value_range();
    let eb = cfg.bound.absolute(vr)?;
    if eb <= 0.0 {
        return Err(SzError::BadBound("probe needs eb > 0".into()));
    }
    let rank = field.shape().rank();
    let basis = cfg.basis.build(cfg.block);
    let quant = LinearQuantizer::new(eb, cfg.quant_bins);
    let grid = block_grid(field.shape(), cfg.block);
    let block_len = cfg.block.pow(rank as u32);
    let mut buf = vec![0.0f64; block_len];
    let mut qbuf = vec![0.0f64; block_len];
    let mut coeff_sq = 0.0f64;
    let mut data_sq = 0.0f64;
    let mut n = 0usize;
    for_each_block(&grid, |origin| {
        gather_block(field, origin, cfg.block, &mut buf);
        let orig = buf.clone();
        forward_block(&basis, &mut buf, rank);
        for (slot, q) in buf.iter().zip(qbuf.iter_mut()) {
            *q = match quant.quantize(*slot) {
                Some((_, recon)) => recon,
                None => *slot, // escape: exact
            };
            let d = *slot - *q;
            coeff_sq += d * d;
        }
        inverse_block(&basis, &mut qbuf, rank);
        for (a, b) in orig.iter().zip(&qbuf) {
            let d = a - b;
            data_sq += d * d;
        }
        n += block_len;
    });
    Ok((coeff_sq / n as f64, data_sq / n as f64, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            ((i as f32 * 0.21).sin() + (j as f32 * 0.17).cos()) * 4.0
                + ((i * j) as f32 * 0.01).sin()
        })
    }

    #[test]
    fn roundtrip_2d_within_l2_budget() {
        let field = textured(64, 64);
        let eb = 1e-3;
        let cfg = TransformConfig::new(ErrorBound::Abs(eb));
        let bytes = transform_compress(&field, &cfg).unwrap();
        let back: Field<f32> = transform_decompress(&bytes).unwrap();
        // l2 budget: coefficient errors ≤ eb each ⇒ RMSE ≤ eb.
        let mse: f64 = field
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / field.len() as f64;
        assert!(mse.sqrt() <= eb, "rmse {} > eb {eb}", mse.sqrt());
    }

    #[test]
    fn roundtrip_1d_and_3d() {
        let f1 = Field::from_fn_linear(Shape::D1(100), |i| (i as f32 * 0.1).sin());
        let f3 = Field::from_fn_3d(8, 8, 8, |i, j, k| ((i + j + k) as f32 * 0.2).cos());
        for (field, name) in [(f1, "1d"), (f3.clone(), "3d")] {
            let cfg = TransformConfig::new(ErrorBound::Abs(1e-4));
            let bytes = transform_compress(&field, &cfg).unwrap();
            let back: Field<f32> = transform_decompress(&bytes).unwrap();
            let mse: f64 = field
                .as_slice()
                .iter()
                .zip(back.as_slice())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / field.len() as f64;
            assert!(mse.sqrt() <= 1e-4, "{name} rmse {}", mse.sqrt());
        }
        // non-aligned 3D shape exercises padding
        let f3b = Field::from_fn_3d(5, 7, 9, |i, j, k| (i * 63 + j * 9 + k) as f32 * 0.01);
        let cfg = TransformConfig::new(ErrorBound::Abs(1e-3));
        let back: Field<f32> =
            transform_decompress(&transform_compress(&f3b, &cfg).unwrap()).unwrap();
        assert_eq!(back.shape(), f3b.shape());
    }

    #[test]
    fn theorem2_identity_on_aligned_field() {
        let field = textured(64, 64); // 64 = 16 blocks of 4, aligned
        let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let (coeff_mse, data_mse, n) = theorem2_probe(&field, &cfg).unwrap();
        assert_eq!(n, field.len());
        assert!(
            (coeff_mse - data_mse).abs() <= 1e-12 * coeff_mse.max(1e-30),
            "coeff {coeff_mse} vs data {data_mse}"
        );
    }

    #[test]
    fn mse_close_to_uniform_model() {
        // Textured field ⇒ coefficients spread across bins ⇒ MSE ≈ δ²/12.
        let field = textured(128, 128);
        let vr = field.value_range();
        let eb = 1e-3 * vr;
        let cfg = TransformConfig::new(ErrorBound::Abs(eb));
        let (coeff_mse, _, _) = theorem2_probe(&field, &cfg).unwrap();
        let model = (2.0 * eb) * (2.0 * eb) / 12.0;
        let ratio = coeff_mse / model;
        assert!(
            (0.5..=1.5).contains(&ratio),
            "measured/model = {ratio} (mse {coeff_mse}, model {model})"
        );
    }

    #[test]
    fn block8_roundtrips() {
        let field = textured(40, 40);
        let cfg = TransformConfig::new(ErrorBound::Abs(1e-3)).with_block(8);
        let back: Field<f32> =
            transform_decompress(&transform_compress(&field, &cfg).unwrap()).unwrap();
        assert_eq!(back.shape(), field.shape());
    }

    #[test]
    fn constant_field_compact() {
        let field = Field::from_vec(Shape::D2(20, 20), vec![7.5f32; 400]);
        let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(1e-3));
        let bytes = transform_compress(&field, &cfg).unwrap();
        assert!(bytes.len() < 32);
        let back: Field<f32> = transform_decompress(&bytes).unwrap();
        assert_eq!(back.as_slice(), field.as_slice());
    }

    #[test]
    fn pointwise_rel_rejected() {
        let field = textured(8, 8);
        let cfg = TransformConfig::new(ErrorBound::PointwiseRel(0.01));
        assert!(matches!(
            transform_compress(&field, &cfg),
            Err(SzError::BadConfig(_))
        ));
    }

    #[test]
    fn bad_block_size_rejected() {
        let field = textured(8, 8);
        let cfg = TransformConfig::new(ErrorBound::Abs(1e-3)).with_block(5);
        assert!(transform_compress(&field, &cfg).is_err());
    }

    #[test]
    fn type_mismatch_detected() {
        let field = textured(8, 8);
        let bytes =
            transform_compress(&field, &TransformConfig::new(ErrorBound::Abs(1e-3))).unwrap();
        let res: Result<Field<f64>, _> = transform_decompress(&bytes);
        assert!(matches!(res, Err(SzError::TypeMismatch { .. })));
    }

    #[test]
    fn truncation_detected() {
        let field = textured(32, 32);
        let bytes =
            transform_compress(&field, &TransformConfig::new(ErrorBound::Abs(1e-3))).unwrap();
        for cut in [6, bytes.len() / 2, bytes.len() - 1] {
            let res: Result<Field<f32>, _> = transform_decompress(&bytes[..cut]);
            assert!(res.is_err(), "cut {cut}");
        }
    }

    #[test]
    fn f64_roundtrip() {
        let field = Field::from_fn_2d(16, 16, |i, j| ((i * 16 + j) as f64).sqrt());
        let cfg = TransformConfig::new(ErrorBound::Abs(1e-6));
        let back: Field<f64> =
            transform_decompress(&transform_compress(&field, &cfg).unwrap()).unwrap();
        let mse: f64 = field
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / field.len() as f64;
        assert!(mse.sqrt() <= 1e-6);
    }

    #[test]
    fn haar_basis_roundtrips_within_l2_budget() {
        let field = textured(64, 64);
        let eb = 1e-3;
        let cfg = TransformConfig::new(ErrorBound::Abs(eb)).with_basis(BasisKind::Haar);
        let bytes = transform_compress(&field, &cfg).unwrap();
        let back: Field<f32> = transform_decompress(&bytes).unwrap();
        let mse: f64 = field
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / field.len() as f64;
        assert!(mse.sqrt() <= eb, "haar rmse {}", mse.sqrt());
    }

    #[test]
    fn theorem2_holds_for_haar_too() {
        // Theorem 2's premise is orthonormality, not any particular basis.
        let field = textured(64, 64);
        let cfg =
            TransformConfig::new(ErrorBound::ValueRangeRel(1e-3)).with_basis(BasisKind::Haar);
        let (coeff_mse, data_mse, _) = theorem2_probe(&field, &cfg).unwrap();
        assert!(
            (coeff_mse - data_mse).abs() <= 1e-11 * coeff_mse.max(1e-30),
            "haar: coeff {coeff_mse} vs data {data_mse}"
        );
    }

    #[test]
    fn basis_choice_is_encoded_in_container() {
        let field = textured(20, 20);
        let dct = transform_compress(&field, &TransformConfig::new(ErrorBound::Abs(1e-3)))
            .unwrap();
        let haar = transform_compress(
            &field,
            &TransformConfig::new(ErrorBound::Abs(1e-3)).with_basis(BasisKind::Haar),
        )
        .unwrap();
        assert_ne!(dct, haar, "different bases must produce different streams");
        // Each decodes through the tag in its own header.
        let a: Field<f32> = transform_decompress(&dct).unwrap();
        let b: Field<f32> = transform_decompress(&haar).unwrap();
        assert_eq!(a.shape(), b.shape());
    }
}
