//! # fpsnr-transform — orthogonal-transform lossy codec
//!
//! The paper's Theorem 2 extends the fixed-PSNR analysis from
//! prediction-based compressors to *orthogonal-transform* compressors
//! (ZFP, SSEM): an orthonormal transform preserves l2 norms, so the MSE
//! introduced by uniformly quantizing the transformed coefficients equals
//! the MSE of the reconstructed data — and Eq. 6
//! (`PSNR = 20·log10(vr/δ) + 10·log10 12`) applies unchanged.
//!
//! This crate is the concrete witness: a blockwise codec that
//!
//! 1. partitions the field into `B^d` blocks (`B` = 4 or 8, edge blocks
//!    sample-replicated like ZFP),
//! 2. applies a separable *orthonormal* DCT-II along each axis
//!    ([`basis`]),
//! 3. quantizes every coefficient with SZ's uniform quantizer (bin width
//!    `δ = 2·eb`) with bit-exact escapes,
//! 4. entropy-codes with the shared Huffman/LZ backend.
//!
//! Unlike SZ the *pointwise* error is not bounded by `eb` (a coefficient
//! error spreads over the block); what is preserved — and what the tests
//! assert — is the l2 identity of Theorem 2.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod basis;
pub mod codec;
pub mod embedded;

pub use basis::BasisKind;
pub use embedded::{embedded_compress, embedded_decompress, EcMode, EmbeddedConfig};
pub use codec::{transform_compress, transform_decompress, TransformConfig};
