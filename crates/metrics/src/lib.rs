//! # fpsnr-metrics — rate–distortion metrics with the paper's definitions
//!
//! The fixed-PSNR evaluation hinges on precise metric definitions, so they
//! live in one audited place:
//!
//! - `MSE(X, X̃) = (1/N) Σ (xᵢ − x̃ᵢ)²`
//! - `NRMSE = √MSE / vr` where `vr = max(X) − min(X)` (paper Eq. 4)
//! - `PSNR = −20·log₁₀(NRMSE)` (paper Eq. 5)
//!
//! plus the pointwise error measures SZ's other modes bound
//! ([`error`]), compression-ratio/bit-rate accounting ([`ratio`]),
//! probability-density-style histograms for the paper's Fig. 1
//! ([`histogram`]), per-data-set AVG/STDEV aggregation for Table II
//! ([`summary`]), and error-whiteness checks via autocorrelation
//! ([`autocorr`]).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autocorr;
pub mod error;
pub mod histogram;
pub mod psnr;
pub mod ratio;
pub mod ssim;
pub mod summary;

pub use error::PointwiseError;
pub use histogram::Histogram;
pub use psnr::Distortion;
pub use ratio::RateStats;
