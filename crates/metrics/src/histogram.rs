//! Uniform-bin histograms / empirical pdfs.
//!
//! Fig. 1 of the paper plots the probability distribution of SZ's
//! prediction errors for an ATM field, with the uniform quantization bins
//! overlaid. [`Histogram`] produces exactly that series; it is also used by
//! the general-bin MSE estimator (Eq. 3) which integrates `δᵢ³·P(mᵢ)` over
//! an empirical `P`.


/// A uniform-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    clipped: u64,
}

impl Histogram {
    /// Build a histogram of `samples` with `bins` uniform bins over
    /// `[lo, hi)`. Samples outside the interval (or non-finite) are counted
    /// in `clipped` and excluded from densities.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `hi ≤ lo`.
    pub fn new(samples: impl IntoIterator<Item = f64>, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "empty histogram interval [{lo}, {hi})");
        let mut counts = vec![0u64; bins];
        let mut total = 0u64;
        let mut clipped = 0u64;
        let scale = bins as f64 / (hi - lo);
        for v in samples {
            if !v.is_finite() || v < lo || v >= hi {
                clipped += 1;
                continue;
            }
            let idx = (((v - lo) * scale) as usize).min(bins - 1);
            counts[idx] += 1;
            total += 1;
        }
        Histogram {
            lo,
            hi,
            counts,
            total,
            clipped,
        }
    }

    /// Histogram spanning the finite min/max of the samples (two passes).
    /// Falls back to `[v−0.5, v+0.5)` for constant input.
    pub fn auto(samples: &[f64], bins: usize) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in samples {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !(lo.is_finite() && hi.is_finite()) {
            lo = 0.0;
            hi = 1.0;
        }
        if hi <= lo {
            lo -= 0.5;
            hi += 0.5;
        } else {
            // Nudge the top edge so the max sample lands inside [lo, hi).
            hi += (hi - lo) * 1e-9 + f64::MIN_POSITIVE;
        }
        Self::new(samples.iter().copied(), lo, hi, bins)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Raw count of bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Samples inside the interval.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples excluded (outside interval / non-finite).
    pub fn clipped(&self) -> u64 {
        self.clipped
    }

    /// Midpoint of bin `i` (the `mᵢ` of paper Eq. 3).
    pub fn midpoint(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Fraction of in-range samples in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Empirical probability *density* at bin `i` (fraction / bin width),
    /// the `P(mᵢ)` of Eq. 3 — densities integrate to 1 over the interval.
    pub fn density(&self, i: usize) -> f64 {
        self.fraction(i) / self.bin_width()
    }

    /// `(midpoint, fraction)` series — the shape plotted in Fig. 1.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (0..self.bins())
            .map(|i| (self.midpoint(i), self.fraction(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let h = Histogram::new([0.1, 0.9, 1.5, 2.5, 3.9], 0.0, 4.0, 4);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.clipped(), 0);
    }

    #[test]
    fn out_of_range_and_nan_clipped() {
        let h = Histogram::new([-1.0, 0.5, 4.0, f64::NAN], 0.0, 4.0, 4);
        assert_eq!(h.total(), 1);
        assert_eq!(h.clipped(), 3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin()).collect();
        let h = Histogram::auto(&samples, 32);
        let sum: f64 = (0..h.bins()).map(|i| h.fraction(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.clipped(), 0);
    }

    #[test]
    fn densities_integrate_to_one() {
        let samples: Vec<f64> = (0..5000).map(|i| ((i * 37) % 100) as f64 / 25.0).collect();
        let h = Histogram::new(samples.iter().copied(), 0.0, 4.0, 16);
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn midpoints_are_centred() {
        let h = Histogram::new(std::iter::empty(), 0.0, 4.0, 4);
        assert_eq!(h.midpoint(0), 0.5);
        assert_eq!(h.midpoint(3), 3.5);
    }

    #[test]
    fn auto_includes_extremes() {
        let samples = vec![-3.0, 7.0, 1.0];
        let h = Histogram::auto(&samples, 10);
        assert_eq!(h.total(), 3);
        assert_eq!(h.clipped(), 0);
    }

    #[test]
    fn auto_handles_constant_input() {
        let h = Histogram::auto(&[2.0; 50], 8);
        assert_eq!(h.total(), 50);
    }

    #[test]
    fn series_matches_accessors() {
        let h = Histogram::new([0.5, 1.5, 1.6], 0.0, 2.0, 2);
        let s = h.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (h.midpoint(0), h.fraction(0)));
        assert!((s[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }
}
