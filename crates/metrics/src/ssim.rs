//! Structural similarity (SSIM) for 2-D fields.
//!
//! PSNR measures aggregate energy error; SSIM measures whether local
//! *structure* (means, variances, covariances over a sliding window)
//! survived — the complementary check visualization-oriented users of lossy
//! compression ask for, and the paper's own citation trail (Guthe &
//! Straßer's "visual quality") motivates tracking it.
//!
//! This is the windowed SSIM of Wang et al. with a flat `W × W` window
//! (boxcar instead of Gaussian — adequate for regression-style testing) and
//! the standard constants `C1 = (0.01·L)²`, `C2 = (0.03·L)²` where `L` is
//! the original field's value range.

use ndfield::{Field, Scalar, Shape};

/// Mean SSIM between two equally shaped 2-D fields.
///
/// Returns 1.0 for identical inputs, values near 0 (or negative) for
/// structurally unrelated ones. Window size `w` is clamped to the field.
///
/// # Panics
/// Panics when the fields are not 2-D or differ in shape.
pub fn ssim_2d<T: Scalar>(original: &Field<T>, reconstructed: &Field<T>, w: usize) -> f64 {
    assert_eq!(
        original.shape(),
        reconstructed.shape(),
        "SSIM between differently shaped fields"
    );
    let Shape::D2(rows, cols) = original.shape() else {
        panic!("ssim_2d needs 2-D fields, got {}", original.shape())
    };
    let w = w.clamp(2, rows.min(cols));
    let l = original.value_range();
    if l == 0.0 {
        // Constant original: structure is trivially preserved iff the
        // reconstruction is constant too.
        let same = original
            .as_slice()
            .iter()
            .zip(reconstructed.as_slice())
            .all(|(a, b)| a.to_f64() == b.to_f64());
        return if same { 1.0 } else { 0.0 };
    }
    let c1 = (0.01 * l) * (0.01 * l);
    let c2 = (0.03 * l) * (0.03 * l);

    let a = original.as_slice();
    let b = reconstructed.as_slice();
    let mut sum = 0.0f64;
    let mut count = 0usize;
    // Non-overlapping windows keep this O(n) and deterministic.
    let mut i0 = 0usize;
    while i0 + w <= rows {
        let mut j0 = 0usize;
        while j0 + w <= cols {
            let n = (w * w) as f64;
            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for i in i0..i0 + w {
                for j in j0..j0 + w {
                    ma += a[i * cols + j].to_f64();
                    mb += b[i * cols + j].to_f64();
                }
            }
            ma /= n;
            mb /= n;
            let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
            for i in i0..i0 + w {
                for j in j0..j0 + w {
                    let da = a[i * cols + j].to_f64() - ma;
                    let db = b[i * cols + j].to_f64() - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= n;
            vb /= n;
            cov /= n;
            let s = ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                / ((ma * ma + mb * mb + c1) * (va + vb + c2));
            sum += s;
            count += 1;
            j0 += w;
        }
        i0 += w;
    }
    if count == 0 {
        1.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Field<f32> {
        Field::from_fn_2d(64, 64, |i, j| {
            ((i as f32 * 0.2).sin() + (j as f32 * 0.15).cos()) * 5.0
        })
    }

    #[test]
    fn identical_fields_score_one() {
        let f = base();
        let s = ssim_2d(&f, &f, 8);
        assert!((s - 1.0).abs() < 1e-12, "SSIM {s}");
    }

    #[test]
    fn small_noise_scores_high() {
        let f = base();
        let g = Field::from_fn_2d(64, 64, |i, j| {
            f.get(&[i, j]) + ((i * 7 + j * 13) % 5) as f32 * 1e-3
        });
        let s = ssim_2d(&f, &g, 8);
        assert!(s > 0.99, "SSIM {s}");
    }

    #[test]
    fn unrelated_fields_score_low() {
        let f = base();
        let g = Field::from_fn_2d(64, 64, |i, j| {
            let mut h = ((i * 64 + j) as u64).wrapping_mul(0x9E3779B97F4A7C15);
            h ^= h >> 29;
            (h % 1000) as f32 / 100.0 - 5.0
        });
        let s = ssim_2d(&f, &g, 8);
        assert!(s < 0.5, "SSIM {s}");
    }

    #[test]
    fn degraded_field_ranks_between() {
        let f = base();
        let mild = f.map(|v| v + 0.05);
        let harsh = f.map(|v| (v * 4.0).round() / 4.0 + 0.3 * (v * 50.0).sin());
        let s_mild = ssim_2d(&f, &mild, 8);
        let s_harsh = ssim_2d(&f, &harsh, 8);
        assert!(s_mild > s_harsh, "mild {s_mild} vs harsh {s_harsh}");
    }

    #[test]
    fn constant_fields_handled() {
        let f = Field::from_vec(Shape::D2(8, 8), vec![3.0f32; 64]);
        assert_eq!(ssim_2d(&f, &f, 4), 1.0);
        let g = Field::from_fn_2d(8, 8, |i, _| 3.0 + i as f32 * 0.01);
        assert_eq!(ssim_2d(&f, &g, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "2-D")]
    fn non_2d_rejected() {
        let f = Field::<f32>::zeros(Shape::D1(10));
        ssim_2d(&f, &f, 4);
    }

    #[test]
    fn window_clamped_to_field() {
        let f = base();
        // Oversized window clamps instead of panicking.
        let s = ssim_2d(&f, &f, 1000);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
