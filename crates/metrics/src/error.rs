//! Pointwise error measures (the bounds SZ's other modes control).

use ndfield::{Field, Scalar};

/// Pointwise error summary between an original field and a reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointwiseError {
    /// Maximum absolute error over finite originals.
    pub max_abs: f64,
    /// Mean absolute error.
    pub mean_abs: f64,
    /// Maximum pointwise relative error `|x−x̃| / |x|` over samples with
    /// `x ≠ 0` (SZ's pointwise-relative target).
    pub max_rel: f64,
    /// Maximum value-range-relative error `|x−x̃| / vr` (SZ's `ebrel`).
    pub max_range_rel: f64,
    /// Samples compared (finite originals).
    pub count: usize,
}

impl PointwiseError {
    /// Compare two equally shaped fields.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn between<T: Scalar>(original: &Field<T>, reconstructed: &Field<T>) -> Self {
        assert_eq!(
            original.shape(),
            reconstructed.shape(),
            "pointwise error between differently shaped fields"
        );
        let vr = original.value_range();
        let mut max_abs = 0.0f64;
        let mut sum_abs = 0.0f64;
        let mut max_rel = 0.0f64;
        let mut count = 0usize;
        for (&x, &y) in original
            .as_slice()
            .iter()
            .zip(reconstructed.as_slice().iter())
        {
            let xf = x.to_f64();
            if !xf.is_finite() {
                continue;
            }
            let d = (xf - y.to_f64()).abs();
            if d > max_abs {
                max_abs = d;
            }
            sum_abs += d;
            if xf != 0.0 {
                let rel = d / xf.abs();
                if rel > max_rel {
                    max_rel = rel;
                }
            }
            count += 1;
        }
        PointwiseError {
            max_abs,
            mean_abs: if count > 0 { sum_abs / count as f64 } else { 0.0 },
            max_rel,
            max_range_rel: if vr > 0.0 { max_abs / vr } else { 0.0 },
            count,
        }
    }

    /// `true` when every finite sample satisfies `|x−x̃| ≤ eb` (with a tiny
    /// round-off allowance of 1 ulp-scale slack).
    pub fn respects_abs_bound(&self, eb: f64) -> bool {
        self.max_abs <= eb * (1.0 + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndfield::Shape;

    #[test]
    fn hand_computed_errors() {
        let a = Field::from_vec(Shape::D1(4), vec![1.0f64, 2.0, -4.0, 0.0]);
        let b = Field::from_vec(Shape::D1(4), vec![1.1f64, 2.0, -4.2, 0.05]);
        let e = PointwiseError::between(&a, &b);
        assert!((e.max_abs - 0.2).abs() < 1e-12);
        assert!((e.mean_abs - (0.1 + 0.2 + 0.05) / 4.0).abs() < 1e-12);
        // max_rel: 0.1/1 = 0.1 vs 0.2/4 = 0.05 ⇒ 0.1 (zero sample skipped).
        assert!((e.max_rel - 0.1).abs() < 1e-12);
        // vr = 6 ⇒ max range-rel = 0.2/6.
        assert!((e.max_range_rel - 0.2 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn bound_check_with_roundoff_slack() {
        let e = PointwiseError {
            max_abs: 1.0 + 1e-13,
            mean_abs: 0.0,
            max_rel: 0.0,
            max_range_rel: 0.0,
            count: 1,
        };
        assert!(e.respects_abs_bound(1.0));
        assert!(!e.respects_abs_bound(0.5));
    }

    #[test]
    fn nan_original_skipped() {
        let a = Field::from_vec(Shape::D1(2), vec![f32::NAN, 1.0]);
        let b = Field::from_vec(Shape::D1(2), vec![9.0f32, 1.0]);
        let e = PointwiseError::between(&a, &b);
        assert_eq!(e.count, 1);
        assert_eq!(e.max_abs, 0.0);
    }

    #[test]
    fn identical_fields_are_zero_error() {
        let a = Field::from_fn_2d(5, 5, |i, j| (i + j) as f32);
        let e = PointwiseError::between(&a, &a);
        assert_eq!(e.max_abs, 0.0);
        assert_eq!(e.max_rel, 0.0);
        assert_eq!(e.count, 25);
    }
}
