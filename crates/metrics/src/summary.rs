//! Per-data-set aggregation — the AVG/STDEV columns of Table II and the
//! per-field meet-rate of Fig. 2.

use ndfield::stats::mean_stdev;

/// Result of one fixed-PSNR run on one field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldOutcome {
    /// Field name (e.g. `"CLDHGH"`).
    pub field: String,
    /// PSNR the user requested before compression.
    pub target_psnr: f64,
    /// PSNR measured after decompression.
    pub achieved_psnr: f64,
    /// Compression ratio achieved.
    pub ratio: f64,
}

impl FieldOutcome {
    /// Whether this field "meets" the demand in the paper's sense: achieved
    /// PSNR equal or higher than the user-set PSNR.
    pub fn meets_target(&self) -> bool {
        self.achieved_psnr >= self.target_psnr
    }

    /// Signed deviation `achieved − target` in dB.
    pub fn deviation(&self) -> f64 {
        self.achieved_psnr - self.target_psnr
    }
}

/// Aggregate of all fields of a data set at one target PSNR — one cell pair
/// of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Data set name (NYX / ATM / Hurricane).
    pub dataset: String,
    /// User-set PSNR.
    pub target_psnr: f64,
    /// Average achieved PSNR (Table II "AVG").
    pub avg: f64,
    /// Sample standard deviation of achieved PSNRs (Table II "STDEV").
    pub stdev: f64,
    /// Fraction of fields with achieved ≥ target (Fig. 2 meet-rate).
    pub meet_rate: f64,
    /// Mean absolute deviation |achieved − target| in dB.
    pub mean_abs_deviation: f64,
    /// Number of fields aggregated.
    pub n_fields: usize,
}

impl DatasetSummary {
    /// Aggregate per-field outcomes (all sharing one target PSNR).
    ///
    /// Fields whose achieved PSNR is non-finite (e.g. exact reconstruction
    /// of a constant field) are excluded from AVG/STDEV but still count
    /// toward the meet rate (an exact reconstruction trivially meets any
    /// target).
    pub fn aggregate(dataset: &str, target_psnr: f64, outcomes: &[FieldOutcome]) -> Self {
        let finite: Vec<f64> = outcomes
            .iter()
            .map(|o| o.achieved_psnr)
            .filter(|p| p.is_finite())
            .collect();
        let (avg, stdev) = mean_stdev(&finite);
        let met = outcomes
            .iter()
            .filter(|o| o.achieved_psnr >= target_psnr || o.achieved_psnr == f64::INFINITY)
            .count();
        let mad = if finite.is_empty() {
            0.0
        } else {
            finite
                .iter()
                .map(|p| (p - target_psnr).abs())
                .sum::<f64>()
                / finite.len() as f64
        };
        DatasetSummary {
            dataset: dataset.to_string(),
            target_psnr,
            avg,
            stdev,
            meet_rate: if outcomes.is_empty() {
                0.0
            } else {
                met as f64 / outcomes.len() as f64
            },
            mean_abs_deviation: mad,
            n_fields: outcomes.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(achieved: f64, target: f64) -> FieldOutcome {
        FieldOutcome {
            field: "F".into(),
            target_psnr: target,
            achieved_psnr: achieved,
            ratio: 10.0,
        }
    }

    #[test]
    fn meets_target_semantics() {
        assert!(outcome(80.2, 80.0).meets_target());
        assert!(outcome(80.0, 80.0).meets_target());
        assert!(!outcome(79.9, 80.0).meets_target());
    }

    #[test]
    fn aggregate_avg_stdev() {
        let outs: Vec<FieldOutcome> =
            [80.0, 81.0, 82.0].iter().map(|&p| outcome(p, 80.0)).collect();
        let s = DatasetSummary::aggregate("ATM", 80.0, &outs);
        assert!((s.avg - 81.0).abs() < 1e-12);
        assert!((s.stdev - 1.0).abs() < 1e-12);
        assert_eq!(s.meet_rate, 1.0);
        assert_eq!(s.n_fields, 3);
        assert!((s.mean_abs_deviation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn meet_rate_counts_failures() {
        let outs = vec![outcome(79.0, 80.0), outcome(81.0, 80.0)];
        let s = DatasetSummary::aggregate("ATM", 80.0, &outs);
        assert_eq!(s.meet_rate, 0.5);
    }

    #[test]
    fn infinite_psnr_meets_but_excluded_from_avg() {
        let outs = vec![outcome(f64::INFINITY, 80.0), outcome(80.0, 80.0)];
        let s = DatasetSummary::aggregate("ATM", 80.0, &outs);
        assert_eq!(s.meet_rate, 1.0);
        assert!((s.avg - 80.0).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_is_sane() {
        let s = DatasetSummary::aggregate("X", 40.0, &[]);
        assert_eq!(s.n_fields, 0);
        assert_eq!(s.meet_rate, 0.0);
    }
}
