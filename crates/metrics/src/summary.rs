//! Per-data-set aggregation — the AVG/STDEV columns of Table II and the
//! per-field meet-rate of Fig. 2 — plus the snapshot-level budget
//! accounting the global bit-allocation driver reports.

use ndfield::stats::mean_stdev;

/// Structured cause of a failed per-field run.
///
/// A 79-field snapshot must not abort because one field is degenerate, so
/// batch drivers report failures per field instead of propagating them —
/// but "achieved PSNR = NaN" alone tells an operator nothing. This pairs
/// the pipeline stage that failed with the underlying error message, so
/// the cause survives aggregation and lands in reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldFailure {
    /// Pipeline stage that failed (`"compress"`, `"decompress"`,
    /// `"pilot"`, ...).
    pub stage: &'static str,
    /// Human-readable cause (the underlying error's message).
    pub detail: String,
}

impl std::fmt::Display for FieldFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed: {}", self.stage, self.detail)
    }
}

/// Result of one fixed-PSNR run on one field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldOutcome {
    /// Field name (e.g. `"CLDHGH"`).
    pub field: String,
    /// PSNR the user requested before compression.
    pub target_psnr: f64,
    /// PSNR measured after decompression.
    pub achieved_psnr: f64,
    /// Compression ratio achieved.
    pub ratio: f64,
    /// Why the run failed, when it did (`achieved_psnr` is NaN then).
    pub failure: Option<FieldFailure>,
}

impl FieldOutcome {
    /// Whether this field "meets" the demand in the paper's sense: achieved
    /// PSNR equal or higher than the user-set PSNR. Failed fields never
    /// meet (their achieved PSNR is NaN).
    pub fn meets_target(&self) -> bool {
        self.failure.is_none() && self.achieved_psnr >= self.target_psnr
    }

    /// Signed deviation `achieved − target` in dB.
    pub fn deviation(&self) -> f64 {
        self.achieved_psnr - self.target_psnr
    }
}

/// Aggregate of all fields of a data set at one target PSNR — one cell pair
/// of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Data set name (NYX / ATM / Hurricane).
    pub dataset: String,
    /// User-set PSNR.
    pub target_psnr: f64,
    /// Average achieved PSNR (Table II "AVG").
    pub avg: f64,
    /// Sample standard deviation of achieved PSNRs (Table II "STDEV").
    pub stdev: f64,
    /// Fraction of fields with achieved ≥ target (Fig. 2 meet-rate).
    pub meet_rate: f64,
    /// Mean absolute deviation |achieved − target| in dB.
    pub mean_abs_deviation: f64,
    /// Number of fields aggregated.
    pub n_fields: usize,
}

impl DatasetSummary {
    /// Aggregate per-field outcomes (all sharing one target PSNR).
    ///
    /// Fields whose achieved PSNR is non-finite (e.g. exact reconstruction
    /// of a constant field) are excluded from AVG/STDEV but still count
    /// toward the meet rate (an exact reconstruction trivially meets any
    /// target).
    pub fn aggregate(dataset: &str, target_psnr: f64, outcomes: &[FieldOutcome]) -> Self {
        let finite: Vec<f64> = outcomes
            .iter()
            .map(|o| o.achieved_psnr)
            .filter(|p| p.is_finite())
            .collect();
        let (avg, stdev) = mean_stdev(&finite);
        let met = outcomes
            .iter()
            .filter(|o| o.achieved_psnr >= target_psnr || o.achieved_psnr == f64::INFINITY)
            .count();
        let mad = if finite.is_empty() {
            0.0
        } else {
            finite
                .iter()
                .map(|p| (p - target_psnr).abs())
                .sum::<f64>()
                / finite.len() as f64
        };
        DatasetSummary {
            dataset: dataset.to_string(),
            target_psnr,
            avg,
            stdev,
            meet_rate: if outcomes.is_empty() {
                0.0
            } else {
                met as f64 / outcomes.len() as f64
            },
            mean_abs_deviation: mad,
            n_fields: outcomes.len(),
        }
    }
}

/// Per-field record of one snapshot-level bit-allocation run — what the
/// allocator assigned, what the compressor delivered, and how many real
/// compression passes it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocFieldStat {
    /// Field name.
    pub field: String,
    /// PSNR target the allocator assigned (NaN for quarantined fields —
    /// degenerate inputs compressed outside the optimization).
    pub assigned_psnr: f64,
    /// PSNR measured after decompression (∞ for exactly-reconstructed
    /// constant fields, NaN for failed fields).
    pub achieved_psnr: f64,
    /// Bytes the rate model predicted for the assigned target (NaN for
    /// quarantined fields, which never enter the model).
    pub predicted_bytes: f64,
    /// Bytes the final container actually occupies (0 for failed fields).
    pub achieved_bytes: u64,
    /// Raw (uncompressed) bytes of the field.
    pub raw_bytes: u64,
    /// Real compression passes spent on this field (pilot excluded).
    pub passes: u32,
    /// Whether the field was quarantined out of the allocation problem.
    pub quarantined: bool,
}

/// Aggregate of one snapshot-level allocation run: budget compliance,
/// utilization, and the min-PSNR the `maximize min PSNR` objective
/// optimizes.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSummary {
    /// The global byte budget the allocator solved against.
    pub budget_bytes: u64,
    /// Total bytes of every produced container (quarantined included).
    pub total_bytes: u64,
    /// `total_bytes / budget_bytes`.
    pub utilization: f64,
    /// Smallest assigned PSNR over allocated (non-quarantined) fields.
    pub min_assigned_psnr: f64,
    /// Smallest *finite* achieved PSNR over allocated fields.
    pub min_achieved_psnr: f64,
    /// Aggregate compression ratio, `Σ raw / Σ achieved`.
    pub aggregate_ratio: f64,
    /// Largest per-field pass count.
    pub max_passes: u32,
    /// Total compression passes across the snapshot.
    pub total_passes: u64,
    /// Fields in the snapshot.
    pub n_fields: usize,
    /// Fields quarantined out of the allocation.
    pub n_quarantined: usize,
}

impl SnapshotSummary {
    /// Aggregate per-field allocation stats against the budget.
    ///
    /// Empty snapshots yield zero totals with NaN min-PSNRs; quarantined
    /// fields count toward bytes (they still occupy storage) but not
    /// toward the min-PSNR columns (the allocator never controlled them).
    pub fn aggregate(budget_bytes: u64, stats: &[AllocFieldStat]) -> Self {
        let total_bytes: u64 = stats.iter().map(|s| s.achieved_bytes).sum();
        let raw_total: u64 = stats.iter().map(|s| s.raw_bytes).sum();
        let allocated = || stats.iter().filter(|s| !s.quarantined);
        let min_assigned = allocated()
            .map(|s| s.assigned_psnr)
            .filter(|p| p.is_finite())
            .fold(f64::NAN, f64::min);
        let min_achieved = allocated()
            .map(|s| s.achieved_psnr)
            .filter(|p| p.is_finite())
            .fold(f64::NAN, f64::min);
        SnapshotSummary {
            budget_bytes,
            total_bytes,
            utilization: if budget_bytes == 0 {
                f64::NAN
            } else {
                total_bytes as f64 / budget_bytes as f64
            },
            min_assigned_psnr: min_assigned,
            min_achieved_psnr: min_achieved,
            aggregate_ratio: if total_bytes == 0 {
                f64::NAN
            } else {
                raw_total as f64 / total_bytes as f64
            },
            max_passes: stats.iter().map(|s| s.passes).max().unwrap_or(0),
            total_passes: stats.iter().map(|s| s.passes as u64).sum(),
            n_fields: stats.len(),
            n_quarantined: stats.iter().filter(|s| s.quarantined).count(),
        }
    }

    /// Whether the run stayed within `budget · (1 + tolerance)`.
    pub fn within_budget(&self, tolerance: f64) -> bool {
        self.total_bytes as f64 <= self.budget_bytes as f64 * (1.0 + tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(achieved: f64, target: f64) -> FieldOutcome {
        FieldOutcome {
            field: "F".into(),
            target_psnr: target,
            achieved_psnr: achieved,
            ratio: 10.0,
            failure: None,
        }
    }

    #[test]
    fn meets_target_semantics() {
        assert!(outcome(80.2, 80.0).meets_target());
        assert!(outcome(80.0, 80.0).meets_target());
        assert!(!outcome(79.9, 80.0).meets_target());
    }

    #[test]
    fn aggregate_avg_stdev() {
        let outs: Vec<FieldOutcome> =
            [80.0, 81.0, 82.0].iter().map(|&p| outcome(p, 80.0)).collect();
        let s = DatasetSummary::aggregate("ATM", 80.0, &outs);
        assert!((s.avg - 81.0).abs() < 1e-12);
        assert!((s.stdev - 1.0).abs() < 1e-12);
        assert_eq!(s.meet_rate, 1.0);
        assert_eq!(s.n_fields, 3);
        assert!((s.mean_abs_deviation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn meet_rate_counts_failures() {
        let outs = vec![outcome(79.0, 80.0), outcome(81.0, 80.0)];
        let s = DatasetSummary::aggregate("ATM", 80.0, &outs);
        assert_eq!(s.meet_rate, 0.5);
    }

    #[test]
    fn infinite_psnr_meets_but_excluded_from_avg() {
        let outs = vec![outcome(f64::INFINITY, 80.0), outcome(80.0, 80.0)];
        let s = DatasetSummary::aggregate("ATM", 80.0, &outs);
        assert_eq!(s.meet_rate, 1.0);
        assert!((s.avg - 80.0).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_is_sane() {
        let s = DatasetSummary::aggregate("X", 40.0, &[]);
        assert_eq!(s.n_fields, 0);
        assert_eq!(s.meet_rate, 0.0);
    }

    #[test]
    fn failed_outcome_never_meets_and_displays_cause() {
        let mut o = outcome(f64::NAN, 80.0);
        o.failure = Some(FieldFailure {
            stage: "compress",
            detail: "bad bound".into(),
        });
        assert!(!o.meets_target());
        assert_eq!(
            o.failure.as_ref().unwrap().to_string(),
            "compress failed: bad bound"
        );
    }

    fn stat(assigned: f64, achieved: f64, bytes: u64, passes: u32) -> AllocFieldStat {
        AllocFieldStat {
            field: "F".into(),
            assigned_psnr: assigned,
            achieved_psnr: achieved,
            predicted_bytes: bytes as f64,
            achieved_bytes: bytes,
            raw_bytes: bytes * 16,
            passes,
            quarantined: false,
        }
    }

    #[test]
    fn snapshot_summary_aggregates_budget_and_minima() {
        let stats = vec![
            stat(62.0, 63.1, 400, 1),
            stat(62.0, 62.4, 500, 2),
            AllocFieldStat {
                quarantined: true,
                assigned_psnr: f64::NAN,
                achieved_psnr: f64::INFINITY,
                ..stat(0.0, 0.0, 50, 1)
            },
        ];
        let s = SnapshotSummary::aggregate(1000, &stats);
        assert_eq!(s.total_bytes, 950);
        assert!((s.utilization - 0.95).abs() < 1e-12);
        assert!((s.min_assigned_psnr - 62.0).abs() < 1e-12);
        assert!((s.min_achieved_psnr - 62.4).abs() < 1e-12);
        assert_eq!(s.max_passes, 2);
        assert_eq!(s.total_passes, 4);
        assert_eq!(s.n_fields, 3);
        assert_eq!(s.n_quarantined, 1);
        assert!((s.aggregate_ratio - 16.0).abs() < 1e-12);
        assert!(s.within_budget(0.0));
        let over = SnapshotSummary::aggregate(900, &stats);
        assert!(!over.within_budget(0.02));
        assert!(over.within_budget(0.06));
    }

    #[test]
    fn empty_snapshot_summary_is_sane() {
        let s = SnapshotSummary::aggregate(100, &[]);
        assert_eq!(s.total_bytes, 0);
        assert_eq!(s.n_fields, 0);
        assert!(s.min_achieved_psnr.is_nan());
        assert!(s.aggregate_ratio.is_nan());
    }
}
