//! l2-norm distortion: MSE, NRMSE, PSNR (paper Eq. 4–5).

use ndfield::{Field, Scalar};

/// l2 distortion between an original field and its reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distortion {
    /// Mean squared error over finite original samples.
    pub mse: f64,
    /// Value range of the *original* data (the paper's `vr`).
    pub value_range: f64,
    /// Number of samples included (finite in the original).
    pub count: usize,
}

impl Distortion {
    /// Compare two equally shaped fields.
    ///
    /// Samples that are non-finite in the original are excluded (they carry
    /// no distortion information; SZ stores them bit-exactly anyway).
    ///
    /// ```
    /// use ndfield::{Field, Shape};
    /// let a = Field::from_vec(Shape::D1(2), vec![0.0f64, 1.0]);
    /// let b = Field::from_vec(Shape::D1(2), vec![0.01f64, 1.01]);
    /// let d = fpsnr_metrics::Distortion::between(&a, &b);
    /// assert!((d.psnr() - 40.0).abs() < 1e-9); // NRMSE 0.01 ⇔ 40 dB
    /// ```
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn between<T: Scalar>(original: &Field<T>, reconstructed: &Field<T>) -> Self {
        assert_eq!(
            original.shape(),
            reconstructed.shape(),
            "distortion between differently shaped fields"
        );
        let vr = original.value_range();
        let mut sum_sq = 0.0f64;
        let mut count = 0usize;
        for (&x, &y) in original
            .as_slice()
            .iter()
            .zip(reconstructed.as_slice().iter())
        {
            let xf = x.to_f64();
            if !xf.is_finite() {
                continue;
            }
            let d = xf - y.to_f64();
            sum_sq += d * d;
            count += 1;
        }
        Distortion {
            mse: if count > 0 { sum_sq / count as f64 } else { 0.0 },
            value_range: vr,
            count,
        }
    }

    /// Root mean squared error.
    pub fn rmse(&self) -> f64 {
        self.mse.sqrt()
    }

    /// Normalized RMSE, `√MSE / vr` (paper Eq. 4). Infinite when the
    /// original field is constant yet distorted.
    pub fn nrmse(&self) -> f64 {
        if self.mse == 0.0 {
            0.0
        } else if self.value_range == 0.0 {
            f64::INFINITY
        } else {
            self.rmse() / self.value_range
        }
    }

    /// Peak signal-to-noise ratio, `−20·log₁₀(NRMSE)` (paper Eq. 5).
    /// Infinite for exact reconstructions.
    pub fn psnr(&self) -> f64 {
        let nrmse = self.nrmse();
        if nrmse == 0.0 {
            f64::INFINITY
        } else {
            -20.0 * nrmse.log10()
        }
    }
}

/// MSE between two raw sample slices (used where fields are unnecessary,
/// e.g. comparing prediction-error streams for the Theorem-1 check).
///
/// # Panics
/// Panics when the slices differ in length.
pub fn mse_slices(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse over mismatched slices");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// PSNR computed from an MSE and a value range — the *predicted* PSNR path
/// (paper Eq. 5 applied to the Eq. 3/6 MSE estimate).
pub fn psnr_from_mse(mse: f64, value_range: f64) -> f64 {
    if mse <= 0.0 {
        return f64::INFINITY;
    }
    if value_range <= 0.0 {
        return f64::NEG_INFINITY;
    }
    -10.0 * (mse / (value_range * value_range)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndfield::Shape;

    #[test]
    fn identical_fields_have_infinite_psnr() {
        let f = Field::from_fn_2d(10, 10, |i, j| (i * j) as f32);
        let d = Distortion::between(&f, &f);
        assert_eq!(d.mse, 0.0);
        assert_eq!(d.psnr(), f64::INFINITY);
        assert_eq!(d.nrmse(), 0.0);
    }

    #[test]
    fn known_mse_hand_computed() {
        let a = Field::from_vec(Shape::D1(4), vec![0.0f32, 1.0, 2.0, 3.0]);
        let b = Field::from_vec(Shape::D1(4), vec![0.5f32, 1.0, 2.5, 3.0]);
        let d = Distortion::between(&a, &b);
        assert!((d.mse - 0.125).abs() < 1e-12);
        assert_eq!(d.value_range, 3.0);
        // NRMSE = sqrt(0.125)/3
        assert!((d.nrmse() - 0.125f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_matches_closed_form() {
        // NRMSE = 0.01 ⇒ PSNR = 40 dB exactly.
        let a = Field::from_vec(Shape::D1(2), vec![0.0f64, 1.0]);
        let b = Field::from_vec(Shape::D1(2), vec![0.01f64, 1.01]);
        let d = Distortion::between(&a, &b);
        assert!((d.psnr() - 40.0).abs() < 1e-9, "psnr {}", d.psnr());
    }

    #[test]
    fn non_finite_originals_excluded() {
        let a = Field::from_vec(Shape::D1(3), vec![f32::NAN, 1.0, 2.0]);
        let b = Field::from_vec(Shape::D1(3), vec![0.0f32, 1.0, 2.0]);
        let d = Distortion::between(&a, &b);
        assert_eq!(d.count, 2);
        assert_eq!(d.mse, 0.0);
    }

    #[test]
    #[should_panic(expected = "differently shaped")]
    fn shape_mismatch_panics() {
        let a = Field::<f32>::zeros(Shape::D1(3));
        let b = Field::<f32>::zeros(Shape::D1(4));
        Distortion::between(&a, &b);
    }

    #[test]
    fn psnr_from_mse_consistent_with_distortion() {
        let a = Field::from_vec(Shape::D1(4), vec![0.0f64, 2.0, 5.0, 10.0]);
        let b = Field::from_vec(Shape::D1(4), vec![0.1f64, 2.1, 4.95, 10.0]);
        let d = Distortion::between(&a, &b);
        let direct = d.psnr();
        let via = psnr_from_mse(d.mse, d.value_range);
        assert!((direct - via).abs() < 1e-12);
    }

    #[test]
    fn mse_slices_basic() {
        assert_eq!(mse_slices(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse_slices(&[], &[]), 0.0);
    }

    #[test]
    fn constant_original_distorted_is_degenerate() {
        let a = Field::from_vec(Shape::D1(3), vec![1.0f32; 3]);
        let b = Field::from_vec(Shape::D1(3), vec![1.0f32, 1.5, 1.0]);
        let d = Distortion::between(&a, &b);
        assert_eq!(d.nrmse(), f64::INFINITY);
    }
}
