//! Compression-ratio and bit-rate accounting.


/// Size accounting for one compression run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateStats {
    /// Uncompressed payload size in bytes.
    pub original_bytes: usize,
    /// Compressed container size in bytes.
    pub compressed_bytes: usize,
    /// Number of samples.
    pub n_samples: usize,
}

impl RateStats {
    /// Build from sample count, per-sample size and container size.
    pub fn new(n_samples: usize, sample_bytes: usize, compressed_bytes: usize) -> Self {
        RateStats {
            original_bytes: n_samples * sample_bytes,
            compressed_bytes,
            n_samples,
        }
    }

    /// Compression ratio `original / compressed` (∞-safe: 0-byte output
    /// reports as `f64::INFINITY`).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            f64::INFINITY
        } else {
            self.original_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Bit rate in bits per sample.
    pub fn bit_rate(&self) -> f64 {
        if self.n_samples == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 * 8.0 / self.n_samples as f64
        }
    }

    /// Space saving as a fraction in `[0, 1)` (negative if inflated).
    pub fn space_saving(&self) -> f64 {
        1.0 - self.compressed_bytes as f64 / self.original_bytes.max(1) as f64
    }

    /// Merge accounting across fields of a data set.
    pub fn combine(&self, other: &RateStats) -> RateStats {
        RateStats {
            original_bytes: self.original_bytes + other.original_bytes,
            compressed_bytes: self.compressed_bytes + other.compressed_bytes,
            n_samples: self.n_samples + other.n_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bitrate() {
        let r = RateStats::new(1000, 4, 500);
        assert_eq!(r.original_bytes, 4000);
        assert_eq!(r.ratio(), 8.0);
        assert_eq!(r.bit_rate(), 4.0);
        assert!((r.space_saving() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn zero_compressed_is_infinite_ratio() {
        let r = RateStats::new(10, 4, 0);
        assert_eq!(r.ratio(), f64::INFINITY);
    }

    #[test]
    fn combine_accumulates() {
        let a = RateStats::new(100, 4, 50);
        let b = RateStats::new(300, 4, 150);
        let c = a.combine(&b);
        assert_eq!(c.n_samples, 400);
        assert_eq!(c.original_bytes, 1600);
        assert_eq!(c.compressed_bytes, 200);
        assert_eq!(c.ratio(), 8.0);
    }

    #[test]
    fn inflation_reports_negative_saving() {
        let r = RateStats::new(10, 4, 80);
        assert!(r.space_saving() < 0.0);
    }
}
