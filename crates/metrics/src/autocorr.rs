//! Autocorrelation of compression errors.
//!
//! A good error-bounded compressor leaves *white* (uncorrelated) errors;
//! structured residuals bias downstream statistics even when the PSNR looks
//! fine, which is why the SZ line of papers reports the lag-k
//! autocorrelation of `X − X̃` alongside PSNR.

use ndfield::{Field, Scalar};

/// Lag-`k` sample autocorrelation of a series (Pearson between the series
/// and its `k`-shifted self). Returns 0 for degenerate inputs (shorter than
/// `k + 2` samples or zero variance).
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    if series.len() < lag + 2 {
        return 0.0;
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum();
    cov / var
}

/// Pointwise compression errors `x − x̃` over finite originals, in scan
/// order (the series the autocorrelation is evaluated on).
pub fn error_series<T: Scalar>(original: &Field<T>, reconstructed: &Field<T>) -> Vec<f64> {
    assert_eq!(
        original.shape(),
        reconstructed.shape(),
        "error series between differently shaped fields"
    );
    original
        .as_slice()
        .iter()
        .zip(reconstructed.as_slice())
        .filter(|(x, _)| x.to_f64().is_finite())
        .map(|(x, y)| x.to_f64() - y.to_f64())
        .collect()
}

/// Lag-1 autocorrelation of the compression errors — the headline number
/// SZ evaluations quote (|value| ≲ 0.1 reads as "effectively white").
pub fn error_autocorrelation<T: Scalar>(
    original: &Field<T>,
    reconstructed: &Field<T>,
) -> f64 {
    autocorrelation(&error_series(original, reconstructed), 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndfield::Shape;

    #[test]
    fn white_noise_has_low_autocorrelation() {
        // Deterministic LCG noise: lag-1 autocorrelation near zero.
        let mut x = 123456789u64;
        let series: Vec<f64> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let r = autocorrelation(&series, 1);
        assert!(r.abs() < 0.05, "white noise r1 = {r}");
    }

    #[test]
    fn constant_offset_sine_has_high_autocorrelation() {
        let series: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let r = autocorrelation(&series, 1);
        assert!(r > 0.99, "slow sine r1 = {r}");
    }

    #[test]
    fn alternating_series_is_anticorrelated() {
        let series: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = autocorrelation(&series, 1);
        assert!(r < -0.99, "alternation r1 = {r}");
        let r2 = autocorrelation(&series, 2);
        assert!(r2 > 0.99, "alternation r2 = {r2}");
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 1), 0.0);
        assert_eq!(autocorrelation(&[3.0; 100], 1), 0.0);
    }

    #[test]
    fn error_series_skips_non_finite_originals() {
        let a = Field::from_vec(Shape::D1(3), vec![1.0f32, f32::NAN, 3.0]);
        let b = Field::from_vec(Shape::D1(3), vec![1.5f32, 0.0, 2.5]);
        let s = error_series(&a, &b);
        assert_eq!(s.len(), 2);
        assert!((s[0] + 0.5).abs() < 1e-6);
        assert!((s[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn identical_fields_have_zero_error_autocorrelation() {
        let f = Field::from_fn_2d(10, 10, |i, j| (i * j) as f32);
        assert_eq!(error_autocorrelation(&f, &f), 0.0);
    }
}
