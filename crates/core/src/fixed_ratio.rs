//! The fixed-ratio driver: "give me N× compression" as a first-class
//! mode, answered by ratio–quality modeling instead of blind reruns.
//!
//! The paper's fixed-PSNR mode (Eq. 8) inverts a *distortion* target in
//! closed form; a *ratio* target has no closed form because the output
//! size depends on the whole prediction-error distribution. This driver
//! makes the rate side nearly as cheap as the distortion side:
//!
//! 1. **Pilot** — [`szlike::RateModel::pilot`] runs one quantized walk
//!    (no entropy/LZ stages) and keeps the code-magnitude histogram; for
//!    blocked configurations it merges per-block histograms exactly like
//!    the blocked container's shared frequency table.
//! 2. **Invert** — the model's bits/value curve is bisected (pure
//!    histogram arithmetic) for the bound matching the target ratio, and
//!    the first real compression runs there.
//! 3. **Refine** — if the measured ratio misses the tolerance band, the
//!    model's LZ-gain correction is refitted from the observation and the
//!    curve re-inverted; any further pass uses a bounded secant on
//!    `(ln eb, ln ratio)` kept inside the measured bracket. At most
//!    [`FixedRatioOptions::max_passes`] compressions run in total
//!    (default 3 = one model-driven pass + K = 2 refinements).
//!
//! Every pass records `fpsnr-obs` counters (`fratio.compress_passes`,
//! per-pass predicted/achieved bits-per-value in milli-units, first-pass
//! model residual) so the accuracy harness can assert the pass budget and
//! EXPERIMENTS.md can report one-shot hit rates.

use ndfield::{Field, Scalar};
use szlike::ratemodel::RateModel;
use szlike::{compress, ErrorBound, KernelMode, LosslessBackend, PredictorKind, SzConfig, SzError};

/// A fixed-ratio request plus the knobs forwarded to the compressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedRatioOptions {
    /// Requested compression ratio (raw bytes / compressed bytes), > 1.
    pub target_ratio: f64,
    /// Relative tolerance band: the run stops as soon as the measured
    /// ratio is within `target · (1 ± tolerance)`. Default 0.1.
    pub tolerance: f64,
    /// Maximum *total* compression passes (the pilot walk is not one —
    /// it never entropy-codes). Default 3: one model-driven pass plus at
    /// most two secant refinements.
    pub max_passes: usize,
    /// Quantization-bin cap, as [`crate::fixed_psnr::FixedPsnrOptions`].
    pub quant_bins: usize,
    /// SZ 1.4 adaptive interval selection (default on, stock-SZ fidelity).
    pub auto_intervals: bool,
    /// Lossless backend for the final stage.
    pub lossless: LosslessBackend,
    /// Worker threads (0 = auto, 1 = monolithic); container bytes never
    /// depend on this value.
    pub threads: usize,
    /// Rows per block for the blocked path (0 = auto).
    pub block_rows: usize,
    /// Walk implementation for the SZ hot loop (bytes identical either way).
    pub kernel: KernelMode,
    /// Predictor selection (forwarded to [`SzConfig::predictor`]); the
    /// pilot's rate model runs under the same predictor so its bits/value
    /// curve matches what the real passes compress with.
    pub predictor: PredictorKind,
}

impl FixedRatioOptions {
    /// Defaults around a target ratio: ±10% tolerance, ≤ 3 passes, SZ
    /// defaults everywhere else.
    pub fn new(target_ratio: f64) -> Self {
        FixedRatioOptions {
            target_ratio,
            tolerance: 0.1,
            max_passes: 3,
            quant_bins: 65536,
            auto_intervals: true,
            lossless: LosslessBackend::Lz,
            threads: 1,
            block_rows: 0,
            kernel: KernelMode::Fused,
            predictor: PredictorKind::Lorenzo1,
        }
    }

    fn sz_config(&self, ebrel: f64) -> SzConfig {
        SzConfig::new(ErrorBound::ValueRangeRel(ebrel))
            .with_quant_bins(self.quant_bins)
            .with_auto_intervals(self.auto_intervals)
            .with_lossless(self.lossless)
            .with_threads(self.threads)
            .with_block_rows(self.block_rows)
            .with_kernel(self.kernel)
            .with_predictor(self.predictor)
    }

    fn validate(&self) -> Result<(), SzError> {
        if !(self.target_ratio.is_finite() && self.target_ratio > 1.0) {
            return Err(SzError::BadBound(format!(
                "target ratio must be finite and > 1, got {}",
                self.target_ratio
            )));
        }
        if !(self.tolerance.is_finite() && self.tolerance > 0.0) {
            return Err(SzError::BadBound(format!(
                "ratio tolerance must be finite and positive, got {}",
                self.tolerance
            )));
        }
        if self.max_passes == 0 {
            return Err(SzError::BadBound(
                "max_passes must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Everything a fixed-ratio run produced.
#[derive(Debug, Clone)]
pub struct FixedRatioRun {
    /// The compressed container (the pass closest to the target).
    pub bytes: Vec<u8>,
    /// Value-range-relative bound of that pass (NaN for constant fields,
    /// which compress the same way under any bound).
    pub eb_rel: f64,
    /// The requested ratio.
    pub target_ratio: f64,
    /// The measured ratio of the returned container.
    pub achieved_ratio: f64,
    /// Compression passes spent (pilot excluded).
    pub passes: usize,
    /// Model-predicted bits/value for the first pass's bound.
    pub predicted_bpv: f64,
    /// Measured bits/value of the returned container.
    pub achieved_bpv: f64,
    /// First-pass relative model residual,
    /// `|predicted − achieved| / achieved` in bits/value.
    pub model_residual: f64,
    /// Whether the returned container is inside the tolerance band.
    pub within_tolerance: bool,
}

fn milli(x: f64) -> u64 {
    if x.is_finite() && x > 0.0 {
        (x * 1000.0).round() as u64
    } else {
        0
    }
}

/// Largest refinement step in `ln eb`. The model's error grows with
/// distance from the pass it was just anchored on, so one refit is never
/// allowed to fling the bound across the whole curve — a wild global
/// correction (e.g. an LZ gain fitted on the collapse cliff applied to
/// the signal-dominated region) burns a pass at a useless bound.
const MAX_LN_STEP: f64 = 2.5;

/// How far past the regula-falsi point a bracketed refinement pushes
/// toward the bracket's high end (see the convexity note at the use
/// site). 0 = pure regula falsi, 1 = jump to the known-high bound.
const CONVEXITY_PUSH: f64 = 0.15;

/// The shallowest `d ln ratio / d ln eb` slope the one-sided stall
/// guard assumes: measured rate curves across the evaluation corpora
/// stay above ~0.2 outside their plateaus, so a residual of `r` in
/// `ln ratio` needs at most `r / 0.3` of travel in `ln eb`.
const MIN_LN_SLOPE: f64 = 0.3;

/// The innermost measured points on either side of the target:
/// `(ln eb, ln ratio)` with the largest bound still under the target and
/// the smallest bound already over it (ratio is monotone increasing in
/// the bound, so these bracket the answer when both exist).
fn innermost_bracket(
    pts: &[(f64, f64)],
    ln_target: f64,
) -> (Option<(f64, f64)>, Option<(f64, f64)>) {
    let lo = pts
        .iter()
        .filter(|p| p.1 < ln_target)
        .copied()
        .fold(None, |acc: Option<(f64, f64)>, p| match acc {
            Some(a) if a.0 >= p.0 => Some(a),
            _ => Some(p),
        });
    let hi = pts
        .iter()
        .filter(|p| p.1 >= ln_target)
        .copied()
        .fold(None, |acc: Option<(f64, f64)>, p| match acc {
            Some(a) if a.0 <= p.0 => Some(a),
            _ => Some(p),
        });
    (lo, hi)
}

/// Compress to a target ratio.
///
/// # Errors
/// [`SzError::BadBound`] for invalid options; [`SzError`] propagated from
/// the pipeline.
pub fn compress_fixed_ratio<T: Scalar>(
    field: &Field<T>,
    opts: &FixedRatioOptions,
) -> Result<FixedRatioRun, SzError> {
    opts.validate()?;
    let total = fpsnr_obs::span("fratio.compress");
    let sample_bits = (T::BYTES * 8) as f64;
    let raw_bytes = (field.len() * T::BYTES) as f64;
    let ratio_of = |len: usize| raw_bytes / len.max(1) as f64;
    let vr = field.value_range();
    if !vr.is_finite() || vr <= 0.0 {
        // Constant (or non-finite-range) field: the container size does
        // not depend on the bound, so one pass is the complete answer.
        let bytes = compress(field, &opts.sz_config(1e-3))?;
        if fpsnr_obs::is_enabled() {
            fpsnr_obs::add("fratio.compress_passes", 1);
        }
        let achieved = ratio_of(bytes.len());
        let achieved_bpv = sample_bits / achieved;
        return Ok(FixedRatioRun {
            bytes,
            eb_rel: f64::NAN,
            target_ratio: opts.target_ratio,
            achieved_ratio: achieved,
            passes: 1,
            predicted_bpv: f64::NAN,
            achieved_bpv,
            model_residual: f64::NAN,
            within_tolerance: achieved >= opts.target_ratio * (1.0 - opts.tolerance),
        });
    }
    let pilot_span = fpsnr_obs::span("fratio.pilot");
    let model = RateModel::pilot(field, &opts.sz_config(1e-3))?;
    drop(pilot_span);
    if fpsnr_obs::is_enabled() {
        fpsnr_obs::add("fratio.pilot_passes", 1);
    }
    let ln_target = opts.target_ratio.ln();
    let eb_lo_cap = vr * 1e-12;
    let eb_hi_cap = vr * 2.0;
    let mut gain = 1.0f64;
    let mut eb_abs = model.invert_for_ratio(opts.target_ratio, gain);
    let mut pts: Vec<(f64, f64)> = Vec::new();
    // (score, bytes, eb_rel, ratio) of the pass closest to the target.
    let mut best: Option<(f64, Vec<u8>, f64, f64)> = None;
    let mut first_pred = f64::NAN;
    let mut first_resid = f64::NAN;
    let mut passes = 0usize;
    while passes < opts.max_passes {
        eb_abs = eb_abs.clamp(eb_lo_cap, eb_hi_cap);
        let predicted = model.predict_bits_per_value(eb_abs, gain);
        passes += 1;
        let ebrel = eb_abs / vr;
        let bytes = compress(field, &opts.sz_config(ebrel))?;
        let achieved = ratio_of(bytes.len());
        let achieved_bpv = sample_bits / achieved;
        if fpsnr_obs::is_enabled() {
            fpsnr_obs::add("fratio.compress_passes", 1);
            fpsnr_obs::add_labeled(passes, "fratio.pass", "predicted_bpv_milli", milli(predicted));
            fpsnr_obs::add_labeled(
                passes,
                "fratio.pass",
                "achieved_bpv_milli",
                milli(achieved_bpv),
            );
        }
        if passes == 1 {
            first_pred = predicted;
            first_resid = (predicted - achieved_bpv).abs() / achieved_bpv.max(1e-9);
            if fpsnr_obs::is_enabled() {
                fpsnr_obs::add("fratio.model_residual_milli", milli(first_resid));
            }
        }
        if std::env::var_os("FPSNR_FRATIO_DEBUG").is_some() {
            eprintln!(
                "fratio pass {passes}: eb_rel {:.4e} predicted {predicted:.3} bpv achieved {achieved_bpv:.3} bpv ratio {achieved:.3} (target {}) gain {gain:.3}",
                eb_abs / vr, opts.target_ratio
            );
        }
        let score = (achieved.ln() - ln_target).abs();
        if best.as_ref().map_or(true, |b| score < b.0) {
            best = Some((score, bytes, ebrel, achieved));
        }
        if (achieved / opts.target_ratio - 1.0).abs() <= opts.tolerance {
            break;
        }
        pts.push((eb_abs.ln(), achieved.ln()));
        if passes >= opts.max_passes {
            break;
        }
        eb_abs = match innermost_bracket(&pts, ln_target) {
            (Some((xl, yl)), Some((xh, yh))) => {
                // Measured points on both sides: interpolate inside the
                // bracket. The curve is convex in (ln eb, ln ratio) —
                // ratio growth accelerates toward the collapse cliff —
                // so the true crossing always sits *above* the log-log
                // chord; push the regula-falsi point part-way toward the
                // high end to compensate (the same one-sided-convergence
                // fix the Illinois variant makes).
                let x_rf = if yh - yl > 1e-9 {
                    xl + (ln_target - yl) * (xh - xl) / (yh - yl)
                } else {
                    0.5 * (xl + xh)
                };
                (x_rf + CONVEXITY_PUSH * (xh - x_rf)).exp()
            }
            _ => {
                // All misses on one side: re-anchor the model on the
                // observation just made (refit the LZ-gain correction so
                // the curve passes through the measured point) and
                // re-invert for the target. Anchored re-inversion beats
                // a plain secant here because consecutive passes often
                // land on the curve's flat noise-feedback shoulder,
                // where a two-point slope is mostly measurement noise
                // while the model still knows the shape of the cliff
                // beyond it.
                let model_payload = model.predict_bits_per_value(eb_abs, 1.0);
                gain = (achieved_bpv / model_payload.max(1e-9)).clamp(0.25, 4.0);
                let refit = model.invert_for_ratio(opts.target_ratio, gain);
                // The refit must move the bound in the direction the
                // miss calls for; a damped geometric step otherwise.
                let need_larger = achieved < opts.target_ratio;
                let candidate =
                    if (need_larger && refit > eb_abs) || (!need_larger && refit < eb_abs) {
                        refit
                    } else if need_larger {
                        eb_abs * 4.0
                    } else {
                        eb_abs / 4.0
                    };
                let x2 = eb_abs.ln();
                // Anchored refit can converge to a fixed point short of
                // the target when the model's local slope is steeper
                // than the real curve's (each re-inversion then proposes
                // a vanishing step). Detect the stall — the last pass
                // closed less than half the gap it faced — and only then
                // force a step proportional to the residual, assuming
                // the curve moves no faster than MIN_LN_SLOPE per ln-eb.
                // A fresh refit (one point, or one that is converging)
                // is left alone: forcing it overshoots.
                let residual = ln_target - achieved.ln();
                let stalled = pts.len() >= 2 && {
                    let y_prev = pts[pts.len() - 2].1;
                    let y_now = pts[pts.len() - 1].1;
                    (y_now - y_prev).abs() < 0.5 * (ln_target - y_prev).abs()
                };
                let min_step = if stalled {
                    (residual / MIN_LN_SLOPE).abs().min(MAX_LN_STEP)
                } else {
                    0.0
                };
                let step = (candidate.ln() - x2).clamp(-MAX_LN_STEP, MAX_LN_STEP);
                let step = if step.abs() < min_step {
                    min_step * residual.signum()
                } else {
                    step
                };
                (x2 + step).exp()
            }
        };
    }
    drop(total);
    let (_, bytes, eb_rel, achieved) = best.expect("at least one pass ran");
    let achieved_bpv = sample_bits / achieved;
    if fpsnr_obs::is_enabled() {
        fpsnr_obs::add("fratio.predicted_bpv_milli", milli(first_pred));
        fpsnr_obs::add("fratio.achieved_bpv_milli", milli(achieved_bpv));
    }
    Ok(FixedRatioRun {
        bytes,
        eb_rel,
        target_ratio: opts.target_ratio,
        achieved_ratio: achieved,
        passes,
        predicted_bpv: first_pred,
        achieved_bpv,
        model_residual: first_resid,
        within_tolerance: (achieved / opts.target_ratio - 1.0).abs() <= opts.tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpsnr_metrics::Distortion;
    use ndfield::Shape;
    use szlike::decompress;

    fn textured(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            let x = i as f32 * 0.11;
            let y = j as f32 * 0.13;
            20.0 * (x.sin() + (y * 0.7).cos()) + 3.0 * ((x * 3.7).sin() * (y * 2.9).cos())
        })
    }

    #[test]
    fn hits_targets_within_tolerance_and_pass_budget() {
        let field = textured(128, 160);
        for target in [4.0, 8.0, 16.0, 32.0] {
            let run =
                compress_fixed_ratio(&field, &FixedRatioOptions::new(target)).unwrap();
            assert!(
                run.within_tolerance,
                "target {target}x: achieved {:.2}x in {} passes",
                run.achieved_ratio, run.passes
            );
            assert!(run.passes <= 3, "target {target}x took {} passes", run.passes);
            let back: Field<f32> = decompress(&run.bytes).unwrap();
            assert_eq!(back.shape(), field.shape());
        }
    }

    #[test]
    fn returned_bound_matches_returned_bytes() {
        let field = textured(96, 96);
        let run = compress_fixed_ratio(&field, &FixedRatioOptions::new(10.0)).unwrap();
        let direct = compress(
            &field,
            &FixedRatioOptions::new(10.0).sz_config(run.eb_rel),
        )
        .unwrap();
        assert_eq!(direct, run.bytes);
    }

    #[test]
    fn blocked_and_monolithic_both_hit_and_threads_leave_bytes_alone() {
        let field = textured(120, 100);
        let blocked = FixedRatioOptions {
            threads: 2,
            block_rows: 30,
            ..FixedRatioOptions::new(12.0)
        };
        let run_b = compress_fixed_ratio(&field, &blocked).unwrap();
        assert!(run_b.within_tolerance, "blocked achieved {:.2}x", run_b.achieved_ratio);
        let more_threads = FixedRatioOptions {
            threads: 4,
            ..blocked
        };
        let run_t = compress_fixed_ratio(&field, &more_threads).unwrap();
        assert_eq!(
            run_b.bytes, run_t.bytes,
            "container bytes depend on the thread count"
        );
    }

    #[test]
    fn tighter_target_means_better_quality() {
        let field = textured(128, 128);
        let psnr_at = |ratio: f64| {
            let run = compress_fixed_ratio(&field, &FixedRatioOptions::new(ratio)).unwrap();
            let back: Field<f32> = decompress(&run.bytes).unwrap();
            Distortion::between(&field, &back).psnr()
        };
        assert!(psnr_at(4.0) > psnr_at(32.0));
    }

    #[test]
    fn constant_field_compresses_in_one_pass() {
        let field = Field::from_vec(Shape::D2(32, 32), vec![7.5f32; 1024]);
        let run = compress_fixed_ratio(&field, &FixedRatioOptions::new(8.0)).unwrap();
        assert_eq!(run.passes, 1);
        assert!(run.achieved_ratio > 8.0);
        assert!(run.within_tolerance);
    }

    #[test]
    fn bad_options_rejected() {
        let field = textured(16, 16);
        for bad in [
            FixedRatioOptions::new(f64::NAN),
            FixedRatioOptions::new(0.5),
            FixedRatioOptions {
                tolerance: 0.0,
                ..FixedRatioOptions::new(8.0)
            },
            FixedRatioOptions {
                max_passes: 0,
                ..FixedRatioOptions::new(8.0)
            },
        ] {
            assert!(compress_fixed_ratio(&field, &bad).is_err(), "{bad:?} accepted");
        }
    }
}
