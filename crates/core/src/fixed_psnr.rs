//! The fixed-PSNR driver (paper §IV, the released tool).
//!
//! The paper's approach is deliberately minimal — three steps:
//!
//! 1. take the user's target PSNR,
//! 2. derive the value-range-relative bound via Eq. 8
//!    ([`crate::bound::ebrel_for_psnr`]),
//! 3. run the *unmodified* SZ pipeline with that bound.
//!
//! The only overhead versus a plain SZ invocation is evaluating Eq. 8 —
//! one `powf` — which the `overhead` benchmark confirms is unmeasurable.
//!
//! [`compress_fixed_psnr`] additionally decompresses and measures the
//! achieved PSNR, returning the [`fpsnr_metrics::summary::FieldOutcome`]
//! the evaluation aggregates; [`compress_fixed_psnr_only`] is the
//! production path (compress, don't verify).

use crate::bound::{ebrel_for_psnr, psnr_for_ebrel};
use fpsnr_metrics::summary::FieldOutcome;
use fpsnr_metrics::{Distortion, RateStats};
use fpsnr_transform::{transform_compress, transform_decompress, TransformConfig};
use ndfield::{Field, Scalar};
use szlike::{compress_with_detail, decompress, ErrorBound, LosslessBackend, SzConfig, SzError};

/// Knobs forwarded to the underlying compressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPsnrOptions {
    /// Quantization-bin cap (`2n`), SZ default 65536.
    pub quant_bins: usize,
    /// SZ 1.4's adaptive interval selection (default on — the paper builds
    /// on stock SZ 1.4, whose `predThreshold`-driven selection is enabled
    /// by default).
    pub auto_intervals: bool,
    /// Lossless backend for the final stage.
    pub lossless: LosslessBackend,
}

impl Default for FixedPsnrOptions {
    fn default() -> Self {
        FixedPsnrOptions {
            quant_bins: 65536,
            auto_intervals: true,
            lossless: LosslessBackend::Lz,
        }
    }
}

impl FixedPsnrOptions {
    fn sz_config(&self, target_psnr: f64) -> SzConfig {
        SzConfig::new(ErrorBound::ValueRangeRel(ebrel_for_psnr(target_psnr)))
            .with_quant_bins(self.quant_bins)
            .with_auto_intervals(self.auto_intervals)
            .with_lossless(self.lossless)
    }
}

/// Everything a verified fixed-PSNR run produced.
#[derive(Debug, Clone)]
pub struct FixedPsnrRun {
    /// The compressed container.
    pub bytes: Vec<u8>,
    /// The bound Eq. 8 derived from the target.
    pub derived_ebrel: f64,
    /// PSNR the model predicts for that bound (Eq. 7) — equals the target
    /// by construction, kept for report symmetry.
    pub predicted_psnr: f64,
    /// Measured outcome (achieved PSNR, ratio).
    pub outcome: FieldOutcome,
    /// Size accounting.
    pub rate: RateStats,
}

/// Fixed-PSNR compression *without* verification — the paper's production
/// path (steps 1–3 only; the single-pass promise).
///
/// # Errors
/// [`SzError`] propagated from the SZ pipeline (degenerate bounds etc.).
pub fn compress_fixed_psnr_only<T: Scalar>(
    field: &Field<T>,
    target_psnr: f64,
    opts: &FixedPsnrOptions,
) -> Result<Vec<u8>, SzError> {
    validate_target(target_psnr)?;
    szlike::compress(field, &opts.sz_config(target_psnr))
}

/// Fixed-PSNR compression followed by decompression and PSNR measurement —
/// what the paper's evaluation does for every field.
///
/// # Errors
/// [`SzError`] propagated from the SZ pipeline.
pub fn compress_fixed_psnr<T: Scalar>(
    field: &Field<T>,
    target_psnr: f64,
    opts: &FixedPsnrOptions,
) -> Result<FixedPsnrRun, SzError> {
    validate_target(target_psnr)?;
    let ebrel = ebrel_for_psnr(target_psnr);
    let cfg = opts.sz_config(target_psnr);
    let (bytes, detail) = compress_with_detail(field, &cfg)?;
    let back: Field<T> = decompress(&bytes)?;
    let dist = Distortion::between(field, &back);
    let rate = RateStats::new(field.len(), T::BYTES, bytes.len());
    let outcome = FieldOutcome {
        field: String::new(),
        target_psnr,
        achieved_psnr: dist.psnr(),
        ratio: rate.ratio(),
    };
    let _ = detail;
    Ok(FixedPsnrRun {
        bytes,
        derived_ebrel: ebrel,
        predicted_psnr: psnr_for_ebrel(ebrel),
        outcome,
        rate,
    })
}

/// Fixed-PSNR through the *orthogonal-transform* codec (Theorem 2 / 3):
/// identical Eq. 8 derivation, but the bound feeds the blockwise DCT
/// codec's coefficient quantizer.
///
/// # Errors
/// [`SzError`] propagated from the transform codec.
pub fn compress_fixed_psnr_transform<T: Scalar>(
    field: &Field<T>,
    target_psnr: f64,
) -> Result<FixedPsnrRun, SzError> {
    validate_target(target_psnr)?;
    let ebrel = ebrel_for_psnr(target_psnr);
    let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(ebrel));
    let bytes = transform_compress(field, &cfg)?;
    let back: Field<T> = transform_decompress(&bytes)?;
    let dist = Distortion::between(field, &back);
    let rate = RateStats::new(field.len(), T::BYTES, bytes.len());
    let outcome = FieldOutcome {
        field: String::new(),
        target_psnr,
        achieved_psnr: dist.psnr(),
        ratio: rate.ratio(),
    };
    Ok(FixedPsnrRun {
        bytes,
        derived_ebrel: ebrel,
        predicted_psnr: psnr_for_ebrel(ebrel),
        outcome,
        rate,
    })
}

fn validate_target(target_psnr: f64) -> Result<(), SzError> {
    if !(target_psnr.is_finite() && target_psnr > 0.0) {
        return Err(SzError::BadBound(format!(
            "target PSNR must be finite and positive, got {target_psnr}"
        )));
    }
    // Eq. 8 with PSNR < ~9.5 dB yields eb_rel > 1/√3·... beyond the value
    // range itself; SZ degenerates. The paper evaluates ≥ 20 dB.
    if target_psnr < 5.0 {
        return Err(SzError::BadBound(format!(
            "target PSNR {target_psnr} dB is below the usable regime"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn climate_like(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            let x = i as f32 * 0.11;
            let y = j as f32 * 0.13;
            20.0 * (x.sin() + (y * 0.7).cos()) + 3.0 * ((x * 3.7).sin() * (y * 2.9).cos())
        })
    }

    #[test]
    fn achieves_target_within_paper_tolerance() {
        let field = climate_like(120, 140);
        for target in [40.0, 60.0, 80.0] {
            let run =
                compress_fixed_psnr(&field, target, &FixedPsnrOptions::default()).unwrap();
            let dev = run.outcome.achieved_psnr - target;
            // Paper: deviation within 0.1–5.0 dB on average; a single
            // smooth field lands well inside ±5 dB.
            assert!(
                (-1.0..=6.0).contains(&dev),
                "target {target}: achieved {} (dev {dev})",
                run.outcome.achieved_psnr
            );
        }
    }

    #[test]
    fn accuracy_improves_with_target() {
        // Paper observation: the higher the demanded PSNR, the smaller the
        // deviation (finer bins ⇒ better midpoint model).
        let field = climate_like(150, 150);
        let dev = |t: f64| {
            let run = compress_fixed_psnr(&field, t, &FixedPsnrOptions::default()).unwrap();
            (run.outcome.achieved_psnr - t).abs()
        };
        let low = dev(30.0);
        let high = dev(100.0);
        assert!(
            high <= low + 0.5,
            "deviation did not shrink: 30 dB → {low}, 100 dB → {high}"
        );
    }

    #[test]
    fn derived_bound_matches_eq8() {
        let field = climate_like(40, 40);
        let run = compress_fixed_psnr(&field, 70.0, &FixedPsnrOptions::default()).unwrap();
        assert!((run.derived_ebrel - ebrel_for_psnr(70.0)).abs() < 1e-15);
        assert!((run.predicted_psnr - 70.0).abs() < 1e-9);
    }

    #[test]
    fn production_path_equals_verified_path_bytes() {
        let field = climate_like(64, 64);
        let opts = FixedPsnrOptions::default();
        let a = compress_fixed_psnr_only(&field, 80.0, &opts).unwrap();
        let b = compress_fixed_psnr(&field, 80.0, &opts).unwrap();
        assert_eq!(a, b.bytes);
    }

    #[test]
    fn transform_variant_achieves_target() {
        let field = climate_like(96, 96);
        let run = compress_fixed_psnr_transform(&field, 60.0).unwrap();
        let dev = run.outcome.achieved_psnr - 60.0;
        assert!(
            (-2.0..=8.0).contains(&dev),
            "transform achieved {} (dev {dev})",
            run.outcome.achieved_psnr
        );
    }

    #[test]
    fn bad_targets_rejected() {
        let field = climate_like(8, 8);
        let opts = FixedPsnrOptions::default();
        for bad in [f64::NAN, -10.0, 0.0, 3.0] {
            assert!(
                compress_fixed_psnr_only(&field, bad, &opts).is_err(),
                "target {bad} accepted"
            );
        }
    }

    #[test]
    fn higher_target_means_larger_output() {
        let field = climate_like(100, 100);
        let opts = FixedPsnrOptions::default();
        let lo = compress_fixed_psnr_only(&field, 40.0, &opts).unwrap();
        let hi = compress_fixed_psnr_only(&field, 110.0, &opts).unwrap();
        assert!(
            hi.len() > lo.len(),
            "110 dB ({}) not larger than 40 dB ({})",
            hi.len(),
            lo.len()
        );
    }

    #[test]
    fn constant_field_meets_any_target_exactly() {
        let field = Field::from_vec(ndfield::Shape::D2(16, 16), vec![3.0f32; 256]);
        let run = compress_fixed_psnr(&field, 80.0, &FixedPsnrOptions::default()).unwrap();
        assert_eq!(run.outcome.achieved_psnr, f64::INFINITY);
    }
}
