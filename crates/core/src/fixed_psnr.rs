//! The fixed-PSNR driver (paper §IV, the released tool).
//!
//! # From distortion model to one-shot bound (Eq. 3 → Eq. 6 → Eq. 8)
//!
//! Theorem 1 reduces the distortion of the reconstructed data to the
//! distortion the quantizer put on the *prediction errors*, so everything
//! hinges on modelling quantization error alone.
//!
//! **Eq. 3 — general bins.** Quantizing to bin midpoints, a value landing
//! in a bin of width `δᵢ` incurs squared error `e²` for offset `e ∈
//! [−δᵢ/2, δᵢ/2]` from the midpoint. With the error pdf `P` roughly flat
//! across each (narrow) bin,
//!
//! ```text
//! MSE ≈ Σᵢ P(mᵢ) ∫_{−δᵢ/2}^{δᵢ/2} e² de = (1/12) Σᵢ δᵢ³ P(mᵢ)   (Eq. 3)
//! ```
//!
//! **Eq. 6 — uniform bins.** SZ's linear-scaling quantization uses one
//! bin width `δ`. Pulling `δ²` out of the sum leaves `Σᵢ δ P(mᵢ) ≈ ∫P =
//! 1`, so the data distribution drops out entirely:
//!
//! ```text
//! MSE = δ²/12   ⇒   PSNR = 20·log₁₀(vr/δ) + 10·log₁₀ 12      (Eq. 6)
//! ```
//!
//! with `vr` the value range. This is the classical distribution-free
//! uniform-quantization noise model — and why the paper's mode needs no
//! per-data-set training.
//!
//! **Eq. 8 — inversion.** SZ's bound `eb_abs` gives bins of width `δ =
//! 2·eb_abs`, i.e. `PSNR = 20·log₁₀(vr/eb_abs) + 10·log₁₀ 3` (Eq. 7).
//! Solving for the *value-range-relative* bound `eb_rel = eb_abs/vr`:
//!
//! ```text
//! eb_rel = √3 · 10^(−PSNR/20)                                  (Eq. 8)
//! ```
//!
//! One `powf`, then the *unmodified* SZ pipeline runs with that bound —
//! the `overhead` benchmark (and the `fpsnr.derive` obs span) confirm the
//! extra cost is unmeasurable.
//!
//! # Examples
//!
//! The Eq. 7 ↔ Eq. 8 closed forms invert each other exactly:
//!
//! ```
//! use fpsnr_core::bound::{ebrel_for_psnr, psnr_for_ebrel};
//!
//! for target in [20.0, 40.0, 60.0, 80.0, 100.0, 120.0] {
//!     let round_trip = psnr_for_ebrel(ebrel_for_psnr(target));
//!     assert!((round_trip - target).abs() < 1e-9);
//! }
//! // Spot-check Eq. 8 itself: √3·10^(−80/20) = √3·1e-4.
//! assert!((ebrel_for_psnr(80.0) - 3f64.sqrt() * 1e-4).abs() < 1e-18);
//! ```
//!
//! And the driver hits the target in a single pass:
//!
//! ```
//! use fpsnr_core::fixed_psnr::{compress_fixed_psnr, FixedPsnrOptions};
//! use ndfield::Field;
//!
//! let field = Field::from_fn_2d(64, 64, |i, j| {
//!     (i as f32 * 0.2).sin() + (j as f32 * 0.3).cos()
//! });
//! let run = compress_fixed_psnr(&field, 60.0, &FixedPsnrOptions::default())?;
//! assert!((run.outcome.achieved_psnr - 60.0).abs() < 6.0); // paper: 0.1–5 dB
//! # Ok::<(), szlike::SzError>(())
//! ```
//!
//! [`compress_fixed_psnr`] additionally decompresses and measures the
//! achieved PSNR, returning the [`fpsnr_metrics::summary::FieldOutcome`]
//! the evaluation aggregates; [`compress_fixed_psnr_only`] is the
//! production path (compress, don't verify). Both wrap the run in
//! `fpsnr-obs` spans (`fpsnr.compress`, `fpsnr.derive`, `fpsnr.verify`)
//! when instrumentation is armed.

use crate::bound::{ebrel_for_psnr, psnr_for_ebrel};
use fpsnr_metrics::summary::FieldOutcome;
use fpsnr_metrics::{Distortion, RateStats};
use fpsnr_transform::{transform_compress, transform_decompress, TransformConfig};
use ndfield::{Field, Scalar};
use szlike::{
    compress_with_detail, decompress, ErrorBound, KernelMode, LosslessBackend, PredictorKind,
    SzConfig, SzError,
};

/// Knobs forwarded to the underlying compressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPsnrOptions {
    /// Quantization-bin cap (`2n`), SZ default 65536.
    pub quant_bins: usize,
    /// SZ 1.4's adaptive interval selection (default on — the paper builds
    /// on stock SZ 1.4, whose `predThreshold`-driven selection is enabled
    /// by default).
    pub auto_intervals: bool,
    /// Lossless backend for the final stage.
    pub lossless: LosslessBackend,
    /// Worker threads for the block-parallel SZ path (0 = auto, 1 =
    /// monolithic; forwarded to [`SzConfig::threads`]). The container bytes
    /// never depend on this value.
    pub threads: usize,
    /// Block size in slowest-dimension rows for the blocked path (0 = auto;
    /// forwarded to [`SzConfig::block_rows`]).
    pub block_rows: usize,
    /// Multi-dimensional chunk extents for the grid-blocked (v4) container
    /// layout (all-zero = slab layout; forwarded to
    /// [`SzConfig::chunk_dims`]; mutually exclusive with `block_rows`).
    pub chunk_dims: [usize; 3],
    /// Walk implementation for the SZ hot loop (forwarded to
    /// [`SzConfig::kernel`]; container bytes are identical either way).
    pub kernel: KernelMode,
    /// Predictor selection (forwarded to [`SzConfig::predictor`]).
    /// `Lorenzo1` (the default) keeps the legacy container versions;
    /// `Auto` enables the per-block cost-driven bake-off (v5 layout).
    pub predictor: PredictorKind,
}

impl Default for FixedPsnrOptions {
    fn default() -> Self {
        FixedPsnrOptions {
            quant_bins: 65536,
            auto_intervals: true,
            lossless: LosslessBackend::Lz,
            threads: 1,
            block_rows: 0,
            chunk_dims: [0; 3],
            kernel: KernelMode::Fused,
            predictor: PredictorKind::Lorenzo1,
        }
    }
}

impl FixedPsnrOptions {
    pub(crate) fn sz_config(&self, target_psnr: f64) -> SzConfig {
        SzConfig::new(ErrorBound::ValueRangeRel(ebrel_for_psnr(target_psnr)))
            .with_quant_bins(self.quant_bins)
            .with_auto_intervals(self.auto_intervals)
            .with_lossless(self.lossless)
            .with_threads(self.threads)
            .with_block_rows(self.block_rows)
            .with_chunk_dims(self.chunk_dims)
            .with_kernel(self.kernel)
            .with_predictor(self.predictor)
    }
}

/// Everything a verified fixed-PSNR run produced.
#[derive(Debug, Clone)]
pub struct FixedPsnrRun {
    /// The compressed container.
    pub bytes: Vec<u8>,
    /// The bound Eq. 8 derived from the target.
    pub derived_ebrel: f64,
    /// PSNR the model predicts for that bound (Eq. 7) — equals the target
    /// by construction, kept for report symmetry.
    pub predicted_psnr: f64,
    /// Measured outcome (achieved PSNR, ratio).
    pub outcome: FieldOutcome,
    /// Size accounting.
    pub rate: RateStats,
}

/// Fixed-PSNR compression *without* verification — the paper's production
/// path (steps 1–3 only; the single-pass promise).
///
/// # Errors
/// [`SzError`] propagated from the SZ pipeline (degenerate bounds etc.).
pub fn compress_fixed_psnr_only<T: Scalar>(
    field: &Field<T>,
    target_psnr: f64,
    opts: &FixedPsnrOptions,
) -> Result<Vec<u8>, SzError> {
    validate_target(target_psnr)?;
    let _total = fpsnr_obs::span("fpsnr.compress");
    if fpsnr_obs::is_enabled() {
        fpsnr_obs::add("fpsnr.invocations", 1);
    }
    // The entire fixed-PSNR overhead versus plain SZ lives inside this
    // span: evaluating Eq. 8 once.
    let derive_span = fpsnr_obs::span("fpsnr.derive");
    let cfg = opts.sz_config(target_psnr);
    drop(derive_span);
    szlike::compress(field, &cfg)
}

/// Fixed-PSNR compression followed by decompression and PSNR measurement —
/// what the paper's evaluation does for every field.
///
/// # Errors
/// [`SzError`] propagated from the SZ pipeline.
pub fn compress_fixed_psnr<T: Scalar>(
    field: &Field<T>,
    target_psnr: f64,
    opts: &FixedPsnrOptions,
) -> Result<FixedPsnrRun, SzError> {
    validate_target(target_psnr)?;
    let total = fpsnr_obs::span("fpsnr.compress");
    if fpsnr_obs::is_enabled() {
        fpsnr_obs::add("fpsnr.invocations", 1);
    }
    let derive_span = fpsnr_obs::span("fpsnr.derive");
    let ebrel = ebrel_for_psnr(target_psnr);
    let cfg = opts.sz_config(target_psnr);
    drop(derive_span);
    let (bytes, detail) = compress_with_detail(field, &cfg)?;
    drop(total);
    let _verify = fpsnr_obs::span("fpsnr.verify");
    let back: Field<T> = decompress(&bytes)?;
    let dist = Distortion::between(field, &back);
    let rate = RateStats::new(field.len(), T::BYTES, bytes.len());
    let outcome = FieldOutcome {
        field: String::new(),
        target_psnr,
        achieved_psnr: dist.psnr(),
        ratio: rate.ratio(),
        failure: None,
    };
    let _ = detail;
    Ok(FixedPsnrRun {
        bytes,
        derived_ebrel: ebrel,
        predicted_psnr: psnr_for_ebrel(ebrel),
        outcome,
        rate,
    })
}

/// Fixed-PSNR through the *orthogonal-transform* codec (Theorem 2 / 3):
/// identical Eq. 8 derivation, but the bound feeds the blockwise DCT
/// codec's coefficient quantizer.
///
/// # Errors
/// [`SzError`] propagated from the transform codec.
pub fn compress_fixed_psnr_transform<T: Scalar>(
    field: &Field<T>,
    target_psnr: f64,
) -> Result<FixedPsnrRun, SzError> {
    validate_target(target_psnr)?;
    let ebrel = ebrel_for_psnr(target_psnr);
    let cfg = TransformConfig::new(ErrorBound::ValueRangeRel(ebrel));
    let bytes = transform_compress(field, &cfg)?;
    let back: Field<T> = transform_decompress(&bytes)?;
    let dist = Distortion::between(field, &back);
    let rate = RateStats::new(field.len(), T::BYTES, bytes.len());
    let outcome = FieldOutcome {
        field: String::new(),
        target_psnr,
        achieved_psnr: dist.psnr(),
        ratio: rate.ratio(),
        failure: None,
    };
    Ok(FixedPsnrRun {
        bytes,
        derived_ebrel: ebrel,
        predicted_psnr: psnr_for_ebrel(ebrel),
        outcome,
        rate,
    })
}

fn validate_target(target_psnr: f64) -> Result<(), SzError> {
    if !(target_psnr.is_finite() && target_psnr > 0.0) {
        return Err(SzError::BadBound(format!(
            "target PSNR must be finite and positive, got {target_psnr}"
        )));
    }
    // Eq. 8 with PSNR < ~9.5 dB yields eb_rel > 1/√3·... beyond the value
    // range itself; SZ degenerates. The paper evaluates ≥ 20 dB.
    if target_psnr < 5.0 {
        return Err(SzError::BadBound(format!(
            "target PSNR {target_psnr} dB is below the usable regime"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn climate_like(rows: usize, cols: usize) -> Field<f32> {
        Field::from_fn_2d(rows, cols, |i, j| {
            let x = i as f32 * 0.11;
            let y = j as f32 * 0.13;
            20.0 * (x.sin() + (y * 0.7).cos()) + 3.0 * ((x * 3.7).sin() * (y * 2.9).cos())
        })
    }

    #[test]
    fn achieves_target_within_paper_tolerance() {
        let field = climate_like(120, 140);
        for target in [40.0, 60.0, 80.0] {
            let run =
                compress_fixed_psnr(&field, target, &FixedPsnrOptions::default()).unwrap();
            let dev = run.outcome.achieved_psnr - target;
            // Paper: deviation within 0.1–5.0 dB on average; a single
            // smooth field lands well inside ±5 dB.
            assert!(
                (-1.0..=6.0).contains(&dev),
                "target {target}: achieved {} (dev {dev})",
                run.outcome.achieved_psnr
            );
        }
    }

    #[test]
    fn accuracy_improves_with_target() {
        // Paper observation: the higher the demanded PSNR, the smaller the
        // deviation (finer bins ⇒ better midpoint model).
        let field = climate_like(150, 150);
        let dev = |t: f64| {
            let run = compress_fixed_psnr(&field, t, &FixedPsnrOptions::default()).unwrap();
            (run.outcome.achieved_psnr - t).abs()
        };
        let low = dev(30.0);
        let high = dev(100.0);
        assert!(
            high <= low + 0.5,
            "deviation did not shrink: 30 dB → {low}, 100 dB → {high}"
        );
    }

    #[test]
    fn derived_bound_matches_eq8() {
        let field = climate_like(40, 40);
        let run = compress_fixed_psnr(&field, 70.0, &FixedPsnrOptions::default()).unwrap();
        assert!((run.derived_ebrel - ebrel_for_psnr(70.0)).abs() < 1e-15);
        assert!((run.predicted_psnr - 70.0).abs() < 1e-9);
    }

    #[test]
    fn production_path_equals_verified_path_bytes() {
        let field = climate_like(64, 64);
        let opts = FixedPsnrOptions::default();
        let a = compress_fixed_psnr_only(&field, 80.0, &opts).unwrap();
        let b = compress_fixed_psnr(&field, 80.0, &opts).unwrap();
        assert_eq!(a, b.bytes);
    }

    #[test]
    fn transform_variant_achieves_target() {
        let field = climate_like(96, 96);
        let run = compress_fixed_psnr_transform(&field, 60.0).unwrap();
        let dev = run.outcome.achieved_psnr - 60.0;
        assert!(
            (-2.0..=8.0).contains(&dev),
            "transform achieved {} (dev {dev})",
            run.outcome.achieved_psnr
        );
    }

    #[test]
    fn bad_targets_rejected() {
        let field = climate_like(8, 8);
        let opts = FixedPsnrOptions::default();
        for bad in [f64::NAN, -10.0, 0.0, 3.0] {
            assert!(
                compress_fixed_psnr_only(&field, bad, &opts).is_err(),
                "target {bad} accepted"
            );
        }
    }

    #[test]
    fn higher_target_means_larger_output() {
        let field = climate_like(100, 100);
        let opts = FixedPsnrOptions::default();
        let lo = compress_fixed_psnr_only(&field, 40.0, &opts).unwrap();
        let hi = compress_fixed_psnr_only(&field, 110.0, &opts).unwrap();
        assert!(
            hi.len() > lo.len(),
            "110 dB ({}) not larger than 40 dB ({})",
            hi.len(),
            lo.len()
        );
    }

    #[test]
    fn constant_field_meets_any_target_exactly() {
        let field = Field::from_vec(ndfield::Shape::D2(16, 16), vec![3.0f32; 256]);
        let run = compress_fixed_psnr(&field, 80.0, &FixedPsnrOptions::default()).unwrap();
        assert_eq!(run.outcome.achieved_psnr, f64::INFINITY);
    }
}
